#ifndef SLIM_WORKLOAD_ICU_H_
#define SLIM_WORKLOAD_ICU_H_

/// \file icu.h
/// \brief Synthetic intensive-care-unit data (the substitution for the
/// paper's clinical setting).
///
/// The paper's evaluation scenario (Figs. 2 and 4) is a resident's
/// worksheet over real hospital documents: a complete medication list in
/// Excel, lab reports in XML, progress notes, guidelines. We generate
/// statistically plausible, fully deterministic stand-ins so the exact
/// Fig. 4 interaction — click a med scrap, Excel opens with the row
/// highlighted; double-click an electrolyte scrap, the XML lab report opens
/// highlighted — runs at benchmarkable scale.

#include <memory>
#include <string>
#include <vector>

#include "doc/pdf/pdf_document.h"
#include "doc/spreadsheet/workbook.h"
#include "doc/text/text_document.h"
#include "doc/xml/dom.h"
#include "util/rng.h"

namespace slim::workload {

/// \brief One synthetic patient.
struct Patient {
  std::string name;
  std::string mrn;  ///< Medical record number.
  int med_row_begin = 0;  ///< First row (0-based) in the medication sheet.
  int med_count = 0;
  std::vector<std::string> problems;
};

/// \brief A generated ICU census plus its base-layer documents.
struct IcuWorkload {
  std::vector<Patient> patients;
  /// "meds.book": sheet "Medications" with header row; columns
  /// A=Patient, B=Drug, C=Dose, D=Route, E=Frequency.
  std::unique_ptr<doc::Workbook> medication_workbook;
  /// One XML lab report per patient ("labs/<mrn>.xml"):
  /// <labReport mrn=...><panel name="electrolytes"><result name="Na" ...>.
  std::vector<std::unique_ptr<doc::xml::Document>> lab_reports;
  /// One progress note per patient ("notes/<mrn>.txt").
  std::vector<std::unique_ptr<doc::text::TextDocument>> progress_notes;
  /// A shared clinical-guideline document rendered to (simulated) PDF.
  std::unique_ptr<doc::pdf::PdfDocument> guideline_pdf;
  /// A shared protocol page in HTML (source text; parse with ParseHtml).
  std::string protocol_html;

  /// File names used when registering with the base applications.
  std::string medication_file() const { return "meds.book"; }
  std::string lab_file(size_t patient_index) const {
    return "labs/" + patients[patient_index].mrn + ".xml";
  }
  std::string note_file(size_t patient_index) const {
    return "notes/" + patients[patient_index].mrn + ".txt";
  }
  std::string guideline_file() const { return "guidelines/sepsis.pdf"; }
  std::string protocol_url() const { return "http://hospital/protocols/icu"; }
};

/// \brief Generation parameters.
struct IcuOptions {
  int patients = 8;
  int meds_per_patient_min = 2;
  int meds_per_patient_max = 9;
  int lab_panels = 3;           ///< Panels per report (electrolytes, cbc, abg).
  int note_paragraphs = 6;
  uint64_t seed = 42;
};

/// Generates the full workload deterministically from `options.seed`.
IcuWorkload GenerateIcuWorkload(const IcuOptions& options);

/// The standard electrolyte analyte names of the 'Electrolyte' gridlet
/// (paper Fig. 4): Na, K, Cl, HCO3, BUN, Cr, Glu.
const std::vector<std::string>& ElectrolyteAnalytes();

}  // namespace slim::workload

#endif  // SLIM_WORKLOAD_ICU_H_
