#include "workload/session.h"

#include <algorithm>

namespace slim::workload {

void Session::Count(const char* name, uint64_t delta) {
#if SLIM_OBS_ENABLED
  if (obs::Disabled()) return;
  metrics_->GetCounter(name)->Increment(delta);
#else
  (void)name;
  (void)delta;
#endif
}

obs::LatencyHistogram* Session::Histogram(const char* name) {
#if SLIM_OBS_ENABLED
  if (obs::Disabled()) return nullptr;
  return metrics_->GetHistogram(name);
#else
  (void)name;
  return nullptr;
#endif
}

Session::Session(obs::MetricsRegistry* metrics)
    : excel_module_(&excel_),
      xml_module_(&xml_),
      text_module_(&text_),
      slide_module_(&slides_),
      pdf_module_(&pdf_),
      html_module_(&html_),
      metrics_(metrics != nullptr ? metrics : &own_metrics_) {
  // Lab-report elements carry name attributes, so robust (attribute-
  // predicate) addressing keeps electrolyte marks valid across report
  // regenerations.
  xml_.set_robust_addressing(true);
  // Default ("context") modules.
  (void)marks_.RegisterModule(&excel_module_);
  (void)marks_.RegisterModule(&xml_module_);
  (void)marks_.RegisterModule(&text_module_);
  (void)marks_.RegisterModule(&slide_module_);
  (void)marks_.RegisterModule(&pdf_module_);
  (void)marks_.RegisterModule(&html_module_);
  // In-place resolvers for every type (independent viewing, Fig. 6).
  for (mark::MarkModule* m :
       {static_cast<mark::MarkModule*>(&excel_module_),
        static_cast<mark::MarkModule*>(&xml_module_),
        static_cast<mark::MarkModule*>(&text_module_),
        static_cast<mark::MarkModule*>(&slide_module_),
        static_cast<mark::MarkModule*>(&pdf_module_),
        static_cast<mark::MarkModule*>(&html_module_)}) {
    inplace_modules_.push_back(std::make_unique<mark::InPlaceModule>(m));
    (void)marks_.RegisterModule(inplace_modules_.back().get());
  }
  app_ = std::make_unique<pad::SlimPadApp>(&marks_);
}

Status Session::LoadIcuWorkload(IcuWorkload workload) {
  util::MutexLock lock(&mu_);
  obs::ScopedOpTimer timer(Histogram("workload.load.latency_us"));
  Count("workload.load.calls");
  Count("workload.load.patients", workload.patients.size());
  SLIM_OBS_LOG(kInfo, "workload", "icu workload loading",
               {{"patients", std::to_string(workload.patients.size())}});
  icu_ = std::move(workload);
  SLIM_RETURN_NOT_OK(
      excel_.RegisterWorkbook(std::move(icu_.medication_workbook)));
  for (size_t p = 0; p < icu_.patients.size(); ++p) {
    SLIM_RETURN_NOT_OK(
        xml_.RegisterDocument(icu_.lab_file(p), std::move(icu_.lab_reports[p])));
    SLIM_RETURN_NOT_OK(text_.RegisterDocument(
        icu_.note_file(p), std::move(icu_.progress_notes[p])));
  }
  icu_.lab_reports.clear();
  icu_.progress_notes.clear();
  SLIM_RETURN_NOT_OK(pdf_.RegisterDocument(std::move(icu_.guideline_pdf)));
  SLIM_RETURN_NOT_OK(
      html_.RegisterPage(icu_.protocol_url(), icu_.protocol_html));
  return Status::OK();
}

Status Session::BuildRoundsPad(int max_patients) {
  SLIM_OBS_HEARTBEAT("workload.session");
  util::MutexLock lock(&mu_);
  return BuildRoundsPadLocked(max_patients);
}

Status Session::BuildRoundsPadLocked(int max_patients) {
  obs::ScopedOpTimer timer(Histogram("workload.build_rounds_pad.latency_us"));
  Count("workload.build_rounds_pad.calls");
  SLIM_RETURN_NOT_OK(app_->NewPad("Rounds"));
  SLIM_ASSIGN_OR_RETURN(std::string root, app_->RootBundle());
  patient_bundles_.clear();

  size_t count = icu_.patients.size();
  if (max_patients >= 0 &&
      static_cast<size_t>(max_patients) < count) {
    count = static_cast<size_t>(max_patients);
  }

  for (size_t p = 0; p < count; ++p) {
    const Patient& patient = icu_.patients[p];
    SLIM_ASSIGN_OR_RETURN(
        std::string bundle_id,
        app_->CreateBundle(root, patient.name,
                           pad::Coordinate{20, 20 + 180 * double(p)}, 640,
                           160));
    patient_bundles_.push_back(bundle_id);

    // Medication scraps: select each row range in the spreadsheet and drop
    // it onto the pad (paper §3's creation flow).
    for (int m = 0; m < patient.med_count; ++m) {
      int row = patient.med_row_begin + m;
      SLIM_RETURN_NOT_OK(excel_.Select(
          icu_.medication_file(), "Medications",
          doc::RangeRef{{row, 1}, {row, 4}}));
      SLIM_ASSIGN_OR_RETURN(
          std::string scrap_id,
          app_->AddScrapFromSelection(
              bundle_id, "excel", "",
              pad::Coordinate{10, 10 + 22 * double(m)}));
      (void)scrap_id;
    }

    // 'Electrolyte' bundle with the gridlet plus one scrap per analyte.
    SLIM_ASSIGN_OR_RETURN(
        std::string lyte_bundle,
        app_->CreateBundle(bundle_id, "Electrolyte",
                           pad::Coordinate{320, 10}, 280, 140));
    SLIM_RETURN_NOT_OK(
        app_->AddGraphicScrap(lyte_bundle, "gridlet", pad::Coordinate{10, 10})
            .status());
    SLIM_ASSIGN_OR_RETURN(doc::xml::Document * lab,
                          xml_.GetDocument(icu_.lab_file(p)));
    doc::xml::Element* lyte_panel = nullptr;
    for (doc::xml::Element* panel : lab->root()->ChildElements("panel")) {
      const std::string* name = panel->FindAttribute("name");
      if (name != nullptr && *name == "electrolytes") lyte_panel = panel;
    }
    if (lyte_panel == nullptr) {
      return Status::NotFound("no electrolytes panel for patient " +
                              patient.name);
    }
    double x = 20;
    for (doc::xml::Element* result : lyte_panel->ChildElements("result")) {
      SLIM_RETURN_NOT_OK(xml_.SelectElement(icu_.lab_file(p), result));
      const std::string* analyte = result->FindAttribute("name");
      const std::string* value = result->FindAttribute("value");
      std::string label = (analyte != nullptr ? *analyte : "?") + " " +
                          (value != nullptr ? *value : "?");
      SLIM_RETURN_NOT_OK(app_->AddScrapFromSelection(
                                 lyte_bundle, "xml", label,
                                 pad::Coordinate{x, 40})
                             .status());
      x += 36;
    }
  }
  return Status::OK();
}

Status Session::BuildFullRoundsPad(int max_patients) {
  util::MutexLock lock(&mu_);
  obs::ScopedOpTimer timer(
      Histogram("workload.build_full_rounds_pad.latency_us"));
  Count("workload.build_full_rounds_pad.calls");
  SLIM_RETURN_NOT_OK(BuildRoundsPadLocked(max_patients));
  SLIM_ASSIGN_OR_RETURN(std::string root, app_->RootBundle());

  // Progress-note scrap per patient (the Problems column of Fig. 2).
  for (size_t p = 0; p < patient_bundles_.size(); ++p) {
    SLIM_ASSIGN_OR_RETURN(doc::text::TextDocument * note,
                          text_.GetDocument(icu_.note_file(p)));
    if (note->paragraph_count() < 2) continue;
    SLIM_ASSIGN_OR_RETURN(const doc::text::Paragraph* para,
                          note->GetParagraph(1));
    doc::text::TextSpan span{1, 0,
                             static_cast<int32_t>(std::min<size_t>(
                                 para->text.size(), 60))};
    SLIM_RETURN_NOT_OK(text_.Select(icu_.note_file(p), span));
    SLIM_RETURN_NOT_OK(app_->AddScrapFromSelection(
                               patient_bundles_[p], "text", "Problems",
                               pad::Coordinate{170, 10})
                           .status());
  }

  // Shared 'References' bundle: guideline PDF + protocol page.
  SLIM_ASSIGN_OR_RETURN(
      std::string refs,
      app_->CreateBundle(root, "References",
                         pad::Coordinate{700, 20}, 200, 120));
  SLIM_ASSIGN_OR_RETURN(doc::pdf::PdfDocument * guide,
                        pdf_.GetDocument(icu_.guideline_file()));
  if (!guide->pages().empty() && !guide->pages()[0].objects.empty()) {
    SLIM_RETURN_NOT_OK(pdf_.SelectRegion(icu_.guideline_file(), 0,
                                         guide->pages()[0].objects[0].box));
    SLIM_RETURN_NOT_OK(app_->AddScrapFromSelection(
                               refs, "pdf", "Sepsis guideline",
                               pad::Coordinate{10, 10})
                           .status());
  }
  SLIM_RETURN_NOT_OK(html_.NavigateTo(icu_.protocol_url(), "id:top"));
  SLIM_RETURN_NOT_OK(app_->AddScrapFromSelection(refs, "html",
                                                 "ICU protocols",
                                                 pad::Coordinate{10, 40})
                         .status());
  return Status::OK();
}

Result<size_t> Session::OpenAllScraps() {
  SLIM_OBS_HEARTBEAT("workload.session");
  util::MutexLock lock(&mu_);
  obs::ScopedOpTimer timer(Histogram("workload.open_all_scraps.latency_us"));
  Count("workload.open_all_scraps.calls");
  size_t opened = 0;
  for (const pad::Scrap* scrap : app_->dmi().Scraps()) {
    if (scrap->mark_handles().empty()) continue;  // gridlets
    Status st = app_->OpenScrap(scrap->id()).status();
    if (!st.ok()) {
      SLIM_OBS_LOG(kError, "workload", "open scrap failed mid-session",
                   {{"scrap", scrap->id()},
                    {"opened_so_far", std::to_string(opened)},
                    {"status", st.ToString()}});
      SLIM_OBS_DUMP_ON_ERROR("workload.open_all_scraps");
      Count("workload.scraps_opened", opened);
      return st;
    }
    ++opened;
  }
  Count("workload.scraps_opened", opened);
  return opened;
}

}  // namespace slim::workload
