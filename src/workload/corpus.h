#ifndef SLIM_WORKLOAD_CORPUS_H_
#define SLIM_WORKLOAD_CORPUS_H_

/// \file corpus.h
/// \brief Synthetic text corpus for the concordance example (paper §1's
/// motivating Shakespeare concordance) and for text-mark benches.

#include <memory>
#include <string>
#include <vector>

#include "doc/text/text_document.h"
#include "util/rng.h"

namespace slim::workload {

/// \brief Corpus generation parameters.
struct CorpusOptions {
  int documents = 3;        ///< "plays".
  int paragraphs_per_doc = 40;   ///< "scenes" worth of lines.
  int words_per_paragraph = 30;
  int vocabulary = 400;     ///< Distinct word count; Zipf-ish reuse.
  uint64_t seed = 7;
};

/// \brief A generated corpus: documents plus the vocabulary actually used.
struct Corpus {
  std::vector<std::unique_ptr<doc::text::TextDocument>> documents;
  std::vector<std::string> vocabulary;

  std::string file_name(size_t index) const {
    return "corpus/play" + std::to_string(index) + ".txt";
  }
};

/// Generates a deterministic corpus. Word frequencies follow a 1/rank
/// (Zipf) distribution so concordance terms range from ubiquitous to rare.
Corpus GenerateCorpus(const CorpusOptions& options);

}  // namespace slim::workload

#endif  // SLIM_WORKLOAD_CORPUS_H_
