#ifndef SLIM_WORKLOAD_SESSION_H_
#define SLIM_WORKLOAD_SESSION_H_

/// \file session.h
/// \brief End-to-end driver: stands up the whole architecture (base apps,
/// mark modules, Mark Manager, SLIMPad) over a generated ICU workload and
/// re-enacts the Fig. 4 'Rounds' pad. Shared by integration tests, the
/// icu_rounds example, and several benches.

#include <memory>
#include <string>
#include <vector>

#include "baseapp/html_app.h"
#include "baseapp/pdf_app.h"
#include "baseapp/slide_app.h"
#include "baseapp/spreadsheet_app.h"
#include "baseapp/text_app.h"
#include "baseapp/xml_app.h"
#include "mark/mark_manager.h"
#include "mark/modules.h"
#include "obs/obs.h"
#include "slimpad/slimpad_app.h"
#include "util/instrumented_mutex.h"
#include "util/thread_annotations.h"
#include "workload/icu.h"

namespace slim::workload {

/// \brief Everything a running superimposed deployment needs, wired up.
///
/// Owns the base applications, the mark modules, the Mark Manager and a
/// SLIMPad application. Construct, call LoadIcuWorkload, then drive.
///
/// The public driver operations (LoadIcuWorkload, BuildRoundsPad,
/// BuildFullRoundsPad, OpenAllScraps) serialize on an internal
/// `util::InstrumentedMutex` (lock site `workload.session`): two threads
/// driving one session won't corrupt pad state, and contention between
/// them is visible in the lock profiler. Accessors stay unsynchronized.
class Session {
 public:
  /// `metrics` receives the session-level `workload.*` metrics (pad
  /// construction counts/latencies, scraps opened). Pass a shared registry
  /// to aggregate across sessions; nullptr uses a registry owned by this
  /// session. Layer metrics (`trim.*`, `mark.*`, ...) go to
  /// obs::DefaultRegistry() as usual; `slimpad.*` gestures additionally to
  /// the app's per-app registry (`app().metrics()`).
  explicit Session(obs::MetricsRegistry* metrics = nullptr);

  /// Registers the workload's documents with the base applications. The
  /// workload must outlive the session (documents move into the apps).
  Status LoadIcuWorkload(IcuWorkload workload);

  /// Builds the Fig. 4 'Rounds' pad: one bundle per patient containing one
  /// scrap per medication (Excel marks) and an 'Electrolyte' bundle with
  /// one scrap per electrolyte result (XML marks) plus the gridlet.
  /// `max_patients` < 0 means all.
  Status BuildRoundsPad(int max_patients = -1);

  /// Extends BuildRoundsPad to the full Fig. 2 worksheet: additionally a
  /// progress-note scrap per patient (text mark into the note's first
  /// body paragraph), one shared guideline scrap (PDF region mark) and one
  /// shared protocol scrap (HTML mark) in a 'References' bundle — every
  /// base-source type on one pad.
  Status BuildFullRoundsPad(int max_patients = -1);

  /// Opens (resolves) every scrap on the pad once; returns how many were
  /// opened. Exercises mark resolution across the whole pad.
  Result<size_t> OpenAllScraps();

  baseapp::SpreadsheetApp& excel() { return excel_; }
  baseapp::XmlApp& xml() { return xml_; }
  baseapp::TextApp& text() { return text_; }
  baseapp::SlideApp& slides() { return slides_; }
  baseapp::PdfApp& pdf() { return pdf_; }
  baseapp::HtmlApp& html() { return html_; }
  mark::MarkManager& marks() { return marks_; }
  pad::SlimPadApp& app() { return *app_; }
  const IcuWorkload& icu() const { return icu_; }

  /// Patient bundle ids in census order (after BuildRoundsPad).
  const std::vector<std::string>& patient_bundles() const {
    return patient_bundles_;
  }

  /// The registry receiving this session's `workload.*` metrics.
  obs::MetricsRegistry& metrics() { return *metrics_; }

  /// Human-readable per-session metrics summary (for reports and future
  /// scaling experiments).
  std::string MetricsSummary() const { return metrics_->ExportText(); }

 private:
  /// Session-level counter / histogram helpers; no-ops when obs is
  /// compiled out or disabled.
  void Count(const char* name, uint64_t delta = 1);
  obs::LatencyHistogram* Histogram(const char* name);

  /// BuildRoundsPad body; BuildFullRoundsPad composes with it under one
  /// acquisition of the (non-recursive) session mutex.
  Status BuildRoundsPadLocked(int max_patients) REQUIRES(mu_);

  /// Serializes the public driver operations.
  util::InstrumentedMutex mu_{"workload.session"};

  // The apps, modules, manager and pad below are wired once in the
  // constructor and mutated only through the driver operations, which
  // serialize on mu_; the class contract (see above) deliberately leaves
  // the accessors unsynchronized, so GUARDED_BY(mu_) would reject them.
  // slim-lint: allow(unguarded) -- unsynchronized accessors by contract
  baseapp::SpreadsheetApp excel_;
  // slim-lint: allow(unguarded) -- unsynchronized accessors by contract
  baseapp::XmlApp xml_;
  // slim-lint: allow(unguarded) -- unsynchronized accessors by contract
  baseapp::TextApp text_;
  // slim-lint: allow(unguarded) -- unsynchronized accessors by contract
  baseapp::SlideApp slides_;
  // slim-lint: allow(unguarded) -- unsynchronized accessors by contract
  baseapp::PdfApp pdf_;
  // slim-lint: allow(unguarded) -- unsynchronized accessors by contract
  baseapp::HtmlApp html_;

  // slim-lint: allow(unguarded) -- constructor-wired; driven via marks_
  mark::ExcelMarkModule excel_module_;
  // slim-lint: allow(unguarded) -- constructor-wired; driven via marks_
  mark::XmlMarkModule xml_module_;
  // slim-lint: allow(unguarded) -- constructor-wired; driven via marks_
  mark::TextMarkModule text_module_;
  // slim-lint: allow(unguarded) -- constructor-wired; driven via marks_
  mark::SlideMarkModule slide_module_;
  // slim-lint: allow(unguarded) -- constructor-wired; driven via marks_
  mark::PdfMarkModule pdf_module_;
  // slim-lint: allow(unguarded) -- constructor-wired; driven via marks_
  mark::HtmlMarkModule html_module_;
  // slim-lint: allow(unguarded) -- filled in the constructor, then const
  std::vector<std::unique_ptr<mark::InPlaceModule>> inplace_modules_;

  // slim-lint: allow(unguarded) -- unsynchronized accessors by contract
  mark::MarkManager marks_;
  // slim-lint: allow(unguarded) -- unsynchronized accessors by contract
  std::unique_ptr<pad::SlimPadApp> app_;

  // slim-lint: allow(unguarded) -- internally synchronized registry
  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* const metrics_;  ///< Never null; set in the ctor.

  // slim-lint: allow(unguarded) -- mutated only under mu_; read accessors
  IcuWorkload icu_;
  // slim-lint: allow(unguarded) -- mutated only under mu_; read accessors
  std::vector<std::string> patient_bundles_;
};

}  // namespace slim::workload

#endif  // SLIM_WORKLOAD_SESSION_H_
