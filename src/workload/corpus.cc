#include "workload/corpus.h"

#include <set>

namespace slim::workload {

Corpus GenerateCorpus(const CorpusOptions& options) {
  Rng rng(options.seed);
  Corpus out;

  // Distinct vocabulary.
  std::set<std::string> seen;
  while (static_cast<int>(out.vocabulary.size()) < options.vocabulary) {
    std::string w = rng.Word(rng.Range(3, 9));
    if (seen.insert(w).second) out.vocabulary.push_back(std::move(w));
  }

  // Zipf-ish sampling: rank r chosen with probability ~ 1/(r+1) via
  // rejection-free cumulative trick over a precomputed harmonic table.
  std::vector<double> cumulative;
  double total = 0;
  for (size_t r = 0; r < out.vocabulary.size(); ++r) {
    total += 1.0 / static_cast<double>(r + 1);
    cumulative.push_back(total);
  }
  auto sample_word = [&]() -> const std::string& {
    double u = rng.NextDouble() * total;
    size_t lo = 0, hi = cumulative.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cumulative[mid] < u) lo = mid + 1;
      else hi = mid;
    }
    return out.vocabulary[lo];
  };

  for (int d = 0; d < options.documents; ++d) {
    auto document = std::make_unique<doc::text::TextDocument>();
    document->AddParagraph("Play " + std::to_string(d + 1), 1);
    for (int p = 0; p < options.paragraphs_per_doc; ++p) {
      std::string para;
      for (int w = 0; w < options.words_per_paragraph; ++w) {
        if (w) para += ' ';
        para += sample_word();
      }
      para += '.';
      document->AddParagraph(std::move(para));
    }
    out.documents.push_back(std::move(document));
  }
  return out;
}

}  // namespace slim::workload
