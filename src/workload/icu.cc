#include "workload/icu.h"

#include <cmath>

#include "util/strings.h"

namespace slim::workload {

namespace {

const std::vector<std::string> kFirstNames = {
    "John", "Mary", "Ahmed", "Li", "Rosa", "Pavel", "Aiko", "Kwame",
    "Ingrid", "Diego", "Fatima", "Sven", "Priya", "Omar", "Hana", "Luis"};
const std::vector<std::string> kLastNames = {
    "Smith", "Johnson", "Nguyen", "Garcia", "Chen",  "Kumar",
    "Okafor", "Larsen", "Dubois", "Tanaka", "Weber", "Rossi"};
const std::vector<std::string> kDrugs = {
    "dopamine",   "norepinephrine", "vancomycin", "ceftriaxone",
    "furosemide", "insulin",        "heparin",    "midazolam",
    "fentanyl",   "propofol",       "metoprolol", "amiodarone",
    "pantoprazole", "levothyroxine", "warfarin",  "albuterol"};
const std::vector<std::string> kRoutes = {"IV", "PO", "IM", "SC", "NEB"};
const std::vector<std::string> kFreqs = {"q4h", "q6h", "q8h", "q12h", "daily",
                                         "BID", "TID", "PRN", "continuous"};
const std::vector<std::string> kProblems = {
    "septic shock",         "acute respiratory failure",
    "atrial fibrillation",  "acute kidney injury",
    "GI bleed",             "DKA",
    "pneumonia",            "CHF exacerbation",
    "post-op day 2 CABG",   "stroke"};

struct Analyte {
  const char* name;
  double lo, hi;
  const char* units;
};

const std::vector<Analyte>& PanelAnalytes(const std::string& panel) {
  static const std::vector<Analyte> kElectrolytes = {
      {"Na", 128, 148, "mmol/L"}, {"K", 3.0, 5.8, "mmol/L"},
      {"Cl", 92, 112, "mmol/L"},  {"HCO3", 16, 30, "mmol/L"},
      {"BUN", 6, 48, "mg/dL"},    {"Cr", 0.5, 3.2, "mg/dL"},
      {"Glu", 62, 280, "mg/dL"}};
  static const std::vector<Analyte> kCbc = {
      {"WBC", 3.2, 18.0, "K/uL"},
      {"Hgb", 7.0, 15.5, "g/dL"},
      {"Hct", 22, 46, "%"},
      {"Plt", 80, 420, "K/uL"}};
  static const std::vector<Analyte> kAbg = {{"pH", 7.20, 7.52, ""},
                                            {"pCO2", 28, 58, "mmHg"},
                                            {"pO2", 55, 110, "mmHg"},
                                            {"Lactate", 0.6, 5.4, "mmol/L"}};
  if (panel == "cbc") return kCbc;
  if (panel == "abg") return kAbg;
  return kElectrolytes;
}

const std::vector<std::string> kPanels = {"electrolytes", "cbc", "abg"};

double RoundTo(double v, double step) {
  return std::round(v / step) * step;
}

// One-decimal display form ("4.2", "166.1") — avoids the binary-fraction
// noise FormatNumber's shortest-round-trip rule would faithfully preserve.
std::string OneDecimal(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  std::string out = buf;
  if (out.size() > 2 && out.substr(out.size() - 2) == ".0") {
    out.resize(out.size() - 2);
  }
  return out;
}

}  // namespace

const std::vector<std::string>& ElectrolyteAnalytes() {
  static const std::vector<std::string> kNames = {"Na", "K",  "Cl", "HCO3",
                                                  "BUN", "Cr", "Glu"};
  return kNames;
}

IcuWorkload GenerateIcuWorkload(const IcuOptions& options) {
  Rng rng(options.seed);
  IcuWorkload out;

  // --- Patients ---
  for (int p = 0; p < options.patients; ++p) {
    Patient patient;
    patient.name = rng.Pick(kFirstNames) + " " + rng.Pick(kLastNames);
    patient.mrn = "MRN" + std::to_string(100000 + rng.Below(900000));
    int n_problems = static_cast<int>(rng.Range(1, 3));
    for (int i = 0; i < n_problems; ++i) {
      patient.problems.push_back(rng.Pick(kProblems));
    }
    out.patients.push_back(std::move(patient));
  }

  // --- Medication workbook (the complete medication list of Fig. 4) ---
  out.medication_workbook = std::make_unique<doc::Workbook>("meds.book");
  doc::Worksheet* meds =
      out.medication_workbook->AddSheet("Medications").ValueOrDie();
  meds->SetValue({0, 0}, std::string("Patient"));
  meds->SetValue({0, 1}, std::string("Drug"));
  meds->SetValue({0, 2}, std::string("Dose"));
  meds->SetValue({0, 3}, std::string("Route"));
  meds->SetValue({0, 4}, std::string("Frequency"));
  int row = 1;
  for (Patient& patient : out.patients) {
    patient.med_row_begin = row;
    patient.med_count = static_cast<int>(rng.Range(
        options.meds_per_patient_min, options.meds_per_patient_max));
    for (int m = 0; m < patient.med_count; ++m) {
      meds->SetValue({row, 0}, patient.name);
      meds->SetValue({row, 1}, rng.Pick(kDrugs));
      meds->SetValue({row, 2},
                     FormatNumber(RoundTo(rng.NextDouble() * 95 + 5, 5)) +
                         " mg");
      meds->SetValue({row, 3}, rng.Pick(kRoutes));
      meds->SetValue({row, 4}, rng.Pick(kFreqs));
      ++row;
    }
  }
  // A summary row with a live formula (exercises the evaluator under marks).
  meds->SetValue({row, 0}, std::string("TOTAL ORDERS"));
  (void)meds->SetFormula({row, 1},
                         "=COUNTA(B2:B" + std::to_string(row) + ")");

  // --- Lab reports (XML, one per patient) ---
  for (const Patient& patient : out.patients) {
    auto doc = doc::xml::Document::Create("labReport");
    doc::xml::Element* root = doc->root();
    root->SetAttribute("mrn", patient.mrn);
    root->SetAttribute("patient", patient.name);
    for (int pi = 0; pi < options.lab_panels &&
                     pi < static_cast<int>(kPanels.size());
         ++pi) {
      doc::xml::Element* panel = root->AddElement("panel");
      panel->SetAttribute("name", kPanels[static_cast<size_t>(pi)]);
      for (const Analyte& a :
           PanelAnalytes(kPanels[static_cast<size_t>(pi)])) {
        doc::xml::Element* result = panel->AddElement("result");
        result->SetAttribute("name", a.name);
        double v = a.lo + rng.NextDouble() * (a.hi - a.lo);
        result->SetAttribute("value", OneDecimal(v));
        if (a.units[0] != '\0') result->SetAttribute("units", a.units);
        result->AddText(std::string(a.name) + " " + OneDecimal(v));
      }
    }
    out.lab_reports.push_back(std::move(doc));
  }

  // --- Progress notes (text, one per patient) ---
  for (const Patient& patient : out.patients) {
    auto note = std::make_unique<doc::text::TextDocument>();
    note->AddParagraph("Progress note: " + patient.name + " (" + patient.mrn +
                           ")",
                       1);
    for (int para = 0; para < options.note_paragraphs; ++para) {
      std::string text = "Day " + std::to_string(para + 1) + ": patient with " +
                         patient.problems[static_cast<size_t>(para) %
                                          patient.problems.size()] +
                         ". ";
      int sentences = static_cast<int>(rng.Range(2, 5));
      for (int s = 0; s < sentences; ++s) {
        text += "Assessment " + rng.Word(6) + " " + rng.Word(8) + " " +
                rng.Word(5) + ". ";
      }
      note->AddParagraph(text);
    }
    out.progress_notes.push_back(std::move(note));
  }

  // --- Guideline PDF (shared) ---
  std::vector<std::string> guideline_paras;
  guideline_paras.push_back("Sepsis management guideline (synthetic).");
  for (int i = 0; i < 40; ++i) {
    std::string para = "Recommendation " + std::to_string(i + 1) + ": ";
    int words = static_cast<int>(rng.Range(20, 60));
    for (int w = 0; w < words; ++w) para += rng.Word(rng.Range(3, 9)) + " ";
    guideline_paras.push_back(para);
  }
  out.guideline_pdf = doc::pdf::PdfDocument::BuildFromParagraphs(
      guideline_paras);
  out.guideline_pdf->set_file_name("guidelines/sepsis.pdf");

  // --- Protocol page (HTML, shared) ---
  std::string html = "<html><head><title>ICU protocols</title></head><body>";
  html += "<h1 id=\"top\">ICU protocols</h1>";
  for (int i = 0; i < 12; ++i) {
    html += "<h2 id=\"proto" + std::to_string(i) + "\">Protocol " +
            std::to_string(i) + "</h2>";
    html += "<p>Step one: " + rng.Word(7) + " " + rng.Word(5) + ".</p>";
    html += "<ul><li>" + rng.Word(6) + "</li><li>" + rng.Word(6) +
            "</li></ul>";
  }
  html += "</body></html>";
  out.protocol_html = std::move(html);

  return out;
}

}  // namespace slim::workload
