#ifndef SLIM_DMI_DYNAMIC_DMI_H_
#define SLIM_DMI_DYNAMIC_DMI_H_

/// \file dynamic_dmi.h
/// \brief Generated Data-Manipulation Interfaces (paper §4.4 and §6).
///
/// §4.4: "The DMI contains the allowable operations on the application's
/// model... By restricting manipulation of data through the DMI, we store
/// the triples without intervention from the superimposed application."
/// §6: "we have been investigating the automatic generation of customized
/// data manipulation interfaces from high-level specification."
///
/// DynamicDmi is that generator, realized at runtime: given a SchemaDef it
/// synthesizes a typed interface — create/delete per element,
/// get/set per attribute connector, connect/disconnect per link connector —
/// with every operation validated against the schema before any triple is
/// written. The triple representation never leaks to the application.

#include <memory>
#include <string>
#include <vector>

#include "slim/conformance.h"
#include "slim/instance.h"
#include "slim/schema.h"
#include "trim/triple_store.h"
#include "util/result.h"

namespace slim::dmi {

class DynamicDmi;

/// \brief Typed handle to one instance managed by a DynamicDmi.
///
/// Handles are cheap value objects (id + element + DMI pointer); the data
/// lives in the triple store.
class DynamicObject {
 public:
  DynamicObject() = default;

  const std::string& id() const { return id_; }
  const std::string& element() const { return element_; }
  bool valid() const { return dmi_ != nullptr; }

  /// \name Attribute access (literal-range connectors).
  /// @{
  Status Set(const std::string& attribute, const std::string& value);
  Result<std::string> Get(const std::string& attribute) const;
  /// @}

  /// \name Link access (element-range connectors).
  /// @{
  Status Connect(const std::string& connector, const DynamicObject& target);
  Status Disconnect(const std::string& connector, const DynamicObject& target);
  Result<std::vector<DynamicObject>> GetConnected(
      const std::string& connector) const;
  /// @}

  friend bool operator==(const DynamicObject& a, const DynamicObject& b) {
    return a.id_ == b.id_;
  }

 private:
  friend class DynamicDmi;
  DynamicObject(DynamicDmi* dmi, std::string id, std::string element)
      : dmi_(dmi), id_(std::move(id)), element_(std::move(element)) {}

  DynamicDmi* dmi_ = nullptr;
  std::string id_;
  std::string element_;
};

/// \brief A schema-driven DMI generated at runtime.
class DynamicDmi {
 public:
  /// Generates the interface for `schema` over `model`. `store` must
  /// outlive the DMI; the schema/model are copied in.
  DynamicDmi(trim::TripleStore* store, store::SchemaDef schema,
             store::ModelDef model);

  const store::SchemaDef& schema() const { return schema_; }
  const store::ModelDef& model() const { return model_; }
  trim::TripleStore* triple_store() { return store_; }

  /// Creates a new instance of a declared schema element.
  Result<DynamicObject> Create(const std::string& element);

  /// Rehydrates a handle from a persisted id.
  Result<DynamicObject> Lookup(const std::string& id);

  /// All instances of an element.
  Result<std::vector<DynamicObject>> InstancesOf(const std::string& element);

  /// Deletes an instance and its incident triples.
  Status Delete(const DynamicObject& object);

  /// Runs a full conformance check of the store against the schema.
  store::ConformanceReport Check() const;

  /// \name Persistence: save/load the whole store through TRIM's XML form.
  /// @{
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);
  /// @}

 private:
  friend class DynamicObject;

  /// Validates that `connector` is declared on `element` and returns it.
  Result<const store::SchemaConnectorDef*> RequireConnector(
      const std::string& element, const std::string& connector) const;
  /// True iff the connector's range is a literal construct of the model.
  bool RangeIsLiteral(const store::SchemaConnectorDef& c) const;

  trim::TripleStore* store_;
  store::SchemaDef schema_;
  store::ModelDef model_;
  store::InstanceGraph instances_;
};

}  // namespace slim::dmi

#endif  // SLIM_DMI_DYNAMIC_DMI_H_
