#include "dmi/dynamic_dmi.h"

#include "obs/obs.h"
#include "slim/vocabulary.h"
#include "trim/persistence.h"
#include "util/strings.h"

namespace slim::dmi {

using store::SchemaConnectorDef;

// ---------------------------------------------------------------------------
// DynamicObject
// ---------------------------------------------------------------------------

Status DynamicObject::Set(const std::string& attribute,
                          const std::string& value) {
  SLIM_OBS_TIMER(timer, "dmi.attr_write.latency_us");
  Status st = [&]() -> Status {
    if (!valid()) return Status::FailedPrecondition("invalid object handle");
    SLIM_ASSIGN_OR_RETURN(const SchemaConnectorDef* c,
                          dmi_->RequireConnector(element_, attribute));
    if (!dmi_->RangeIsLiteral(*c)) {
      return Status::Conformance("'" + attribute + "' on '" + element_ +
                                 "' is a link connector; use Connect");
    }
    return dmi_->instances_.SetValue(id_, attribute, value);
  }();
  if (st.ok()) {
    SLIM_OBS_COUNT("dmi.attr_write.ok");
  } else {
    SLIM_OBS_COUNT("dmi.attr_write.error");
  }
  return st;
}

Result<std::string> DynamicObject::Get(const std::string& attribute) const {
  SLIM_OBS_TIMER(timer, "dmi.attr_read.latency_us");
  Result<std::string> out = [&]() -> Result<std::string> {
    if (!valid()) return Status::FailedPrecondition("invalid object handle");
    SLIM_RETURN_NOT_OK(dmi_->RequireConnector(element_, attribute).status());
    return dmi_->instances_.GetValue(id_, attribute);
  }();
  if (out.ok()) {
    SLIM_OBS_COUNT("dmi.attr_read.ok");
  } else {
    SLIM_OBS_COUNT("dmi.attr_read.error");
  }
  return out;
}

Status DynamicObject::Connect(const std::string& connector,
                              const DynamicObject& target) {
  Status st = [&]() -> Status {
    if (!valid() || !target.valid()) {
      return Status::FailedPrecondition("invalid object handle");
    }
    SLIM_ASSIGN_OR_RETURN(const SchemaConnectorDef* c,
                          dmi_->RequireConnector(element_, connector));
    if (dmi_->RangeIsLiteral(*c)) {
      return Status::Conformance("'" + connector + "' on '" + element_ +
                                 "' is an attribute; use Set");
    }
    // Range compatibility: exact element or model-level generalization.
    if (target.element_ != c->range) {
      auto tgt_construct = dmi_->schema_.ConstructOf(target.element_);
      auto range_construct = dmi_->schema_.ConstructOf(c->range);
      bool ok = tgt_construct.ok() && range_construct.ok() &&
                dmi_->model_.IsA(tgt_construct.ValueOrDie(),
                                 range_construct.ValueOrDie());
      if (!ok) {
        return Status::Conformance("connector '" + connector +
                                   "' expects a '" + c->range + "', got a '" +
                                   target.element_ + "'");
      }
    }
    // Upper-bound cardinality enforced at write time.
    if (c->max_card != store::kMany) {
      size_t n = dmi_->instances_.GetConnected(id_, connector).size();
      if (static_cast<int>(n) >= c->max_card) {
        return Status::Conformance("connector '" + connector + "' on '" +
                                   id_ + "' already at maximum cardinality " +
                                   std::to_string(c->max_card));
      }
    }
    return dmi_->instances_.Connect(id_, connector, target.id_);
  }();
  if (st.ok()) {
    SLIM_OBS_COUNT("dmi.connect.ok");
  } else {
    SLIM_OBS_COUNT("dmi.connect.error");
  }
  return st;
}

Status DynamicObject::Disconnect(const std::string& connector,
                                 const DynamicObject& target) {
  if (!valid() || !target.valid()) {
    return Status::FailedPrecondition("invalid object handle");
  }
  SLIM_RETURN_NOT_OK(dmi_->RequireConnector(element_, connector).status());
  return dmi_->instances_.Disconnect(id_, connector, target.id_);
}

Result<std::vector<DynamicObject>> DynamicObject::GetConnected(
    const std::string& connector) const {
  if (!valid()) return Status::FailedPrecondition("invalid object handle");
  SLIM_RETURN_NOT_OK(dmi_->RequireConnector(element_, connector).status());
  std::vector<DynamicObject> out;
  for (const std::string& tid :
       dmi_->instances_.GetConnected(id_, connector)) {
    SLIM_ASSIGN_OR_RETURN(DynamicObject obj, dmi_->Lookup(tid));
    out.push_back(std::move(obj));
  }
  return out;
}

// ---------------------------------------------------------------------------
// DynamicDmi
// ---------------------------------------------------------------------------

DynamicDmi::DynamicDmi(trim::TripleStore* store, store::SchemaDef schema,
                       store::ModelDef model)
    : store_(store),
      schema_(std::move(schema)),
      model_(std::move(model)),
      instances_(store) {}

Result<const SchemaConnectorDef*> DynamicDmi::RequireConnector(
    const std::string& element, const std::string& connector) const {
  for (const SchemaConnectorDef* c : schema_.ConnectorsFor(element)) {
    if (c->name == connector) return c;
  }
  return Status::Conformance("no connector '" + connector +
                             "' declared on element '" + element +
                             "' in schema '" + schema_.name() + "'");
}

bool DynamicDmi::RangeIsLiteral(const SchemaConnectorDef& c) const {
  auto kind = model_.FindConstruct(c.range);
  return kind.has_value() && *kind == store::ConstructKind::kLiteralConstruct;
}

Result<DynamicObject> DynamicDmi::Create(const std::string& element) {
  SLIM_OBS_TIMER(timer, "dmi.create.latency_us");
  auto fail = [&element](Status st) {
    SLIM_OBS_COUNT("dmi.create.error");
    SLIM_OBS_LOG(kWarn, "dmi", "interpreted create failed",
                 {{"element", element}, {"status", st.ToString()}});
    return st;
  };
  Result<std::string> construct = schema_.ConstructOf(element);
  if (!construct.ok()) return fail(construct.status());
  Result<std::string> id = instances_.Create(schema_.ElementResource(element));
  if (!id.ok()) return fail(id.status());
  SLIM_OBS_COUNT("dmi.create.ok");
  return DynamicObject(this, std::move(id).ValueOrDie(), element);
}

Result<DynamicObject> DynamicDmi::Lookup(const std::string& id) {
  SLIM_ASSIGN_OR_RETURN(std::string type, instances_.TypeOf(id));
  const std::string prefix = schema_.SchemaResource() + "/";
  if (!StartsWith(type, prefix)) {
    return Status::Conformance("instance '" + id + "' has type '" + type +
                               "', which is outside schema '" +
                               schema_.name() + "'");
  }
  return DynamicObject(this, id, type.substr(prefix.size()));
}

Result<std::vector<DynamicObject>> DynamicDmi::InstancesOf(
    const std::string& element) {
  SLIM_RETURN_NOT_OK(schema_.ConstructOf(element).status());
  std::vector<DynamicObject> out;
  for (const std::string& id :
       instances_.InstancesOf(schema_.ElementResource(element))) {
    out.push_back(DynamicObject(this, id, element));
  }
  return out;
}

Status DynamicDmi::Delete(const DynamicObject& object) {
  if (!object.valid()) {
    SLIM_OBS_COUNT("dmi.delete.error");
    return Status::FailedPrecondition("invalid object handle");
  }
  if (instances_.Delete(object.id()) == 0) {
    SLIM_OBS_COUNT("dmi.delete.error");
    return Status::NotFound("no instance '" + object.id() + "'");
  }
  SLIM_OBS_COUNT("dmi.delete.ok");
  return Status::OK();
}

store::ConformanceReport DynamicDmi::Check() const {
  return store::CheckConformance(*store_, schema_, model_);
}

Status DynamicDmi::Save(const std::string& path) const {
  return trim::SaveStore(*store_, path);
}

Status DynamicDmi::Load(const std::string& path) {
  return trim::LoadStore(path, store_);
}

}  // namespace slim::dmi
