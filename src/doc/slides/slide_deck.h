#ifndef SLIM_DOC_SLIDES_SLIDE_DECK_H_
#define SLIM_DOC_SLIDES_SLIDE_DECK_H_

/// \file slide_deck.h
/// \brief Presentation decks (the "PowerPoint" substitute).
///
/// A deck is an ordered list of slides; each slide holds a title and a set
/// of shapes (text boxes, bullets, images-by-reference). Sub-document
/// addressing is slide index + shape id — the granularity a slide mark
/// needs.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace slim::doc::slides {

/// \brief Kinds of shapes on a slide.
enum class ShapeKind { kTextBox, kBulletList, kImageRef };

/// \brief One shape: an id unique within its slide, geometry, and content.
struct Shape {
  std::string id;          ///< Unique within the slide (e.g. "shape3").
  ShapeKind kind = ShapeKind::kTextBox;
  double x = 0, y = 0;     ///< Top-left position (arbitrary slide units).
  double width = 0, height = 0;
  std::string text;        ///< Text content; image path for kImageRef.
  std::vector<std::string> bullets;  ///< For kBulletList.
};

/// \brief One slide: a title and its shapes.
class Slide {
 public:
  explicit Slide(std::string title) : title_(std::move(title)) {}

  const std::string& title() const { return title_; }
  void set_title(std::string title) { title_ = std::move(title); }

  /// Adds a shape; its id must be unique within the slide.
  Status AddShape(Shape shape);
  /// Finds a shape by id; NotFound if absent.
  Result<const Shape*> FindShape(std::string_view id) const;
  /// Removes a shape by id.
  Status RemoveShape(std::string_view id);

  const std::vector<Shape>& shapes() const { return shapes_; }

  /// All text on the slide (title + shape text + bullets), newline-joined.
  std::string AllText() const;

 private:
  std::string title_;
  std::vector<Shape> shapes_;
};

/// \brief A presentation: file name and ordered slides.
class SlideDeck {
 public:
  SlideDeck() = default;
  explicit SlideDeck(std::string file_name)
      : file_name_(std::move(file_name)) {}

  const std::string& file_name() const { return file_name_; }
  void set_file_name(std::string name) { file_name_ = std::move(name); }

  /// Appends a slide; returns its 0-based index.
  int32_t AddSlide(std::string title);

  size_t slide_count() const { return slides_.size(); }
  Result<Slide*> GetSlide(int32_t index);
  Result<const Slide*> GetSlide(int32_t index) const;

  /// Full-deck text search: returns (slide index, shape id) pairs whose
  /// text contains `term`. A shape id of "" means the slide title matched.
  std::vector<std::pair<int32_t, std::string>> FindText(
      std::string_view term) const;

  /// \name Persistence — line-oriented native format.
  /// @{
  std::string Serialize() const;
  static Result<std::unique_ptr<SlideDeck>> Deserialize(std::string_view text);
  Status SaveToFile(const std::string& path) const;
  static Result<std::unique_ptr<SlideDeck>> LoadFromFile(
      const std::string& path);
  /// @}

 private:
  std::string file_name_;
  std::vector<std::unique_ptr<Slide>> slides_;
};

}  // namespace slim::doc::slides

#endif  // SLIM_DOC_SLIDES_SLIDE_DECK_H_
