#include "doc/slides/slide_deck.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace slim::doc::slides {

namespace {

std::string Escape(std::string_view s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(std::string_view s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out.push_back(s[i] == 'n' ? '\n' : s[i]);
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string_view KindName(ShapeKind k) {
  switch (k) {
    case ShapeKind::kTextBox: return "text";
    case ShapeKind::kBulletList: return "bullets";
    case ShapeKind::kImageRef: return "image";
  }
  return "text";
}

Result<ShapeKind> ParseKind(std::string_view s) {
  if (s == "text") return ShapeKind::kTextBox;
  if (s == "bullets") return ShapeKind::kBulletList;
  if (s == "image") return ShapeKind::kImageRef;
  return Status::ParseError("unknown shape kind '" + std::string(s) + "'");
}

}  // namespace

Status Slide::AddShape(Shape shape) {
  if (shape.id.empty()) {
    return Status::InvalidArgument("shape id is empty");
  }
  for (const Shape& s : shapes_) {
    if (s.id == shape.id) {
      return Status::AlreadyExists("shape '" + shape.id +
                                   "' already exists on slide '" + title_ +
                                   "'");
    }
  }
  shapes_.push_back(std::move(shape));
  return Status::OK();
}

Result<const Shape*> Slide::FindShape(std::string_view id) const {
  for (const Shape& s : shapes_) {
    if (s.id == id) return &s;
  }
  return Status::NotFound("no shape '" + std::string(id) + "' on slide '" +
                          title_ + "'");
}

Status Slide::RemoveShape(std::string_view id) {
  for (auto it = shapes_.begin(); it != shapes_.end(); ++it) {
    if (it->id == id) {
      shapes_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no shape '" + std::string(id) + "' on slide '" +
                          title_ + "'");
}

std::string Slide::AllText() const {
  std::string out = title_;
  for (const Shape& s : shapes_) {
    if (!s.text.empty()) {
      out += '\n';
      out += s.text;
    }
    for (const std::string& b : s.bullets) {
      out += '\n';
      out += b;
    }
  }
  return out;
}

int32_t SlideDeck::AddSlide(std::string title) {
  slides_.push_back(std::make_unique<Slide>(std::move(title)));
  return static_cast<int32_t>(slides_.size() - 1);
}

Result<Slide*> SlideDeck::GetSlide(int32_t index) {
  if (index < 0 || static_cast<size_t>(index) >= slides_.size()) {
    return Status::OutOfRange("slide index " + std::to_string(index) +
                              " (deck has " + std::to_string(slides_.size()) +
                              " slides)");
  }
  return slides_[static_cast<size_t>(index)].get();
}

Result<const Slide*> SlideDeck::GetSlide(int32_t index) const {
  if (index < 0 || static_cast<size_t>(index) >= slides_.size()) {
    return Status::OutOfRange("slide index " + std::to_string(index));
  }
  return static_cast<const Slide*>(slides_[static_cast<size_t>(index)].get());
}

std::vector<std::pair<int32_t, std::string>> SlideDeck::FindText(
    std::string_view term) const {
  std::vector<std::pair<int32_t, std::string>> out;
  if (term.empty()) return out;
  for (size_t i = 0; i < slides_.size(); ++i) {
    const Slide& slide = *slides_[i];
    if (slide.title().find(term) != std::string::npos) {
      out.push_back({static_cast<int32_t>(i), ""});
    }
    for (const Shape& s : slide.shapes()) {
      bool hit = s.text.find(term) != std::string::npos;
      for (const std::string& b : s.bullets) {
        if (b.find(term) != std::string::npos) hit = true;
      }
      if (hit) out.push_back({static_cast<int32_t>(i), s.id});
    }
  }
  return out;
}

std::string SlideDeck::Serialize() const {
  std::ostringstream out;
  out << "SLIMDECK 1\n";
  out << "FILE " << Escape(file_name_) << "\n";
  for (const auto& slide : slides_) {
    out << "SLIDE " << Escape(slide->title()) << "\n";
    for (const Shape& s : slide->shapes()) {
      out << "SHAPE " << s.id << " " << KindName(s.kind) << " " << s.x << " "
          << s.y << " " << s.width << " " << s.height << " " << Escape(s.text)
          << "\n";
      for (const std::string& b : s.bullets) {
        out << "BULLET " << Escape(b) << "\n";
      }
    }
  }
  return out.str();
}

Result<std::unique_ptr<SlideDeck>> SlideDeck::Deserialize(
    std::string_view text) {
  auto deck = std::make_unique<SlideDeck>();
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || Trim(line) != "SLIMDECK 1") {
    return Status::ParseError("missing SLIMDECK header");
  }
  Slide* current_slide = nullptr;
  Shape* current_shape = nullptr;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view lv = line;
    if (Trim(lv).empty()) continue;
    auto fail = [&](const std::string& what) {
      return Status::ParseError("deck line " + std::to_string(line_no) + ": " +
                                what);
    };
    if (StartsWith(lv, "FILE ")) {
      deck->file_name_ = Unescape(lv.substr(5));
    } else if (StartsWith(lv, "SLIDE ")) {
      int32_t idx = deck->AddSlide(Unescape(lv.substr(6)));
      current_slide = deck->slides_[static_cast<size_t>(idx)].get();
      current_shape = nullptr;
    } else if (StartsWith(lv, "SHAPE ")) {
      if (current_slide == nullptr) return fail("SHAPE outside SLIDE");
      std::vector<std::string> parts;
      // id kind x y w h text — text may contain spaces, so split first 6.
      std::string_view rest = lv.substr(6);
      for (int k = 0; k < 6; ++k) {
        size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) return fail("truncated SHAPE");
        parts.emplace_back(rest.substr(0, sp));
        rest.remove_prefix(sp + 1);
      }
      Shape shape;
      shape.id = parts[0];
      SLIM_ASSIGN_OR_RETURN(shape.kind, ParseKind(parts[1]));
      if (!ParseDouble(parts[2], &shape.x) || !ParseDouble(parts[3], &shape.y) ||
          !ParseDouble(parts[4], &shape.width) ||
          !ParseDouble(parts[5], &shape.height)) {
        return fail("bad geometry");
      }
      shape.text = Unescape(rest);
      SLIM_RETURN_NOT_OK(current_slide->AddShape(std::move(shape)));
      // Obtain a stable pointer to the just-added shape for BULLET lines.
      current_shape = const_cast<Shape*>(
          current_slide->FindShape(parts[0]).ValueOrDie());
    } else if (StartsWith(lv, "BULLET ")) {
      if (current_shape == nullptr) return fail("BULLET outside SHAPE");
      current_shape->bullets.push_back(Unescape(lv.substr(7)));
    } else {
      return fail("unrecognized record");
    }
  }
  return deck;
}

Status SlideDeck::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << Serialize();
  if (!out.good()) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::unique_ptr<SlideDeck>> SlideDeck::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  SLIM_ASSIGN_OR_RETURN(std::unique_ptr<SlideDeck> deck,
                        Deserialize(buf.str()));
  if (deck->file_name().empty()) deck->set_file_name(path);
  return deck;
}

}  // namespace slim::doc::slides
