#include "doc/html/html.h"

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include "util/strings.h"

namespace slim::doc::html {

namespace {

const std::set<std::string>& VoidElements() {
  static const std::set<std::string> kVoid = {
      "area", "base", "br", "col", "embed", "hr", "img",
      "input", "link", "meta", "param", "source", "track", "wbr"};
  return kVoid;
}

// Elements whose open instance is implicitly closed when the same (or a
// sibling-kind) tag opens.
bool ImplicitlyCloses(const std::string& open, const std::string& incoming) {
  auto any = [&](std::initializer_list<const char*> names) {
    for (const char* n : names) {
      if (incoming == n) return true;
    }
    return false;
  };
  if (open == "p") {
    return any({"p", "div", "ul", "ol", "li", "table", "h1", "h2", "h3", "h4",
                "h5", "h6", "blockquote", "pre", "section", "article"});
  }
  if (open == "li") return any({"li"});
  if (open == "dt" || open == "dd") return any({"dt", "dd"});
  if (open == "tr") return any({"tr"});
  if (open == "td" || open == "th") return any({"td", "th", "tr"});
  if (open == "option") return any({"option", "optgroup"});
  if (open == "thead" || open == "tbody" || open == "tfoot") {
    return any({"thead", "tbody", "tfoot"});
  }
  return false;
}

void DecodeEntitiesInto(std::string_view raw, std::string* out) {
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      out->push_back(raw[i]);
      continue;
    }
    size_t semi = raw.find(';', i);
    // Tolerant: a '&' without a nearby ';' is literal text.
    if (semi == std::string_view::npos || semi - i > 10) {
      out->push_back('&');
      continue;
    }
    std::string_view ent = raw.substr(i + 1, semi - i - 1);
    if (ent == "lt") *out += '<';
    else if (ent == "gt") *out += '>';
    else if (ent == "amp") *out += '&';
    else if (ent == "quot") *out += '"';
    else if (ent == "apos") *out += '\'';
    else if (ent == "nbsp") *out += ' ';
    else if (!ent.empty() && ent[0] == '#') {
      uint32_t cp = 0;
      bool ok = true;
      if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
        for (size_t k = 2; k < ent.size() && ok; ++k) {
          char c = ent[k];
          if (std::isxdigit(static_cast<unsigned char>(c))) {
            cp = cp * 16 + static_cast<uint32_t>(
                               std::isdigit(static_cast<unsigned char>(c))
                                   ? c - '0'
                                   : std::tolower(c) - 'a' + 10);
          } else {
            ok = false;
          }
        }
        ok = ok && ent.size() > 2;
      } else {
        for (size_t k = 1; k < ent.size() && ok; ++k) {
          if (std::isdigit(static_cast<unsigned char>(ent[k]))) {
            cp = cp * 10 + static_cast<uint32_t>(ent[k] - '0');
          } else {
            ok = false;
          }
        }
        ok = ok && ent.size() > 1;
      }
      if (ok && cp > 0 && cp <= 0x10FFFF) {
        if (cp < 0x80) {
          out->push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
          out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
          out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
          out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
          out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
        i = semi;
        continue;
      }
      out->push_back('&');
      continue;
    } else {
      // Unknown entity: keep it literally.
      out->push_back('&');
      continue;
    }
    i = semi;
  }
}

class HtmlParser {
 public:
  explicit HtmlParser(std::string_view src) : src_(src) {}

  std::unique_ptr<xml::Document> Run() {
    auto doc = std::make_unique<xml::Document>();
    auto root = std::make_unique<xml::Element>("html");
    root_ = root.get();
    stack_.push_back(root_);
    Parse();
    doc->set_root(std::move(root));
    return doc;
  }

 private:
  xml::Element* Top() { return stack_.back(); }

  void FlushText() {
    if (pending_text_.empty()) return;
    std::string decoded;
    DecodeEntitiesInto(pending_text_, &decoded);
    // Collapse pure-whitespace runs outside <pre>.
    if (!Trim(decoded).empty()) {
      Top()->AddText(std::move(decoded));
    }
    pending_text_.clear();
  }

  void Parse() {
    while (i_ < src_.size()) {
      char c = src_[i_];
      if (c != '<') {
        pending_text_.push_back(c);
        ++i_;
        continue;
      }
      // Comment?
      if (src_.substr(i_).substr(0, 4) == "<!--") {
        FlushText();
        size_t end = src_.find("-->", i_ + 4);
        i_ = (end == std::string_view::npos) ? src_.size() : end + 3;
        continue;
      }
      // Doctype / other declarations?
      if (i_ + 1 < src_.size() && (src_[i_ + 1] == '!' || src_[i_ + 1] == '?')) {
        FlushText();
        size_t end = src_.find('>', i_);
        i_ = (end == std::string_view::npos) ? src_.size() : end + 1;
        continue;
      }
      // End tag?
      if (i_ + 1 < src_.size() && src_[i_ + 1] == '/') {
        FlushText();
        size_t end = src_.find('>', i_);
        if (end == std::string_view::npos) {
          i_ = src_.size();
          break;
        }
        std::string name =
            ToLower(Trim(src_.substr(i_ + 2, end - i_ - 2)));
        i_ = end + 1;
        CloseTag(name);
        continue;
      }
      // Start tag?
      if (i_ + 1 < src_.size() &&
          (std::isalpha(static_cast<unsigned char>(src_[i_ + 1])))) {
        FlushText();
        ParseStartTag();
        continue;
      }
      // Literal '<'.
      pending_text_.push_back('<');
      ++i_;
    }
    FlushText();
  }

  void ParseStartTag() {
    ++i_;  // '<'
    size_t name_start = i_;
    while (i_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[i_])) ||
            src_[i_] == '-' || src_[i_] == ':')) {
      ++i_;
    }
    std::string name = ToLower(src_.substr(name_start, i_ - name_start));

    // Attributes.
    std::vector<xml::Attribute> attrs;
    bool self_closing = false;
    while (i_ < src_.size() && src_[i_] != '>') {
      if (std::isspace(static_cast<unsigned char>(src_[i_]))) {
        ++i_;
        continue;
      }
      if (src_[i_] == '/') {
        self_closing = true;
        ++i_;
        continue;
      }
      // Attribute name.
      size_t astart = i_;
      while (i_ < src_.size() && src_[i_] != '=' && src_[i_] != '>' &&
             src_[i_] != '/' &&
             !std::isspace(static_cast<unsigned char>(src_[i_]))) {
        ++i_;
      }
      std::string aname = ToLower(src_.substr(astart, i_ - astart));
      std::string avalue;
      while (i_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[i_]))) {
        ++i_;
      }
      if (i_ < src_.size() && src_[i_] == '=') {
        ++i_;
        while (i_ < src_.size() &&
               std::isspace(static_cast<unsigned char>(src_[i_]))) {
          ++i_;
        }
        if (i_ < src_.size() && (src_[i_] == '"' || src_[i_] == '\'')) {
          char quote = src_[i_++];
          size_t vstart = i_;
          while (i_ < src_.size() && src_[i_] != quote) ++i_;
          std::string decoded;
          DecodeEntitiesInto(src_.substr(vstart, i_ - vstart), &decoded);
          avalue = std::move(decoded);
          if (i_ < src_.size()) ++i_;
        } else {
          size_t vstart = i_;
          while (i_ < src_.size() && src_[i_] != '>' &&
                 !std::isspace(static_cast<unsigned char>(src_[i_]))) {
            ++i_;
          }
          avalue = std::string(src_.substr(vstart, i_ - vstart));
        }
      }
      if (!aname.empty()) attrs.push_back({std::move(aname), std::move(avalue)});
    }
    if (i_ < src_.size()) ++i_;  // '>'

    if (name.empty()) return;

    // An explicit <html> at top level merges with the synthetic root
    // instead of nesting a second html element.
    if (name == "html" && Top() == root_) {
      for (auto& a : attrs) root_->SetAttribute(a.name, std::move(a.value));
      return;
    }

    // Implied end tags.
    while (stack_.size() > 1 && ImplicitlyCloses(Top()->name(), name)) {
      stack_.pop_back();
    }

    xml::Element* elem = Top()->AddElement(name);
    for (auto& a : attrs) elem->SetAttribute(a.name, std::move(a.value));

    bool is_void = VoidElements().count(name) > 0;
    if (is_void || self_closing) return;

    // Raw-text elements: scoop everything up to the matching close tag.
    if (name == "script" || name == "style") {
      std::string close = "</" + name;
      size_t end = i_;
      while (true) {
        end = src_.find(close, end);
        if (end == std::string_view::npos) {
          end = src_.size();
          break;
        }
        size_t after = end + close.size();
        if (after >= src_.size() || src_[after] == '>' ||
            std::isspace(static_cast<unsigned char>(src_[after]))) {
          break;
        }
        ++end;
      }
      std::string raw(src_.substr(i_, end - i_));
      if (!Trim(raw).empty()) elem->AddText(std::move(raw));
      if (end < src_.size()) {
        size_t gt = src_.find('>', end);
        i_ = (gt == std::string_view::npos) ? src_.size() : gt + 1;
      } else {
        i_ = src_.size();
      }
      return;
    }

    stack_.push_back(elem);
  }

  void CloseTag(const std::string& name) {
    // Find the nearest matching open element; ignore the close tag if none.
    for (size_t d = stack_.size(); d > 1; --d) {
      if (stack_[d - 1]->name() == name) {
        stack_.resize(d - 1);
        return;
      }
    }
  }

  std::string_view src_;
  size_t i_ = 0;
  xml::Element* root_ = nullptr;
  std::vector<xml::Element*> stack_;
  std::string pending_text_;
};

}  // namespace

std::unique_ptr<xml::Document> ParseHtml(std::string_view text) {
  HtmlParser parser(text);
  return parser.Run();
}

Result<std::unique_ptr<xml::Document>> ParseHtmlFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  return ParseHtml(text);
}

xml::Element* FindById(xml::Document* doc, std::string_view id) {
  if (doc == nullptr || doc->root() == nullptr) return nullptr;
  xml::Element* found = nullptr;
  doc->root()->Visit([&](xml::Element* e) {
    if (found != nullptr) return;
    const std::string* v = e->FindAttribute("id");
    if (v != nullptr && *v == id) found = e;
  });
  return found;
}

xml::Element* FindAnchor(xml::Document* doc, std::string_view anchor) {
  if (doc == nullptr || doc->root() == nullptr) return nullptr;
  xml::Element* found = nullptr;
  doc->root()->Visit([&](xml::Element* e) {
    if (found != nullptr || e->name() != "a") return;
    const std::string* name_attr = e->FindAttribute("name");
    const std::string* id_attr = e->FindAttribute("id");
    if ((name_attr != nullptr && *name_attr == anchor) ||
        (id_attr != nullptr && *id_attr == anchor)) {
      found = e;
    }
  });
  return found;
}

std::vector<xml::Element*> FindByTag(xml::Document* doc,
                                     std::string_view tag) {
  std::vector<xml::Element*> out;
  if (doc == nullptr || doc->root() == nullptr) return out;
  doc->root()->Visit([&](xml::Element* e) {
    if (e->name() == tag) out.push_back(e);
  });
  return out;
}

namespace {
void CollectVisibleText(const xml::Element* e, std::string* out) {
  if (e->name() == "script" || e->name() == "style") return;
  for (const auto& c : e->children()) {
    switch (c->kind()) {
      case xml::NodeKind::kText:
      case xml::NodeKind::kCData:
        *out += static_cast<const xml::CharData*>(c.get())->text();
        *out += ' ';
        break;
      case xml::NodeKind::kElement:
        CollectVisibleText(static_cast<const xml::Element*>(c.get()), out);
        break;
      default:
        break;
    }
  }
}
}  // namespace

std::string VisibleText(const xml::Element* element) {
  std::string raw;
  CollectVisibleText(element, &raw);
  // Collapse whitespace runs.
  std::string out;
  bool in_space = true;
  for (char c : raw) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

}  // namespace slim::doc::html
