#ifndef SLIM_DOC_HTML_HTML_H_
#define SLIM_DOC_HTML_HTML_H_

/// \file html.h
/// \brief Tag-soup-tolerant HTML parsing (the "Internet Explorer"
/// substitute's document model).
///
/// Real-world HTML (the paper demonstrates marks into web pages) is rarely
/// well-formed, so this parser is forgiving: case-insensitive tag names
/// (normalized to lowercase), void elements, unquoted and bare attributes,
/// implied end tags for <p>/<li>/<td>/<tr>/..., raw-text <script>/<style>,
/// unknown entities passed through literally, and auto-closing at EOF.
/// The result reuses the XML DOM, wrapped in a synthetic <html> root when
/// the input lacks one, so XmlPath addressing works unchanged.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "doc/xml/dom.h"
#include "util/result.h"

namespace slim::doc::html {

/// Parses HTML text. Never fails on malformed markup; IoError-free input
/// always yields a document (worst case: one big text node).
std::unique_ptr<xml::Document> ParseHtml(std::string_view text);

/// Reads and parses an HTML file.
Result<std::unique_ptr<xml::Document>> ParseHtmlFile(const std::string& path);

/// First element with the given `id` attribute, or nullptr.
xml::Element* FindById(xml::Document* doc, std::string_view id);

/// First `<a>` whose `name` or `id` equals `anchor`, or nullptr.
xml::Element* FindAnchor(xml::Document* doc, std::string_view anchor);

/// All elements with the given tag name (lowercase), in document order.
std::vector<xml::Element*> FindByTag(xml::Document* doc,
                                     std::string_view tag);

/// The rendered text of a subtree: descendant text with <script>/<style>
/// contents dropped and whitespace runs collapsed.
std::string VisibleText(const xml::Element* element);

}  // namespace slim::doc::html

#endif  // SLIM_DOC_HTML_HTML_H_
