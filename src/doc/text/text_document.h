#ifndef SLIM_DOC_TEXT_TEXT_DOCUMENT_H_
#define SLIM_DOC_TEXT_TEXT_DOCUMENT_H_

/// \file text_document.h
/// \brief Paragraph-structured text documents (the "Word" substitute).
///
/// A document is an ordered list of paragraphs, each optionally a heading.
/// Sub-document addressing is by TextSpan: paragraph index plus a character
/// range within the paragraph — fine-grained enough for the concordance
/// example of paper §1 ("play-act-scene-line") and for span marks.

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace slim::doc::text {

/// \brief A character range inside one paragraph ([begin, end), 0-based).
struct TextSpan {
  int32_t paragraph = 0;
  int32_t begin = 0;
  int32_t end = 0;

  /// Compact textual form "p<paragraph>:<begin>-<end>" (used inside marks).
  std::string ToString() const;
  /// Parses the ToString form.
  static Result<TextSpan> Parse(std::string_view text);

  friend bool operator==(const TextSpan&, const TextSpan&) = default;
};

/// \brief One paragraph: text plus a heading level (0 = body text).
struct Paragraph {
  std::string text;
  int heading_level = 0;
};

/// \brief A paragraph-structured document.
class TextDocument {
 public:
  TextDocument() = default;
  explicit TextDocument(std::string file_name)
      : file_name_(std::move(file_name)) {}

  const std::string& file_name() const { return file_name_; }
  void set_file_name(std::string name) { file_name_ = std::move(name); }

  /// Appends a paragraph; returns its index.
  int32_t AddParagraph(std::string text, int heading_level = 0);

  /// Inserts a paragraph before `index`; OutOfRange if index > size.
  Status InsertParagraph(int32_t index, std::string text,
                         int heading_level = 0);

  /// Removes a paragraph.
  Status RemoveParagraph(int32_t index);

  /// Replaces the text a span covers with `replacement` (the character
  /// edit a word processor makes). Later spans in the same paragraph
  /// shift; marks holding them may drift — see mark/validator.h.
  Status ReplaceSpan(const TextSpan& span, std::string_view replacement);

  /// Inserts text at a position within a paragraph.
  Status InsertText(int32_t paragraph, int32_t offset, std::string_view text);

  size_t paragraph_count() const { return paragraphs_.size(); }
  const std::vector<Paragraph>& paragraphs() const { return paragraphs_; }

  /// Paragraph accessor with bounds checking.
  Result<const Paragraph*> GetParagraph(int32_t index) const;

  /// True iff the span lies within the document.
  bool IsValidSpan(const TextSpan& span) const;

  /// The text a span covers; OutOfRange for invalid spans.
  Result<std::string> ExtractSpan(const TextSpan& span) const;

  /// The full paragraph containing the span (for context display).
  Result<std::string> SpanContext(const TextSpan& span) const;

  /// Every occurrence of `term` (plain substring match), in document order.
  std::vector<TextSpan> FindAll(std::string_view term,
                                bool case_sensitive = true) const;

  /// Word boundaries of a paragraph as spans (letters/digits/apostrophes
  /// form words).
  std::vector<TextSpan> Words(int32_t paragraph) const;

  /// Total character count across paragraphs.
  size_t TotalChars() const;

  /// \name Persistence — markdown-flavored plain text ("#" headings,
  /// blank-line paragraph separators).
  /// @{
  std::string Serialize() const;
  static std::unique_ptr<TextDocument> Deserialize(std::string_view text);
  Status SaveToFile(const std::string& path) const;
  static Result<std::unique_ptr<TextDocument>> LoadFromFile(
      const std::string& path);
  /// @}

 private:
  std::string file_name_;
  std::vector<Paragraph> paragraphs_;
};

}  // namespace slim::doc::text

#endif  // SLIM_DOC_TEXT_TEXT_DOCUMENT_H_
