#include "doc/text/text_document.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace slim::doc::text {

std::string TextSpan::ToString() const {
  return "p" + std::to_string(paragraph) + ":" + std::to_string(begin) + "-" +
         std::to_string(end);
}

Result<TextSpan> TextSpan::Parse(std::string_view text) {
  std::string_view s = Trim(text);
  if (s.empty() || s[0] != 'p') {
    return Status::ParseError("text span must start with 'p': '" +
                              std::string(text) + "'");
  }
  size_t colon = s.find(':');
  size_t dash = s.find('-', colon == std::string_view::npos ? 0 : colon);
  if (colon == std::string_view::npos || dash == std::string_view::npos) {
    return Status::ParseError("malformed text span '" + std::string(text) +
                              "'");
  }
  long long para = 0, begin = 0, end = 0;
  if (!ParseInt(s.substr(1, colon - 1), &para) ||
      !ParseInt(s.substr(colon + 1, dash - colon - 1), &begin) ||
      !ParseInt(s.substr(dash + 1), &end) || para < 0 || begin < 0 ||
      end < begin) {
    return Status::ParseError("malformed text span '" + std::string(text) +
                              "'");
  }
  return TextSpan{static_cast<int32_t>(para), static_cast<int32_t>(begin),
                  static_cast<int32_t>(end)};
}

int32_t TextDocument::AddParagraph(std::string text, int heading_level) {
  paragraphs_.push_back({std::move(text), heading_level});
  return static_cast<int32_t>(paragraphs_.size() - 1);
}

Status TextDocument::InsertParagraph(int32_t index, std::string text,
                                     int heading_level) {
  if (index < 0 || static_cast<size_t>(index) > paragraphs_.size()) {
    return Status::OutOfRange("paragraph index " + std::to_string(index));
  }
  paragraphs_.insert(paragraphs_.begin() + index,
                     {std::move(text), heading_level});
  return Status::OK();
}

Status TextDocument::RemoveParagraph(int32_t index) {
  if (index < 0 || static_cast<size_t>(index) >= paragraphs_.size()) {
    return Status::OutOfRange("paragraph index " + std::to_string(index));
  }
  paragraphs_.erase(paragraphs_.begin() + index);
  return Status::OK();
}

Status TextDocument::ReplaceSpan(const TextSpan& span,
                                 std::string_view replacement) {
  if (!IsValidSpan(span)) {
    return Status::OutOfRange("invalid span " + span.ToString());
  }
  std::string& text = paragraphs_[static_cast<size_t>(span.paragraph)].text;
  text.replace(static_cast<size_t>(span.begin),
               static_cast<size_t>(span.end - span.begin),
               std::string(replacement));
  return Status::OK();
}

Status TextDocument::InsertText(int32_t paragraph, int32_t offset,
                                std::string_view text) {
  return ReplaceSpan(TextSpan{paragraph, offset, offset}, text);
}

Result<const Paragraph*> TextDocument::GetParagraph(int32_t index) const {
  if (index < 0 || static_cast<size_t>(index) >= paragraphs_.size()) {
    return Status::OutOfRange("paragraph index " + std::to_string(index) +
                              " (document has " +
                              std::to_string(paragraphs_.size()) +
                              " paragraphs)");
  }
  return &paragraphs_[static_cast<size_t>(index)];
}

bool TextDocument::IsValidSpan(const TextSpan& span) const {
  if (span.paragraph < 0 ||
      static_cast<size_t>(span.paragraph) >= paragraphs_.size()) {
    return false;
  }
  const std::string& text = paragraphs_[static_cast<size_t>(span.paragraph)].text;
  return span.begin >= 0 && span.end >= span.begin &&
         static_cast<size_t>(span.end) <= text.size();
}

Result<std::string> TextDocument::ExtractSpan(const TextSpan& span) const {
  if (!IsValidSpan(span)) {
    return Status::OutOfRange("invalid span " + span.ToString());
  }
  const std::string& text = paragraphs_[static_cast<size_t>(span.paragraph)].text;
  return text.substr(static_cast<size_t>(span.begin),
                     static_cast<size_t>(span.end - span.begin));
}

Result<std::string> TextDocument::SpanContext(const TextSpan& span) const {
  if (!IsValidSpan(span)) {
    return Status::OutOfRange("invalid span " + span.ToString());
  }
  return paragraphs_[static_cast<size_t>(span.paragraph)].text;
}

std::vector<TextSpan> TextDocument::FindAll(std::string_view term,
                                            bool case_sensitive) const {
  std::vector<TextSpan> out;
  if (term.empty()) return out;
  std::string needle = case_sensitive ? std::string(term) : ToLower(term);
  for (size_t p = 0; p < paragraphs_.size(); ++p) {
    std::string hay = case_sensitive ? paragraphs_[p].text
                                     : ToLower(paragraphs_[p].text);
    size_t pos = 0;
    while ((pos = hay.find(needle, pos)) != std::string::npos) {
      out.push_back(TextSpan{static_cast<int32_t>(p),
                             static_cast<int32_t>(pos),
                             static_cast<int32_t>(pos + needle.size())});
      pos += 1;
    }
  }
  return out;
}

std::vector<TextSpan> TextDocument::Words(int32_t paragraph) const {
  std::vector<TextSpan> out;
  if (paragraph < 0 ||
      static_cast<size_t>(paragraph) >= paragraphs_.size()) {
    return out;
  }
  const std::string& text = paragraphs_[static_cast<size_t>(paragraph)].text;
  auto is_word_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '\'';
  };
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !is_word_char(text[i])) ++i;
    size_t begin = i;
    while (i < text.size() && is_word_char(text[i])) ++i;
    if (i > begin) {
      out.push_back(TextSpan{paragraph, static_cast<int32_t>(begin),
                             static_cast<int32_t>(i)});
    }
  }
  return out;
}

size_t TextDocument::TotalChars() const {
  size_t n = 0;
  for (const Paragraph& p : paragraphs_) n += p.text.size();
  return n;
}

std::string TextDocument::Serialize() const {
  std::string out;
  for (size_t i = 0; i < paragraphs_.size(); ++i) {
    if (i) out += "\n\n";
    const Paragraph& p = paragraphs_[i];
    for (int h = 0; h < p.heading_level; ++h) out += '#';
    if (p.heading_level > 0) out += ' ';
    out += p.text;
  }
  out += '\n';
  return out;
}

std::unique_ptr<TextDocument> TextDocument::Deserialize(
    std::string_view text) {
  auto doc = std::make_unique<TextDocument>();
  std::string current;
  bool have_current = false;
  auto flush = [&] {
    if (!have_current) return;
    int level = 0;
    std::string_view body = current;
    while (!body.empty() && body[0] == '#') {
      ++level;
      body.remove_prefix(1);
    }
    if (level > 0 && !body.empty() && body[0] == ' ') body.remove_prefix(1);
    if (level > 0) {
      doc->AddParagraph(std::string(body), level);
    } else {
      doc->AddParagraph(current);
    }
    current.clear();
    have_current = false;
  };
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Trim(line).empty()) {
      flush();
      continue;
    }
    if (have_current) current += ' ';
    current += line;
    have_current = true;
  }
  flush();
  return doc;
}

Status TextDocument::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << Serialize();
  if (!out.good()) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::unique_ptr<TextDocument>> TextDocument::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  std::unique_ptr<TextDocument> doc = Deserialize(buf.str());
  doc->set_file_name(path);
  return doc;
}

}  // namespace slim::doc::text
