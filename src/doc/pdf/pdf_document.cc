#include "doc/pdf/pdf_document.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace slim::doc::pdf {

std::string Rect::ToString() const {
  return FormatNumber(x) + "," + FormatNumber(y) + "," + FormatNumber(width) +
         "," + FormatNumber(height);
}

Result<Rect> Rect::Parse(std::string_view text) {
  std::vector<std::string> parts = Split(text, ',');
  if (parts.size() != 4) {
    return Status::ParseError("rect must have 4 fields: '" +
                              std::string(text) + "'");
  }
  Rect r;
  if (!ParseDouble(parts[0], &r.x) || !ParseDouble(parts[1], &r.y) ||
      !ParseDouble(parts[2], &r.width) || !ParseDouble(parts[3], &r.height) ||
      r.width < 0 || r.height < 0) {
    return Status::ParseError("malformed rect '" + std::string(text) + "'");
  }
  return r;
}

Result<const Page*> PdfDocument::GetPage(int32_t index) const {
  if (index < 0 || static_cast<size_t>(index) >= pages_.size()) {
    return Status::OutOfRange("page " + std::to_string(index) +
                              " (document has " +
                              std::to_string(pages_.size()) + " pages)");
  }
  return &pages_[static_cast<size_t>(index)];
}

int32_t PdfDocument::AddPage(double width, double height) {
  Page p;
  p.width = width;
  p.height = height;
  pages_.push_back(std::move(p));
  return static_cast<int32_t>(pages_.size() - 1);
}

Status PdfDocument::AddTextObject(int32_t page, TextObject object) {
  if (page < 0 || static_cast<size_t>(page) >= pages_.size()) {
    return Status::OutOfRange("page " + std::to_string(page));
  }
  pages_[static_cast<size_t>(page)].objects.push_back(std::move(object));
  return Status::OK();
}

std::unique_ptr<PdfDocument> PdfDocument::BuildFromParagraphs(
    const std::vector<std::string>& paragraphs, const LayoutOptions& opt) {
  auto doc = std::make_unique<PdfDocument>();
  double text_width = opt.page_width - 2 * opt.margin;
  size_t chars_per_line =
      static_cast<size_t>(std::max(1.0, text_width / opt.char_width));

  int32_t page = doc->AddPage(opt.page_width, opt.page_height);
  double y = opt.margin;
  auto emit_line = [&](const std::string& line) {
    if (y + opt.line_height > opt.page_height - opt.margin) {
      page = doc->AddPage(opt.page_width, opt.page_height);
      y = opt.margin;
    }
    TextObject obj;
    obj.box = Rect{opt.margin, y,
                   static_cast<double>(line.size()) * opt.char_width,
                   opt.line_height};
    obj.text = line;
    obj.font_size = opt.font_size;
    doc->pages_[static_cast<size_t>(page)].objects.push_back(std::move(obj));
    y += opt.line_height;
  };

  for (const std::string& para : paragraphs) {
    // Greedy word wrap.
    std::string line;
    for (const std::string& word : SplitSkipEmpty(para, ' ')) {
      if (!line.empty() && line.size() + 1 + word.size() > chars_per_line) {
        emit_line(line);
        line.clear();
      }
      if (!line.empty()) line += ' ';
      line += word;
      // Hard-break pathologically long words.
      while (line.size() > chars_per_line) {
        emit_line(line.substr(0, chars_per_line));
        line = line.substr(chars_per_line);
      }
    }
    if (!line.empty()) emit_line(line);
    y += opt.line_height / 2;  // paragraph gap
  }
  return doc;
}

Result<std::vector<const TextObject*>> PdfDocument::ObjectsInRegion(
    int32_t page, const Rect& region) const {
  SLIM_ASSIGN_OR_RETURN(const Page* p, GetPage(page));
  std::vector<const TextObject*> out;
  for (const TextObject& obj : p->objects) {
    if (obj.box.Intersects(region)) out.push_back(&obj);
  }
  return out;
}

Result<std::string> PdfDocument::ExtractRegionText(int32_t page,
                                                   const Rect& region) const {
  SLIM_ASSIGN_OR_RETURN(std::vector<const TextObject*> objs,
                        ObjectsInRegion(page, region));
  std::string out;
  for (size_t i = 0; i < objs.size(); ++i) {
    if (i) out += '\n';
    out += objs[i]->text;
  }
  return out;
}

std::vector<std::pair<int32_t, int32_t>> PdfDocument::FindText(
    std::string_view term) const {
  std::vector<std::pair<int32_t, int32_t>> out;
  if (term.empty()) return out;
  for (size_t p = 0; p < pages_.size(); ++p) {
    for (size_t o = 0; o < pages_[p].objects.size(); ++o) {
      if (pages_[p].objects[o].text.find(term) != std::string::npos) {
        out.push_back({static_cast<int32_t>(p), static_cast<int32_t>(o)});
      }
    }
  }
  return out;
}

Result<Rect> PdfDocument::ObjectBox(int32_t page, int32_t object_index) const {
  SLIM_ASSIGN_OR_RETURN(const Page* p, GetPage(page));
  if (object_index < 0 ||
      static_cast<size_t>(object_index) >= p->objects.size()) {
    return Status::OutOfRange("object " + std::to_string(object_index) +
                              " on page " + std::to_string(page));
  }
  return p->objects[static_cast<size_t>(object_index)].box;
}

namespace {
std::string Escape(std::string_view s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}
std::string Unescape(std::string_view s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out.push_back(s[i] == 'n' ? '\n' : s[i]);
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}
}  // namespace

std::string PdfDocument::Serialize() const {
  std::ostringstream out;
  out << "SLIMPDF 1\n";
  out << "FILE " << Escape(file_name_) << "\n";
  for (const Page& p : pages_) {
    out << "PAGE " << FormatNumber(p.width) << " " << FormatNumber(p.height)
        << "\n";
    for (const TextObject& obj : p.objects) {
      out << "TEXT " << obj.box.ToString() << " " << FormatNumber(obj.font_size)
          << " " << Escape(obj.text) << "\n";
    }
  }
  return out.str();
}

Result<std::unique_ptr<PdfDocument>> PdfDocument::Deserialize(
    std::string_view text) {
  auto doc = std::make_unique<PdfDocument>();
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || Trim(line) != "SLIMPDF 1") {
    return Status::ParseError("missing SLIMPDF header");
  }
  int32_t current_page = -1;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view lv = line;
    if (Trim(lv).empty()) continue;
    auto fail = [&](const std::string& what) {
      return Status::ParseError("pdf line " + std::to_string(line_no) + ": " +
                                what);
    };
    if (StartsWith(lv, "FILE ")) {
      doc->file_name_ = Unescape(lv.substr(5));
    } else if (StartsWith(lv, "PAGE ")) {
      std::vector<std::string> parts = SplitSkipEmpty(lv.substr(5), ' ');
      if (parts.size() != 2) return fail("PAGE needs width height");
      double w, h;
      if (!ParseDouble(parts[0], &w) || !ParseDouble(parts[1], &h)) {
        return fail("bad page size");
      }
      current_page = doc->AddPage(w, h);
    } else if (StartsWith(lv, "TEXT ")) {
      if (current_page < 0) return fail("TEXT outside PAGE");
      std::string_view rest = lv.substr(5);
      size_t sp1 = rest.find(' ');
      if (sp1 == std::string_view::npos) return fail("truncated TEXT");
      SLIM_ASSIGN_OR_RETURN(Rect box, Rect::Parse(rest.substr(0, sp1)));
      rest.remove_prefix(sp1 + 1);
      size_t sp2 = rest.find(' ');
      if (sp2 == std::string_view::npos) return fail("truncated TEXT");
      double font_size;
      if (!ParseDouble(rest.substr(0, sp2), &font_size)) {
        return fail("bad font size");
      }
      TextObject obj;
      obj.box = box;
      obj.font_size = font_size;
      obj.text = Unescape(rest.substr(sp2 + 1));
      SLIM_RETURN_NOT_OK(doc->AddTextObject(current_page, std::move(obj)));
    } else {
      return fail("unrecognized record");
    }
  }
  return doc;
}

Status PdfDocument::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << Serialize();
  if (!out.good()) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::unique_ptr<PdfDocument>> PdfDocument::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  SLIM_ASSIGN_OR_RETURN(std::unique_ptr<PdfDocument> doc,
                        Deserialize(buf.str()));
  if (doc->file_name().empty()) doc->set_file_name(path);
  return doc;
}

}  // namespace slim::doc::pdf
