#ifndef SLIM_DOC_PDF_PDF_DOCUMENT_H_
#define SLIM_DOC_PDF_PDF_DOCUMENT_H_

/// \file pdf_document.h
/// \brief Paginated, position-laid-out documents (the "Adobe PDF"
/// substitute).
///
/// Real PDFs address content by page plus geometry. We simulate exactly
/// that: a PdfDocument is a sequence of fixed-size pages carrying text
/// objects with bounding rectangles, produced by a simple line-breaking
/// layout engine. A PDF mark addresses a page plus a rectangular region;
/// resolution returns the text objects intersecting the region — the same
/// code path Acrobat's "go to page / highlight area" automation exercises.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace slim::doc::pdf {

/// \brief An axis-aligned rectangle in page coordinates (origin top-left,
/// units are points).
struct Rect {
  double x = 0, y = 0, width = 0, height = 0;

  bool Intersects(const Rect& other) const {
    return x < other.x + other.width && other.x < x + width &&
           y < other.y + other.height && other.y < y + height;
  }
  /// "x,y,w,h" form used inside marks.
  std::string ToString() const;
  static Result<Rect> Parse(std::string_view text);

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// \brief One positioned run of text on a page.
struct TextObject {
  Rect box;
  std::string text;
  double font_size = 10;
};

/// \brief One page: size plus text objects in layout order.
struct Page {
  double width = 612;   ///< US-Letter points.
  double height = 792;
  std::vector<TextObject> objects;
};

/// \brief Layout parameters for BuildFromParagraphs.
struct LayoutOptions {
  double page_width = 612;
  double page_height = 792;
  double margin = 72;
  double font_size = 10;
  double char_width = 6;    ///< Monospaced advance per character.
  double line_height = 14;
};

/// \brief A simulated PDF document.
class PdfDocument {
 public:
  PdfDocument() = default;
  explicit PdfDocument(std::string file_name)
      : file_name_(std::move(file_name)) {}

  const std::string& file_name() const { return file_name_; }
  void set_file_name(std::string name) { file_name_ = std::move(name); }

  size_t page_count() const { return pages_.size(); }
  const std::vector<Page>& pages() const { return pages_; }
  Result<const Page*> GetPage(int32_t index) const;

  /// Appends an empty page with the given size; returns its index.
  int32_t AddPage(double width = 612, double height = 792);

  /// Appends a text object to a page.
  Status AddTextObject(int32_t page, TextObject object);

  /// Lays paragraphs out into pages: greedy word wrapping at the text
  /// width, one text object per line, page breaks at the bottom margin.
  static std::unique_ptr<PdfDocument> BuildFromParagraphs(
      const std::vector<std::string>& paragraphs,
      const LayoutOptions& options = {});

  /// Text objects on `page` intersecting `region`, in layout order.
  Result<std::vector<const TextObject*>> ObjectsInRegion(
      int32_t page, const Rect& region) const;

  /// Concatenated text of a region (line per object).
  Result<std::string> ExtractRegionText(int32_t page, const Rect& region) const;

  /// Finds `term` across pages; returns (page, object index) pairs.
  std::vector<std::pair<int32_t, int32_t>> FindText(
      std::string_view term) const;

  /// Bounding box of the object at (page, object index).
  Result<Rect> ObjectBox(int32_t page, int32_t object_index) const;

  /// \name Persistence — line-oriented native format.
  /// @{
  std::string Serialize() const;
  static Result<std::unique_ptr<PdfDocument>> Deserialize(
      std::string_view text);
  Status SaveToFile(const std::string& path) const;
  static Result<std::unique_ptr<PdfDocument>> LoadFromFile(
      const std::string& path);
  /// @}

 private:
  std::string file_name_;
  std::vector<Page> pages_;
};

}  // namespace slim::doc::pdf

#endif  // SLIM_DOC_PDF_PDF_DOCUMENT_H_
