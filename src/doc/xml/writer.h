#ifndef SLIM_DOC_XML_WRITER_H_
#define SLIM_DOC_XML_WRITER_H_

/// \file writer.h
/// \brief XML serialization (escaping + optional pretty printing).

#include <string>

#include "doc/xml/dom.h"
#include "util/status.h"

namespace slim::doc::xml {

/// \brief Serialization options.
struct WriteOptions {
  /// Indent nested elements; text-only elements stay on one line.
  bool pretty = true;
  /// Indent width when pretty printing.
  int indent = 2;
  /// Emit the `<?xml version="1.0" encoding="UTF-8"?>` declaration.
  bool declaration = true;
};

/// Escapes the five XML special characters for text content.
std::string EscapeText(std::string_view s);

/// Escapes text for use inside a double-quoted attribute value.
std::string EscapeAttribute(std::string_view s);

/// Serializes a document to XML text.
std::string WriteXml(const Document& doc, const WriteOptions& options = {});

/// Serializes a single element subtree.
std::string WriteXml(const Element& elem, const WriteOptions& options = {});

/// Writes a document to a file.
Status WriteXmlFile(const Document& doc, const std::string& path,
                    const WriteOptions& options = {});

}  // namespace slim::doc::xml

#endif  // SLIM_DOC_XML_WRITER_H_
