#include "doc/xml/parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace slim::doc::xml {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

// Appends a Unicode code point as UTF-8.
void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

class XmlParser {
 public:
  XmlParser(std::string_view src, const ParseOptions& options)
      : src_(src), options_(options) {}

  Result<std::unique_ptr<Document>> Run() {
    SLIM_RETURN_NOT_OK(SkipProlog());
    SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Element> root, ParseElement());
    // Trailing misc (comments, PIs, whitespace).
    while (i_ < src_.size()) {
      if (std::isspace(static_cast<unsigned char>(src_[i_]))) {
        ++i_;
      } else if (Lookahead("<!--")) {
        SLIM_RETURN_NOT_OK(SkipComment());
      } else if (Lookahead("<?")) {
        SLIM_RETURN_NOT_OK(SkipUntil("?>"));
      } else {
        return Error("content after document element");
      }
    }
    auto doc = std::make_unique<Document>();
    doc->set_root(std::move(root));
    return doc;
  }

 private:
  Status Error(const std::string& what) const {
    size_t line = 1, col = 1;
    for (size_t j = 0; j < i_ && j < src_.size(); ++j) {
      if (src_[j] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Status::ParseError("XML " + std::to_string(line) + ":" +
                              std::to_string(col) + ": " + what);
  }

  bool Lookahead(std::string_view s) const {
    return src_.substr(i_).substr(0, s.size()) == s;
  }

  Status Expect(std::string_view s) {
    if (!Lookahead(s)) {
      return Error("expected '" + std::string(s) + "'");
    }
    i_ += s.size();
    return Status::OK();
  }

  void SkipSpace() {
    while (i_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[i_]))) {
      ++i_;
    }
  }

  Status SkipUntil(std::string_view terminator) {
    size_t pos = src_.find(terminator, i_);
    if (pos == std::string_view::npos) {
      return Error("unterminated construct (missing '" +
                   std::string(terminator) + "')");
    }
    i_ = pos + terminator.size();
    return Status::OK();
  }

  Status SkipComment() {
    i_ += 4;  // "<!--"
    return SkipUntil("-->");
  }

  Status SkipProlog() {
    while (i_ < src_.size()) {
      SkipSpace();
      if (Lookahead("<?")) {
        SLIM_RETURN_NOT_OK(SkipUntil("?>"));
      } else if (Lookahead("<!--")) {
        SLIM_RETURN_NOT_OK(SkipComment());
      } else if (Lookahead("<!DOCTYPE")) {
        // Skip to matching '>' (internal subsets with nested brackets).
        int depth = 0;
        while (i_ < src_.size()) {
          char c = src_[i_++];
          if (c == '[') ++depth;
          else if (c == ']') --depth;
          else if (c == '>' && depth == 0) break;
        }
      } else {
        return Status::OK();
      }
    }
    return Error("no document element");
  }

  Result<std::string> ParseName() {
    if (i_ >= src_.size() || !IsNameStart(src_[i_])) {
      return Error("expected a name");
    }
    size_t start = i_;
    while (i_ < src_.size() && IsNameChar(src_[i_])) ++i_;
    return std::string(src_.substr(start, i_ - start));
  }

  // Decodes entity/char references in `raw` into plain text.
  Result<std::string> DecodeText(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t j = 0; j < raw.size(); ++j) {
      if (raw[j] != '&') {
        out.push_back(raw[j]);
        continue;
      }
      size_t semi = raw.find(';', j);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      std::string_view ent = raw.substr(j + 1, semi - j - 1);
      if (ent == "lt") out.push_back('<');
      else if (ent == "gt") out.push_back('>');
      else if (ent == "amp") out.push_back('&');
      else if (ent == "quot") out.push_back('"');
      else if (ent == "apos") out.push_back('\'');
      else if (!ent.empty() && ent[0] == '#') {
        uint32_t cp = 0;
        bool ok = false;
        if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
          for (size_t k = 2; k < ent.size(); ++k) {
            char c = ent[k];
            uint32_t digit;
            if (c >= '0' && c <= '9') digit = static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f') digit = static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') digit = static_cast<uint32_t>(c - 'A' + 10);
            else { ok = false; break; }
            cp = cp * 16 + digit;
            ok = true;
          }
        } else {
          for (size_t k = 1; k < ent.size(); ++k) {
            char c = ent[k];
            if (c < '0' || c > '9') { ok = false; break; }
            cp = cp * 10 + static_cast<uint32_t>(c - '0');
            ok = true;
          }
        }
        if (!ok || cp > 0x10FFFF) {
          return Error("bad character reference '&" + std::string(ent) + ";'");
        }
        AppendUtf8(&out, cp);
      } else {
        return Error("unknown entity '&" + std::string(ent) + ";'");
      }
      j = semi;
    }
    return out;
  }

  Result<std::unique_ptr<Element>> ParseElement() {
    SLIM_RETURN_NOT_OK(Expect("<"));
    SLIM_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto elem = std::make_unique<Element>(name);

    // Attributes.
    while (true) {
      SkipSpace();
      if (i_ >= src_.size()) return Error("unterminated start tag");
      if (Lookahead("/>")) {
        i_ += 2;
        return elem;
      }
      if (Lookahead(">")) {
        ++i_;
        break;
      }
      SLIM_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipSpace();
      SLIM_RETURN_NOT_OK(Expect("="));
      SkipSpace();
      if (i_ >= src_.size() || (src_[i_] != '"' && src_[i_] != '\'')) {
        return Error("attribute value must be quoted");
      }
      char quote = src_[i_++];
      size_t vstart = i_;
      while (i_ < src_.size() && src_[i_] != quote) ++i_;
      if (i_ >= src_.size()) return Error("unterminated attribute value");
      SLIM_ASSIGN_OR_RETURN(std::string value,
                            DecodeText(src_.substr(vstart, i_ - vstart)));
      ++i_;  // closing quote
      if (elem->FindAttribute(attr_name) != nullptr) {
        return Error("duplicate attribute '" + attr_name + "'");
      }
      elem->SetAttribute(attr_name, std::move(value));
    }

    // Content.
    while (true) {
      if (i_ >= src_.size()) {
        return Error("unterminated element '" + name + "'");
      }
      if (Lookahead("</")) {
        i_ += 2;
        SLIM_ASSIGN_OR_RETURN(std::string end_name, ParseName());
        if (end_name != name) {
          return Error("mismatched end tag </" + end_name + "> for <" + name +
                       ">");
        }
        SkipSpace();
        SLIM_RETURN_NOT_OK(Expect(">"));
        return elem;
      }
      if (Lookahead("<!--")) {
        size_t cstart = i_ + 4;
        size_t cend = src_.find("-->", cstart);
        if (cend == std::string_view::npos) return Error("unterminated comment");
        if (options_.keep_comments) {
          elem->AddComment(std::string(src_.substr(cstart, cend - cstart)));
        }
        i_ = cend + 3;
        continue;
      }
      if (Lookahead("<![CDATA[")) {
        size_t cstart = i_ + 9;
        size_t cend = src_.find("]]>", cstart);
        if (cend == std::string_view::npos) return Error("unterminated CDATA");
        elem->AddCData(std::string(src_.substr(cstart, cend - cstart)));
        i_ = cend + 3;
        continue;
      }
      if (Lookahead("<?")) {
        SLIM_RETURN_NOT_OK(SkipUntil("?>"));
        continue;
      }
      if (Lookahead("<")) {
        SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Element> child, ParseElement());
        elem->AddChild(std::move(child));
        continue;
      }
      // Text run.
      size_t tstart = i_;
      while (i_ < src_.size() && src_[i_] != '<') ++i_;
      SLIM_ASSIGN_OR_RETURN(std::string text,
                            DecodeText(src_.substr(tstart, i_ - tstart)));
      if (!options_.strip_whitespace_text || !Trim(text).empty()) {
        elem->AddText(std::move(text));
      }
    }
  }

  std::string_view src_;
  ParseOptions options_;
  size_t i_ = 0;
};

}  // namespace

Result<std::unique_ptr<Document>> ParseXml(std::string_view text,
                                           const ParseOptions& options) {
  XmlParser parser(text, options);
  return parser.Run();
}

Result<std::unique_ptr<Document>> ParseXmlFile(const std::string& path,
                                               const ParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  return ParseXml(text, options);
}

}  // namespace slim::doc::xml
