#ifndef SLIM_DOC_XML_PARSER_H_
#define SLIM_DOC_XML_PARSER_H_

/// \file parser.h
/// \brief Well-formed-XML parser producing a DOM Document.
///
/// Supports: elements, attributes (single/double quoted), text, comments,
/// CDATA sections, the XML declaration and processing instructions (both
/// skipped), DOCTYPE (skipped), the five predefined entities and
/// decimal/hex character references. DTD-defined entities are not supported
/// (a ParseError results).

#include <memory>
#include <string_view>

#include "doc/xml/dom.h"
#include "util/result.h"

namespace slim::doc::xml {

/// \brief Parser options.
struct ParseOptions {
  /// Drop text nodes that contain only whitespace (typical for
  /// pretty-printed documents). Default on.
  bool strip_whitespace_text = true;
  /// Keep comment nodes in the DOM. Default off.
  bool keep_comments = false;
};

/// Parses XML text into a Document.
Result<std::unique_ptr<Document>> ParseXml(std::string_view text,
                                           const ParseOptions& options = {});

/// Reads and parses an XML file.
Result<std::unique_ptr<Document>> ParseXmlFile(const std::string& path,
                                               const ParseOptions& options = {});

}  // namespace slim::doc::xml

#endif  // SLIM_DOC_XML_PARSER_H_
