#include "doc/xml/writer.h"

#include <fstream>

namespace slim::doc::xml {

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\n': out += "&#10;"; break;
      case '\t': out += "&#9;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

bool HasElementChildren(const Element& e) {
  for (const auto& c : e.children()) {
    if (c->kind() == NodeKind::kElement) return true;
  }
  return false;
}

void WriteElement(const Element& e, const WriteOptions& opt, int depth,
                  std::string* out) {
  std::string pad =
      opt.pretty ? std::string(static_cast<size_t>(depth * opt.indent), ' ')
                 : "";
  *out += pad;
  *out += '<';
  *out += e.name();
  for (const Attribute& a : e.attributes()) {
    *out += ' ';
    *out += a.name;
    *out += "=\"";
    *out += EscapeAttribute(a.value);
    *out += '"';
  }
  if (e.children().empty()) {
    *out += "/>";
    if (opt.pretty) *out += '\n';
    return;
  }
  *out += '>';

  bool block = HasElementChildren(e);
  if (opt.pretty && block) *out += '\n';
  for (const auto& c : e.children()) {
    switch (c->kind()) {
      case NodeKind::kElement:
        WriteElement(*static_cast<const Element*>(c.get()), opt, depth + 1,
                     out);
        break;
      case NodeKind::kText: {
        const auto* t = static_cast<const CharData*>(c.get());
        if (opt.pretty && block) {
          *out += std::string(static_cast<size_t>((depth + 1) * opt.indent),
                              ' ');
        }
        *out += EscapeText(t->text());
        if (opt.pretty && block) *out += '\n';
        break;
      }
      case NodeKind::kCData: {
        const auto* t = static_cast<const CharData*>(c.get());
        if (opt.pretty && block) {
          *out += std::string(static_cast<size_t>((depth + 1) * opt.indent),
                              ' ');
        }
        *out += "<![CDATA[";
        *out += t->text();
        *out += "]]>";
        if (opt.pretty && block) *out += '\n';
        break;
      }
      case NodeKind::kComment: {
        const auto* t = static_cast<const CharData*>(c.get());
        if (opt.pretty && block) {
          *out += std::string(static_cast<size_t>((depth + 1) * opt.indent),
                              ' ');
        }
        *out += "<!--";
        *out += t->text();
        *out += "-->";
        if (opt.pretty && block) *out += '\n';
        break;
      }
    }
  }
  if (opt.pretty && block) *out += pad;
  *out += "</";
  *out += e.name();
  *out += '>';
  if (opt.pretty) *out += '\n';
}

}  // namespace

std::string WriteXml(const Element& elem, const WriteOptions& options) {
  std::string out;
  WriteElement(elem, options, 0, &out);
  return out;
}

std::string WriteXml(const Document& doc, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (options.pretty) out += '\n';
  }
  if (doc.root() != nullptr) {
    WriteElement(*doc.root(), options, 0, &out);
  }
  return out;
}

Status WriteXmlFile(const Document& doc, const std::string& path,
                    const WriteOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << WriteXml(doc, options);
  if (!out.good()) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace slim::doc::xml
