#include "doc/xml/path.h"

#include <algorithm>

#include "util/strings.h"

namespace slim::doc::xml {

namespace {

// Parses one step body (after the name): "", "[n]" or "[@a='v']".
Status ParsePredicate(std::string_view pred, PathStep* step,
                      const std::string& full) {
  if (pred.empty()) return Status::OK();
  if (pred.front() != '[' || pred.back() != ']') {
    return Status::ParseError("malformed predicate in step of '" + full +
                              "'");
  }
  std::string_view body = pred.substr(1, pred.size() - 2);
  if (!body.empty() && body[0] == '@') {
    size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError("attribute predicate needs '=' in '" + full +
                                "'");
    }
    std::string_view name = body.substr(1, eq - 1);
    std::string_view value = body.substr(eq + 1);
    if (value.size() < 2 ||
        !((value.front() == '\'' && value.back() == '\'') ||
          (value.front() == '"' && value.back() == '"'))) {
      return Status::ParseError(
          "attribute value must be quoted in '" + full + "'");
    }
    if (name.empty()) {
      return Status::ParseError("empty attribute name in '" + full + "'");
    }
    step->attr_name = std::string(name);
    step->attr_value = std::string(value.substr(1, value.size() - 2));
    return Status::OK();
  }
  long long n = 0;
  if (!ParseInt(body, &n) || n < 1) {
    return Status::ParseError("ordinal must be a positive integer in '" +
                              full + "'");
  }
  step->ordinal = static_cast<int>(n);
  return Status::OK();
}

// Candidate children of `parent` for a step (name filter only).
std::vector<Element*> StepChildren(const Element* parent,
                                   const PathStep& step) {
  return step.name == "*" ? parent->ChildElements()
                          : parent->ChildElements(step.name);
}

// Applies a step's predicate to candidates.
std::vector<Element*> ApplyPredicate(std::vector<Element*> candidates,
                                     const PathStep& step) {
  if (step.has_attribute_predicate()) {
    std::vector<Element*> out;
    for (Element* e : candidates) {
      const std::string* v = e->FindAttribute(step.attr_name);
      if (v != nullptr && *v == step.attr_value) out.push_back(e);
    }
    return out;
  }
  if (step.ordinal > 0) {
    if (step.ordinal <= static_cast<int>(candidates.size())) {
      return {candidates[static_cast<size_t>(step.ordinal - 1)]};
    }
    return {};
  }
  return candidates;
}

}  // namespace

Result<XmlPath> XmlPath::Parse(std::string_view text) {
  std::string_view s = Trim(text);
  if (s.empty() || s[0] != '/') {
    return Status::ParseError("path must start with '/': '" +
                              std::string(text) + "'");
  }
  std::vector<PathStep> steps;
  // Split on '/' — but attribute values may not contain '/' in this
  // dialect, so a plain split is safe.
  for (const std::string& part : Split(s.substr(1), '/')) {
    if (part.empty()) {
      return Status::ParseError("empty path step in '" + std::string(text) +
                                "'");
    }
    PathStep step;
    size_t bracket = part.find('[');
    if (bracket == std::string::npos) {
      step.name = part;
    } else {
      step.name = part.substr(0, bracket);
      SLIM_RETURN_NOT_OK(ParsePredicate(
          std::string_view(part).substr(bracket), &step, std::string(text)));
    }
    if (step.name.empty()) {
      return Status::ParseError("empty step name in '" + std::string(text) +
                                "'");
    }
    steps.push_back(std::move(step));
  }
  return XmlPath(std::move(steps));
}

std::string XmlPath::ToString() const {
  std::string out;
  for (const PathStep& step : steps_) {
    out += '/';
    out += step.name;
    if (step.has_attribute_predicate()) {
      out += "[@";
      out += step.attr_name;
      out += "='";
      out += step.attr_value;
      out += "']";
    } else if (step.ordinal > 0) {
      out += '[';
      out += std::to_string(step.ordinal);
      out += ']';
    }
  }
  return out;
}

Result<Element*> XmlPath::Resolve(Document* doc) const {
  if (doc == nullptr || doc->root() == nullptr) {
    return Status::InvalidArgument("null document");
  }
  if (steps_.empty()) return Status::InvalidArgument("empty path");
  for (const PathStep& step : steps_) {
    if (step.name == "*") {
      return Status::InvalidArgument(
          "wildcard step not allowed when resolving an address: '" +
          ToString() + "'");
    }
  }

  const PathStep& first = steps_[0];
  bool root_matches = doc->root()->name() == first.name;
  if (root_matches && first.has_attribute_predicate()) {
    const std::string* v = doc->root()->FindAttribute(first.attr_name);
    root_matches = v != nullptr && *v == first.attr_value;
  }
  if (root_matches && first.ordinal > 1) root_matches = false;
  if (!root_matches) {
    return Status::NotFound("path '" + ToString() +
                            "' does not match document root <" +
                            doc->root()->name() + ">");
  }
  Element* cur = doc->root();
  for (size_t i = 1; i < steps_.size(); ++i) {
    const PathStep& step = steps_[i];
    std::vector<Element*> matches =
        ApplyPredicate(StepChildren(cur, step), step);
    if (matches.empty()) {
      return Status::NotFound("path '" + ToString() + "': step " +
                              std::to_string(i + 1) + " (<" + step.name +
                              ">) not found");
    }
    if (step.has_attribute_predicate() && matches.size() > 1) {
      return Status::FailedPrecondition(
          "path '" + ToString() + "': step " + std::to_string(i + 1) +
          " is ambiguous (" + std::to_string(matches.size()) + " matches)");
    }
    // Unqualified steps default to the first match when resolving.
    cur = matches.front();
  }
  return cur;
}

std::vector<Element*> XmlPath::FindAll(Document* doc) const {
  std::vector<Element*> current;
  if (doc == nullptr || doc->root() == nullptr || steps_.empty()) {
    return current;
  }
  const PathStep& first = steps_[0];
  bool root_matches = (first.name == "*" || first.name == doc->root()->name());
  if (root_matches && first.has_attribute_predicate()) {
    const std::string* v = doc->root()->FindAttribute(first.attr_name);
    root_matches = v != nullptr && *v == first.attr_value;
  }
  if (root_matches && first.ordinal > 1) root_matches = false;
  if (root_matches) current.push_back(doc->root());

  for (size_t i = 1; i < steps_.size() && !current.empty(); ++i) {
    const PathStep& step = steps_[i];
    std::vector<Element*> next;
    for (Element* e : current) {
      std::vector<Element*> matches =
          ApplyPredicate(StepChildren(e, step), step);
      next.insert(next.end(), matches.begin(), matches.end());
    }
    current = std::move(next);
  }
  return current;
}

XmlPath PathOf(const Element* element) {
  std::vector<PathStep> steps;
  for (const Element* e = element; e != nullptr; e = e->parent()) {
    PathStep step;
    step.name = e->name();
    step.ordinal = e->OrdinalAmongSiblings();
    steps.push_back(std::move(step));
  }
  std::reverse(steps.begin(), steps.end());
  return XmlPath(std::move(steps));
}

XmlPath RobustPathOf(const Element* element,
                     const std::vector<std::string>& preferred_attrs) {
  std::vector<PathStep> steps;
  for (const Element* e = element; e != nullptr; e = e->parent()) {
    PathStep step;
    step.name = e->name();

    // Try to find an attribute that uniquely distinguishes `e` among its
    // same-named siblings.
    bool qualified = false;
    std::vector<Element*> siblings =
        e->parent() != nullptr ? e->parent()->ChildElements(e->name())
                               : std::vector<Element*>{};
    for (const std::string& attr : preferred_attrs) {
      const std::string* value = e->FindAttribute(attr);
      if (value == nullptr) continue;
      int matches = 0;
      for (Element* sib : siblings) {
        const std::string* sv = sib->FindAttribute(attr);
        if (sv != nullptr && *sv == *value) ++matches;
      }
      // For the root (no siblings list) the attribute is trivially unique.
      if (siblings.empty() || matches == 1) {
        step.attr_name = attr;
        step.attr_value = *value;
        qualified = true;
        break;
      }
    }
    if (!qualified) step.ordinal = e->OrdinalAmongSiblings();
    steps.push_back(std::move(step));
  }
  std::reverse(steps.begin(), steps.end());
  return XmlPath(std::move(steps));
}

}  // namespace slim::doc::xml
