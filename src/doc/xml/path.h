#ifndef SLIM_DOC_XML_PATH_H_
#define SLIM_DOC_XML_PATH_H_

/// \file path.h
/// \brief XmlPath: the element-addressing language used by XML marks.
///
/// The paper's XML mark stores an `xmlPath` string (Fig. 8). Our path
/// language is a small XPath subset sufficient for sub-document addressing:
///
///   /report/patient[2]/labs/result[5]
///   /report/panel[@name='electrolytes']/result[@name='Na']
///
/// Steps name child elements. Two predicate forms select among same-named
/// siblings: `[n]` is the 1-based position (default 1 when resolving, "all"
/// when querying), and `[@attr='value']` matches by attribute — the
/// *robust* form, which keeps resolving when elements are inserted or
/// reordered (cf. the paper's §5 discussion of structure-based vs
/// position-based addressing). A step of `*` matches any element name
/// (query only). Every element has a unique canonical ordinal path
/// (PathOf); RobustPathOf prefers attribute predicates where they are
/// unique.

#include <string>
#include <vector>

#include "doc/xml/dom.h"
#include "util/result.h"

namespace slim::doc::xml {

/// \brief One step of a path.
struct PathStep {
  std::string name;  ///< Element name, or "*" (query only).
  int ordinal = 0;   ///< 1-based; 0 = unspecified.
  /// Attribute predicate (`[@attr_name='attr_value']`); active when
  /// attr_name is non-empty. Mutually exclusive with a non-zero ordinal.
  std::string attr_name;
  std::string attr_value;

  bool has_attribute_predicate() const { return !attr_name.empty(); }

  friend bool operator==(const PathStep&, const PathStep&) = default;
};

/// \brief A parsed path. The first step must match the document root.
class XmlPath {
 public:
  XmlPath() = default;
  explicit XmlPath(std::vector<PathStep> steps) : steps_(std::move(steps)) {}

  const std::vector<PathStep>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

  /// Parses "/a/b[2]/c" text.
  static Result<XmlPath> Parse(std::string_view text);

  /// Canonical text form ("[1]" ordinals are always written when set).
  std::string ToString() const;

  /// Resolves the path to the unique element it addresses. Unspecified
  /// ordinals default to 1. Wildcards are rejected here (addressing must be
  /// unambiguous); use FindAll for queries.
  Result<Element*> Resolve(Document* doc) const;

  /// Returns every element matching the path; unspecified ordinals match
  /// all same-named siblings, and "*" steps match any name.
  std::vector<Element*> FindAll(Document* doc) const;

  friend bool operator==(const XmlPath&, const XmlPath&) = default;

 private:
  std::vector<PathStep> steps_;
};

/// Canonical path of an element within its document (all ordinals explicit).
XmlPath PathOf(const Element* element);

/// Robust path of an element: at each step, if one of `preferred_attrs`
/// (tried in order; defaults to {"id", "name"}) uniquely identifies the
/// element among same-named siblings, an attribute predicate is used
/// instead of the ordinal. Attribute-addressed steps keep resolving after
/// sibling insertions/reorderings — the property position-based addressing
/// lacks.
XmlPath RobustPathOf(const Element* element,
                     const std::vector<std::string>& preferred_attrs = {
                         "id", "name"});

}  // namespace slim::doc::xml

#endif  // SLIM_DOC_XML_PATH_H_
