#include "doc/xml/dom.h"

namespace slim::doc::xml {

const std::string* Element::FindAttribute(std::string_view name) const {
  for (const Attribute& a : attrs_) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

void Element::SetAttribute(std::string_view name, std::string value) {
  for (Attribute& a : attrs_) {
    if (a.name == name) {
      a.value = std::move(value);
      return;
    }
  }
  attrs_.push_back({std::string(name), std::move(value)});
}

bool Element::RemoveAttribute(std::string_view name) {
  for (auto it = attrs_.begin(); it != attrs_.end(); ++it) {
    if (it->name == name) {
      attrs_.erase(it);
      return true;
    }
  }
  return false;
}

Element* Element::AddElement(std::string name) {
  auto child = std::make_unique<Element>(std::move(name));
  Element* raw = child.get();
  AddChild(std::move(child));
  return raw;
}

CharData* Element::AddText(std::string text) {
  auto child = std::make_unique<CharData>(NodeKind::kText, std::move(text));
  CharData* raw = child.get();
  AddChild(std::move(child));
  return raw;
}

CharData* Element::AddComment(std::string text) {
  auto child = std::make_unique<CharData>(NodeKind::kComment, std::move(text));
  CharData* raw = child.get();
  AddChild(std::move(child));
  return raw;
}

CharData* Element::AddCData(std::string text) {
  auto child = std::make_unique<CharData>(NodeKind::kCData, std::move(text));
  CharData* raw = child.get();
  AddChild(std::move(child));
  return raw;
}

Node* Element::AddChild(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

Status Element::RemoveChild(size_t index) {
  if (index >= children_.size()) {
    return Status::OutOfRange("child index " + std::to_string(index) +
                              " out of range (" +
                              std::to_string(children_.size()) + " children)");
  }
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(index));
  return Status::OK();
}

std::vector<Element*> Element::ChildElements() const {
  std::vector<Element*> out;
  for (const auto& c : children_) {
    if (c->kind() == NodeKind::kElement) {
      out.push_back(static_cast<Element*>(c.get()));
    }
  }
  return out;
}

std::vector<Element*> Element::ChildElements(std::string_view name) const {
  std::vector<Element*> out;
  for (const auto& c : children_) {
    if (c->kind() == NodeKind::kElement) {
      auto* e = static_cast<Element*>(c.get());
      if (e->name() == name) out.push_back(e);
    }
  }
  return out;
}

Element* Element::FirstChild(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->kind() == NodeKind::kElement) {
      auto* e = static_cast<Element*>(c.get());
      if (e->name() == name) return e;
    }
  }
  return nullptr;
}

std::string Element::InnerText() const {
  std::string out;
  for (const auto& c : children_) {
    switch (c->kind()) {
      case NodeKind::kText:
      case NodeKind::kCData:
        out += static_cast<const CharData*>(c.get())->text();
        break;
      case NodeKind::kElement:
        out += static_cast<const Element*>(c.get())->InnerText();
        break;
      case NodeKind::kComment:
        break;
    }
  }
  return out;
}

int Element::OrdinalAmongSiblings() const {
  if (parent() == nullptr) return 1;
  int ordinal = 0;
  for (Element* sibling : parent()->ChildElements(name_)) {
    ++ordinal;
    if (sibling == this) return ordinal;
  }
  return 1;  // unreachable for well-formed trees
}

std::unique_ptr<Document> Document::Create(std::string root_name) {
  auto doc = std::make_unique<Document>();
  doc->set_root(std::make_unique<Element>(std::move(root_name)));
  return doc;
}

namespace {
size_t CountElements(const Element* e) {
  size_t n = 1;
  for (const auto& c : e->children()) {
    if (c->kind() == NodeKind::kElement) {
      n += CountElements(static_cast<const Element*>(c.get()));
    }
  }
  return n;
}
}  // namespace

size_t Document::ElementCount() const {
  return root_ ? CountElements(root_.get()) : 0;
}

}  // namespace slim::doc::xml
