#ifndef SLIM_DOC_XML_DOM_H_
#define SLIM_DOC_XML_DOM_H_

/// \file dom.h
/// \brief In-memory XML document model.
///
/// The XML substrate backs the paper's XML base application: lab reports are
/// XML documents, and an XmlMark addresses an element via an `xmlPath`
/// (paper Fig. 8). The DOM keeps parent links so that any element can report
/// its own canonical path (the inverse of mark resolution).

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace slim::doc::xml {

class Element;

/// \brief Kinds of DOM nodes.
enum class NodeKind { kElement, kText, kComment, kCData };

/// \brief Base class of all DOM nodes.
class Node {
 public:
  virtual ~Node() = default;
  NodeKind kind() const { return kind_; }
  /// The containing element; null for the document root.
  Element* parent() const { return parent_; }

 protected:
  explicit Node(NodeKind kind) : kind_(kind) {}

 private:
  friend class Element;
  NodeKind kind_;
  Element* parent_ = nullptr;
};

/// \brief Character data (text, comment, or CDATA payload).
class CharData : public Node {
 public:
  CharData(NodeKind kind, std::string text)
      : Node(kind), text_(std::move(text)) {}
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

 private:
  std::string text_;
};

/// \brief One attribute; order is preserved as written.
struct Attribute {
  std::string name;
  std::string value;
};

/// \brief An element: name, ordered attributes, ordered children.
class Element : public Node {
 public:
  explicit Element(std::string name)
      : Node(NodeKind::kElement), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// \name Attributes.
  /// @{
  const std::vector<Attribute>& attributes() const { return attrs_; }
  /// Value of the attribute, or nullptr if absent.
  const std::string* FindAttribute(std::string_view name) const;
  /// Sets (or overwrites) an attribute.
  void SetAttribute(std::string_view name, std::string value);
  /// Removes an attribute; false if it was absent.
  bool RemoveAttribute(std::string_view name);
  /// @}

  /// \name Children.
  /// @{
  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  /// Appends and returns a new child element.
  Element* AddElement(std::string name);
  /// Appends a text node.
  CharData* AddText(std::string text);
  /// Appends a comment node.
  CharData* AddComment(std::string text);
  /// Appends a CDATA node.
  CharData* AddCData(std::string text);
  /// Appends an arbitrary pre-built node (takes ownership).
  Node* AddChild(std::unique_ptr<Node> child);
  /// Removes the child at `index`; OutOfRange if invalid.
  Status RemoveChild(size_t index);
  /// @}

  /// Child elements only, in order.
  std::vector<Element*> ChildElements() const;
  /// Child elements with the given name, in order.
  std::vector<Element*> ChildElements(std::string_view name) const;
  /// First child element with the given name, or nullptr.
  Element* FirstChild(std::string_view name) const;

  /// Concatenation of all descendant text/CDATA (document order).
  std::string InnerText() const;

  /// 1-based position of this element among same-named siblings (1 when it
  /// is the only one or has no parent).
  int OrdinalAmongSiblings() const;

  /// Recursively visits this element and all descendant elements.
  template <typename F>
  void Visit(F&& f) {
    f(this);
    for (auto& c : children_) {
      if (c->kind() == NodeKind::kElement) {
        static_cast<Element*>(c.get())->Visit(f);
      }
    }
  }

 private:
  std::string name_;
  std::vector<Attribute> attrs_;
  std::vector<std::unique_ptr<Node>> children_;
};

/// \brief A parsed document: the root element plus decl bookkeeping.
class Document {
 public:
  Document() = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  /// Creates a fresh document with the given root element name.
  static std::unique_ptr<Document> Create(std::string root_name);

  Element* root() { return root_.get(); }
  const Element* root() const { return root_.get(); }
  void set_root(std::unique_ptr<Element> root) { root_ = std::move(root); }

  /// Total number of elements (root included).
  size_t ElementCount() const;

 private:
  std::unique_ptr<Element> root_;
};

}  // namespace slim::doc::xml

#endif  // SLIM_DOC_XML_DOM_H_
