#include "doc/spreadsheet/cell.h"

namespace slim::doc {

std::string CellErrorText(CellError e) {
  switch (e) {
    case CellError::kDivZero: return "#DIV/0!";
    case CellError::kValue: return "#VALUE!";
    case CellError::kRef: return "#REF!";
    case CellError::kName: return "#NAME?";
    case CellError::kCycle: return "#CYCLE!";
  }
  return "#ERR!";
}

std::string CellValueText(const CellValue& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return ""; }
    std::string operator()(double d) const { return FormatNumber(d); }
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(bool b) const { return b ? "TRUE" : "FALSE"; }
    std::string operator()(CellError e) const { return CellErrorText(e); }
  };
  return std::visit(Visitor{}, v);
}

bool CellValueEquals(const CellValue& a, const CellValue& b) {
  return a == b;
}

}  // namespace slim::doc
