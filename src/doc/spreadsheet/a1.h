#ifndef SLIM_DOC_SPREADSHEET_A1_H_
#define SLIM_DOC_SPREADSHEET_A1_H_

/// \file a1.h
/// \brief A1-style cell and range addressing ("B12", "A1:C3").
///
/// This is the addressing scheme an Excel mark encapsulates (paper Fig. 8:
/// `range : String`). Rows and columns are 0-based internally; the textual
/// form is the familiar 1-based A1 notation with base-26 "bijective" column
/// letters (A..Z, AA..AZ, ...).

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace slim::doc {

/// \brief A single cell coordinate (0-based row and column).
struct CellRef {
  int32_t row = 0;
  int32_t col = 0;

  friend bool operator==(const CellRef&, const CellRef&) = default;
  friend auto operator<=>(const CellRef&, const CellRef&) = default;
};

/// \brief A rectangular cell range, inclusive on both corners.
///
/// Invariant (after normalization): start.row <= end.row and
/// start.col <= end.col.
struct RangeRef {
  CellRef start;
  CellRef end;

  /// Number of rows / columns spanned.
  int32_t rows() const { return end.row - start.row + 1; }
  int32_t cols() const { return end.col - start.col + 1; }
  /// Total number of cells.
  int64_t size() const { return int64_t{rows()} * cols(); }
  /// True iff `cell` lies inside this range.
  bool Contains(const CellRef& cell) const {
    return cell.row >= start.row && cell.row <= end.row &&
           cell.col >= start.col && cell.col <= end.col;
  }
  /// Returns the same rectangle with corners swapped into normal form.
  RangeRef Normalized() const;

  friend bool operator==(const RangeRef&, const RangeRef&) = default;
};

/// Converts a 0-based column index to letters (0 -> "A", 27 -> "AB").
std::string ColumnName(int32_t col);

/// Parses column letters to a 0-based index ("A" -> 0). Case-insensitive.
Result<int32_t> ParseColumnName(std::string_view letters);

/// Formats a cell as A1 text ("B12").
std::string FormatCell(const CellRef& cell);

/// Formats a range; single-cell ranges collapse to plain cell form ("B2"),
/// others use "A1:C3".
std::string FormatRange(const RangeRef& range);

/// Parses "B12" (absolute markers '$' are accepted and ignored).
Result<CellRef> ParseCell(std::string_view text);

/// Parses "A1:C3" or a single cell "B2" (treated as a 1x1 range). The result
/// is normalized.
Result<RangeRef> ParseRange(std::string_view text);

}  // namespace slim::doc

#endif  // SLIM_DOC_SPREADSHEET_A1_H_
