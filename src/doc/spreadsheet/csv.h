#ifndef SLIM_DOC_SPREADSHEET_CSV_H_
#define SLIM_DOC_SPREADSHEET_CSV_H_

/// \file csv.h
/// \brief RFC-4180-style CSV parsing/serialization and worksheet import.

#include <string>
#include <string_view>
#include <vector>

#include "doc/spreadsheet/worksheet.h"
#include "util/result.h"

namespace slim::doc {

/// \brief Parses CSV text into rows of fields. Handles quoted fields,
/// embedded separators/newlines, doubled-quote escapes, and both LF and
/// CRLF line endings. The final row is emitted even without a trailing
/// newline.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text,
                                                       char sep = ',');

/// \brief Serializes rows to CSV, quoting fields that need it.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows,
                     char sep = ',');

/// \brief Imports CSV into a worksheet starting at A1. Numeric-looking
/// fields become numbers, TRUE/FALSE become booleans, everything else text.
Status ImportCsv(std::string_view text, Worksheet* sheet, char sep = ',');

/// \brief Exports a worksheet's used range as CSV (display text of stored
/// values; formulas are exported as their source text).
std::string ExportCsv(const Worksheet& sheet, char sep = ',');

}  // namespace slim::doc

#endif  // SLIM_DOC_SPREADSHEET_CSV_H_
