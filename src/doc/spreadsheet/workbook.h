#ifndef SLIM_DOC_SPREADSHEET_WORKBOOK_H_
#define SLIM_DOC_SPREADSHEET_WORKBOOK_H_

/// \file workbook.h
/// \brief A workbook: named worksheets + cross-sheet recalculation +
/// persistence. This is the document type the "Excel" base application
/// serves, and the thing an Excel mark's `fileName` names.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "doc/spreadsheet/worksheet.h"
#include "util/result.h"

namespace slim::doc {

/// \brief An ordered collection of named worksheets with an on-demand,
/// memoized, cycle-detecting evaluator.
class Workbook {
 public:
  Workbook() = default;
  explicit Workbook(std::string file_name) : file_name_(std::move(file_name)) {}

  Workbook(const Workbook&) = delete;
  Workbook& operator=(const Workbook&) = delete;

  const std::string& file_name() const { return file_name_; }
  void set_file_name(std::string name) { file_name_ = std::move(name); }

  /// Creates a sheet; fails with AlreadyExists on a duplicate name.
  Result<Worksheet*> AddSheet(const std::string& name);

  /// Looks up a sheet by name (case-sensitive).
  Result<Worksheet*> GetSheet(const std::string& name);
  Result<const Worksheet*> GetSheet(const std::string& name) const;

  /// Removes a sheet; NotFound if absent.
  Status RemoveSheet(const std::string& name);

  /// Sheets in creation order.
  const std::vector<std::unique_ptr<Worksheet>>& sheets() const {
    return sheets_;
  }
  size_t sheet_count() const { return sheets_.size(); }

  /// Fully evaluated value of a cell: literals pass through, formulas are
  /// computed (with memoization and cycle detection producing #CYCLE!).
  /// A nonexistent sheet yields #REF!.
  CellValue Evaluate(const std::string& sheet, const CellRef& ref);

  /// Evaluated values of every cell in `range`, row-major (blank cells
  /// included as blank values).
  std::vector<CellValue> EvaluateRange(const std::string& sheet,
                                       const RangeRef& range);

  /// Display text of an evaluated cell.
  std::string DisplayText(const std::string& sheet, const CellRef& ref);

  /// \name Persistence — simple line-oriented native format.
  /// @{
  std::string Serialize() const;
  static Result<std::unique_ptr<Workbook>> Deserialize(std::string_view text);
  Status SaveToFile(const std::string& path) const;
  static Result<std::unique_ptr<Workbook>> LoadFromFile(
      const std::string& path);
  /// @}

 private:
  friend class WorkbookResolver;

  struct CellKey {
    std::string sheet;
    int32_t row;
    int32_t col;
    bool operator==(const CellKey&) const = default;
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& k) const {
      size_t h = std::hash<std::string>()(k.sheet);
      h = h * 1000003 + static_cast<size_t>(k.row);
      h = h * 1000003 + static_cast<size_t>(k.col);
      return h;
    }
  };

  /// Sum of sheet versions; a change anywhere invalidates the memo cache.
  uint64_t GlobalVersion() const;
  void MaybeResetCache();

  std::string file_name_;
  std::vector<std::unique_ptr<Worksheet>> sheets_;
  std::unordered_map<std::string, Worksheet*> by_name_;

  // Evaluation memo + in-progress set for cycle detection.
  uint64_t cached_version_ = UINT64_MAX;
  std::unordered_map<CellKey, CellValue, CellKeyHash> memo_;
  std::unordered_map<CellKey, bool, CellKeyHash> in_progress_;
};

}  // namespace slim::doc

#endif  // SLIM_DOC_SPREADSHEET_WORKBOOK_H_
