#include "doc/spreadsheet/worksheet.h"

#include "util/strings.h"

namespace slim::doc {

Worksheet::StoredCell& Worksheet::Mutable(const CellRef& ref) {
  ++version_;
  return cells_[{ref.row, ref.col}];
}

void Worksheet::SetValue(const CellRef& ref, CellValue value) {
  StoredCell& sc = Mutable(ref);
  sc.cell.value = std::move(value);
  sc.cell.formula.clear();
  sc.ast.reset();
}

Status Worksheet::SetFormula(const CellRef& ref, std::string_view source) {
  if (source.empty() || source[0] != '=') {
    return Status::InvalidArgument("formula must start with '=': '" +
                                   std::string(source) + "'");
  }
  Result<std::unique_ptr<Expr>> parsed = ParseFormula(source.substr(1));
  if (!parsed.ok()) {
    return parsed.status().WithContext("in formula '" + std::string(source) +
                                       "'");
  }
  StoredCell& sc = Mutable(ref);
  sc.cell.formula = std::string(source);
  sc.cell.value = std::monostate{};  // cache recomputed by the workbook
  sc.ast = std::move(parsed).ValueOrDie();
  return Status::OK();
}

Status Worksheet::SetInput(const CellRef& ref, std::string_view input) {
  if (!input.empty() && input[0] == '=') return SetFormula(ref, input);
  std::string_view trimmed = Trim(input);
  if (trimmed.empty()) {
    Clear(ref);
    return Status::OK();
  }
  double d;
  if (ParseDouble(trimmed, &d)) {
    SetValue(ref, d);
    return Status::OK();
  }
  if (EqualsIgnoreCase(trimmed, "TRUE")) {
    SetValue(ref, true);
    return Status::OK();
  }
  if (EqualsIgnoreCase(trimmed, "FALSE")) {
    SetValue(ref, false);
    return Status::OK();
  }
  SetValue(ref, std::string(input));
  return Status::OK();
}

void Worksheet::Clear(const CellRef& ref) {
  auto it = cells_.find({ref.row, ref.col});
  if (it != cells_.end()) {
    cells_.erase(it);
    ++version_;
  }
}

const Cell* Worksheet::GetCell(const CellRef& ref) const {
  auto it = cells_.find({ref.row, ref.col});
  return it == cells_.end() ? nullptr : &it->second.cell;
}

const Expr* Worksheet::GetFormulaAst(const CellRef& ref) const {
  auto it = cells_.find({ref.row, ref.col});
  return it == cells_.end() ? nullptr : it->second.ast.get();
}

Result<RangeRef> Worksheet::UsedRange() const {
  if (cells_.empty()) {
    return Status::NotFound("worksheet '" + name_ + "' is empty");
  }
  int32_t min_row = INT32_MAX, max_row = INT32_MIN;
  int32_t min_col = INT32_MAX, max_col = INT32_MIN;
  for (const auto& [key, _] : cells_) {
    min_row = std::min(min_row, key.first);
    max_row = std::max(max_row, key.first);
    min_col = std::min(min_col, key.second);
    max_col = std::max(max_col, key.second);
  }
  return RangeRef{{min_row, min_col}, {max_row, max_col}};
}

}  // namespace slim::doc
