#ifndef SLIM_DOC_SPREADSHEET_WORKSHEET_H_
#define SLIM_DOC_SPREADSHEET_WORKSHEET_H_

/// \file worksheet.h
/// \brief One sheet of a workbook: a sparse grid of cells.

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "doc/spreadsheet/a1.h"
#include "doc/spreadsheet/cell.h"
#include "doc/spreadsheet/formula.h"
#include "util/result.h"

namespace slim::doc {

/// \brief A sparse grid of cells with parsed-formula caching.
///
/// Worksheets store raw content only; evaluation (which may cross sheets)
/// is coordinated by the owning Workbook.
class Worksheet {
 public:
  explicit Worksheet(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void Rename(std::string name) { name_ = std::move(name); }

  /// Sets a literal value (clears any formula).
  void SetValue(const CellRef& ref, CellValue value);

  /// Sets a formula; `source` must start with '='. Parse errors are
  /// returned and leave the cell untouched.
  Status SetFormula(const CellRef& ref, std::string_view source);

  /// Interprets free-form user input: '=' formula, number, TRUE/FALSE,
  /// otherwise text. Mirrors what typing into a grid cell does.
  Status SetInput(const CellRef& ref, std::string_view input);

  /// Removes the cell entirely (becomes blank).
  void Clear(const CellRef& ref);

  /// Raw stored cell, or nullptr if blank. The returned pointer is
  /// invalidated by mutations.
  const Cell* GetCell(const CellRef& ref) const;

  /// Parsed formula AST for the cell, or nullptr if it has none.
  const Expr* GetFormulaAst(const CellRef& ref) const;

  /// Number of non-blank cells.
  size_t cell_count() const { return cells_.size(); }

  /// Smallest range covering all non-blank cells; nullopt when empty.
  Result<RangeRef> UsedRange() const;

  /// Visits every non-blank cell in row-major order.
  template <typename F>
  void ForEachCell(F&& f) const {
    for (const auto& [key, stored] : cells_) {
      f(CellRef{key.first, key.second}, stored.cell);
    }
  }

  /// Monotone counter bumped by every mutation; used by the workbook to
  /// invalidate its evaluation cache.
  uint64_t version() const { return version_; }

 private:
  struct StoredCell {
    Cell cell;
    std::unique_ptr<Expr> ast;  // parsed formula, null for literals
  };

  StoredCell& Mutable(const CellRef& ref);

  std::string name_;
  std::map<std::pair<int32_t, int32_t>, StoredCell> cells_;
  uint64_t version_ = 0;
};

}  // namespace slim::doc

#endif  // SLIM_DOC_SPREADSHEET_WORKSHEET_H_
