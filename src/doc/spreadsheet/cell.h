#ifndef SLIM_DOC_SPREADSHEET_CELL_H_
#define SLIM_DOC_SPREADSHEET_CELL_H_

/// \file cell.h
/// \brief Cell values and cells for the spreadsheet substrate.

#include <string>
#include <variant>

#include "util/strings.h"

namespace slim::doc {

/// \brief Spreadsheet error values (the "#DIV/0!" family).
enum class CellError {
  kDivZero,    ///< Division by zero.
  kValue,      ///< Type error in an operation.
  kRef,        ///< Reference to a nonexistent sheet/cell.
  kName,       ///< Unknown function name.
  kCycle,      ///< Circular formula dependency.
};

/// Display text of an error value ("#DIV/0!" etc.).
std::string CellErrorText(CellError e);

/// \brief The value held (or computed) by a cell.
///
/// `monostate` is the blank cell. Blank participates in arithmetic as 0 and
/// in concatenation as "".
using CellValue = std::variant<std::monostate, double, std::string, bool,
                               CellError>;

/// True iff the value is blank.
inline bool IsBlank(const CellValue& v) {
  return std::holds_alternative<std::monostate>(v);
}
/// True iff the value is numeric.
inline bool IsNumber(const CellValue& v) {
  return std::holds_alternative<double>(v);
}
/// True iff the value is text.
inline bool IsText(const CellValue& v) {
  return std::holds_alternative<std::string>(v);
}
/// True iff the value is boolean.
inline bool IsBool(const CellValue& v) {
  return std::holds_alternative<bool>(v);
}
/// True iff the value is an error.
inline bool IsError(const CellValue& v) {
  return std::holds_alternative<CellError>(v);
}

/// The display text of a value, the way a spreadsheet grid shows it.
std::string CellValueText(const CellValue& v);

/// Structural equality of two values.
bool CellValueEquals(const CellValue& a, const CellValue& b);

/// \brief One cell: either a literal value, or a formula (leading '=') whose
/// cached value is computed by the worksheet's evaluator.
struct Cell {
  CellValue value;       ///< Literal value, or cached result for formulas.
  std::string formula;   ///< Source text including '='; empty for literals.

  bool has_formula() const { return !formula.empty(); }
};

}  // namespace slim::doc

#endif  // SLIM_DOC_SPREADSHEET_CELL_H_
