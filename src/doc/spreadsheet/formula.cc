#include "doc/spreadsheet/formula.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/strings.h"

namespace slim::doc {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind {
  kNumber, kString, kIdent, kLParen, kRParen, kComma, kColon, kBang,
  kPlus, kMinus, kStar, kSlash, kCaret, kAmp,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kEnd,
};

struct Token {
  TokKind kind;
  double number = 0;
  std::string text;  // ident (original case) or string literal contents
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      size_t pos = i_;
      if (i_ >= src_.size()) {
        out.push_back({TokKind::kEnd, 0, "", pos});
        return out;
      }
      char c = src_[i_];
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && i_ + 1 < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[i_ + 1])))) {
        SLIM_ASSIGN_OR_RETURN(Token t, LexNumber());
        out.push_back(std::move(t));
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
        continue;
      }
      if (c == '"') {
        SLIM_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
        continue;
      }
      if (c == '\'') {
        // Quoted sheet name: 'My Sheet'!A1 — lexed as an ident token.
        SLIM_ASSIGN_OR_RETURN(Token t, LexQuotedSheet());
        out.push_back(std::move(t));
        continue;
      }
      ++i_;
      switch (c) {
        case '(': out.push_back({TokKind::kLParen, 0, "", pos}); break;
        case ')': out.push_back({TokKind::kRParen, 0, "", pos}); break;
        case ',': out.push_back({TokKind::kComma, 0, "", pos}); break;
        case ':': out.push_back({TokKind::kColon, 0, "", pos}); break;
        case '!': out.push_back({TokKind::kBang, 0, "", pos}); break;
        case '+': out.push_back({TokKind::kPlus, 0, "", pos}); break;
        case '-': out.push_back({TokKind::kMinus, 0, "", pos}); break;
        case '*': out.push_back({TokKind::kStar, 0, "", pos}); break;
        case '/': out.push_back({TokKind::kSlash, 0, "", pos}); break;
        case '^': out.push_back({TokKind::kCaret, 0, "", pos}); break;
        case '&': out.push_back({TokKind::kAmp, 0, "", pos}); break;
        case '=': out.push_back({TokKind::kEq, 0, "", pos}); break;
        case '<':
          if (i_ < src_.size() && src_[i_] == '>') {
            ++i_;
            out.push_back({TokKind::kNe, 0, "", pos});
          } else if (i_ < src_.size() && src_[i_] == '=') {
            ++i_;
            out.push_back({TokKind::kLe, 0, "", pos});
          } else {
            out.push_back({TokKind::kLt, 0, "", pos});
          }
          break;
        case '>':
          if (i_ < src_.size() && src_[i_] == '=') {
            ++i_;
            out.push_back({TokKind::kGe, 0, "", pos});
          } else {
            out.push_back({TokKind::kGt, 0, "", pos});
          }
          break;
        case '$':
          // Absolute-reference marker; transparent to evaluation. It must be
          // glued to a following ident/number, which the next loop iteration
          // lexes.
          break;
        default:
          return Status::ParseError("unexpected character '" +
                                    std::string(1, c) + "' at position " +
                                    std::to_string(pos));
      }
    }
  }

 private:
  void SkipSpace() {
    while (i_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[i_]))) {
      ++i_;
    }
  }

  Result<Token> LexNumber() {
    size_t pos = i_;
    size_t start = i_;
    while (i_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[i_])) ||
            src_[i_] == '.')) {
      ++i_;
    }
    // Exponent part.
    if (i_ < src_.size() && (src_[i_] == 'e' || src_[i_] == 'E')) {
      size_t save = i_;
      ++i_;
      if (i_ < src_.size() && (src_[i_] == '+' || src_[i_] == '-')) ++i_;
      if (i_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[i_]))) {
        while (i_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[i_]))) {
          ++i_;
        }
      } else {
        i_ = save;  // 'E' belongs to something else (e.g. a cell ref typo)
      }
    }
    double v = 0;
    if (!ParseDouble(src_.substr(start, i_ - start), &v)) {
      return Status::ParseError("malformed number at position " +
                                std::to_string(pos));
    }
    return Token{TokKind::kNumber, v, "", pos};
  }

  Token LexIdent() {
    size_t pos = i_;
    size_t start = i_;
    while (i_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[i_])) ||
            src_[i_] == '_' || src_[i_] == '$' || src_[i_] == '.')) {
      ++i_;
    }
    std::string text(src_.substr(start, i_ - start));
    // Strip '$' absolute markers inside refs like B$2.
    text = ReplaceAll(text, "$", "");
    return Token{TokKind::kIdent, 0, std::move(text), pos};
  }

  Result<Token> LexString() {
    size_t pos = i_;
    ++i_;  // opening quote
    std::string text;
    while (i_ < src_.size()) {
      char c = src_[i_++];
      if (c == '"') {
        if (i_ < src_.size() && src_[i_] == '"') {  // doubled quote escape
          text.push_back('"');
          ++i_;
          continue;
        }
        return Token{TokKind::kString, 0, std::move(text), pos};
      }
      text.push_back(c);
    }
    return Status::ParseError("unterminated string literal at position " +
                              std::to_string(pos));
  }

  Result<Token> LexQuotedSheet() {
    size_t pos = i_;
    ++i_;  // opening quote
    std::string text;
    while (i_ < src_.size()) {
      char c = src_[i_++];
      if (c == '\'') {
        if (i_ < src_.size() && src_[i_] == '\'') {
          text.push_back('\'');
          ++i_;
          continue;
        }
        return Token{TokKind::kIdent, 0, std::move(text), pos};
      }
      text.push_back(c);
    }
    return Status::ParseError("unterminated sheet name at position " +
                              std::to_string(pos));
  }

  std::string_view src_;
  size_t i_ = 0;
};

// ---------------------------------------------------------------------------
// Parser (recursive descent; precedence: cmp < & < +- < */ < unary < ^)
// ---------------------------------------------------------------------------

bool LooksLikeCellRef(const std::string& ident) {
  size_t i = 0;
  while (i < ident.size() &&
         std::isalpha(static_cast<unsigned char>(ident[i]))) {
    ++i;
  }
  if (i == 0 || i > 4 || i == ident.size()) return false;
  for (size_t j = i; j < ident.size(); ++j) {
    if (!std::isdigit(static_cast<unsigned char>(ident[j]))) return false;
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<std::unique_ptr<Expr>> Run() {
    SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseCompare());
    if (Peek().kind != TokKind::kEnd) {
      return Status::ParseError("trailing input at position " +
                                std::to_string(Peek().pos));
    }
    return e;
  }

 private:
  const Token& Peek() const { return toks_[i_]; }
  Token Take() { return toks_[i_++]; }
  bool Accept(TokKind k) {
    if (Peek().kind == k) {
      ++i_;
      return true;
    }
    return false;
  }

  Result<std::unique_ptr<Expr>> ParseCompare() {
    SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseConcat());
    while (true) {
      BinaryOp op;
      switch (Peek().kind) {
        case TokKind::kEq: op = BinaryOp::kEq; break;
        case TokKind::kNe: op = BinaryOp::kNe; break;
        case TokKind::kLt: op = BinaryOp::kLt; break;
        case TokKind::kLe: op = BinaryOp::kLe; break;
        case TokKind::kGt: op = BinaryOp::kGt; break;
        case TokKind::kGe: op = BinaryOp::kGe; break;
        default: return lhs;
      }
      Take();
      SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseConcat());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Expr>> ParseConcat() {
    SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAdd());
    while (Accept(TokKind::kAmp)) {
      SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdd());
      lhs = MakeBinary(BinaryOp::kConcat, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAdd() {
    SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseMul());
    while (true) {
      if (Accept(TokKind::kPlus)) {
        SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseMul());
        lhs = MakeBinary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (Accept(TokKind::kMinus)) {
        SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseMul());
        lhs = MakeBinary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParseMul() {
    SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParsePower());
    while (true) {
      if (Accept(TokKind::kStar)) {
        SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParsePower());
        lhs = MakeBinary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
      } else if (Accept(TokKind::kSlash)) {
        SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParsePower());
        lhs = MakeBinary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  // Spreadsheet precedence quirk: unary minus binds tighter than '^', so
  // -2^2 evaluates to (-2)^2 = 4. '^' is right associative.
  Result<std::unique_ptr<Expr>> ParsePower() {
    SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseUnary());
    if (Accept(TokKind::kCaret)) {
      SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParsePower());
      return MakeBinary(BinaryOp::kPow, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (Accept(TokKind::kMinus)) {
      SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParseUnary());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnaryMinus;
      e->lhs = std::move(operand);
      return e;
    }
    if (Accept(TokKind::kPlus)) return ParseUnary();  // unary plus: no-op
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kNumber: {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kNumber;
        e->number = Take().number;
        return e;
      }
      case TokKind::kString: {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kString;
        e->text = Take().text;
        return e;
      }
      case TokKind::kLParen: {
        Take();
        SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseCompare());
        if (!Accept(TokKind::kRParen)) {
          return Status::ParseError("expected ')' at position " +
                                    std::to_string(Peek().pos));
        }
        return e;
      }
      case TokKind::kIdent:
        return ParseIdentLed();
      default:
        return Status::ParseError("unexpected token at position " +
                                  std::to_string(t.pos));
    }
  }

  // Identifier-led production: TRUE/FALSE, function call, cell ref, range,
  // or sheet-qualified ref.
  Result<std::unique_ptr<Expr>> ParseIdentLed() {
    Token ident = Take();
    std::string upper = ToUpper(ident.text);

    if (upper == "TRUE" || upper == "FALSE") {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBool;
      e->boolean = (upper == "TRUE");
      return e;
    }

    if (Peek().kind == TokKind::kLParen) {
      Take();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCall;
      e->callee = upper;
      if (!Accept(TokKind::kRParen)) {
        while (true) {
          SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg, ParseCompare());
          e->args.push_back(std::move(arg));
          if (Accept(TokKind::kComma)) continue;
          if (Accept(TokKind::kRParen)) break;
          return Status::ParseError("expected ',' or ')' at position " +
                                    std::to_string(Peek().pos));
        }
      }
      return e;
    }

    if (Peek().kind == TokKind::kBang) {
      // Sheet-qualified reference: Sheet!A1 or Sheet!A1:B2.
      Take();
      if (Peek().kind != TokKind::kIdent) {
        return Status::ParseError("expected cell reference after '!'");
      }
      Token cell_tok = Take();
      return FinishReference(ident.text, cell_tok.text, cell_tok.pos);
    }

    if (LooksLikeCellRef(ident.text)) {
      return FinishReference("", ident.text, ident.pos);
    }

    return Status::ParseError("unknown identifier '" + ident.text +
                              "' at position " + std::to_string(ident.pos));
  }

  // Parses the optional ':End' range tail, then builds the ref node.
  Result<std::unique_ptr<Expr>> FinishReference(const std::string& sheet,
                                                const std::string& start_text,
                                                size_t pos) {
    SLIM_ASSIGN_OR_RETURN(CellRef start, ParseCellOr(start_text, pos));
    if (Accept(TokKind::kColon)) {
      if (Peek().kind != TokKind::kIdent) {
        return Status::ParseError("expected cell reference after ':'");
      }
      Token end_tok = Take();
      SLIM_ASSIGN_OR_RETURN(CellRef end, ParseCellOr(end_tok.text, end_tok.pos));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kRangeRef;
      e->sheet = sheet;
      e->range = RangeRef{start, end}.Normalized();
      return e;
    }
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCellRef;
    e->sheet = sheet;
    e->cell = start;
    return e;
  }

  Result<CellRef> ParseCellOr(const std::string& text, size_t pos) {
    Result<CellRef> r = ParseCell(text);
    if (!r.ok()) {
      return Status::ParseError("malformed cell reference '" + text +
                                "' at position " + std::to_string(pos));
    }
    return r;
  }

  static std::unique_ptr<Expr> MakeBinary(BinaryOp op,
                                          std::unique_ptr<Expr> lhs,
                                          std::unique_ptr<Expr> rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  std::vector<Token> toks_;
  size_t i_ = 0;
};

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

// Numeric coercion: blank->0, bool->0/1, numeric text->number, else #VALUE!.
bool ToNumber(const CellValue& v, double* out, CellError* err) {
  if (IsError(v)) {
    *err = std::get<CellError>(v);
    return false;
  }
  if (IsBlank(v)) {
    *out = 0;
    return true;
  }
  if (IsNumber(v)) {
    *out = std::get<double>(v);
    return true;
  }
  if (IsBool(v)) {
    *out = std::get<bool>(v) ? 1 : 0;
    return true;
  }
  if (IsText(v) && ParseDouble(std::get<std::string>(v), out)) return true;
  *err = CellError::kValue;
  return false;
}

std::string ToText(const CellValue& v) { return CellValueText(v); }

bool ToBool(const CellValue& v, bool* out, CellError* err) {
  if (IsError(v)) {
    *err = std::get<CellError>(v);
    return false;
  }
  if (IsBool(v)) {
    *out = std::get<bool>(v);
    return true;
  }
  double d;
  if (ToNumber(v, &d, err)) {
    *out = d != 0;
    return true;
  }
  return false;
}

// Three-way comparison with spreadsheet ordering: numbers < text < bool;
// within text, case-insensitive lexicographic.
int CompareValues(const CellValue& a, const CellValue& b) {
  auto rank = [](const CellValue& v) {
    if (IsBlank(v) || IsNumber(v)) return 0;
    if (IsText(v)) return 1;
    return 2;  // bool
  };
  int ra = rank(a), rb = rank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) {
    double da = IsBlank(a) ? 0 : std::get<double>(a);
    double db = IsBlank(b) ? 0 : std::get<double>(b);
    return da < db ? -1 : (da > db ? 1 : 0);
  }
  if (ra == 1) {
    std::string la = ToLower(std::get<std::string>(a));
    std::string lb = ToLower(std::get<std::string>(b));
    return la < lb ? -1 : (la > lb ? 1 : 0);
  }
  bool ba = std::get<bool>(a), bb = std::get<bool>(b);
  return ba == bb ? 0 : (!ba ? -1 : 1);
}

class Evaluator {
 public:
  explicit Evaluator(CellResolver* resolver) : resolver_(resolver) {}

  CellValue Eval(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber: return e.number;
      case ExprKind::kString: return e.text;
      case ExprKind::kBool: return e.boolean;
      case ExprKind::kCellRef: return resolver_->ResolveCell(e.sheet, e.cell);
      case ExprKind::kRangeRef:
        // A bare range in scalar context is a #VALUE! error (we do not
        // implement implicit intersection).
        return CellError::kValue;
      case ExprKind::kUnaryMinus: {
        CellValue v = Eval(*e.lhs);
        double d;
        CellError err;
        if (!ToNumber(v, &d, &err)) return err;
        return -d;
      }
      case ExprKind::kBinary: return EvalBinary(e);
      case ExprKind::kCall: return EvalCall(e);
    }
    return CellError::kValue;
  }

 private:
  CellValue EvalBinary(const Expr& e) {
    CellValue a = Eval(*e.lhs);
    CellValue b = Eval(*e.rhs);
    CellError err;
    switch (e.op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kPow: {
        double x, y;
        if (!ToNumber(a, &x, &err)) return err;
        if (!ToNumber(b, &y, &err)) return err;
        switch (e.op) {
          case BinaryOp::kAdd: return x + y;
          case BinaryOp::kSub: return x - y;
          case BinaryOp::kMul: return x * y;
          case BinaryOp::kDiv:
            if (y == 0) return CellError::kDivZero;
            return x / y;
          case BinaryOp::kPow: return std::pow(x, y);
          default: break;
        }
        return CellError::kValue;
      }
      case BinaryOp::kConcat: {
        if (IsError(a)) return a;
        if (IsError(b)) return b;
        return ToText(a) + ToText(b);
      }
      default: {
        if (IsError(a)) return a;
        if (IsError(b)) return b;
        int c = CompareValues(a, b);
        switch (e.op) {
          case BinaryOp::kEq: return c == 0;
          case BinaryOp::kNe: return c != 0;
          case BinaryOp::kLt: return c < 0;
          case BinaryOp::kLe: return c <= 0;
          case BinaryOp::kGt: return c > 0;
          case BinaryOp::kGe: return c >= 0;
          default: break;
        }
        return CellError::kValue;
      }
    }
  }

  // Flattens an argument into scalar values; ranges expand to their cells.
  // Returns false (and sets *err) if an error value is encountered.
  bool Flatten(const Expr& arg, std::vector<CellValue>* out, CellError* err) {
    if (arg.kind == ExprKind::kRangeRef) {
      for (CellValue& v : resolver_->ResolveRange(arg.sheet, arg.range)) {
        if (IsError(v)) {
          *err = std::get<CellError>(v);
          return false;
        }
        out->push_back(std::move(v));
      }
      return true;
    }
    CellValue v = Eval(arg);
    if (IsError(v)) {
      *err = std::get<CellError>(v);
      return false;
    }
    out->push_back(std::move(v));
    return true;
  }

  CellValue EvalCall(const Expr& e) {
    const std::string& f = e.callee;
    CellError err;

    auto aggregate = [&](auto init, auto fold,
                         bool want_count) -> CellValue {
      double acc = init;
      int64_t count = 0;
      for (const auto& arg : e.args) {
        std::vector<CellValue> vals;
        if (!Flatten(*arg, &vals, &err)) return err;
        for (const CellValue& v : vals) {
          if (IsBlank(v)) continue;  // aggregates skip blanks
          double d;
          if (IsText(v)) {
            // Aggregates skip non-numeric text (spreadsheet semantics).
            if (!ParseDouble(std::get<std::string>(v), &d)) continue;
          } else if (!ToNumber(v, &d, &err)) {
            return err;
          }
          acc = fold(acc, d);
          ++count;
        }
      }
      if (want_count) return static_cast<double>(count);
      return acc;
    };

    if (f == "SUM") {
      return aggregate(0.0, [](double a, double b) { return a + b; }, false);
    }
    if (f == "COUNT") {
      return aggregate(0.0, [](double a, double) { return a; }, true);
    }
    if (f == "COUNTA") {
      int64_t count = 0;
      for (const auto& arg : e.args) {
        std::vector<CellValue> vals;
        if (!Flatten(*arg, &vals, &err)) return err;
        for (const CellValue& v : vals) {
          if (!IsBlank(v)) ++count;
        }
      }
      return static_cast<double>(count);
    }
    if (f == "AVERAGE" || f == "AVG") {
      CellValue total =
          aggregate(0.0, [](double a, double b) { return a + b; }, false);
      if (IsError(total)) return total;
      CellValue n = aggregate(0.0, [](double a, double) { return a; }, true);
      if (IsError(n)) return n;
      double count = std::get<double>(n);
      if (count == 0) return CellError::kDivZero;
      return std::get<double>(total) / count;
    }
    if (f == "MIN" || f == "MAX") {
      bool is_min = (f == "MIN");
      bool seen = false;
      double best = 0;
      for (const auto& arg : e.args) {
        std::vector<CellValue> vals;
        if (!Flatten(*arg, &vals, &err)) return err;
        for (const CellValue& v : vals) {
          if (IsBlank(v)) continue;
          double d;
          if (IsText(v)) {
            if (!ParseDouble(std::get<std::string>(v), &d)) continue;
          } else if (!ToNumber(v, &d, &err)) {
            return err;
          }
          if (!seen || (is_min ? d < best : d > best)) best = d;
          seen = true;
        }
      }
      return seen ? CellValue(best) : CellValue(0.0);
    }
    if (f == "IF") {
      if (e.args.size() < 2 || e.args.size() > 3) return CellError::kValue;
      CellValue cond = Eval(*e.args[0]);
      bool b;
      if (!ToBool(cond, &b, &err)) return err;
      if (b) return Eval(*e.args[1]);
      if (e.args.size() == 3) return Eval(*e.args[2]);
      return false;
    }
    if (f == "AND" || f == "OR") {
      bool is_and = (f == "AND");
      bool acc = is_and;
      for (const auto& arg : e.args) {
        std::vector<CellValue> vals;
        if (!Flatten(*arg, &vals, &err)) return err;
        for (const CellValue& v : vals) {
          if (IsBlank(v)) continue;
          bool b;
          if (!ToBool(v, &b, &err)) return err;
          acc = is_and ? (acc && b) : (acc || b);
        }
      }
      return acc;
    }
    if (f == "NOT") {
      if (e.args.size() != 1) return CellError::kValue;
      bool b;
      if (!ToBool(Eval(*e.args[0]), &b, &err)) return err;
      return !b;
    }
    if (f == "CONCAT" || f == "CONCATENATE") {
      std::string out;
      for (const auto& arg : e.args) {
        std::vector<CellValue> vals;
        if (!Flatten(*arg, &vals, &err)) return err;
        for (const CellValue& v : vals) out += ToText(v);
      }
      return out;
    }
    if (f == "ABS" || f == "SQRT" || f == "ROUND") {
      if (e.args.empty()) return CellError::kValue;
      double d;
      if (!ToNumber(Eval(*e.args[0]), &d, &err)) return err;
      if (f == "ABS") return std::fabs(d);
      if (f == "SQRT") {
        if (d < 0) return CellError::kValue;
        return std::sqrt(d);
      }
      // ROUND(x, digits) — digits defaults to 0.
      double digits = 0;
      if (e.args.size() >= 2) {
        if (!ToNumber(Eval(*e.args[1]), &digits, &err)) return err;
      }
      double scale = std::pow(10.0, std::floor(digits));
      return std::round(d * scale) / scale;
    }
    if (f == "LEN") {
      if (e.args.size() != 1) return CellError::kValue;
      CellValue v = Eval(*e.args[0]);
      if (IsError(v)) return v;
      return static_cast<double>(ToText(v).size());
    }
    if (f == "UPPER" || f == "LOWER") {
      if (e.args.size() != 1) return CellError::kValue;
      CellValue v = Eval(*e.args[0]);
      if (IsError(v)) return v;
      return f == "UPPER" ? ToUpper(ToText(v)) : ToLower(ToText(v));
    }
    if (f == "MID") {
      // MID(text, start1, count)
      if (e.args.size() != 3) return CellError::kValue;
      CellValue v = Eval(*e.args[0]);
      if (IsError(v)) return v;
      double start1, count;
      if (!ToNumber(Eval(*e.args[1]), &start1, &err)) return err;
      if (!ToNumber(Eval(*e.args[2]), &count, &err)) return err;
      if (start1 < 1 || count < 0) return CellError::kValue;
      std::string text = ToText(v);
      size_t begin = static_cast<size_t>(start1) - 1;
      if (begin >= text.size()) return std::string();
      return text.substr(begin, static_cast<size_t>(count));
    }
    if (f == "LEFT" || f == "RIGHT") {
      // LEFT/RIGHT(text, count=1)
      if (e.args.empty() || e.args.size() > 2) return CellError::kValue;
      CellValue v = Eval(*e.args[0]);
      if (IsError(v)) return v;
      double count = 1;
      if (e.args.size() == 2) {
        if (!ToNumber(Eval(*e.args[1]), &count, &err)) return err;
      }
      if (count < 0) return CellError::kValue;
      std::string text = ToText(v);
      size_t n = std::min(text.size(), static_cast<size_t>(count));
      return f == "LEFT" ? text.substr(0, n) : text.substr(text.size() - n);
    }
    if (f == "FIND") {
      // FIND(needle, haystack, start1=1): 1-based position or #VALUE!.
      if (e.args.size() < 2 || e.args.size() > 3) return CellError::kValue;
      CellValue needle = Eval(*e.args[0]);
      CellValue hay = Eval(*e.args[1]);
      if (IsError(needle)) return needle;
      if (IsError(hay)) return hay;
      double start1 = 1;
      if (e.args.size() == 3) {
        if (!ToNumber(Eval(*e.args[2]), &start1, &err)) return err;
      }
      if (start1 < 1) return CellError::kValue;
      std::string h = ToText(hay);
      size_t from = static_cast<size_t>(start1) - 1;
      if (from > h.size()) return CellError::kValue;
      size_t pos = h.find(ToText(needle), from);
      if (pos == std::string::npos) return CellError::kValue;
      return static_cast<double>(pos + 1);
    }
    if (f == "SUBSTITUTE") {
      // SUBSTITUTE(text, from, to)
      if (e.args.size() != 3) return CellError::kValue;
      CellValue t = Eval(*e.args[0]);
      CellValue from = Eval(*e.args[1]);
      CellValue to = Eval(*e.args[2]);
      if (IsError(t)) return t;
      if (IsError(from)) return from;
      if (IsError(to)) return to;
      return ReplaceAll(ToText(t), ToText(from), ToText(to));
    }
    if (f == "TRIM") {
      if (e.args.size() != 1) return CellError::kValue;
      CellValue v = Eval(*e.args[0]);
      if (IsError(v)) return v;
      // Spreadsheet TRIM also collapses interior runs of spaces.
      std::string text = ToText(v);
      std::string out;
      bool in_space = true;
      for (char c : text) {
        if (c == ' ') {
          if (!in_space) out.push_back(' ');
          in_space = true;
        } else {
          out.push_back(c);
          in_space = false;
        }
      }
      while (!out.empty() && out.back() == ' ') out.pop_back();
      return out;
    }
    if (f == "SUMIF" || f == "COUNTIF") {
      // SUMIF(range, criterion [, sum_range]) / COUNTIF(range, criterion).
      // Criteria: a plain value (equality, text case-insensitive) or a
      // string beginning with <, <=, >, >=, <> followed by a number.
      bool is_sum = (f == "SUMIF");
      if (e.args.size() < 2 || e.args.size() > (is_sum ? 3u : 2u)) {
        return CellError::kValue;
      }
      if (e.args[0]->kind != ExprKind::kRangeRef) return CellError::kValue;
      std::vector<CellValue> tested =
          resolver_->ResolveRange(e.args[0]->sheet, e.args[0]->range);
      std::vector<CellValue> summed;
      if (is_sum && e.args.size() == 3) {
        if (e.args[2]->kind != ExprKind::kRangeRef) return CellError::kValue;
        summed = resolver_->ResolveRange(e.args[2]->sheet, e.args[2]->range);
        if (summed.size() != tested.size()) return CellError::kValue;
      } else {
        summed = tested;
      }
      CellValue criterion = Eval(*e.args[1]);
      if (IsError(criterion)) return criterion;
      auto matches = [&](const CellValue& v) {
        if (IsText(criterion)) {
          const std::string& c = std::get<std::string>(criterion);
          // Comparison-operator criteria.
          for (const char* op : {"<=", ">=", "<>", "<", ">", "="}) {
            if (c.rfind(op, 0) == 0) {
              std::string rest = c.substr(std::string(op).size());
              double bound, val;
              CellError ignore;
              if (!ParseDouble(rest, &bound)) break;  // fall through to eq
              if (!ToNumber(v, &val, &ignore)) return false;
              std::string_view o = op;
              if (o == "<") return val < bound;
              if (o == "<=") return val <= bound;
              if (o == ">") return val > bound;
              if (o == ">=") return val >= bound;
              if (o == "<>") return val != bound;
              return val == bound;
            }
          }
        }
        if (IsBlank(v)) return false;
        return CompareValues(v, criterion) == 0;
      };
      double total = 0;
      int64_t count = 0;
      for (size_t i = 0; i < tested.size(); ++i) {
        if (IsError(tested[i])) return tested[i];
        if (!matches(tested[i])) continue;
        ++count;
        double d;
        CellError ignore;
        if (is_sum && ToNumber(summed[i], &d, &ignore)) total += d;
      }
      return is_sum ? CellValue(total) : CellValue(double(count));
    }
    if (f == "MATCH") {
      // MATCH(value, range) — exact match, 1-based index, else #VALUE!.
      if (e.args.size() != 2 || e.args[1]->kind != ExprKind::kRangeRef) {
        return CellError::kValue;
      }
      CellValue needle = Eval(*e.args[0]);
      if (IsError(needle)) return needle;
      std::vector<CellValue> values =
          resolver_->ResolveRange(e.args[1]->sheet, e.args[1]->range);
      for (size_t i = 0; i < values.size(); ++i) {
        if (IsError(values[i])) return values[i];
        if (CompareValues(values[i], needle) == 0 && !IsBlank(values[i])) {
          return static_cast<double>(i + 1);
        }
      }
      return CellError::kValue;
    }
    if (f == "INDEX") {
      // INDEX(range, row1 [, col1]) — 1-based.
      if (e.args.size() < 2 || e.args.size() > 3 ||
          e.args[0]->kind != ExprKind::kRangeRef) {
        return CellError::kValue;
      }
      const RangeRef& r = e.args[0]->range;
      double row1, col1 = 1;
      if (!ToNumber(Eval(*e.args[1]), &row1, &err)) return err;
      if (e.args.size() == 3) {
        if (!ToNumber(Eval(*e.args[2]), &col1, &err)) return err;
      }
      if (row1 < 1 || col1 < 1 || row1 > r.rows() || col1 > r.cols()) {
        return CellError::kRef;
      }
      CellRef cell{r.start.row + static_cast<int32_t>(row1) - 1,
                   r.start.col + static_cast<int32_t>(col1) - 1};
      return resolver_->ResolveCell(e.args[0]->sheet, cell);
    }
    if (f == "VLOOKUP") {
      // VLOOKUP(value, range, col1) — exact match on the first column.
      if (e.args.size() != 3 || e.args[1]->kind != ExprKind::kRangeRef) {
        return CellError::kValue;
      }
      CellValue needle = Eval(*e.args[0]);
      if (IsError(needle)) return needle;
      double col1;
      if (!ToNumber(Eval(*e.args[2]), &col1, &err)) return err;
      const RangeRef& r = e.args[1]->range;
      if (col1 < 1 || col1 > r.cols()) return CellError::kRef;
      for (int32_t row = r.start.row; row <= r.end.row; ++row) {
        CellValue key =
            resolver_->ResolveCell(e.args[1]->sheet, CellRef{row, r.start.col});
        if (IsError(key)) return key;
        if (!IsBlank(key) && CompareValues(key, needle) == 0) {
          return resolver_->ResolveCell(
              e.args[1]->sheet,
              CellRef{row, r.start.col + static_cast<int32_t>(col1) - 1});
        }
      }
      return CellError::kValue;  // #N/A in real sheets; we fold into #VALUE!
    }
    return CellError::kName;
  }

  CellResolver* resolver_;
};

void CollectReferencesInto(const Expr& e, std::vector<FormulaRef>* out) {
  switch (e.kind) {
    case ExprKind::kCellRef:
      out->push_back({e.sheet, RangeRef{e.cell, e.cell}});
      break;
    case ExprKind::kRangeRef:
      out->push_back({e.sheet, e.range});
      break;
    case ExprKind::kUnaryMinus:
      CollectReferencesInto(*e.lhs, out);
      break;
    case ExprKind::kBinary:
      CollectReferencesInto(*e.lhs, out);
      CollectReferencesInto(*e.rhs, out);
      break;
    case ExprKind::kCall:
      for (const auto& a : e.args) CollectReferencesInto(*a, out);
      break;
    default:
      break;
  }
}

std::string FormatBinaryOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kPow: return "^";
    case BinaryOp::kConcat: return "&";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
  }
  return "?";
}

}  // namespace

Result<std::unique_ptr<Expr>> ParseFormula(std::string_view source) {
  Lexer lexer(source);
  SLIM_ASSIGN_OR_RETURN(std::vector<Token> toks, lexer.Run());
  Parser parser(std::move(toks));
  return parser.Run();
}

std::string FormatFormula(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumber: return FormatNumber(e.number);
    case ExprKind::kString: {
      std::string out = "\"";
      out += ReplaceAll(e.text, "\"", "\"\"");
      out += "\"";
      return out;
    }
    case ExprKind::kBool: return e.boolean ? "TRUE" : "FALSE";
    case ExprKind::kCellRef: {
      std::string out;
      if (!e.sheet.empty()) out = e.sheet + "!";
      return out + FormatCell(e.cell);
    }
    case ExprKind::kRangeRef: {
      std::string out;
      if (!e.sheet.empty()) out = e.sheet + "!";
      // Always emit corner:corner form, even for 1x1 ranges.
      return out + FormatCell(e.range.start) + ":" + FormatCell(e.range.end);
    }
    case ExprKind::kUnaryMinus:
      // Binary operands already print parenthesized, so a bare "-" is
      // unambiguous — and keeps "-6" a formatting fixpoint.
      return "-" + FormatFormula(*e.lhs);
    case ExprKind::kBinary:
      return "(" + FormatFormula(*e.lhs) + FormatBinaryOp(e.op) +
             FormatFormula(*e.rhs) + ")";
    case ExprKind::kCall: {
      std::string out = e.callee + "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i) out += ",";
        out += FormatFormula(*e.args[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

CellValue EvaluateFormula(const Expr& expr, CellResolver* resolver) {
  Evaluator ev(resolver);
  return ev.Eval(expr);
}

std::vector<FormulaRef> CollectReferences(const Expr& expr) {
  std::vector<FormulaRef> out;
  CollectReferencesInto(expr, &out);
  return out;
}

}  // namespace slim::doc
