#include "doc/spreadsheet/workbook.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace slim::doc {

namespace {

// Escapes a string for one field of the native format (newline, tab,
// backslash).
std::string EscapeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        default: out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

// Adapter giving the formula evaluator access to workbook cells. Implements
// cycle detection: re-entering a cell mid-evaluation yields #CYCLE!.
class WorkbookResolver : public CellResolver {
 public:
  WorkbookResolver(Workbook* wb, std::string own_sheet)
      : wb_(wb), own_sheet_(std::move(own_sheet)) {}

  CellValue ResolveCell(const std::string& sheet, const CellRef& ref) override {
    const std::string& target = sheet.empty() ? own_sheet_ : sheet;
    return wb_->Evaluate(target, ref);
  }

  std::vector<CellValue> ResolveRange(const std::string& sheet,
                                      const RangeRef& range) override {
    const std::string& target = sheet.empty() ? own_sheet_ : sheet;
    return wb_->EvaluateRange(target, range);
  }

 private:
  Workbook* wb_;
  std::string own_sheet_;
};

Result<Worksheet*> Workbook::AddSheet(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("sheet name is empty");
  if (by_name_.count(name)) {
    return Status::AlreadyExists("sheet '" + name + "' already exists");
  }
  sheets_.push_back(std::make_unique<Worksheet>(name));
  Worksheet* ws = sheets_.back().get();
  by_name_[name] = ws;
  return ws;
}

Result<Worksheet*> Workbook::GetSheet(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no sheet named '" + name + "'");
  }
  return it->second;
}

Result<const Worksheet*> Workbook::GetSheet(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no sheet named '" + name + "'");
  }
  return static_cast<const Worksheet*>(it->second);
}

Status Workbook::RemoveSheet(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no sheet named '" + name + "'");
  }
  by_name_.erase(it);
  for (auto vit = sheets_.begin(); vit != sheets_.end(); ++vit) {
    if ((*vit)->name() == name) {
      sheets_.erase(vit);
      break;
    }
  }
  cached_version_ = UINT64_MAX;  // force cache reset
  return Status::OK();
}

uint64_t Workbook::GlobalVersion() const {
  uint64_t v = sheets_.size();
  for (const auto& s : sheets_) v += s->version() * 1315423911ULL;
  return v;
}

void Workbook::MaybeResetCache() {
  uint64_t v = GlobalVersion();
  if (v != cached_version_) {
    memo_.clear();
    in_progress_.clear();
    cached_version_ = v;
  }
}

CellValue Workbook::Evaluate(const std::string& sheet, const CellRef& ref) {
  MaybeResetCache();
  auto sheet_it = by_name_.find(sheet);
  if (sheet_it == by_name_.end()) return CellError::kRef;
  Worksheet* ws = sheet_it->second;

  const Cell* cell = ws->GetCell(ref);
  if (cell == nullptr) return std::monostate{};
  if (!cell->has_formula()) return cell->value;

  CellKey key{sheet, ref.row, ref.col};
  auto memo_it = memo_.find(key);
  if (memo_it != memo_.end()) return memo_it->second;
  if (in_progress_.count(key)) return CellError::kCycle;

  in_progress_[key] = true;
  const Expr* ast = ws->GetFormulaAst(ref);
  CellValue result;
  if (ast == nullptr) {
    result = CellError::kValue;  // formula text without AST: corrupt load
  } else {
    WorkbookResolver resolver(this, sheet);
    result = EvaluateFormula(*ast, &resolver);
  }
  in_progress_.erase(key);
  memo_[key] = result;
  return result;
}

std::vector<CellValue> Workbook::EvaluateRange(const std::string& sheet,
                                               const RangeRef& range) {
  RangeRef r = range.Normalized();
  std::vector<CellValue> out;
  out.reserve(static_cast<size_t>(r.size()));
  for (int32_t row = r.start.row; row <= r.end.row; ++row) {
    for (int32_t col = r.start.col; col <= r.end.col; ++col) {
      out.push_back(Evaluate(sheet, CellRef{row, col}));
    }
  }
  return out;
}

std::string Workbook::DisplayText(const std::string& sheet,
                                  const CellRef& ref) {
  return CellValueText(Evaluate(sheet, ref));
}

std::string Workbook::Serialize() const {
  std::ostringstream out;
  out << "SLIMBOOK 1\n";
  out << "FILE " << EscapeField(file_name_) << "\n";
  for (const auto& ws : sheets_) {
    out << "SHEET " << EscapeField(ws->name()) << "\n";
    ws->ForEachCell([&](const CellRef& ref, const Cell& cell) {
      out << "CELL " << FormatCell(ref) << " ";
      if (cell.has_formula()) {
        out << "F " << EscapeField(cell.formula);
      } else if (IsNumber(cell.value)) {
        out << "N " << FormatNumber(std::get<double>(cell.value));
      } else if (IsBool(cell.value)) {
        out << "B " << (std::get<bool>(cell.value) ? "TRUE" : "FALSE");
      } else if (IsText(cell.value)) {
        out << "S " << EscapeField(std::get<std::string>(cell.value));
      } else if (IsError(cell.value)) {
        out << "E " << CellErrorText(std::get<CellError>(cell.value));
      } else {
        out << "S ";  // blank stored cell (unusual, but representable)
      }
      out << "\n";
    });
    out << "ENDSHEET\n";
  }
  return out.str();
}

Result<std::unique_ptr<Workbook>> Workbook::Deserialize(
    std::string_view text) {
  auto wb = std::make_unique<Workbook>();
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || Trim(line) != "SLIMBOOK 1") {
    return Status::ParseError("missing SLIMBOOK header");
  }
  Worksheet* current = nullptr;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view lv = Trim(line);
    if (lv.empty()) continue;
    auto fail = [&](const std::string& what) -> Status {
      return Status::ParseError("workbook line " + std::to_string(line_no) +
                                ": " + what);
    };
    if (StartsWith(lv, "FILE ")) {
      wb->file_name_ = UnescapeField(lv.substr(5));
    } else if (StartsWith(lv, "SHEET ")) {
      Result<Worksheet*> ws = wb->AddSheet(UnescapeField(lv.substr(6)));
      if (!ws.ok()) return ws.status();
      current = ws.ValueOrDie();
    } else if (lv == "ENDSHEET") {
      current = nullptr;
    } else if (StartsWith(lv, "CELL ")) {
      if (current == nullptr) return fail("CELL outside SHEET");
      std::string_view rest = lv.substr(5);
      size_t sp1 = rest.find(' ');
      if (sp1 == std::string_view::npos) return fail("truncated CELL");
      SLIM_ASSIGN_OR_RETURN(CellRef ref, ParseCell(rest.substr(0, sp1)));
      std::string_view tagged = rest.substr(sp1 + 1);
      if (tagged.size() < 2 || tagged[1] != ' ') {
        // Allow "S " with empty payload (tagged == "S").
        if (tagged != "S") return fail("truncated CELL payload");
      }
      char tag = tagged[0];
      std::string payload =
          tagged.size() >= 2 ? UnescapeField(tagged.substr(2)) : "";
      switch (tag) {
        case 'F': {
          Status st = current->SetFormula(ref, payload);
          if (!st.ok()) return st.WithContext("line " + std::to_string(line_no));
          break;
        }
        case 'N': {
          double d;
          if (!ParseDouble(payload, &d)) return fail("bad number");
          current->SetValue(ref, d);
          break;
        }
        case 'B':
          current->SetValue(ref, payload == "TRUE");
          break;
        case 'S':
          current->SetValue(ref, payload);
          break;
        case 'E':
          // Persisted error literals reload as text of the error.
          current->SetValue(ref, payload);
          break;
        default:
          return fail(std::string("unknown cell tag '") + tag + "'");
      }
    } else {
      return fail("unrecognized record '" + std::string(lv) + "'");
    }
  }
  return wb;
}

Status Workbook::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << Serialize();
  if (!out.good()) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::unique_ptr<Workbook>> Workbook::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Workbook> wb,
                        Deserialize(buf.str()));
  if (wb->file_name().empty()) wb->set_file_name(path);
  return wb;
}

}  // namespace slim::doc
