#include "doc/spreadsheet/csv.h"

namespace slim::doc {

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text,
                                                       char sep) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // true once any char (or quote) seen this row

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    field_started = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case '\r':
        // Swallow; the following '\n' (if any) ends the row. A bare CR also
        // ends the row.
        if (i + 1 < text.size() && text[i + 1] == '\n') break;
        end_row();
        break;
      case '\n':
        end_row();
        break;
      default:
        if (c == sep) {
          end_field();
          field_started = true;
        } else {
          field.push_back(c);
          field_started = true;
        }
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows,
                     char sep) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out.push_back(sep);
      const std::string& f = row[i];
      bool need_quotes = f.find_first_of(std::string("\"\r\n") + sep) !=
                         std::string::npos;
      if (need_quotes) {
        out.push_back('"');
        for (char c : f) {
          if (c == '"') out += "\"\"";
          else out.push_back(c);
        }
        out.push_back('"');
      } else {
        out += f;
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status ImportCsv(std::string_view text, Worksheet* sheet, char sep) {
  SLIM_ASSIGN_OR_RETURN(auto rows, ParseCsv(text, sep));
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (rows[r][c].empty()) continue;
      CellRef ref{static_cast<int32_t>(r), static_cast<int32_t>(c)};
      // CSV content never holds live formulas; '='-prefixed fields import
      // as text to avoid surprise evaluation of foreign data.
      const std::string& f = rows[r][c];
      if (!f.empty() && f[0] == '=') {
        sheet->SetValue(ref, f);
      } else {
        SLIM_RETURN_NOT_OK(sheet->SetInput(ref, f));
      }
    }
  }
  return Status::OK();
}

std::string ExportCsv(const Worksheet& sheet, char sep) {
  Result<RangeRef> used = sheet.UsedRange();
  if (!used.ok()) return "";
  const RangeRef& r = used.ValueOrDie();
  std::vector<std::vector<std::string>> rows(
      static_cast<size_t>(r.rows()),
      std::vector<std::string>(static_cast<size_t>(r.cols())));
  sheet.ForEachCell([&](const CellRef& ref, const Cell& cell) {
    std::string text = cell.has_formula() ? cell.formula
                                          : CellValueText(cell.value);
    rows[static_cast<size_t>(ref.row - r.start.row)]
        [static_cast<size_t>(ref.col - r.start.col)] = std::move(text);
  });
  return WriteCsv(rows, sep);
}

}  // namespace slim::doc
