#include "doc/spreadsheet/a1.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace slim::doc {

RangeRef RangeRef::Normalized() const {
  RangeRef out = *this;
  if (out.start.row > out.end.row) std::swap(out.start.row, out.end.row);
  if (out.start.col > out.end.col) std::swap(out.start.col, out.end.col);
  return out;
}

std::string ColumnName(int32_t col) {
  std::string out;
  int64_t n = col;
  while (n >= 0) {
    out.push_back(static_cast<char>('A' + n % 26));
    n = n / 26 - 1;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

Result<int32_t> ParseColumnName(std::string_view letters) {
  if (letters.empty()) {
    return Status::ParseError("empty column name");
  }
  int64_t n = 0;
  for (char c : letters) {
    if (!std::isalpha(static_cast<unsigned char>(c))) {
      return Status::ParseError("non-letter in column name: '" +
                                std::string(letters) + "'");
    }
    n = n * 26 + (std::toupper(static_cast<unsigned char>(c)) - 'A' + 1);
    if (n > (1 << 24)) {
      return Status::OutOfRange("column name too large: '" +
                                std::string(letters) + "'");
    }
  }
  return static_cast<int32_t>(n - 1);
}

std::string FormatCell(const CellRef& cell) {
  return ColumnName(cell.col) + std::to_string(cell.row + 1);
}

std::string FormatRange(const RangeRef& range) {
  if (range.start == range.end) return FormatCell(range.start);
  return FormatCell(range.start) + ":" + FormatCell(range.end);
}

Result<CellRef> ParseCell(std::string_view text) {
  std::string_view s = Trim(text);
  size_t i = 0;
  if (i < s.size() && s[i] == '$') ++i;
  size_t letters_begin = i;
  while (i < s.size() && std::isalpha(static_cast<unsigned char>(s[i]))) ++i;
  size_t letters_end = i;
  if (i < s.size() && s[i] == '$') ++i;
  size_t digits_begin = i;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  if (letters_begin == letters_end || digits_begin == i || i != s.size()) {
    return Status::ParseError("malformed cell reference: '" +
                              std::string(text) + "'");
  }
  SLIM_ASSIGN_OR_RETURN(
      int32_t col, ParseColumnName(s.substr(letters_begin,
                                            letters_end - letters_begin)));
  long long row1 = 0;
  if (!ParseInt(s.substr(digits_begin, i - digits_begin), &row1) || row1 < 1 ||
      row1 > (1 << 30)) {
    return Status::ParseError("malformed row number in '" + std::string(text) +
                              "'");
  }
  return CellRef{static_cast<int32_t>(row1 - 1), col};
}

Result<RangeRef> ParseRange(std::string_view text) {
  std::string_view s = Trim(text);
  size_t colon = s.find(':');
  if (colon == std::string_view::npos) {
    SLIM_ASSIGN_OR_RETURN(CellRef cell, ParseCell(s));
    return RangeRef{cell, cell};
  }
  SLIM_ASSIGN_OR_RETURN(CellRef start, ParseCell(s.substr(0, colon)));
  SLIM_ASSIGN_OR_RETURN(CellRef end, ParseCell(s.substr(colon + 1)));
  return RangeRef{start, end}.Normalized();
}

}  // namespace slim::doc
