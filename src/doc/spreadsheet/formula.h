#ifndef SLIM_DOC_SPREADSHEET_FORMULA_H_
#define SLIM_DOC_SPREADSHEET_FORMULA_H_

/// \file formula.h
/// \brief Formula language for the spreadsheet substrate.
///
/// Supports the core of the spreadsheet expression language: numeric, string
/// and boolean literals; cell and range references (optionally
/// sheet-qualified, `Sheet2!B3:C9`); arithmetic `+ - * / ^`, unary `-`,
/// string concatenation `&`, comparisons `= <> < <= > >=`; and a standard
/// function library: aggregates (SUM, AVERAGE, MIN, MAX, COUNT, COUNTA,
/// SUMIF, COUNTIF), logic (IF, AND, OR, NOT), lookup (VLOOKUP, INDEX,
/// MATCH), numeric (ABS, ROUND, SQRT), and text (CONCAT, LEN, UPPER,
/// LOWER, MID, LEFT, RIGHT, FIND, SUBSTITUTE, TRIM).

#include <memory>
#include <string>
#include <vector>

#include "doc/spreadsheet/a1.h"
#include "doc/spreadsheet/cell.h"
#include "util/result.h"

namespace slim::doc {

/// \brief Binary operators of the formula language.
enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kPow, kConcat,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

/// \brief AST node kinds.
enum class ExprKind {
  kNumber, kString, kBool, kCellRef, kRangeRef, kUnaryMinus, kBinary, kCall,
};

/// \brief A formula AST node.
struct Expr {
  ExprKind kind;

  // kNumber / kString / kBool payloads.
  double number = 0;
  std::string text;
  bool boolean = false;

  // kCellRef / kRangeRef payloads; `sheet` empty means the current sheet.
  std::string sheet;
  CellRef cell;
  RangeRef range;

  // kUnaryMinus / kBinary payloads.
  BinaryOp op = BinaryOp::kAdd;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;

  // kCall payload.
  std::string callee;  // upper-cased function name
  std::vector<std::unique_ptr<Expr>> args;
};

/// \brief Parses formula source text. `source` must NOT include the leading
/// '=' (the worksheet strips it).
Result<std::unique_ptr<Expr>> ParseFormula(std::string_view source);

/// \brief Serializes an AST back to formula text (canonical spacing).
std::string FormatFormula(const Expr& expr);

/// \brief Supplies cell/range values to the evaluator.
///
/// The worksheet/workbook implements this; the evaluator stays independent
/// of storage and of recalculation policy (cycle detection lives in the
/// resolver, which returns CellError::kCycle values on re-entry).
class CellResolver {
 public:
  virtual ~CellResolver() = default;

  /// Value of one cell. `sheet` empty means the formula's own sheet.
  virtual CellValue ResolveCell(const std::string& sheet,
                                const CellRef& ref) = 0;

  /// Values of every cell in a range, row-major; blanks included.
  virtual std::vector<CellValue> ResolveRange(const std::string& sheet,
                                              const RangeRef& range) = 0;
};

/// \brief Evaluates a parsed formula. Errors propagate as CellError values
/// (spreadsheet semantics), not Statuses: a formula always evaluates to a
/// CellValue.
CellValue EvaluateFormula(const Expr& expr, CellResolver* resolver);

/// \brief Collects every cell the formula reads (ranges expanded to their
/// corner form, not enumerated). Used for dependency analysis.
struct FormulaRef {
  std::string sheet;  // empty == own sheet
  RangeRef range;     // single cells become 1x1 ranges
};
std::vector<FormulaRef> CollectReferences(const Expr& expr);

}  // namespace slim::doc

#endif  // SLIM_DOC_SPREADSHEET_FORMULA_H_
