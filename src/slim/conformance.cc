#include "slim/conformance.h"

#include <map>

#include "slim/vocabulary.h"
#include "util/strings.h"

namespace slim::store {

std::string_view ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kUnknownType: return "UnknownType";
    case ViolationKind::kUndeclaredProperty: return "UndeclaredProperty";
    case ViolationKind::kWrongObjectKind: return "WrongObjectKind";
    case ViolationKind::kDanglingLink: return "DanglingLink";
    case ViolationKind::kWrongTargetType: return "WrongTargetType";
    case ViolationKind::kCardinalityLow: return "CardinalityLow";
    case ViolationKind::kCardinalityHigh: return "CardinalityHigh";
  }
  return "Unknown";
}

std::string ConformanceReport::ToString() const {
  std::string out = "checked " + std::to_string(instances_checked) +
                    " instances: " + std::to_string(violations.size()) +
                    " violation(s)";
  for (const Violation& v : violations) {
    out += "\n  [";
    out += ViolationKindName(v.kind);
    out += "] ";
    out += v.instance;
    if (!v.property.empty()) {
      out += " ." + v.property;
    }
    out += ": " + v.message;
  }
  return out;
}

namespace {

// Trailing path segment of a type resource ("schema:s/Elem" -> "Elem").
std::string TrailingSegment(const std::string& resource) {
  size_t slash = resource.find_last_of('/');
  return slash == std::string::npos ? resource : resource.substr(slash + 1);
}

}  // namespace

ConformanceReport CheckConformance(const trim::TripleStore& store,
                                   const SchemaDef& schema,
                                   const ModelDef& model) {
  ConformanceReport report;

  // Pin one epoch for the whole check: the per-instance re-reads below must
  // see the same triples as the instance sweep, or a concurrent writer could
  // make the report self-inconsistent.
  trim::TripleStore::Snapshot snap(store);

  // Collect instances and their (resolved) schema elements.
  std::map<std::string, std::string> instance_element;  // id -> element
  std::vector<std::pair<std::string, std::string>> unknown;  // id, type
  store.SelectEach(
      trim::TriplePattern::ByProperty(Vocab::kType),
      [&](const trim::Triple& t) {
        if (!StartsWith(t.subject, "inst:") || !t.object.is_resource()) {
          return true;
        }
        const std::string element = TrailingSegment(t.object.text);
        if (schema.elements().count(element)) {
          instance_element[t.subject] = element;
        } else {
          unknown.push_back({t.subject, t.object.text});
        }
        return true;
      });

  report.instances_checked = instance_element.size() + unknown.size();
  for (const auto& [id, type] : unknown) {
    report.violations.push_back({ViolationKind::kUnknownType, id, "",
                                 "type '" + type +
                                     "' is not declared by schema '" +
                                     schema.name() + "'"});
  }

  for (const auto& [id, element] : instance_element) {
    std::vector<const SchemaConnectorDef*> connectors =
        schema.ConnectorsFor(element);
    std::map<std::string, int> counts;

    store.SelectEach(
        trim::TriplePattern::BySubject(id), [&](const trim::Triple& t) {
          if (t.property == Vocab::kType) return true;
          ++counts[t.property];
          // Find the declared connector.
          const SchemaConnectorDef* decl = nullptr;
          for (const SchemaConnectorDef* c : connectors) {
            if (c->name == t.property) decl = c;
          }
          if (decl == nullptr) {
            report.violations.push_back(
                {ViolationKind::kUndeclaredProperty, id, t.property,
                 "no connector '" + t.property + "' declared on element '" +
                     element + "'"});
            return true;
          }
          bool range_is_literal =
              model.FindConstruct(decl->range).has_value() &&
              *model.FindConstruct(decl->range) ==
                  ConstructKind::kLiteralConstruct;
          if (range_is_literal) {
            if (t.object.is_resource()) {
              report.violations.push_back(
                  {ViolationKind::kWrongObjectKind, id, t.property,
                   "expected a literal (" + decl->range +
                       "), found a link to '" + t.object.text + "'"});
            }
            return true;
          }
          // Resource-valued connector.
          if (!t.object.is_resource()) {
            report.violations.push_back(
                {ViolationKind::kWrongObjectKind, id, t.property,
                 "expected a link to a '" + decl->range +
                     "', found literal \"" + t.object.text + "\""});
            return true;
          }
          auto target_type = store.GetOne(t.object.text, Vocab::kType);
          if (!target_type) {
            report.violations.push_back(
                {ViolationKind::kDanglingLink, id, t.property,
                 "target '" + t.object.text + "' does not exist"});
            return true;
          }
          std::string target_element = TrailingSegment(target_type->text);
          bool compatible = target_element == decl->range;
          if (!compatible) {
            // Allow model-level generalization compatibility.
            auto tgt_construct = schema.ConstructOf(target_element);
            auto range_construct = schema.ConstructOf(decl->range);
            if (tgt_construct.ok() && range_construct.ok() &&
                model.IsA(tgt_construct.ValueOrDie(),
                          range_construct.ValueOrDie())) {
              compatible = true;
            }
          }
          if (!compatible) {
            report.violations.push_back(
                {ViolationKind::kWrongTargetType, id, t.property,
                 "target '" + t.object.text + "' is a '" + target_element +
                     "', expected '" + decl->range + "'"});
          }
          return true;
        });

    // Cardinalities (including required-but-absent).
    for (const SchemaConnectorDef* c : connectors) {
      int n = counts.count(c->name) ? counts[c->name] : 0;
      if (n < c->min_card) {
        report.violations.push_back(
            {ViolationKind::kCardinalityLow, id, c->name,
             std::to_string(n) + " occurrence(s), minimum " +
                 std::to_string(c->min_card)});
      }
      if (c->max_card != kMany && n > c->max_card) {
        report.violations.push_back(
            {ViolationKind::kCardinalityHigh, id, c->name,
             std::to_string(n) + " occurrence(s), maximum " +
                 std::to_string(c->max_card)});
      }
    }
  }
  return report;
}

}  // namespace slim::store
