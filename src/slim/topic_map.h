#ifndef SLIM_SLIM_TOPIC_MAP_H_
#define SLIM_SLIM_TOPIC_MAP_H_

/// \file topic_map.h
/// \brief A second superimposed model: ISO 13250 Topic Maps (paper §1/§4.3:
/// "we see models for information emerging that are inherently superimposed
/// including topic maps, RDF, and XLink" / "we choose to be flexible at the
/// data-model level by providing storage of superimposed information for
/// various models").
///
/// The Bundle-Scrap model is one point in model space; expressing Topic
/// Maps in the same metamodel — and mapping pad data onto it — demonstrates
/// the flexibility claim concretely. The mapping below is the standard
/// interpretation: a Bundle groups related material (a Topic); a Scrap is
/// evidence in a base document (an Occurrence); a MarkHandle's mark is the
/// occurrence's locator.

#include "slim/mapping.h"
#include "slim/model.h"
#include "slim/schema.h"

namespace slim::store {

/// \brief The Topic Map data model expressed in the metamodel.
///
/// Constructs: Topic, Association, Occurrence, plus the Locator mark
/// construct. Connectors: topicName (Topic->String 1..1), occurrence
/// (Topic->Occurrence 0..*), member (Association->Topic 2..*),
/// associationType (Association->String 1..1), occurrenceLabel
/// (Occurrence->String 0..1), locator (Occurrence->Locator 0..*),
/// locatorRef (Locator->String 1..1), relatedTo (Topic->Topic 0..*).
ModelDef BuildTopicMapModel();

/// \brief The identity schema of the Topic Map model ("topicmap").
Result<SchemaDef> TopicMapSchema();

/// \brief The Bundle-Scrap -> Topic-Map instance mapping (schema-to-schema
/// over the "slimpad" identity schema): Bundle=>Topic, Scrap=>Occurrence,
/// MarkHandle=>Locator, with properties renamed accordingly. Pad-geometry
/// properties (positions, sizes) have no topic-map counterpart and are
/// dropped.
Mapping BundleScrapToTopicMap();

}  // namespace slim::store

#endif  // SLIM_SLIM_TOPIC_MAP_H_
