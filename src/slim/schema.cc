#include "slim/schema.h"

#include "slim/vocabulary.h"
#include "util/strings.h"

namespace slim::store {

Status SchemaDef::AddElement(const std::string& element,
                             const std::string& construct,
                             const ModelDef& model) {
  if (model.name() != model_name_) {
    return Status::InvalidArgument("schema '" + name_ + "' is over model '" +
                                   model_name_ + "', not '" + model.name() +
                                   "'");
  }
  if (element.empty()) return Status::InvalidArgument("empty element name");
  if (elements_.count(element)) {
    return Status::AlreadyExists("schema element '" + element +
                                 "' already declared");
  }
  auto kind = model.FindConstruct(construct);
  if (!kind) {
    return Status::NotFound("construct '" + construct +
                            "' not declared by model '" + model.name() + "'");
  }
  if (*kind == ConstructKind::kLiteralConstruct) {
    return Status::InvalidArgument(
        "schema elements cannot conform to literal constructs ('" + construct +
        "')");
  }
  elements_[element] = construct;
  return Status::OK();
}

Status SchemaDef::AddConnector(SchemaConnectorDef connector,
                               const ModelDef& model) {
  if (model.name() != model_name_) {
    return Status::InvalidArgument("schema/model mismatch");
  }
  // Connector names are unique per domain element (two elements may both
  // declare a "name" attribute).
  for (const SchemaConnectorDef& c : connectors_) {
    if (c.name == connector.name && c.domain == connector.domain) {
      return Status::AlreadyExists("schema connector '" + connector.name +
                                   "' already declared on element '" +
                                   connector.domain + "'");
    }
  }
  const ConnectorDef* mc = model.FindConnector(connector.model_connector);
  if (mc == nullptr) {
    return Status::NotFound("model connector '" + connector.model_connector +
                            "' not declared by model '" + model.name() + "'");
  }
  // Domain must be a declared element whose construct specializes the model
  // connector's domain.
  auto dom_it = elements_.find(connector.domain);
  if (dom_it == elements_.end()) {
    return Status::NotFound("schema connector '" + connector.name +
                            "': domain element '" + connector.domain +
                            "' not declared");
  }
  if (!model.IsA(dom_it->second, mc->domain)) {
    return Status::Conformance("schema connector '" + connector.name +
                               "': domain element conforms to '" +
                               dom_it->second + "' which is not a '" +
                               mc->domain + "'");
  }
  // Range: literal construct or declared element.
  auto range_kind = model.FindConstruct(connector.range);
  if (range_kind && *range_kind == ConstructKind::kLiteralConstruct) {
    if (!model.IsA(connector.range, mc->range)) {
      return Status::Conformance("schema connector '" + connector.name +
                                 "': literal range '" + connector.range +
                                 "' does not match model range '" + mc->range +
                                 "'");
    }
  } else {
    auto range_it = elements_.find(connector.range);
    if (range_it == elements_.end()) {
      return Status::NotFound("schema connector '" + connector.name +
                              "': range '" + connector.range +
                              "' is neither a literal construct nor a "
                              "declared element");
    }
    if (!model.IsA(range_it->second, mc->range)) {
      return Status::Conformance("schema connector '" + connector.name +
                                 "': range element conforms to '" +
                                 range_it->second + "' which is not a '" +
                                 mc->range + "'");
    }
  }
  // Cardinality must narrow the model connector's bounds.
  if (connector.min_card < mc->min_card ||
      (mc->max_card != kMany &&
       (connector.max_card == kMany || connector.max_card > mc->max_card))) {
    return Status::Conformance("schema connector '" + connector.name +
                               "': cardinality must narrow the model "
                               "connector's bounds");
  }
  connectors_.push_back(std::move(connector));
  return Status::OK();
}

Result<std::string> SchemaDef::ConstructOf(const std::string& element) const {
  auto it = elements_.find(element);
  if (it == elements_.end()) {
    return Status::NotFound("schema element '" + element +
                            "' not declared in schema '" + name_ + "'");
  }
  return it->second;
}

const SchemaConnectorDef* SchemaDef::FindConnector(
    const std::string& name) const {
  for (const SchemaConnectorDef& c : connectors_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<const SchemaConnectorDef*> SchemaDef::ConnectorsFor(
    const std::string& element) const {
  std::vector<const SchemaConnectorDef*> out;
  for (const SchemaConnectorDef& c : connectors_) {
    if (c.domain == element) out.push_back(&c);
  }
  return out;
}

Status SchemaDef::ToTriples(trim::TripleStore* store) const {
  if (store == nullptr) return Status::InvalidArgument("null store");
  const std::string schema_res = SchemaResource();
  SLIM_RETURN_NOT_OK(store->AddLiteral(schema_res, Vocab::kName, name_));
  SLIM_RETURN_NOT_OK(store->AddResource(schema_res, Vocab::kSchemaOf,
                                        "model:" + model_name_));
  for (const auto& [element, construct] : elements_) {
    const std::string res = ElementResource(element);
    SLIM_RETURN_NOT_OK(store->AddLiteral(res, Vocab::kName, element));
    SLIM_RETURN_NOT_OK(store->AddResource(res, Vocab::kInSchema, schema_res));
    SLIM_RETURN_NOT_OK(store->AddResource(
        res, Vocab::kConformsTo, "model:" + model_name_ + "/" + construct));
  }
  for (const SchemaConnectorDef& c : connectors_) {
    // Connector resources are qualified by domain so same-named connectors
    // on different elements get distinct ids.
    const std::string res = ElementResource(c.domain + "." + c.name);
    SLIM_RETURN_NOT_OK(store->AddLiteral(res, Vocab::kName, c.name));
    SLIM_RETURN_NOT_OK(store->AddResource(res, Vocab::kInSchema, schema_res));
    SLIM_RETURN_NOT_OK(store->AddResource(
        res, Vocab::kConformsTo,
        "model:" + model_name_ + "/" + c.model_connector));
    SLIM_RETURN_NOT_OK(
        store->AddResource(res, Vocab::kDomain, ElementResource(c.domain)));
    // Literal-construct ranges point into the model namespace; element
    // ranges into the schema namespace.
    if (elements_.count(c.range)) {
      SLIM_RETURN_NOT_OK(
          store->AddResource(res, Vocab::kRange, ElementResource(c.range)));
    } else {
      SLIM_RETURN_NOT_OK(store->AddResource(
          res, Vocab::kRange, "model:" + model_name_ + "/" + c.range));
    }
    SLIM_RETURN_NOT_OK(
        store->AddLiteral(res, Vocab::kMinCard, std::to_string(c.min_card)));
    SLIM_RETURN_NOT_OK(store->AddLiteral(
        res, Vocab::kMaxCard,
        c.max_card == kMany ? "*" : std::to_string(c.max_card)));
  }
  return Status::OK();
}

Result<SchemaDef> SchemaDef::FromTriples(const trim::TripleStore& store,
                                         const std::string& schema_name) {
  const std::string schema_res = "schema:" + schema_name;
  auto model_obj = store.GetOne(schema_res, Vocab::kSchemaOf);
  if (!model_obj) {
    return Status::NotFound("schema '" + schema_name +
                            "' not present in store");
  }
  std::string model_name = model_obj->text;
  const std::string model_prefix = "model:";
  if (StartsWith(model_name, model_prefix)) {
    model_name = model_name.substr(model_prefix.size());
  }
  SLIM_ASSIGN_OR_RETURN(ModelDef model,
                        ModelDef::FromTriples(store, model_name));

  SchemaDef schema(schema_name, model_name);
  const std::string prefix = schema_res + "/";
  auto local_name = [&](const std::string& resource) -> Result<std::string> {
    if (!StartsWith(resource, prefix)) {
      return Status::ParseError("resource '" + resource +
                                "' is not in schema '" + schema_name + "'");
    }
    return resource.substr(prefix.size());
  };
  auto model_local = [&](const std::string& resource) -> std::string {
    std::string p = "model:" + model_name + "/";
    return StartsWith(resource, p) ? resource.substr(p.size()) : resource;
  };

  std::vector<trim::Triple> members =
      store.Select(trim::TriplePattern{std::nullopt, Vocab::kInSchema,
                                       trim::Object::Resource(schema_res)});
  // Pass 1: elements (conformsTo a construct that is not a connector).
  std::vector<std::string> connector_resources;
  for (const trim::Triple& t : members) {
    auto conforms = store.GetOne(t.subject, Vocab::kConformsTo);
    if (!conforms) {
      return Status::ParseError("schema member '" + t.subject +
                                "' missing slim:conformsTo");
    }
    std::string target = model_local(conforms->text);
    if (model.FindConnector(target) != nullptr) {
      connector_resources.push_back(t.subject);
      continue;
    }
    SLIM_ASSIGN_OR_RETURN(std::string element, local_name(t.subject));
    SLIM_RETURN_NOT_OK(schema.AddElement(element, target, model));
  }
  // Pass 2: connectors. The plain name comes from the kName literal (the
  // resource id is domain-qualified).
  for (const std::string& res : connector_resources) {
    SchemaConnectorDef c;
    auto cname = store.GetOne(res, Vocab::kName);
    if (!cname) {
      return Status::ParseError("schema connector '" + res +
                                "' missing slim:name");
    }
    c.name = cname->text;
    auto conforms = store.GetOne(res, Vocab::kConformsTo);
    c.model_connector = model_local(conforms->text);
    auto domain = store.GetOne(res, Vocab::kDomain);
    auto range = store.GetOne(res, Vocab::kRange);
    if (!domain || !range) {
      return Status::ParseError("schema connector '" + res +
                                "' missing domain/range");
    }
    SLIM_ASSIGN_OR_RETURN(c.domain, local_name(domain->text));
    if (StartsWith(range->text, prefix)) {
      c.range = range->text.substr(prefix.size());
    } else {
      c.range = model_local(range->text);
    }
    auto min_card = store.GetOne(res, Vocab::kMinCard);
    auto max_card = store.GetOne(res, Vocab::kMaxCard);
    long long n = 0;
    if (min_card && ParseInt(min_card->text, &n)) {
      c.min_card = static_cast<int>(n);
    }
    if (max_card) {
      if (max_card->text == "*") {
        c.max_card = kMany;
      } else if (ParseInt(max_card->text, &n)) {
        c.max_card = static_cast<int>(n);
      }
    }
    SLIM_RETURN_NOT_OK(schema.AddConnector(std::move(c), model));
  }
  return schema;
}

Result<SchemaDef> IdentitySchema(const ModelDef& model,
                                 const std::string& schema_name) {
  SchemaDef schema(schema_name, model.name());
  for (const auto& [construct, kind] : model.constructs()) {
    if (kind == ConstructKind::kLiteralConstruct) continue;
    SLIM_RETURN_NOT_OK(schema.AddElement(construct, construct, model));
  }
  for (const ConnectorDef& mc : model.connectors()) {
    SchemaConnectorDef sc;
    sc.name = mc.name;
    sc.model_connector = mc.name;
    sc.domain = mc.domain;
    sc.range = mc.range;
    sc.min_card = mc.min_card;
    sc.max_card = mc.max_card;
    SLIM_RETURN_NOT_OK(schema.AddConnector(std::move(sc), model));
  }
  return schema;
}

}  // namespace slim::store
