#ifndef SLIM_SLIM_SLOW_QUERY_H_
#define SLIM_SLIM_SLOW_QUERY_H_

/// \file slow_query.h
/// \brief Slow-query sampler: analyzed plans of queries over a latency
/// threshold, kept in a bounded ring and pushed into the diagnostics
/// substrate.
///
/// When a threshold is armed (`set_threshold_us`), `store::Execute` runs
/// every query through the ANALYZE executor and hands the finished plan to
/// `MaybeRecord`. A plan at or over the threshold is (1) stored in a
/// bounded ring readable via `Recent()`, (2) counted into the
/// `slim.query.slow.*` metric family, (3) emitted as a warn-level log
/// event carrying the plan JSON — which the flight recorder captures, so a
/// post-mortem bundle explains the slow query — and (4) offered to the
/// flight recorder for an on-disk bundle via SLIM_OBS_DUMP_ON_ERROR
/// semantics (a bundle is written only when a dump path is configured).
///
/// The sampler is thread-safe: the threshold is an atomic read on the
/// query hot path, and the ring takes a mutex only when a slow query is
/// actually recorded.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "slim/query_plan.h"
#include "util/instrumented_mutex.h"
#include "util/thread_annotations.h"

namespace slim::store {

class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 32);

  /// Arms the sampler: queries taking >= `us` microseconds are recorded
  /// (0 samples every query — the test hook). Negative disarms.
  void set_threshold_us(int64_t us) {
    threshold_us_.store(us, std::memory_order_relaxed);
  }
  int64_t threshold_us() const {
    return threshold_us_.load(std::memory_order_relaxed);
  }
  /// True when armed; Execute consults this before paying ANALYZE costs.
  bool enabled() const { return threshold_us() >= 0; }

  /// Records `plan` if it crossed the threshold. Returns true when the
  /// plan was recorded.
  bool MaybeRecord(const QueryPlan& plan);

  /// Most recent recorded plans, oldest first.
  std::vector<QueryPlan> Recent() const;
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  void Clear();

 private:
  std::atomic<int64_t> threshold_us_{-1};
  std::atomic<uint64_t> recorded_{0};
  mutable util::InstrumentedMutex mu_{"slim.slow_query.ring"};
  size_t capacity_ GUARDED_BY(mu_);
  std::deque<QueryPlan> ring_ GUARDED_BY(mu_);
};

/// Process-wide sampler consulted by store::Execute. First use arms it
/// from the SLIM_SLOW_QUERY_US environment variable when that is set.
SlowQueryLog& DefaultSlowQueryLog();

}  // namespace slim::store

#endif  // SLIM_SLIM_SLOW_QUERY_H_
