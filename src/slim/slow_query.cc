#include "slim/slow_query.h"

#include <cstdlib>

#include "obs/obs.h"

namespace slim::store {

SlowQueryLog::SlowQueryLog(size_t capacity) : capacity_(capacity) {}

bool SlowQueryLog::MaybeRecord(const QueryPlan& plan) {
  int64_t threshold = threshold_us();
  if (threshold < 0 || plan.total_us < static_cast<uint64_t>(threshold)) {
    return false;
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  SLIM_OBS_COUNT("slim.query.slow.count");
  SLIM_OBS_HISTOGRAM("slim.query.slow.latency_us", plan.total_us);
  {
    util::MutexLock lock(&mu_);
    ring_.push_back(plan);
    while (ring_.size() > capacity_) ring_.pop_front();
  }
  // The plan JSON rides on a structured event so the flight recorder's ring
  // (a LogSink) holds it; a post-mortem bundle then explains the slowness.
  SLIM_OBS_LOG(kWarn, "slim", "slow query",
               {{"query", plan.query_text},
                {"total_us", std::to_string(plan.total_us)},
                {"solutions", std::to_string(plan.solutions)},
                {"plan", plan.ToJson()}});
  SLIM_OBS_DUMP_ON_ERROR("slim.query.slow");
  return true;
}

std::vector<QueryPlan> SlowQueryLog::Recent() const {
  util::MutexLock lock(&mu_);
  return {ring_.begin(), ring_.end()};
}

void SlowQueryLog::Clear() {
  util::MutexLock lock(&mu_);
  ring_.clear();
}

SlowQueryLog& DefaultSlowQueryLog() {
  static SlowQueryLog* log = [] {
    auto* out = new SlowQueryLog();
    if (const char* env = std::getenv("SLIM_SLOW_QUERY_US")) {
      out->set_threshold_us(std::atoll(env));
    }
    return out;
  }();
  return *log;
}

}  // namespace slim::store
