#include "slim/mapping.h"

#include <map>

#include "slim/vocabulary.h"
#include "util/strings.h"

namespace slim::store {

Status Mapping::AddRule(TypeRule rule) {
  if (rule.from_type.empty() || rule.to_type.empty()) {
    return Status::InvalidArgument("rule types must be non-empty");
  }
  for (const TypeRule& r : rules_) {
    if (r.from_type == rule.from_type) {
      return Status::AlreadyExists("mapping '" + name_ +
                                   "' already has a rule for '" +
                                   rule.from_type + "'");
    }
  }
  rules_.push_back(std::move(rule));
  return Status::OK();
}

const TypeRule* Mapping::FindRule(const std::string& type_resource) const {
  for (const TypeRule& r : rules_) {
    if (r.from_type == type_resource) return &r;
  }
  return nullptr;
}

Result<MappingStats> Mapping::Apply(const trim::TripleStore& source,
                                    trim::TripleStore* target) const {
  if (target == nullptr) return Status::InvalidArgument("null target store");
  MappingStats stats;

  // The per-instance property reads below must see the same source state as
  // the type sweep; pin one epoch for the whole mapping run.
  trim::TripleStore::Snapshot snap(source);

  // Gather instances and their types.
  std::map<std::string, std::string> instance_type;
  source.SelectEach(trim::TriplePattern::ByProperty(Vocab::kType),
                    [&](const trim::Triple& t) {
                      if (StartsWith(t.subject, "inst:") &&
                          t.object.is_resource()) {
                        instance_type[t.subject] = t.object.text;
                      }
                      return true;
                    });

  for (const auto& [id, type] : instance_type) {
    const TypeRule* rule = FindRule(type);
    if (rule == nullptr && drop_unmapped_types_) {
      ++stats.instances_dropped;
      continue;
    }
    // Type triple.
    const std::string& out_type = rule != nullptr ? rule->to_type : type;
    Status st = target->AddResource(id, Vocab::kType, out_type);
    if (!st.ok() && !st.IsAlreadyExists()) return st;
    if (st.ok()) ++stats.triples_written;
    if (rule != nullptr) {
      ++stats.instances_mapped;
    } else {
      ++stats.instances_copied;
    }

    // Property triples.
    Status failure;
    source.SelectEach(
        trim::TriplePattern::BySubject(id), [&](const trim::Triple& t) {
          if (t.property == Vocab::kType) return true;
          std::string out_prop = t.property;
          if (rule != nullptr) {
            const PropertyRule* prule = nullptr;
            for (const PropertyRule& p : rule->properties) {
              if (p.from == t.property) prule = &p;
            }
            if (prule != nullptr) {
              out_prop = prule->to;
            } else if (rule->drop_unmapped_properties) {
              ++stats.properties_dropped;
              return true;
            }
          }
          Status add = target->Add(trim::Triple{id, out_prop, t.object},
                                   /*allow_duplicates=*/true);
          if (!add.ok()) {
            failure = add;
            return false;
          }
          ++stats.triples_written;
          return true;
        });
    if (!failure.ok()) return failure;
  }
  return stats;
}

}  // namespace slim::store
