#include "slim/topic_map.h"

namespace slim::store {

ModelDef BuildTopicMapModel() {
  ModelDef model("topic-map");
  (void)model.AddConstruct("String", ConstructKind::kLiteralConstruct);
  (void)model.AddConstruct("Topic", ConstructKind::kConstruct);
  (void)model.AddConstruct("Association", ConstructKind::kConstruct);
  (void)model.AddConstruct("Occurrence", ConstructKind::kConstruct);
  (void)model.AddConstruct("Locator", ConstructKind::kMarkConstruct);
  (void)model.AddConnector({"topicName", "Topic", "String", 1, 1});
  (void)model.AddConnector({"occurrence", "Topic", "Occurrence", 0, kMany});
  (void)model.AddConnector({"relatedTo", "Topic", "Topic", 0, kMany});
  (void)model.AddConnector({"member", "Association", "Topic", 2, kMany});
  (void)model.AddConnector({"associationType", "Association", "String", 1, 1});
  (void)model.AddConnector({"occurrenceLabel", "Occurrence", "String", 0, 1});
  (void)model.AddConnector({"locator", "Occurrence", "Locator", 0, kMany});
  (void)model.AddConnector({"locatorRef", "Locator", "String", 1, 1});
  // A topic may nest narrower topics (thesaurus-style), mirroring bundle
  // nesting under the mapping.
  (void)model.AddConnector({"narrower", "Topic", "Topic", 0, kMany});
  return model;
}

Result<SchemaDef> TopicMapSchema() {
  return IdentitySchema(BuildTopicMapModel(), "topicmap");
}

Mapping BundleScrapToTopicMap() {
  Mapping mapping("bundle-scrap-to-topic-map");
  // Bundle => Topic.
  (void)mapping.AddRule({"schema:slimpad/Bundle", "schema:topicmap/Topic",
                         {{"bundleName", "topicName"},
                          {"bundleContent", "occurrence"},
                          {"nestedBundle", "narrower"}},
                         /*drop_unmapped_properties=*/true});
  // Scrap => Occurrence. Geometry, annotations and scrap-to-scrap links
  // have no occurrence counterpart and are dropped.
  (void)mapping.AddRule({"schema:slimpad/Scrap",
                         "schema:topicmap/Occurrence",
                         {{"scrapName", "occurrenceLabel"},
                          {"scrapMark", "locator"}},
                         /*drop_unmapped_properties=*/true});
  // MarkHandle => Locator.
  (void)mapping.AddRule({"schema:slimpad/MarkHandle",
                         "schema:topicmap/Locator",
                         {{"markId", "locatorRef"}},
                         /*drop_unmapped_properties=*/true});
  // SlimPad itself has no topic-map counterpart.
  (void)mapping.AddRule({"schema:slimpad/SlimPad",
                         "schema:topicmap/Topic",
                         {{"padName", "topicName"},
                          {"rootBundle", "narrower"}},
                         /*drop_unmapped_properties=*/true});
  return mapping;
}

}  // namespace slim::store
