#ifndef SLIM_SLIM_INSTANCE_H_
#define SLIM_SLIM_INSTANCE_H_

/// \file instance.h
/// \brief Instance-layer helpers: creating and reading typed data in TRIM.
///
/// Instances are resources typed (slim:type) by a schema element and
/// carrying connector-named properties. Crucially, the layer supports the
/// paper's "schema-later" / "information-first" entry (§3): instances may
/// be created with *free* type names before any schema declares them; a
/// schema can be induced afterwards (InduceSchema) and conformance checked
/// then (conformance.h).

#include <string>
#include <vector>

#include "slim/schema.h"
#include "trim/triple_store.h"
#include "util/id_generator.h"
#include "util/result.h"

namespace slim::store {

/// \brief Writer/reader for instance data in a triple store.
class InstanceGraph {
 public:
  /// `store` must outlive the graph. Instance ids are "inst:<n>".
  explicit InstanceGraph(trim::TripleStore* store)
      : store_(store), ids_("inst:") {}

  trim::TripleStore* store() { return store_; }

  /// Creates an instance typed by `type_resource` (a schema element
  /// resource like "schema:rounds/PatientBundle", or a free name for
  /// schema-later entry). Returns the new instance id.
  Result<std::string> Create(const std::string& type_resource);

  /// Creates with a caller-chosen id (must be unused).
  Status CreateWithId(const std::string& id, const std::string& type_resource);

  /// Type resource of an instance.
  Result<std::string> TypeOf(const std::string& id) const;

  /// Deletes the instance: all its triples and all triples pointing at it.
  /// Returns how many triples were removed.
  size_t Delete(const std::string& id);

  /// \name Properties.
  /// @{
  /// Adds a literal-valued property (multi-valued allowed).
  Status AddValue(const std::string& id, const std::string& property,
                  const std::string& literal);
  /// Replaces the literal value(s) of a property with one value.
  Status SetValue(const std::string& id, const std::string& property,
                  const std::string& literal);
  /// First literal value, if any.
  Result<std::string> GetValue(const std::string& id,
                               const std::string& property) const;
  /// Adds a resource-valued link to another instance.
  Status Connect(const std::string& id, const std::string& property,
                 const std::string& target_id);
  /// Removes one resource-valued link.
  Status Disconnect(const std::string& id, const std::string& property,
                    const std::string& target_id);
  /// All linked instance ids for a property, in insertion order.
  std::vector<std::string> GetConnected(const std::string& id,
                                        const std::string& property) const;
  /// @}

  /// All instances of a type, in id order.
  std::vector<std::string> InstancesOf(const std::string& type_resource) const;

  /// All instance ids (anything with a slim:type triple and an "inst:" id).
  std::vector<std::string> AllInstances() const;

  /// True iff the id has a type triple.
  bool Exists(const std::string& id) const;

 private:
  trim::TripleStore* store_;
  IdGenerator ids_;
};

/// \brief The generic "anything goes" model used for schema-later entry:
/// construct `Entity`, literal construct `String`, connectors
/// `attribute` (Entity -> String, 0..*) and `link` (Entity -> Entity,
/// 0..*).
ModelDef BuildGenericModel();

/// \brief Induces a schema from instance data (the schema-later flow).
///
/// Each distinct instance type becomes a schema element conforming to
/// `Entity` of BuildGenericModel(); each observed property becomes a schema
/// connector instantiating `attribute` (literal-valued) or `link`
/// (resource-valued), with cardinalities set to the observed [min, max]
/// occurrence counts across instances of the type. Properties used with
/// both literal and resource objects are induced as links.
Result<SchemaDef> InduceSchema(const trim::TripleStore& store,
                               const std::string& schema_name);

}  // namespace slim::store

#endif  // SLIM_SLIM_INSTANCE_H_
