#ifndef SLIM_SLIM_QUERY_H_
#define SLIM_SLIM_QUERY_H_

/// \file query.h
/// \brief Declarative queries over the SLIM store (paper §6: "We are also
/// considering augmenting such interfaces with query capabilities, in
/// addition to the current navigational access").
///
/// The language is a conjunctive basic-graph-pattern over triples, in the
/// spirit of the RDF representation the store already uses:
///
///   ?s slim:type <schema:slimpad/Scrap> .
///   ?s scrapName ?name .
///   ?b bundleContent ?s
///
/// Terms: `?var` variables, `<...>` resources, `"..."` literals, and bare
/// tokens (resource/property names without angle brackets). Clauses are
/// separated by '.'. Execution greedily orders clauses by estimated
/// selectivity and runs an index-nested-loop join, so queries stay fast on
/// pads of tens of thousands of triples (see bench_query).

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "slim/query_plan.h"
#include "trim/triple_store.h"
#include "util/result.h"

namespace slim::store {

/// \brief One term of a pattern clause.
struct QueryTerm {
  enum class Kind { kVariable, kResource, kLiteral };
  Kind kind = Kind::kResource;
  std::string text;  ///< Variable name (no '?'), resource id, or literal.

  static QueryTerm Var(std::string name) {
    return {Kind::kVariable, std::move(name)};
  }
  static QueryTerm Res(std::string id) {
    return {Kind::kResource, std::move(id)};
  }
  static QueryTerm Lit(std::string value) {
    return {Kind::kLiteral, std::move(value)};
  }
  bool is_variable() const { return kind == Kind::kVariable; }

  friend bool operator==(const QueryTerm&, const QueryTerm&) = default;
};

/// \brief One triple pattern: subject / property / object terms.
struct QueryClause {
  QueryTerm subject;
  QueryTerm property;
  QueryTerm object;
};

/// \brief A value bound to a variable: a resource id or a literal.
using BoundValue = trim::Object;

/// \brief One solution: variable name -> bound value.
using Binding = std::map<std::string, BoundValue>;

/// \brief A conjunctive query.
class Query {
 public:
  Query() = default;
  explicit Query(std::vector<QueryClause> clauses)
      : clauses_(std::move(clauses)) {}

  /// Parses query text (see file comment for the syntax).
  static Result<Query> Parse(std::string_view text);

  /// Programmatic building.
  Query& Where(QueryTerm subject, QueryTerm property, QueryTerm object) {
    clauses_.push_back({std::move(subject), std::move(property),
                        std::move(object)});
    return *this;
  }

  const std::vector<QueryClause>& clauses() const { return clauses_; }

  /// Distinct variable names, in first-appearance order.
  std::vector<std::string> Variables() const;

  /// Canonical text form.
  std::string ToString() const;

 private:
  std::vector<QueryClause> clauses_;
};

/// \brief Evaluates the query; returns all solutions.
///
/// Unknown constants simply produce zero solutions; malformed queries (no
/// clauses, literal in subject position) produce InvalidArgument.
Result<std::vector<Binding>> Execute(const trim::TripleStore& store,
                                     const Query& query);

/// \brief Convenience: run a text query.
Result<std::vector<Binding>> ExecuteText(const trim::TripleStore& store,
                                         std::string_view query_text);

/// \brief EXPLAIN: reifies the evaluator's greedy join order without
/// executing the query — per-step predicted index path and estimated
/// cardinality (exact when the fixed fields are query constants, an
/// average-fanout estimate when they are runtime-bound variables).
///
/// The executor re-picks the cheapest clause at every recursion depth, but
/// clause cost depends only on *which* variables are bound — identical
/// along every branch at a given depth — so the order is deterministic and
/// EXPLAIN's static simulation reproduces it faithfully.
Result<QueryPlan> Explain(const trim::TripleStore& store, const Query& query);

/// \brief EXPLAIN ANALYZE result: the analyzed plan plus the solutions the
/// run produced.
struct AnalyzedQuery {
  QueryPlan plan;
  std::vector<Binding> solutions;
};

/// \brief Executes the query while attributing actual probes, rows
/// examined/matched/emitted and wall time to each plan step. The final
/// step's `rows_out` equals `plan.solutions`.
Result<AnalyzedQuery> ExplainAnalyze(const trim::TripleStore& store,
                                     const Query& query);

}  // namespace slim::store

#endif  // SLIM_SLIM_QUERY_H_
