#ifndef SLIM_SLIM_SCHEMA_H_
#define SLIM_SLIM_SCHEMA_H_

/// \file schema.h
/// \brief Schemas: the middle layer of the metamodel representation.
///
/// A schema declares *schema elements*, each conforming to a construct of a
/// data model (the conformance connector of the metamodel), plus *schema
/// connectors* that instantiate model connectors between specific elements.
/// Example: a "rounds" schema in the Bundle-Scrap model might declare
/// element "PatientBundle" conforming to construct "Bundle".
///
/// Like models, schemas round-trip through triples, so model, schema and
/// instance share TRIM storage (paper §4.3: "Explicitly representing and
/// storing model, schema, and instance, along with being flexible in which
/// is defined first").

#include <map>
#include <string>
#include <vector>

#include "slim/model.h"
#include "trim/triple_store.h"
#include "util/result.h"

namespace slim::store {

/// \brief A connector declared at schema level, refining a model connector
/// to specific schema elements.
struct SchemaConnectorDef {
  std::string name;             ///< Property name used by instances.
  std::string model_connector;  ///< The model connector it instantiates.
  std::string domain;           ///< Schema element (source).
  std::string range;  ///< Schema element, or literal construct name.
  int min_card = 0;
  int max_card = kMany;
};

/// \brief An in-memory schema over a model.
class SchemaDef {
 public:
  SchemaDef() = default;
  SchemaDef(std::string name, std::string model_name)
      : name_(std::move(name)), model_name_(std::move(model_name)) {}

  const std::string& name() const { return name_; }
  const std::string& model_name() const { return model_name_; }

  /// Declares a schema element conforming to `construct` (validated
  /// against `model`, which must be the schema's model).
  Status AddElement(const std::string& element, const std::string& construct,
                    const ModelDef& model);

  /// Declares a schema connector; validates against the model: the model
  /// connector must exist, its domain/range must subsume the elements'
  /// constructs, and the refined cardinality must narrow (not widen) the
  /// model's.
  Status AddConnector(SchemaConnectorDef connector, const ModelDef& model);

  /// Construct a declared element conforms to; NotFound otherwise.
  Result<std::string> ConstructOf(const std::string& element) const;

  /// A declared connector by name, or nullptr.
  const SchemaConnectorDef* FindConnector(const std::string& name) const;

  /// All connectors with the given domain element.
  std::vector<const SchemaConnectorDef*> ConnectorsFor(
      const std::string& element) const;

  const std::map<std::string, std::string>& elements() const {
    return elements_;
  }
  const std::vector<SchemaConnectorDef>& connectors() const {
    return connectors_;
  }

  /// \name Triple round trip. Schema resources: "schema:<schema>/<elem>".
  /// @{
  Status ToTriples(trim::TripleStore* store) const;
  static Result<SchemaDef> FromTriples(const trim::TripleStore& store,
                                       const std::string& schema_name);
  /// @}

  std::string SchemaResource() const { return "schema:" + name_; }
  std::string ElementResource(const std::string& element) const {
    return "schema:" + name_ + "/" + element;
  }

 private:
  std::string name_;
  std::string model_name_;
  std::map<std::string, std::string> elements_;  // element -> construct
  std::vector<SchemaConnectorDef> connectors_;
};

/// \brief The identity schema of a model: one schema element per non-literal
/// construct, one schema connector per model connector. This is how a
/// "model-direct" application like SLIMPad (whose schema *is* the
/// Bundle-Scrap model) is expressed in the three-layer representation.
Result<SchemaDef> IdentitySchema(const ModelDef& model,
                                 const std::string& schema_name);

}  // namespace slim::store

#endif  // SLIM_SLIM_SCHEMA_H_
