#ifndef SLIM_SLIM_MODEL_H_
#define SLIM_SLIM_MODEL_H_

/// \file model.h
/// \brief Data-model definitions via the metamodel (paper §4.3).
///
/// "The metamodel consists of a basic set of abstractions to define model
/// constructs and relationships (called connectors). ... Currently, the
/// metamodel contains only a subset of primitives: constructs, which define
/// a unit of structure; literal constructs for primitive type definitions;
/// mark constructs for delineating marks; connectors, which describe basic
/// relationships; conformance connectors for schema-instance relationships;
/// and generalization connectors for specialization relationships."
///
/// A ModelDef is the in-memory form; it round-trips to/from triples so
/// model, schema and instance all live uniformly in TRIM.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "trim/triple_store.h"
#include "util/result.h"

namespace slim::store {

/// \brief Kinds of structural units a model may declare.
enum class ConstructKind {
  kConstruct,         ///< A unit of structure (entity-like).
  kLiteralConstruct,  ///< A primitive type (String, Number, Coordinate...).
  kMarkConstruct,     ///< A unit that delineates a mark.
};

/// \brief Unbounded upper cardinality.
inline constexpr int kMany = -1;

/// \brief A relationship declared by a model.
struct ConnectorDef {
  std::string name;
  std::string domain;  ///< Source construct name.
  std::string range;   ///< Target construct name (may be a literal construct).
  int min_card = 0;
  int max_card = kMany;  ///< kMany = unbounded.
};

/// \brief A generalization edge: `sub` specializes `super`.
struct GeneralizationDef {
  std::string sub;
  std::string super;
};

/// \brief An in-memory data-model definition.
class ModelDef {
 public:
  ModelDef() = default;
  explicit ModelDef(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Declares a construct; AlreadyExists on duplicate names.
  Status AddConstruct(const std::string& name, ConstructKind kind);

  /// Declares a connector between two declared constructs.
  Status AddConnector(ConnectorDef connector);

  /// Declares `sub` as a specialization of `super` (both must exist and be
  /// non-literal constructs).
  Status AddGeneralization(const std::string& sub, const std::string& super);

  /// Kind of a declared construct, if declared.
  std::optional<ConstructKind> FindConstruct(const std::string& name) const;

  /// A declared connector, if declared.
  const ConnectorDef* FindConnector(const std::string& name) const;

  /// Connectors whose domain is `construct` or one of its ancestors.
  std::vector<const ConnectorDef*> ConnectorsFor(
      const std::string& construct) const;

  /// True iff `sub` equals `maybe_ancestor` or specializes it transitively.
  bool IsA(const std::string& sub, const std::string& maybe_ancestor) const;

  const std::map<std::string, ConstructKind>& constructs() const {
    return constructs_;
  }
  const std::vector<ConnectorDef>& connectors() const { return connectors_; }
  const std::vector<GeneralizationDef>& generalizations() const {
    return generalizations_;
  }

  /// \name Triple round trip. Model resources are named
  /// "model:<model>/<element>"; the model root is "model:<model>".
  /// @{
  Status ToTriples(trim::TripleStore* store) const;
  static Result<ModelDef> FromTriples(const trim::TripleStore& store,
                                      const std::string& model_name);
  /// @}

  /// Resource id of this model's root ("model:<name>").
  std::string ModelResource() const { return "model:" + name_; }
  /// Resource id of one of this model's elements.
  std::string ElementResource(const std::string& element) const {
    return "model:" + name_ + "/" + element;
  }

 private:
  std::string name_;
  std::map<std::string, ConstructKind> constructs_;
  std::vector<ConnectorDef> connectors_;
  std::vector<GeneralizationDef> generalizations_;
};

/// \brief The Bundle-Scrap model of paper Fig. 3, expressed in the
/// metamodel — SLIMPad's own data model, used throughout tests, examples
/// and benches.
ModelDef BuildBundleScrapModel();

}  // namespace slim::store

#endif  // SLIM_SLIM_MODEL_H_
