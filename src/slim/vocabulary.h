#ifndef SLIM_SLIM_VOCABULARY_H_
#define SLIM_SLIM_VOCABULARY_H_

/// \file vocabulary.h
/// \brief The RDF-Schema-style vocabulary for the metamodel representation
/// (paper §4.3: "We represent the metamodel elements using RDF Schema").
///
/// Three layers share one triple store:
///  - *model* triples declare constructs and connectors of a data model,
///  - *schema* triples declare schema elements as instances of constructs,
///  - *instance* triples are the data, typed by schema elements.
///
/// The properties below are the fixed vocabulary tying the layers together.

namespace slim::store {

/// Property and resource-kind names in the "slim:" namespace.
struct Vocab {
  // ---- universal ----
  static constexpr const char* kType = "slim:type";  ///< instance-of edge
  static constexpr const char* kName = "slim:name";  ///< display name

  // ---- metamodel kinds (the object of slim:metaKind on model resources) --
  static constexpr const char* kMetaKind = "slim:metaKind";
  static constexpr const char* kConstruct = "slim:Construct";
  static constexpr const char* kLiteralConstruct = "slim:LiteralConstruct";
  static constexpr const char* kMarkConstruct = "slim:MarkConstruct";
  static constexpr const char* kConnector = "slim:Connector";
  static constexpr const char* kConformanceConnector =
      "slim:ConformanceConnector";
  static constexpr const char* kGeneralizationConnector =
      "slim:GeneralizationConnector";

  // ---- model structure ----
  static constexpr const char* kInModel = "slim:inModel";   ///< element -> model
  static constexpr const char* kDomain = "slim:domain";     ///< connector source
  static constexpr const char* kRange = "slim:range";       ///< connector target
  static constexpr const char* kMinCard = "slim:minCard";   ///< literal int
  static constexpr const char* kMaxCard = "slim:maxCard";   ///< literal int or "*"
  static constexpr const char* kSubConstructOf = "slim:subConstructOf";

  // ---- schema structure ----
  static constexpr const char* kInSchema = "slim:inSchema";
  static constexpr const char* kSchemaOf = "slim:schemaOf";  ///< schema -> model
  static constexpr const char* kConformsTo =
      "slim:conformsTo";  ///< schema element -> model construct

  // ---- instance structure ----
  static constexpr const char* kMarkRef = "slim:markRef";  ///< -> mark id
};

}  // namespace slim::store

#endif  // SLIM_SLIM_VOCABULARY_H_
