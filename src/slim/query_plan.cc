#include "slim/query_plan.h"

#include "obs/json.h"

namespace slim::store {

std::string QueryPlan::ToText() const {
  std::string out = analyzed ? "QUERY PLAN (analyzed) for: "
                             : "QUERY PLAN for: ";
  out += query_text + "\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& step = steps[i];
    out += "  step " + std::to_string(i + 1) + ": clause #" +
           std::to_string(step.clause_index + 1) + "  " + step.clause_text +
           "\n";
    out += "    bound=" +
           (step.bound_fields.empty() ? std::string("(none)")
                                      : step.bound_fields) +
           " path=" + trim::TripleStore::IndexPathName(step.predicted_path) +
           " est_rows=" + std::to_string(step.estimated_rows) +
           (step.estimate_exact ? " (exact)" : " (avg)") + "\n";
    if (analyzed) {
      out += "    actual: probes=" + std::to_string(step.probes) +
             " examined=" + std::to_string(step.rows_examined) +
             " matched=" + std::to_string(step.rows_matched) +
             " out=" + std::to_string(step.rows_out) +
             " wall_us=" + std::to_string(step.wall_us) + "\n";
    }
  }
  if (analyzed) {
    out += "  solutions: " + std::to_string(solutions) + ", total " +
           std::to_string(total_us) + " us\n";
  }
  return out;
}

std::string QueryPlan::ToJson() const {
  std::string out = "{\"query\":" + obs::JsonQuote(query_text) +
                    ",\"analyzed\":" + (analyzed ? "true" : "false") +
                    ",\"total_us\":" + std::to_string(total_us) +
                    ",\"solutions\":" + std::to_string(solutions) +
                    ",\"steps\":[";
  for (size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& step = steps[i];
    if (i) out += ",";
    out += "{\"clause_index\":" + std::to_string(step.clause_index) +
           ",\"clause\":" + obs::JsonQuote(step.clause_text) +
           ",\"bound\":" + obs::JsonQuote(step.bound_fields) + ",\"path\":" +
           obs::JsonQuote(
               trim::TripleStore::IndexPathName(step.predicted_path)) +
           ",\"estimated_rows\":" + std::to_string(step.estimated_rows) +
           ",\"estimate_exact\":" + (step.estimate_exact ? "true" : "false");
    if (analyzed) {
      out += ",\"probes\":" + std::to_string(step.probes) +
             ",\"rows_examined\":" + std::to_string(step.rows_examined) +
             ",\"rows_matched\":" + std::to_string(step.rows_matched) +
             ",\"rows_out\":" + std::to_string(step.rows_out) +
             ",\"wall_us\":" + std::to_string(step.wall_us);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace slim::store
