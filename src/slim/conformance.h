#ifndef SLIM_SLIM_CONFORMANCE_H_
#define SLIM_SLIM_CONFORMANCE_H_

/// \file conformance.h
/// \brief Schema-instance conformance checking.
///
/// The metamodel's conformance connector ties instances to schema elements.
/// Because the store supports schema-later entry, conformance is a *check*,
/// not a gate: instances always enter freely; this pass reports where they
/// diverge from a schema once one exists.

#include <string>
#include <vector>

#include "slim/instance.h"
#include "slim/schema.h"
#include "trim/triple_store.h"

namespace slim::store {

/// \brief Kinds of conformance violations.
enum class ViolationKind {
  kUnknownType,         ///< Instance type not declared by the schema.
  kUndeclaredProperty,  ///< Property with no matching schema connector.
  kWrongObjectKind,     ///< Literal where a link is required, or vice versa.
  kDanglingLink,        ///< Link target instance does not exist.
  kWrongTargetType,     ///< Link target's element incompatible with range.
  kCardinalityLow,      ///< Fewer occurrences than min_card.
  kCardinalityHigh,     ///< More occurrences than max_card.
};

/// Short name of a violation kind ("UnknownType", ...).
std::string_view ViolationKindName(ViolationKind kind);

/// \brief One conformance violation.
struct Violation {
  ViolationKind kind;
  std::string instance;  ///< Offending instance id.
  std::string property;  ///< Property involved (may be empty).
  std::string message;   ///< Human-readable detail.
};

/// \brief Conformance report.
struct ConformanceReport {
  std::vector<Violation> violations;
  size_t instances_checked = 0;

  bool conforms() const { return violations.empty(); }
  /// Multi-line summary for logs.
  std::string ToString() const;
};

/// \brief Checks every instance in `store` against `schema` (over `model`).
///
/// An instance participates if its type resource is in the schema's
/// namespace or its trailing segment names a declared element (the
/// schema-later case, where instances were typed with free names before
/// the schema existed).
ConformanceReport CheckConformance(const trim::TripleStore& store,
                                   const SchemaDef& schema,
                                   const ModelDef& model);

}  // namespace slim::store

#endif  // SLIM_SLIM_CONFORMANCE_H_
