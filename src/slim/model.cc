#include "slim/model.h"

#include "slim/vocabulary.h"
#include "util/strings.h"

namespace slim::store {

Status ModelDef::AddConstruct(const std::string& name, ConstructKind kind) {
  if (name.empty()) return Status::InvalidArgument("construct name is empty");
  if (constructs_.count(name)) {
    return Status::AlreadyExists("construct '" + name +
                                 "' already declared in model '" + name_ +
                                 "'");
  }
  constructs_[name] = kind;
  return Status::OK();
}

Status ModelDef::AddConnector(ConnectorDef connector) {
  if (connector.name.empty()) {
    return Status::InvalidArgument("connector name is empty");
  }
  for (const ConnectorDef& c : connectors_) {
    if (c.name == connector.name) {
      return Status::AlreadyExists("connector '" + connector.name +
                                   "' already declared in model '" + name_ +
                                   "'");
    }
  }
  if (!constructs_.count(connector.domain)) {
    return Status::NotFound("connector '" + connector.name +
                            "': domain construct '" + connector.domain +
                            "' not declared");
  }
  if (!constructs_.count(connector.range)) {
    return Status::NotFound("connector '" + connector.name +
                            "': range construct '" + connector.range +
                            "' not declared");
  }
  if (connector.min_card < 0 ||
      (connector.max_card != kMany && connector.max_card < connector.min_card)) {
    return Status::InvalidArgument("connector '" + connector.name +
                                   "': invalid cardinality bounds");
  }
  connectors_.push_back(std::move(connector));
  return Status::OK();
}

Status ModelDef::AddGeneralization(const std::string& sub,
                                   const std::string& super) {
  auto sub_kind = FindConstruct(sub);
  auto super_kind = FindConstruct(super);
  if (!sub_kind || !super_kind) {
    return Status::NotFound("generalization '" + sub + "' -> '" + super +
                            "': both constructs must be declared");
  }
  if (*sub_kind == ConstructKind::kLiteralConstruct ||
      *super_kind == ConstructKind::kLiteralConstruct) {
    return Status::InvalidArgument(
        "literal constructs cannot participate in generalization");
  }
  if (IsA(super, sub)) {
    return Status::InvalidArgument("generalization '" + sub + "' -> '" +
                                   super + "' would create a cycle");
  }
  generalizations_.push_back({sub, super});
  return Status::OK();
}

std::optional<ConstructKind> ModelDef::FindConstruct(
    const std::string& name) const {
  auto it = constructs_.find(name);
  if (it == constructs_.end()) return std::nullopt;
  return it->second;
}

const ConnectorDef* ModelDef::FindConnector(const std::string& name) const {
  for (const ConnectorDef& c : connectors_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<const ConnectorDef*> ModelDef::ConnectorsFor(
    const std::string& construct) const {
  std::vector<const ConnectorDef*> out;
  for (const ConnectorDef& c : connectors_) {
    if (IsA(construct, c.domain)) out.push_back(&c);
  }
  return out;
}

bool ModelDef::IsA(const std::string& sub,
                   const std::string& maybe_ancestor) const {
  if (sub == maybe_ancestor) return true;
  for (const GeneralizationDef& g : generalizations_) {
    if (g.sub == sub && IsA(g.super, maybe_ancestor)) return true;
  }
  return false;
}

namespace {
std::string_view KindResource(ConstructKind kind) {
  switch (kind) {
    case ConstructKind::kConstruct: return Vocab::kConstruct;
    case ConstructKind::kLiteralConstruct: return Vocab::kLiteralConstruct;
    case ConstructKind::kMarkConstruct: return Vocab::kMarkConstruct;
  }
  return Vocab::kConstruct;
}
}  // namespace

Status ModelDef::ToTriples(trim::TripleStore* store) const {
  if (store == nullptr) return Status::InvalidArgument("null store");
  const std::string model_res = ModelResource();
  SLIM_RETURN_NOT_OK(store->AddLiteral(model_res, Vocab::kName, name_));
  for (const auto& [cname, kind] : constructs_) {
    const std::string res = ElementResource(cname);
    SLIM_RETURN_NOT_OK(store->AddResource(res, Vocab::kMetaKind,
                                          std::string(KindResource(kind))));
    SLIM_RETURN_NOT_OK(store->AddLiteral(res, Vocab::kName, cname));
    SLIM_RETURN_NOT_OK(store->AddResource(res, Vocab::kInModel, model_res));
  }
  for (const ConnectorDef& c : connectors_) {
    const std::string res = ElementResource(c.name);
    SLIM_RETURN_NOT_OK(
        store->AddResource(res, Vocab::kMetaKind, Vocab::kConnector));
    SLIM_RETURN_NOT_OK(store->AddLiteral(res, Vocab::kName, c.name));
    SLIM_RETURN_NOT_OK(store->AddResource(res, Vocab::kInModel, model_res));
    SLIM_RETURN_NOT_OK(
        store->AddResource(res, Vocab::kDomain, ElementResource(c.domain)));
    SLIM_RETURN_NOT_OK(
        store->AddResource(res, Vocab::kRange, ElementResource(c.range)));
    SLIM_RETURN_NOT_OK(
        store->AddLiteral(res, Vocab::kMinCard, std::to_string(c.min_card)));
    SLIM_RETURN_NOT_OK(store->AddLiteral(
        res, Vocab::kMaxCard,
        c.max_card == kMany ? "*" : std::to_string(c.max_card)));
  }
  for (const GeneralizationDef& g : generalizations_) {
    SLIM_RETURN_NOT_OK(store->AddResource(ElementResource(g.sub),
                                          Vocab::kSubConstructOf,
                                          ElementResource(g.super)));
  }
  return Status::OK();
}

Result<ModelDef> ModelDef::FromTriples(const trim::TripleStore& store,
                                       const std::string& model_name) {
  ModelDef model(model_name);
  const std::string model_res = model.ModelResource();
  const std::string prefix = model_res + "/";

  auto local_name = [&](const std::string& resource) -> Result<std::string> {
    if (!StartsWith(resource, prefix)) {
      return Status::ParseError("resource '" + resource +
                                "' is not an element of model '" + model_name +
                                "'");
    }
    return resource.substr(prefix.size());
  };

  // Verify the model root exists.
  if (!store.GetOne(model_res, Vocab::kName)) {
    return Status::NotFound("model '" + model_name + "' not present in store");
  }

  // Pass 1: constructs.
  std::vector<trim::Triple> members =
      store.Select(trim::TriplePattern{std::nullopt, Vocab::kInModel,
                                       trim::Object::Resource(model_res)});
  std::vector<std::string> connector_resources;
  for (const trim::Triple& t : members) {
    auto kind_obj = store.GetOne(t.subject, Vocab::kMetaKind);
    if (!kind_obj) {
      return Status::ParseError("model element '" + t.subject +
                                "' has no slim:metaKind");
    }
    SLIM_ASSIGN_OR_RETURN(std::string cname, local_name(t.subject));
    const std::string& kind = kind_obj->text;
    if (kind == Vocab::kConstruct) {
      SLIM_RETURN_NOT_OK(model.AddConstruct(cname, ConstructKind::kConstruct));
    } else if (kind == Vocab::kLiteralConstruct) {
      SLIM_RETURN_NOT_OK(
          model.AddConstruct(cname, ConstructKind::kLiteralConstruct));
    } else if (kind == Vocab::kMarkConstruct) {
      SLIM_RETURN_NOT_OK(
          model.AddConstruct(cname, ConstructKind::kMarkConstruct));
    } else if (kind == Vocab::kConnector) {
      connector_resources.push_back(t.subject);
    } else {
      return Status::ParseError("unknown metaKind '" + kind + "' on '" +
                                t.subject + "'");
    }
  }

  // Pass 2: connectors (domains/ranges now declared).
  for (const std::string& res : connector_resources) {
    ConnectorDef c;
    SLIM_ASSIGN_OR_RETURN(c.name, local_name(res));
    auto domain = store.GetOne(res, Vocab::kDomain);
    auto range = store.GetOne(res, Vocab::kRange);
    if (!domain || !range) {
      return Status::ParseError("connector '" + res +
                                "' missing domain/range");
    }
    SLIM_ASSIGN_OR_RETURN(c.domain, local_name(domain->text));
    SLIM_ASSIGN_OR_RETURN(c.range, local_name(range->text));
    auto min_card = store.GetOne(res, Vocab::kMinCard);
    auto max_card = store.GetOne(res, Vocab::kMaxCard);
    long long n = 0;
    if (min_card && ParseInt(min_card->text, &n)) {
      c.min_card = static_cast<int>(n);
    }
    if (max_card) {
      if (max_card->text == "*") {
        c.max_card = kMany;
      } else if (ParseInt(max_card->text, &n)) {
        c.max_card = static_cast<int>(n);
      }
    }
    SLIM_RETURN_NOT_OK(model.AddConnector(std::move(c)));
  }

  // Pass 3: generalizations.
  for (const trim::Triple& t :
       store.Select(trim::TriplePattern::ByProperty(Vocab::kSubConstructOf))) {
    if (!StartsWith(t.subject, prefix)) continue;
    SLIM_ASSIGN_OR_RETURN(std::string sub, local_name(t.subject));
    SLIM_ASSIGN_OR_RETURN(std::string super, local_name(t.object.text));
    SLIM_RETURN_NOT_OK(model.AddGeneralization(sub, super));
  }
  return model;
}

ModelDef BuildBundleScrapModel() {
  ModelDef model("bundle-scrap");
  // Literal constructs (Fig. 3 attribute types).
  (void)model.AddConstruct("String", ConstructKind::kLiteralConstruct);
  (void)model.AddConstruct("Number", ConstructKind::kLiteralConstruct);
  (void)model.AddConstruct("Coordinate", ConstructKind::kLiteralConstruct);
  // Entities.
  (void)model.AddConstruct("SlimPad", ConstructKind::kConstruct);
  (void)model.AddConstruct("Bundle", ConstructKind::kConstruct);
  (void)model.AddConstruct("Scrap", ConstructKind::kConstruct);
  (void)model.AddConstruct("MarkHandle", ConstructKind::kMarkConstruct);
  // Attributes (connectors with literal range).
  (void)model.AddConnector({"padName", "SlimPad", "String", 1, 1});
  (void)model.AddConnector({"rootBundle", "SlimPad", "Bundle", 0, 1});
  (void)model.AddConnector({"bundleName", "Bundle", "String", 1, 1});
  (void)model.AddConnector({"bundlePos", "Bundle", "Coordinate", 1, 1});
  (void)model.AddConnector({"bundleHeight", "Bundle", "Number", 1, 1});
  (void)model.AddConnector({"bundleWidth", "Bundle", "Number", 1, 1});
  (void)model.AddConnector({"bundleContent", "Bundle", "Scrap", 0, kMany});
  (void)model.AddConnector({"nestedBundle", "Bundle", "Bundle", 0, kMany});
  (void)model.AddConnector({"scrapName", "Scrap", "String", 1, 1});
  (void)model.AddConnector({"scrapPos", "Scrap", "Coordinate", 1, 1});
  // 0..* rather than Fig. 3's 1..1: purely graphic scraps (the 'gridlet' of
  // Fig. 4) carry no mark, and §3 contemplates multiple marks per scrap.
  (void)model.AddConnector({"scrapMark", "Scrap", "MarkHandle", 0, kMany});
  (void)model.AddConnector({"markId", "MarkHandle", "String", 1, 1});
  // §6 contemplated extensions, declared optional (0..*) so plain pads
  // conform: annotations on scraps and explicit links among scraps.
  (void)model.AddConnector({"scrapAnnotation", "Scrap", "String", 0, kMany});
  (void)model.AddConnector({"scrapLink", "Scrap", "Scrap", 0, kMany});
  return model;
}

}  // namespace slim::store
