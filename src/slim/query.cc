#include "slim/query.h"

#include <algorithm>
#include <cctype>

#include "obs/obs.h"
#include "util/strings.h"

namespace slim::store {

namespace {

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
  std::string_view src;
  size_t i = 0;

  void SkipSpace() {
    while (i < src.size() && std::isspace(static_cast<unsigned char>(src[i]))) {
      ++i;
    }
  }
  bool Done() {
    SkipSpace();
    return i >= src.size();
  }
};

Result<QueryTerm> ParseTerm(Cursor* c) {
  c->SkipSpace();
  if (c->i >= c->src.size()) {
    return Status::ParseError("query: expected a term, found end of input");
  }
  char ch = c->src[c->i];
  if (ch == '?') {
    size_t start = ++c->i;
    while (c->i < c->src.size() &&
           (std::isalnum(static_cast<unsigned char>(c->src[c->i])) ||
            c->src[c->i] == '_')) {
      ++c->i;
    }
    if (c->i == start) return Status::ParseError("query: empty variable name");
    return QueryTerm::Var(std::string(c->src.substr(start, c->i - start)));
  }
  if (ch == '<') {
    size_t end = c->src.find('>', c->i);
    if (end == std::string_view::npos) {
      return Status::ParseError("query: unterminated '<resource>'");
    }
    QueryTerm t = QueryTerm::Res(
        std::string(c->src.substr(c->i + 1, end - c->i - 1)));
    c->i = end + 1;
    if (t.text.empty()) return Status::ParseError("query: empty resource");
    return t;
  }
  if (ch == '"') {
    std::string value;
    ++c->i;
    while (c->i < c->src.size()) {
      char cc = c->src[c->i++];
      if (cc == '\\' && c->i < c->src.size()) {
        value.push_back(c->src[c->i++]);
      } else if (cc == '"') {
        return QueryTerm::Lit(std::move(value));
      } else {
        value.push_back(cc);
      }
    }
    return Status::ParseError("query: unterminated string literal");
  }
  // Bare token up to whitespace or '.'-separator (a dot followed by
  // whitespace/end; dots inside tokens like "schema:x/y.z" stay).
  size_t start = c->i;
  while (c->i < c->src.size() &&
         !std::isspace(static_cast<unsigned char>(c->src[c->i]))) {
    ++c->i;
  }
  std::string_view token = c->src.substr(start, c->i - start);
  // A trailing bare '.' is the clause separator.
  if (token.size() > 1 && token.back() == '.') {
    token.remove_suffix(1);
    --c->i;
  }
  if (token.empty() || token == ".") {
    return Status::ParseError("query: expected a term before '.'");
  }
  return QueryTerm::Res(std::string(token));
}

std::string TermToString(const QueryTerm& t) {
  switch (t.kind) {
    case QueryTerm::Kind::kVariable: return "?" + t.text;
    case QueryTerm::Kind::kResource: return "<" + t.text + ">";
    case QueryTerm::Kind::kLiteral: {
      std::string out = "\"";
      for (char c : t.text) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      out += '"';
      return out;
    }
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

// A clause with current bindings substituted where possible.
struct ResolvedClause {
  std::optional<std::string> subject;   // nullopt = unbound variable
  std::optional<std::string> property;
  std::optional<trim::Object> object;
  // Variable names for unbound positions (empty = constant there).
  std::string subject_var, property_var, object_var;
};

Result<ResolvedClause> ResolveClause(const QueryClause& clause,
                                     const Binding& binding) {
  ResolvedClause out;
  // Subject.
  switch (clause.subject.kind) {
    case QueryTerm::Kind::kVariable: {
      auto it = binding.find(clause.subject.text);
      if (it != binding.end()) {
        out.subject = it->second.text;  // subjects are resources
      } else {
        out.subject_var = clause.subject.text;
      }
      break;
    }
    case QueryTerm::Kind::kResource:
      out.subject = clause.subject.text;
      break;
    case QueryTerm::Kind::kLiteral:
      return Status::InvalidArgument(
          "query: literal in subject position: " +
          TermToString(clause.subject));
  }
  // Property.
  switch (clause.property.kind) {
    case QueryTerm::Kind::kVariable: {
      auto it = binding.find(clause.property.text);
      if (it != binding.end()) {
        out.property = it->second.text;
      } else {
        out.property_var = clause.property.text;
      }
      break;
    }
    case QueryTerm::Kind::kResource:
      out.property = clause.property.text;
      break;
    case QueryTerm::Kind::kLiteral:
      return Status::InvalidArgument(
          "query: literal in property position: " +
          TermToString(clause.property));
  }
  // Object.
  switch (clause.object.kind) {
    case QueryTerm::Kind::kVariable: {
      auto it = binding.find(clause.object.text);
      if (it != binding.end()) {
        out.object = it->second;
      } else {
        out.object_var = clause.object.text;
      }
      break;
    }
    case QueryTerm::Kind::kResource:
      out.object = trim::Object::Resource(clause.object.text);
      break;
    case QueryTerm::Kind::kLiteral:
      out.object = trim::Object::Literal(clause.object.text);
      break;
  }
  return out;
}

// Selectivity estimate: lower = more selective = evaluated first.
// Bound subject is the best key (direct index), then bound object, then
// bound property, then nothing.
int ClauseCost(const QueryClause& clause, const Binding& binding) {
  auto bound = [&](const QueryTerm& t) {
    return !t.is_variable() || binding.count(t.text) > 0;
  };
  if (bound(clause.subject)) return 0;
  if (bound(clause.object)) return 1;
  if (bound(clause.property)) return 2;
  return 3;
}

void Search(const trim::TripleStore& store,
            std::vector<const QueryClause*> remaining, const Binding& binding,
            std::vector<Binding>* out, Status* failure) {
  if (!failure->ok()) return;
  if (remaining.empty()) {
    out->push_back(binding);
    return;
  }
  // Pick the most selective remaining clause under current bindings.
  size_t best = 0;
  int best_cost = 99;
  for (size_t i = 0; i < remaining.size(); ++i) {
    int cost = ClauseCost(*remaining[i], binding);
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  const QueryClause* clause = remaining[best];
  remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));

  Result<ResolvedClause> resolved = ResolveClause(*clause, binding);
  if (!resolved.ok()) {
    *failure = resolved.status();
    return;
  }
  trim::TriplePattern pattern;
  pattern.subject = resolved->subject;
  pattern.property = resolved->property;
  pattern.object = resolved->object;

  store.SelectEach(pattern, [&](const trim::Triple& t) {
    Binding next = binding;
    // Bind unbound variables; repeated variables within the clause must
    // agree (e.g. "?x link ?x").
    auto bind = [&](const std::string& var, BoundValue value) {
      if (var.empty()) return true;
      auto it = next.find(var);
      if (it != next.end()) return it->second == value;
      next[var] = std::move(value);
      return true;
    };
    if (!bind(resolved->subject_var, trim::Object::Resource(t.subject))) {
      return true;
    }
    if (!bind(resolved->property_var, trim::Object::Resource(t.property))) {
      return true;
    }
    if (!bind(resolved->object_var, t.object)) return true;
    Search(store, remaining, next, out, failure);
    return failure->ok();
  });
}

}  // namespace

Result<Query> Query::Parse(std::string_view text) {
  Result<Query> out = [&]() -> Result<Query> {
    std::vector<QueryClause> clauses;
    Cursor cursor{text};
    while (!cursor.Done()) {
      QueryClause clause;
      SLIM_ASSIGN_OR_RETURN(clause.subject, ParseTerm(&cursor));
      SLIM_ASSIGN_OR_RETURN(clause.property, ParseTerm(&cursor));
      SLIM_ASSIGN_OR_RETURN(clause.object, ParseTerm(&cursor));
      clauses.push_back(std::move(clause));
      cursor.SkipSpace();
      if (cursor.i < cursor.src.size()) {
        if (cursor.src[cursor.i] != '.') {
          return Status::ParseError("query: expected '.' between clauses at "
                                    "position " +
                                    std::to_string(cursor.i));
        }
        ++cursor.i;
      }
    }
    if (clauses.empty()) {
      return Status::InvalidArgument("query has no clauses");
    }
    return Query(std::move(clauses));
  }();
  if (out.ok()) {
    SLIM_OBS_COUNT("slim.query.parse.ok");
  } else {
    SLIM_OBS_COUNT("slim.query.parse.error");
    SLIM_OBS_LOG(kWarn, "slim", "query parse failed",
                 {{"status", out.status().ToString()}});
  }
  return out;
}

std::vector<std::string> Query::Variables() const {
  std::vector<std::string> out;
  auto add = [&](const QueryTerm& t) {
    if (t.is_variable() &&
        std::find(out.begin(), out.end(), t.text) == out.end()) {
      out.push_back(t.text);
    }
  };
  for (const QueryClause& c : clauses_) {
    add(c.subject);
    add(c.property);
    add(c.object);
  }
  return out;
}

std::string Query::ToString() const {
  std::string out;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (i) out += " . ";
    out += TermToString(clauses_[i].subject) + " " +
           TermToString(clauses_[i].property) + " " +
           TermToString(clauses_[i].object);
  }
  return out;
}

Result<std::vector<Binding>> Execute(const trim::TripleStore& store,
                                     const Query& query) {
  SLIM_OBS_COUNT("slim.query.execute.calls");
  SLIM_OBS_TIMER(timer, "slim.query.latency_us");
  SLIM_OBS_SPAN(span, "slim.query.execute");
  span.AddTag("clauses", std::to_string(query.clauses().size()));
  if (query.clauses().empty()) {
    SLIM_OBS_COUNT("slim.query.execute.error");
    return Status::InvalidArgument("query has no clauses");
  }
  std::vector<const QueryClause*> remaining;
  for (const QueryClause& c : query.clauses()) remaining.push_back(&c);
  std::vector<Binding> out;
  Status failure;
  Search(store, std::move(remaining), Binding{}, &out, &failure);
  if (!failure.ok()) {
    SLIM_OBS_COUNT("slim.query.execute.error");
    return failure;
  }
  SLIM_OBS_HISTOGRAM("slim.query.solutions", out.size());
  span.AddTag("solutions", std::to_string(out.size()));
  return out;
}

Result<std::vector<Binding>> ExecuteText(const trim::TripleStore& store,
                                         std::string_view query_text) {
  SLIM_ASSIGN_OR_RETURN(Query query, Query::Parse(query_text));
  return Execute(store, query);
}

}  // namespace slim::store
