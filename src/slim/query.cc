#include "slim/query.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <set>

#include "obs/obs.h"
#include "slim/slow_query.h"
#include "util/strings.h"

namespace slim::store {

namespace {

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
  std::string_view src;
  size_t i = 0;

  void SkipSpace() {
    while (i < src.size() && std::isspace(static_cast<unsigned char>(src[i]))) {
      ++i;
    }
  }
  bool Done() {
    SkipSpace();
    return i >= src.size();
  }
};

Result<QueryTerm> ParseTerm(Cursor* c) {
  c->SkipSpace();
  if (c->i >= c->src.size()) {
    return Status::ParseError("query: expected a term, found end of input");
  }
  char ch = c->src[c->i];
  if (ch == '?') {
    size_t start = ++c->i;
    while (c->i < c->src.size() &&
           (std::isalnum(static_cast<unsigned char>(c->src[c->i])) ||
            c->src[c->i] == '_')) {
      ++c->i;
    }
    if (c->i == start) return Status::ParseError("query: empty variable name");
    return QueryTerm::Var(std::string(c->src.substr(start, c->i - start)));
  }
  if (ch == '<') {
    size_t end = c->src.find('>', c->i);
    if (end == std::string_view::npos) {
      return Status::ParseError("query: unterminated '<resource>'");
    }
    QueryTerm t = QueryTerm::Res(
        std::string(c->src.substr(c->i + 1, end - c->i - 1)));
    c->i = end + 1;
    if (t.text.empty()) return Status::ParseError("query: empty resource");
    return t;
  }
  if (ch == '"') {
    std::string value;
    ++c->i;
    while (c->i < c->src.size()) {
      char cc = c->src[c->i++];
      if (cc == '\\' && c->i < c->src.size()) {
        value.push_back(c->src[c->i++]);
      } else if (cc == '"') {
        return QueryTerm::Lit(std::move(value));
      } else {
        value.push_back(cc);
      }
    }
    return Status::ParseError("query: unterminated string literal");
  }
  // Bare token up to whitespace or '.'-separator (a dot followed by
  // whitespace/end; dots inside tokens like "schema:x/y.z" stay).
  size_t start = c->i;
  while (c->i < c->src.size() &&
         !std::isspace(static_cast<unsigned char>(c->src[c->i]))) {
    ++c->i;
  }
  std::string_view token = c->src.substr(start, c->i - start);
  // A trailing bare '.' is the clause separator.
  if (token.size() > 1 && token.back() == '.') {
    token.remove_suffix(1);
    --c->i;
  }
  if (token.empty() || token == ".") {
    return Status::ParseError("query: expected a term before '.'");
  }
  return QueryTerm::Res(std::string(token));
}

std::string TermToString(const QueryTerm& t) {
  switch (t.kind) {
    case QueryTerm::Kind::kVariable: return "?" + t.text;
    case QueryTerm::Kind::kResource: return "<" + t.text + ">";
    case QueryTerm::Kind::kLiteral: {
      std::string out = "\"";
      for (char c : t.text) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      out += '"';
      return out;
    }
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

// A clause with current bindings substituted where possible.
struct ResolvedClause {
  std::optional<std::string> subject;   // nullopt = unbound variable
  std::optional<std::string> property;
  std::optional<trim::Object> object;
  // Variable names for unbound positions (empty = constant there).
  std::string subject_var, property_var, object_var;
};

Result<ResolvedClause> ResolveClause(const QueryClause& clause,
                                     const Binding& binding) {
  ResolvedClause out;
  // Subject.
  switch (clause.subject.kind) {
    case QueryTerm::Kind::kVariable: {
      auto it = binding.find(clause.subject.text);
      if (it != binding.end()) {
        out.subject = it->second.text;  // subjects are resources
      } else {
        out.subject_var = clause.subject.text;
      }
      break;
    }
    case QueryTerm::Kind::kResource:
      out.subject = clause.subject.text;
      break;
    case QueryTerm::Kind::kLiteral:
      return Status::InvalidArgument(
          "query: literal in subject position: " +
          TermToString(clause.subject));
  }
  // Property.
  switch (clause.property.kind) {
    case QueryTerm::Kind::kVariable: {
      auto it = binding.find(clause.property.text);
      if (it != binding.end()) {
        out.property = it->second.text;
      } else {
        out.property_var = clause.property.text;
      }
      break;
    }
    case QueryTerm::Kind::kResource:
      out.property = clause.property.text;
      break;
    case QueryTerm::Kind::kLiteral:
      return Status::InvalidArgument(
          "query: literal in property position: " +
          TermToString(clause.property));
  }
  // Object.
  switch (clause.object.kind) {
    case QueryTerm::Kind::kVariable: {
      auto it = binding.find(clause.object.text);
      if (it != binding.end()) {
        out.object = it->second;
      } else {
        out.object_var = clause.object.text;
      }
      break;
    }
    case QueryTerm::Kind::kResource:
      out.object = trim::Object::Resource(clause.object.text);
      break;
    case QueryTerm::Kind::kLiteral:
      out.object = trim::Object::Literal(clause.object.text);
      break;
  }
  return out;
}

// Selectivity estimate: lower = more selective = evaluated first.
// Bound subject is the best key (direct index), then bound object, then
// bound property, then nothing. `bound_var` answers "is this variable name
// bound?" — the executor asks its concrete Binding, the planner asks the
// set of names earlier steps will have bound. Cost depends only on *which*
// variables are bound, so the planner's static simulation reproduces the
// executor's order exactly (see Explain in query.h).
template <typename BoundVarFn>
int ClauseCostWith(const QueryClause& clause, const BoundVarFn& bound_var) {
  auto bound = [&](const QueryTerm& t) {
    return !t.is_variable() || bound_var(t.text);
  };
  if (bound(clause.subject)) return 0;
  if (bound(clause.object)) return 1;
  if (bound(clause.property)) return 2;
  return 3;
}

int ClauseCost(const QueryClause& clause, const Binding& binding) {
  return ClauseCostWith(clause, [&](const std::string& name) {
    return binding.count(name) > 0;
  });
}

std::string ClauseText(const QueryClause& clause) {
  return TermToString(clause.subject) + " " + TermToString(clause.property) +
         " " + TermToString(clause.object);
}

// ---------------------------------------------------------------------------
// Planning (EXPLAIN)
// ---------------------------------------------------------------------------

// Average posting-list length for an index with `keys` distinct keys over
// `live` triples, rounded up. Zero keys means the index is empty: any probe
// through it yields nothing.
uint64_t AverageFanout(size_t live, size_t keys) {
  if (keys == 0) return 0;
  return (static_cast<uint64_t>(live) + keys - 1) / keys;
}

// Simulates the executor's greedy clause ordering without touching data and
// fills one PlanStep per clause. `step_of_clause` maps source clause index
// -> plan step index so the ANALYZE executor can attribute its actuals.
Result<QueryPlan> BuildPlan(const trim::TripleStore& store, const Query& query,
                            std::vector<size_t>* step_of_clause) {
  const std::vector<QueryClause>& clauses = query.clauses();
  QueryPlan plan;
  plan.query_text = query.ToString();
  step_of_clause->assign(clauses.size(), 0);
  std::vector<bool> used(clauses.size(), false);
  std::set<std::string> bound_vars;
  auto is_bound = [&](const std::string& name) {
    return bound_vars.count(name) > 0;
  };
  for (size_t step = 0; step < clauses.size(); ++step) {
    // Same pick as Search: first clause (in source order among the not yet
    // chosen) with minimal cost.
    size_t best = clauses.size();
    int best_cost = 99;
    for (size_t i = 0; i < clauses.size(); ++i) {
      if (used[i]) continue;
      int cost = ClauseCostWith(clauses[i], is_bound);
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    used[best] = true;
    (*step_of_clause)[best] = step;
    const QueryClause& clause = clauses[best];

    PlanStep ps;
    ps.clause_index = best;
    ps.clause_text = ClauseText(clause);

    // Classify each field: constant, runtime-bound variable, or free.
    if (clause.subject.kind == QueryTerm::Kind::kLiteral) {
      return Status::InvalidArgument("query: literal in subject position: " +
                                     TermToString(clause.subject));
    }
    if (clause.property.kind == QueryTerm::Kind::kLiteral) {
      return Status::InvalidArgument("query: literal in property position: " +
                                     TermToString(clause.property));
    }
    std::optional<std::string> subject_const, property_const;
    std::optional<trim::Object> object_const;
    if (clause.subject.kind == QueryTerm::Kind::kResource) {
      subject_const = clause.subject.text;
    }
    if (clause.property.kind == QueryTerm::Kind::kResource) {
      property_const = clause.property.text;
    }
    if (clause.object.kind == QueryTerm::Kind::kResource) {
      object_const = trim::Object::Resource(clause.object.text);
    } else if (clause.object.kind == QueryTerm::Kind::kLiteral) {
      object_const = trim::Object::Literal(clause.object.text);
    }
    bool subject_fixed =
        subject_const.has_value() || is_bound(clause.subject.text);
    bool property_fixed =
        property_const.has_value() || is_bound(clause.property.text);
    bool object_fixed = object_const.has_value() ||
                        (clause.object.is_variable() &&
                         is_bound(clause.object.text));
    if (subject_fixed) ps.bound_fields += 's';
    if (property_fixed) ps.bound_fields += 'p';
    if (object_fixed) ps.bound_fields += 'o';

    bool has_runtime_bound = (subject_fixed && !subject_const) ||
                             (property_fixed && !property_const) ||
                             (object_fixed && !object_const);
    if (!has_runtime_bound) {
      // Every fixed field is a query constant — the store can tell us the
      // exact path and candidate count it will use (store size for a scan).
      trim::TriplePattern pattern;
      pattern.subject = subject_const;
      pattern.property = property_const;
      pattern.object = object_const;
      trim::TripleStore::AccessPlan access = store.PlanAccess(pattern);
      ps.predicted_path = access.path;
      ps.estimated_rows = access.candidates;
      ps.estimate_exact = true;
    } else {
      // A runtime-bound variable fixes a field whose value differs per
      // probe. Predict the path by the store's own consideration order
      // (subject > object > property) and estimate with the exact posting
      // count when that field is a constant, the index's average fanout
      // otherwise. Either way the store may divert to a smaller list at
      // run time, so the estimate is not exact.
      auto exact_for = [&](trim::TriplePattern pattern) {
        return static_cast<uint64_t>(store.PlanAccess(pattern).candidates);
      };
      if (subject_fixed) {
        ps.predicted_path = trim::TripleStore::IndexPath::kSubject;
        ps.estimated_rows =
            subject_const
                ? exact_for(trim::TriplePattern::BySubject(*subject_const))
                : AverageFanout(store.size(), store.DistinctSubjects());
      } else if (object_fixed) {
        ps.predicted_path = trim::TripleStore::IndexPath::kObject;
        ps.estimated_rows =
            object_const
                ? exact_for(trim::TriplePattern::ByObject(*object_const))
                : AverageFanout(store.size(), store.DistinctObjects());
      } else {
        ps.predicted_path = trim::TripleStore::IndexPath::kProperty;
        ps.estimated_rows =
            property_const
                ? exact_for(trim::TriplePattern::ByProperty(*property_const))
                : AverageFanout(store.size(), store.DistinctProperties());
      }
      ps.estimate_exact = false;
    }

    // This step binds every free variable of its clause.
    for (const QueryTerm* t :
         {&clause.subject, &clause.property, &clause.object}) {
      if (t->is_variable()) bound_vars.insert(t->text);
    }
    plan.steps.push_back(std::move(ps));
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Analyzed execution (EXPLAIN ANALYZE)
// ---------------------------------------------------------------------------

struct AnalyzeContext {
  QueryPlan* plan;
  const std::vector<size_t>* step_of_clause;
  const QueryClause* clause_base;  // &query.clauses()[0], for index recovery
};

// Mirror of Search that attributes probes, rows and wall time to plan
// steps. Matched bindings are buffered per probe and recursed into after
// the step's timer stops, so `wall_us` measures only this pattern's own
// index work, not the nested joins under it.
void SearchAnalyzed(const trim::TripleStore& store,
                    std::vector<const QueryClause*> remaining,
                    const Binding& binding, std::vector<Binding>* out,
                    Status* failure, AnalyzeContext* ctx) {
  if (!failure->ok()) return;
  if (remaining.empty()) {
    out->push_back(binding);
    return;
  }
  size_t best = 0;
  int best_cost = 99;
  for (size_t i = 0; i < remaining.size(); ++i) {
    int cost = ClauseCost(*remaining[i], binding);
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  const QueryClause* clause = remaining[best];
  remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));
  PlanStep& step =
      ctx->plan->steps[(*ctx->step_of_clause)[static_cast<size_t>(
          clause - ctx->clause_base)]];

  Result<ResolvedClause> resolved = ResolveClause(*clause, binding);
  if (!resolved.ok()) {
    *failure = resolved.status();
    return;
  }
  trim::TriplePattern pattern;
  pattern.subject = resolved->subject;
  pattern.property = resolved->property;
  pattern.object = resolved->object;

  trim::TripleStore::SelectStats stats;
  std::vector<Binding> next_bindings;
  auto probe_start = std::chrono::steady_clock::now();
  store.SelectEach(
      pattern,
      [&](const trim::Triple& t) {
        Binding next = binding;
        auto bind = [&](const std::string& var, BoundValue value) {
          if (var.empty()) return true;
          auto it = next.find(var);
          if (it != next.end()) return it->second == value;
          next[var] = std::move(value);
          return true;
        };
        if (!bind(resolved->subject_var, trim::Object::Resource(t.subject))) {
          return true;
        }
        if (!bind(resolved->property_var,
                  trim::Object::Resource(t.property))) {
          return true;
        }
        if (!bind(resolved->object_var, t.object)) return true;
        next_bindings.push_back(std::move(next));
        return true;
      },
      &stats);
  auto probe_end = std::chrono::steady_clock::now();
  step.probes += 1;
  step.rows_examined += stats.examined;
  step.rows_matched += stats.matched;
  step.rows_out += next_bindings.size();
  step.wall_us += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(probe_end -
                                                            probe_start)
          .count());
  for (const Binding& next : next_bindings) {
    SearchAnalyzed(store, remaining, next, out, failure, ctx);
    if (!failure->ok()) return;
  }
}

void Search(const trim::TripleStore& store,
            std::vector<const QueryClause*> remaining, const Binding& binding,
            std::vector<Binding>* out, Status* failure) {
  if (!failure->ok()) return;
  if (remaining.empty()) {
    out->push_back(binding);
    return;
  }
  // Pick the most selective remaining clause under current bindings.
  size_t best = 0;
  int best_cost = 99;
  for (size_t i = 0; i < remaining.size(); ++i) {
    int cost = ClauseCost(*remaining[i], binding);
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  const QueryClause* clause = remaining[best];
  remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));

  Result<ResolvedClause> resolved = ResolveClause(*clause, binding);
  if (!resolved.ok()) {
    *failure = resolved.status();
    return;
  }
  trim::TriplePattern pattern;
  pattern.subject = resolved->subject;
  pattern.property = resolved->property;
  pattern.object = resolved->object;

  store.SelectEach(pattern, [&](const trim::Triple& t) {
    Binding next = binding;
    // Bind unbound variables; repeated variables within the clause must
    // agree (e.g. "?x link ?x").
    auto bind = [&](const std::string& var, BoundValue value) {
      if (var.empty()) return true;
      auto it = next.find(var);
      if (it != next.end()) return it->second == value;
      next[var] = std::move(value);
      return true;
    };
    if (!bind(resolved->subject_var, trim::Object::Resource(t.subject))) {
      return true;
    }
    if (!bind(resolved->property_var, trim::Object::Resource(t.property))) {
      return true;
    }
    if (!bind(resolved->object_var, t.object)) return true;
    Search(store, remaining, next, out, failure);
    return failure->ok();
  });
}

}  // namespace

Result<Query> Query::Parse(std::string_view text) {
  Result<Query> out = [&]() -> Result<Query> {
    std::vector<QueryClause> clauses;
    Cursor cursor{text};
    while (!cursor.Done()) {
      QueryClause clause;
      SLIM_ASSIGN_OR_RETURN(clause.subject, ParseTerm(&cursor));
      SLIM_ASSIGN_OR_RETURN(clause.property, ParseTerm(&cursor));
      SLIM_ASSIGN_OR_RETURN(clause.object, ParseTerm(&cursor));
      clauses.push_back(std::move(clause));
      cursor.SkipSpace();
      if (cursor.i < cursor.src.size()) {
        if (cursor.src[cursor.i] != '.') {
          return Status::ParseError("query: expected '.' between clauses at "
                                    "position " +
                                    std::to_string(cursor.i));
        }
        ++cursor.i;
      }
    }
    if (clauses.empty()) {
      return Status::InvalidArgument("query has no clauses");
    }
    return Query(std::move(clauses));
  }();
  if (out.ok()) {
    SLIM_OBS_COUNT("slim.query.parse.ok");
  } else {
    SLIM_OBS_COUNT("slim.query.parse.error");
    SLIM_OBS_LOG(kWarn, "slim", "query parse failed",
                 {{"status", out.status().ToString()}});
  }
  return out;
}

std::vector<std::string> Query::Variables() const {
  std::vector<std::string> out;
  auto add = [&](const QueryTerm& t) {
    if (t.is_variable() &&
        std::find(out.begin(), out.end(), t.text) == out.end()) {
      out.push_back(t.text);
    }
  };
  for (const QueryClause& c : clauses_) {
    add(c.subject);
    add(c.property);
    add(c.object);
  }
  return out;
}

std::string Query::ToString() const {
  std::string out;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (i) out += " . ";
    out += TermToString(clauses_[i].subject) + " " +
           TermToString(clauses_[i].property) + " " +
           TermToString(clauses_[i].object);
  }
  return out;
}

Result<std::vector<Binding>> Execute(const trim::TripleStore& store,
                                     const Query& query) {
  SLIM_OBS_COUNT("slim.query.execute.calls");
  SLIM_OBS_HEARTBEAT("slim.query");
  SLIM_OBS_TIMER(timer, "slim.query.latency_us");
  SLIM_OBS_SPAN(span, "slim.query.execute");
  span.AddTag("clauses", std::to_string(query.clauses().size()));
  if (query.clauses().empty()) {
    SLIM_OBS_COUNT("slim.query.execute.error");
    return Status::InvalidArgument("query has no clauses");
  }
  // Pin one store snapshot for the whole execution: every SelectEach the
  // join recursion issues below evaluates at this epoch (reads nest, so
  // the recursion shares the pin), which means a concurrent writer can
  // commit mid-query without ever tearing the result set.
  trim::TripleStore::Snapshot snapshot(store);
  // When the slow-query sampler is armed, run through the ANALYZE executor
  // so a query that crosses the threshold leaves its full plan behind.
  if (DefaultSlowQueryLog().enabled()) {
    Result<AnalyzedQuery> analyzed = ExplainAnalyze(store, query);
    if (!analyzed.ok()) {
      SLIM_OBS_COUNT("slim.query.execute.error");
      return analyzed.status();
    }
    DefaultSlowQueryLog().MaybeRecord(analyzed->plan);
    SLIM_OBS_HISTOGRAM("slim.query.solutions", analyzed->solutions.size());
    span.AddTag("solutions", std::to_string(analyzed->solutions.size()));
    return std::move(analyzed->solutions);
  }
  std::vector<const QueryClause*> remaining;
  for (const QueryClause& c : query.clauses()) remaining.push_back(&c);
  std::vector<Binding> out;
  Status failure;
  Search(store, std::move(remaining), Binding{}, &out, &failure);
  if (!failure.ok()) {
    SLIM_OBS_COUNT("slim.query.execute.error");
    return failure;
  }
  SLIM_OBS_HISTOGRAM("slim.query.solutions", out.size());
  span.AddTag("solutions", std::to_string(out.size()));
  return out;
}

Result<std::vector<Binding>> ExecuteText(const trim::TripleStore& store,
                                         std::string_view query_text) {
  SLIM_ASSIGN_OR_RETURN(Query query, Query::Parse(query_text));
  return Execute(store, query);
}

Result<QueryPlan> Explain(const trim::TripleStore& store, const Query& query) {
  SLIM_OBS_COUNT("slim.query.explain.calls");
  SLIM_OBS_SPAN(span, "slim.query.explain");
  if (query.clauses().empty()) {
    return Status::InvalidArgument("query has no clauses");
  }
  // One snapshot across all PlanAccess probes keeps the estimates mutually
  // consistent under concurrent writes.
  trim::TripleStore::Snapshot snapshot(store);
  std::vector<size_t> step_of_clause;
  return BuildPlan(store, query, &step_of_clause);
}

Result<AnalyzedQuery> ExplainAnalyze(const trim::TripleStore& store,
                                     const Query& query) {
  SLIM_OBS_COUNT("slim.query.analyze.calls");
  SLIM_OBS_SPAN(span, "slim.query.analyze");
  if (query.clauses().empty()) {
    return Status::InvalidArgument("query has no clauses");
  }
  // Plan estimates and the instrumented execution below read one pinned
  // epoch, so ANALYZE's predicted-vs-actual comparison is apples-to-apples
  // even while writers commit.
  trim::TripleStore::Snapshot snapshot(store);
  std::vector<size_t> step_of_clause;
  SLIM_ASSIGN_OR_RETURN(QueryPlan plan,
                        BuildPlan(store, query, &step_of_clause));
  AnalyzeContext ctx{&plan, &step_of_clause, query.clauses().data()};
  std::vector<const QueryClause*> remaining;
  for (const QueryClause& c : query.clauses()) remaining.push_back(&c);
  std::vector<Binding> out;
  Status failure;
  auto run_start = std::chrono::steady_clock::now();
  SearchAnalyzed(store, std::move(remaining), Binding{}, &out, &failure, &ctx);
  auto run_end = std::chrono::steady_clock::now();
  if (!failure.ok()) return failure;
  plan.analyzed = true;
  plan.total_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(run_end -
                                                            run_start)
          .count());
  plan.solutions = out.size();
  span.AddTag("solutions", std::to_string(out.size()));
  return AnalyzedQuery{std::move(plan), std::move(out)};
}

}  // namespace slim::store
