#ifndef SLIM_SLIM_QUERY_PLAN_H_
#define SLIM_SLIM_QUERY_PLAN_H_

/// \file query_plan.h
/// \brief Reified query plans: EXPLAIN / EXPLAIN ANALYZE output for the
/// SLIM query engine.
///
/// The evaluator (slim/query.cc) greedily orders clauses by estimated
/// selectivity and probes the TRIM indexes; until now that plan was
/// implicit in counters (`trim.select.index.*`). `QueryPlan` makes it a
/// first-class value: the join order, the index path each pattern is
/// predicted to take, and estimated cardinalities — plus, in ANALYZE mode,
/// the actual probes issued, rows examined/matched/emitted and per-pattern
/// wall time. Plans render as aligned text (for humans) and as a single
/// JSON object (for the slow-query log and the flight recorder).

#include <cstdint>
#include <string>
#include <vector>

#include "trim/triple_store.h"

namespace slim::store {

/// \brief One join-order step: a single pattern probe.
struct PlanStep {
  /// Index of the clause in the *source* query (0-based; the plan reorders).
  size_t clause_index = 0;
  /// Canonical rendering of the clause ("?s scrapName \"K 4.9\"").
  std::string clause_text;
  /// Which fields are fixed when this step runs: a subset of "spo" —
  /// constants plus variables bound by earlier steps. Empty = full scan.
  std::string bound_fields;
  /// The index path the store is predicted to serve this pattern through.
  trim::TripleStore::IndexPath predicted_path =
      trim::TripleStore::IndexPath::kScan;
  /// Estimated candidate rows for one probe of this pattern.
  uint64_t estimated_rows = 0;
  /// True when every fixed field is a query constant, so `estimated_rows`
  /// is the store's exact answer; false when runtime-bound variables force
  /// an average-cardinality estimate.
  bool estimate_exact = false;

  /// \name ANALYZE actuals (zero unless the plan was analyzed).
  /// @{
  uint64_t probes = 0;         ///< SelectEach calls issued for this step.
  uint64_t rows_examined = 0;  ///< Live candidates tested against the pattern.
  uint64_t rows_matched = 0;   ///< Pattern matches returned by the store.
  uint64_t rows_out = 0;       ///< Bindings emitted after variable agreement.
  uint64_t wall_us = 0;        ///< Total wall time inside this step's probes.
  /// @}
};

/// \brief A whole plan, in execution (join) order.
struct QueryPlan {
  std::string query_text;       ///< Canonical query rendering.
  std::vector<PlanStep> steps;  ///< Execution order, not source order.
  bool analyzed = false;        ///< True for EXPLAIN ANALYZE plans.
  uint64_t total_us = 0;        ///< End-to-end execution wall time (ANALYZE).
  uint64_t solutions = 0;       ///< Solutions produced (ANALYZE).

  /// Multi-line human-readable rendering.
  std::string ToText() const;
  /// One JSON object (machine-readable; embedded in slow-query events).
  std::string ToJson() const;
};

}  // namespace slim::store

#endif  // SLIM_SLIM_QUERY_PLAN_H_
