#ifndef SLIM_SLIM_MAPPING_H_
#define SLIM_SLIM_MAPPING_H_

/// \file mapping.h
/// \brief Mappings between superimposed schemas/models (paper §4.3: "we can
/// leverage the generic representation directly, by defining mappings
/// between superimposed models, including model-to-model, schema-to-schema
/// and even schema-to-model mappings").
///
/// A Mapping is a set of type rules; each rewrites an instance's type
/// resource and renames its properties. Because model, schema and instance
/// all live as triples, one mechanism covers all three mapping flavors —
/// the rules just target resources of the respective layer.

#include <optional>
#include <string>
#include <vector>

#include "trim/triple_store.h"
#include "util/result.h"

namespace slim::store {

/// \brief Renames one property within a type rule.
struct PropertyRule {
  std::string from;
  std::string to;
};

/// \brief Rewrites instances of one type.
struct TypeRule {
  std::string from_type;  ///< Source type resource.
  std::string to_type;    ///< Target type resource.
  std::vector<PropertyRule> properties;
  /// When true, properties without a rule are dropped rather than copied.
  bool drop_unmapped_properties = false;
};

/// \brief Counters describing what a mapping application did.
struct MappingStats {
  size_t instances_mapped = 0;
  size_t instances_copied = 0;   ///< Untyped-by-rule instances kept as-is.
  size_t instances_dropped = 0;  ///< Untyped-by-rule instances discarded.
  size_t triples_written = 0;
  size_t properties_dropped = 0;
};

/// \brief A schema-to-schema (or model-to-model) transformation.
class Mapping {
 public:
  explicit Mapping(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a rule; AlreadyExists if `from_type` already has one.
  Status AddRule(TypeRule rule);

  /// When false (default) instances whose type has no rule are copied
  /// unchanged; when true they are dropped (and links to them dangle,
  /// visible to a later conformance check).
  void set_drop_unmapped_types(bool drop) { drop_unmapped_types_ = drop; }

  const std::vector<TypeRule>& rules() const { return rules_; }

  /// Applies the mapping: reads instance data from `source`, writes the
  /// transformed instances into `target` (which is not cleared — mappings
  /// compose by accumulation). Non-instance triples (model/schema layers)
  /// are not copied.
  Result<MappingStats> Apply(const trim::TripleStore& source,
                             trim::TripleStore* target) const;

 private:
  const TypeRule* FindRule(const std::string& type_resource) const;

  std::string name_;
  std::vector<TypeRule> rules_;
  bool drop_unmapped_types_ = false;
};

}  // namespace slim::store

#endif  // SLIM_SLIM_MAPPING_H_
