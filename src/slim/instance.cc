#include "slim/instance.h"

#include <algorithm>
#include <map>

#include "slim/vocabulary.h"
#include "util/strings.h"

namespace slim::store {

Result<std::string> InstanceGraph::Create(const std::string& type_resource) {
  if (type_resource.empty()) {
    return Status::InvalidArgument("empty type resource");
  }
  std::string id = ids_.Next();
  SLIM_RETURN_NOT_OK(store_->AddResource(id, Vocab::kType, type_resource));
  return id;
}

Status InstanceGraph::CreateWithId(const std::string& id,
                                   const std::string& type_resource) {
  if (id.empty() || type_resource.empty()) {
    return Status::InvalidArgument("empty id or type resource");
  }
  if (Exists(id)) {
    return Status::AlreadyExists("instance '" + id + "' already exists");
  }
  ids_.ObserveExisting(id);
  return store_->AddResource(id, Vocab::kType, type_resource);
}

Result<std::string> InstanceGraph::TypeOf(const std::string& id) const {
  auto obj = store_->GetOne(id, Vocab::kType);
  if (!obj) return Status::NotFound("instance '" + id + "' has no type");
  return obj->text;
}

size_t InstanceGraph::Delete(const std::string& id) {
  size_t removed =
      store_->RemoveMatching(trim::TriplePattern::BySubject(id));
  removed += store_->RemoveMatching(
      trim::TriplePattern::ByObject(trim::Object::Resource(id)));
  return removed;
}

Status InstanceGraph::AddValue(const std::string& id,
                               const std::string& property,
                               const std::string& literal) {
  if (!Exists(id)) return Status::NotFound("no instance '" + id + "'");
  return store_->Add(
      trim::Triple{id, property, trim::Object::Literal(literal)},
      /*allow_duplicates=*/true);
}

Status InstanceGraph::SetValue(const std::string& id,
                               const std::string& property,
                               const std::string& literal) {
  if (!Exists(id)) return Status::NotFound("no instance '" + id + "'");
  return store_->SetOne(id, property, trim::Object::Literal(literal));
}

Result<std::string> InstanceGraph::GetValue(const std::string& id,
                                            const std::string& property) const {
  auto obj = store_->GetOne(id, property);
  if (!obj || obj->is_resource()) {
    return Status::NotFound("instance '" + id + "' has no literal value for '" +
                            property + "'");
  }
  return obj->text;
}

Status InstanceGraph::Connect(const std::string& id,
                              const std::string& property,
                              const std::string& target_id) {
  if (!Exists(id)) return Status::NotFound("no instance '" + id + "'");
  if (!Exists(target_id)) {
    return Status::NotFound("no target instance '" + target_id + "'");
  }
  return store_->Add(
      trim::Triple{id, property, trim::Object::Resource(target_id)});
}

Status InstanceGraph::Disconnect(const std::string& id,
                                 const std::string& property,
                                 const std::string& target_id) {
  return store_->Remove(
      trim::Triple{id, property, trim::Object::Resource(target_id)});
}

std::vector<std::string> InstanceGraph::GetConnected(
    const std::string& id, const std::string& property) const {
  std::vector<std::string> out;
  trim::TripleStore::Snapshot snap(*store_);
  store_->SelectEach(trim::TriplePattern::BySubjectProperty(id, property),
                     [&](const trim::Triple& t) {
                       if (t.object.is_resource()) out.push_back(t.object.text);
                       return true;
                     });
  return out;
}

std::vector<std::string> InstanceGraph::InstancesOf(
    const std::string& type_resource) const {
  std::vector<std::string> out;
  trim::TripleStore::Snapshot snap(*store_);
  store_->SelectEach(
      trim::TriplePattern{std::nullopt, Vocab::kType,
                          trim::Object::Resource(type_resource)},
      [&](const trim::Triple& t) {
        out.push_back(t.subject);
        return true;
      });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> InstanceGraph::AllInstances() const {
  std::vector<std::string> out;
  trim::TripleStore::Snapshot snap(*store_);
  store_->SelectEach(trim::TriplePattern::ByProperty(Vocab::kType),
                     [&](const trim::Triple& t) {
                       if (StartsWith(t.subject, "inst:")) {
                         out.push_back(t.subject);
                       }
                       return true;
                     });
  std::sort(out.begin(), out.end());
  return out;
}

bool InstanceGraph::Exists(const std::string& id) const {
  return store_->GetOne(id, Vocab::kType).has_value();
}

ModelDef BuildGenericModel() {
  ModelDef model("generic");
  (void)model.AddConstruct("Entity", ConstructKind::kConstruct);
  (void)model.AddConstruct("String", ConstructKind::kLiteralConstruct);
  (void)model.AddConnector({"attribute", "Entity", "String", 0, kMany});
  (void)model.AddConnector({"link", "Entity", "Entity", 0, kMany});
  return model;
}

Result<SchemaDef> InduceSchema(const trim::TripleStore& store,
                               const std::string& schema_name) {
  ModelDef model = BuildGenericModel();
  SchemaDef schema(schema_name, model.name());

  // Both observation passes must agree on what exists; pin one epoch so a
  // concurrent writer cannot skew the induced connector cardinalities.
  trim::TripleStore::Snapshot snap(store);

  // type resource -> element name (derived from the trailing path segment).
  std::map<std::string, std::string> type_to_element;
  auto element_name_of = [&](const std::string& type_res) {
    size_t slash = type_res.find_last_of('/');
    std::string base = slash == std::string::npos
                           ? type_res
                           : type_res.substr(slash + 1);
    // Ensure uniqueness if two type resources share a trailing segment.
    std::string candidate = base;
    int n = 2;
    while (true) {
      bool taken = false;
      for (const auto& [_, existing] : type_to_element) {
        if (existing == candidate) taken = true;
      }
      if (!taken) return candidate;
      candidate = base + std::to_string(n++);
    }
  };

  // Pass 1: collect instance types.
  std::map<std::string, std::string> instance_type;  // id -> type resource
  store.SelectEach(trim::TriplePattern::ByProperty(Vocab::kType),
                   [&](const trim::Triple& t) {
                     if (StartsWith(t.subject, "inst:") &&
                         t.object.is_resource()) {
                       instance_type[t.subject] = t.object.text;
                     }
                     return true;
                   });
  for (const auto& [_, type_res] : instance_type) {
    if (!type_to_element.count(type_res)) {
      type_to_element[type_res] = element_name_of(type_res);
    }
  }
  for (const auto& [_, element] : type_to_element) {
    SLIM_RETURN_NOT_OK(schema.AddElement(element, "Entity", model));
  }

  // Pass 2: observe properties per (element, property): literal vs link,
  // per-instance occurrence counts, and a target element for links.
  struct PropStat {
    bool is_link = false;
    std::string target_element;
    std::map<std::string, int> count_per_instance;
  };
  std::map<std::pair<std::string, std::string>, PropStat> stats;
  for (const auto& [id, type_res] : instance_type) {
    const std::string& element = type_to_element[type_res];
    store.SelectEach(trim::TriplePattern::BySubject(id),
                     [&](const trim::Triple& t) {
                       if (t.property == Vocab::kType) return true;
                       PropStat& ps = stats[{element, t.property}];
                       ++ps.count_per_instance[id];
                       if (t.object.is_resource()) {
                         ps.is_link = true;
                         auto it = instance_type.find(t.object.text);
                         if (it != instance_type.end()) {
                           ps.target_element = type_to_element[it->second];
                         }
                       }
                       return true;
                     });
  }

  // Pass 3: emit connectors with observed cardinalities. Min is 0 when any
  // instance of the element lacks the property.
  std::map<std::string, int> instances_per_element;
  for (const auto& [_, type_res] : instance_type) {
    ++instances_per_element[type_to_element[type_res]];
  }
  for (const auto& [key, ps] : stats) {
    const auto& [element, property] = key;
    int min_card = INT32_MAX, max_card = 0;
    for (const auto& [_, n] : ps.count_per_instance) {
      min_card = std::min(min_card, n);
      max_card = std::max(max_card, n);
    }
    if (static_cast<int>(ps.count_per_instance.size()) <
        instances_per_element[element]) {
      min_card = 0;  // some instance lacks the property entirely
    }
    SchemaConnectorDef c;
    c.name = property;
    c.domain = element;
    c.min_card = min_card == INT32_MAX ? 0 : min_card;
    c.max_card = max_card;
    if (ps.is_link) {
      c.model_connector = "link";
      c.range = ps.target_element.empty() ? element : ps.target_element;
    } else {
      c.model_connector = "attribute";
      c.range = "String";
    }
    SLIM_RETURN_NOT_OK(schema.AddConnector(std::move(c), model));
  }
  return schema;
}

}  // namespace slim::store
