#include "mark/mark.h"

#include "baseapp/pdf_app.h"
#include "baseapp/slide_app.h"

namespace slim::mark {

std::string Mark::Describe() const {
  std::string out(type());
  out += ":";
  out += file_name();
  out += "!";
  out += address();
  return out;
}

std::string SlideMark::address() const {
  return baseapp::SlideApp::FormatAddress(slide_, shape_id_);
}

std::string PdfMark::address() const {
  return baseapp::PdfApp::FormatAddress(page_, region_);
}

}  // namespace slim::mark
