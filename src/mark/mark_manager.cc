#include "mark/mark_manager.h"

#include <fstream>
#include <sstream>

#include "doc/xml/parser.h"
#include "doc/xml/writer.h"
#include "obs/obs.h"

namespace slim::mark {

namespace xml = slim::doc::xml;

Status MarkManager::RegisterModule(MarkModule* module) {
  if (module == nullptr) return Status::InvalidArgument("null module");
  std::pair<std::string, std::string> key{std::string(module->mark_type()),
                                          std::string(module->resolver_name())};
  if (modules_.count(key)) {
    return Status::AlreadyExists("module for type '" + key.first +
                                 "' resolver '" + key.second +
                                 "' already registered");
  }
  modules_[key] = module;
  return Status::OK();
}

std::vector<std::string> MarkManager::SupportedTypes() const {
  std::vector<std::string> out;
  for (const auto& [key, _] : modules_) {
    if (key.second == "context") out.push_back(key.first);
  }
  return out;
}

Result<MarkModule*> MarkManager::FindModule(std::string_view mark_type,
                                            std::string_view resolver) const {
  auto it = modules_.find(
      {std::string(mark_type), std::string(resolver)});
  if (it == modules_.end()) {
    return Status::NotFound("no mark module for type '" +
                            std::string(mark_type) + "' resolver '" +
                            std::string(resolver) + "'");
  }
  return it->second;
}

Result<std::string> MarkManager::CreateMarkFromSelection(
    const std::string& mark_type) {
  SLIM_OBS_TIMER(timer, "mark.create.latency_us");
  SLIM_OBS_SPAN(span, "mark.create");
  span.AddTag("type", mark_type);
  Result<std::string> out = [&]() -> Result<std::string> {
    SLIM_ASSIGN_OR_RETURN(MarkModule * module,
                          FindModule(mark_type, "context"));
    std::string id = ids_.Next();
    SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Mark> m,
                          module->CreateFromSelection(id));
    marks_[id] = std::move(m);
    return id;
  }();
  if (out.ok()) {
    SLIM_OBS_COUNT("mark.create.ok");
    SLIM_OBS_COUNT_DYN("mark.create.module." + mark_type);
  } else {
    SLIM_OBS_COUNT("mark.create.error");
  }
  return out;
}

Status MarkManager::AdoptMark(std::unique_ptr<Mark> mark) {
  if (mark == nullptr) return Status::InvalidArgument("null mark");
  const std::string& id = mark->mark_id();
  if (id.empty()) return Status::InvalidArgument("mark has empty id");
  if (marks_.count(id)) {
    return Status::AlreadyExists("mark '" + id + "' already exists");
  }
  ids_.ObserveExisting(id);
  marks_[id] = std::move(mark);
  return Status::OK();
}

Result<const Mark*> MarkManager::GetMark(const std::string& mark_id) const {
  auto it = marks_.find(mark_id);
  if (it == marks_.end()) {
    return Status::NotFound("no mark '" + mark_id + "'");
  }
  return static_cast<const Mark*>(it->second.get());
}

Status MarkManager::RemoveMark(const std::string& mark_id) {
  auto it = marks_.find(mark_id);
  if (it == marks_.end()) {
    return Status::NotFound("no mark '" + mark_id + "'");
  }
  marks_.erase(it);
  return Status::OK();
}

Status MarkManager::ResolveMark(const std::string& mark_id,
                                const std::string& resolver) {
  SLIM_OBS_HEARTBEAT("mark.resolve");
  SLIM_OBS_TIMER(timer, "mark.resolve.latency_us");
  SLIM_OBS_SPAN(span, "mark.resolve");
  span.AddTag("mark", mark_id);
  span.AddTag("resolver", resolver);
  Status st = [&]() -> Status {
    SLIM_ASSIGN_OR_RETURN(const Mark* m, GetMark(mark_id));
    SLIM_ASSIGN_OR_RETURN(MarkModule * module,
                          FindModule(m->type(), resolver));
    // Which module drove the base application (obs: the Monikers-style
    // per-module breakdown of §5).
    SLIM_OBS_COUNT_DYN("mark.resolve.module." + std::string(m->type()) + "." +
                       resolver);
    return module->Resolve(*m).WithContext("resolving " + m->Describe());
  }();
  if (st.ok()) {
    SLIM_OBS_COUNT("mark.resolve.ok");
  } else {
    SLIM_OBS_COUNT("mark.resolve.error");
    // A failed resolve means a wire back to a base document broke — the
    // classic superimposed-information failure. Leave a post-mortem trail.
    SLIM_OBS_LOG(kWarn, "mark", "mark resolve failed",
                 {{"mark", mark_id},
                  {"resolver", resolver},
                  {"status", st.ToString()}});
    SLIM_OBS_DUMP_ON_ERROR("mark.resolve");
  }
  return st;
}

Result<std::string> MarkManager::ExtractContent(const std::string& mark_id) {
  SLIM_OBS_TIMER(timer, "mark.extract.latency_us");
  SLIM_OBS_SPAN(span, "mark.extract");
  span.AddTag("mark", mark_id);
  Result<std::string> out = [&]() -> Result<std::string> {
    SLIM_ASSIGN_OR_RETURN(const Mark* m, GetMark(mark_id));
    SLIM_ASSIGN_OR_RETURN(MarkModule * module,
                          FindModule(m->type(), "context"));
    return module->ExtractContent(*m);
  }();
  if (out.ok()) {
    SLIM_OBS_COUNT("mark.extract.ok");
  } else {
    SLIM_OBS_COUNT("mark.extract.error");
  }
  return out;
}

std::vector<std::string> MarkManager::MarkIds() const {
  std::vector<std::string> out;
  out.reserve(marks_.size());
  for (const auto& [id, _] : marks_) out.push_back(id);
  return out;
}

std::string MarkManager::ToXml() const {
  xml::Document doc;
  auto root = std::make_unique<xml::Element>("marks");
  for (const auto& [id, m] : marks_) {
    xml::Element* me = root->AddElement("mark");
    me->SetAttribute("id", id);
    me->SetAttribute("type", std::string(m->type()));
    for (const auto& [name, value] : m->Fields()) {
      xml::Element* fe = me->AddElement("field");
      fe->SetAttribute("name", name);
      fe->SetAttribute("value", value);
    }
    if (!m->excerpt().empty()) {
      me->AddElement("excerpt")->AddText(m->excerpt());
    }
  }
  doc.set_root(std::move(root));
  return xml::WriteXml(doc);
}

Status MarkManager::FromXml(std::string_view xml_text) {
  xml::ParseOptions opts;
  opts.strip_whitespace_text = false;
  SLIM_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> doc,
                        xml::ParseXml(xml_text, opts));
  if (doc->root() == nullptr || doc->root()->name() != "marks") {
    return Status::ParseError("root element is not <marks>");
  }
  for (xml::Element* me : doc->root()->ChildElements("mark")) {
    const std::string* id = me->FindAttribute("id");
    const std::string* type = me->FindAttribute("type");
    if (id == nullptr || type == nullptr) {
      return Status::ParseError("<mark> missing id/type attribute");
    }
    MarkFields fields;
    for (xml::Element* fe : me->ChildElements("field")) {
      const std::string* name = fe->FindAttribute("name");
      const std::string* value = fe->FindAttribute("value");
      if (name == nullptr || value == nullptr) {
        return Status::ParseError("<field> missing name/value attribute");
      }
      fields.push_back({*name, *value});
    }
    SLIM_ASSIGN_OR_RETURN(MarkModule * module, FindModule(*type, "context"));
    SLIM_ASSIGN_OR_RETURN(std::unique_ptr<Mark> m,
                          module->FromFields(*id, fields));
    xml::Element* excerpt = me->FirstChild("excerpt");
    if (excerpt != nullptr) m->set_excerpt(excerpt->InnerText());
    SLIM_RETURN_NOT_OK(AdoptMark(std::move(m)));
  }
  return Status::OK();
}

Status MarkManager::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << ToXml();
  if (!out.good()) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Status MarkManager::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromXml(buf.str());
}

}  // namespace slim::mark
