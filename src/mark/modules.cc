#include "mark/modules.h"

#include "util/strings.h"

namespace slim::mark {

Result<std::string> GetField(const MarkFields& fields,
                             const std::string& name) {
  for (const auto& [k, v] : fields) {
    if (k == name) return v;
  }
  return Status::NotFound("mark field '" + name + "' missing");
}

// ---------------------------------------------------------------------------
// Excel
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Mark>> ExcelMarkModule::CreateFromSelection(
    const std::string& mark_id) {
  SLIM_ASSIGN_OR_RETURN(baseapp::Selection sel, app_->CurrentSelection());
  SLIM_ASSIGN_OR_RETURN(auto parsed,
                        baseapp::SpreadsheetApp::ParseAddress(sel.address));
  auto m = std::make_unique<ExcelMark>(mark_id, sel.file_name, parsed.first,
                                       parsed.second);
  m->set_excerpt(sel.content);
  return std::unique_ptr<Mark>(std::move(m));
}

Status ExcelMarkModule::Resolve(const Mark& m) {
  return app_->NavigateTo(m.file_name(), m.address());
}

Result<std::string> ExcelMarkModule::ExtractContent(const Mark& m) {
  return app_->ExtractContent(m.file_name(), m.address());
}

Result<std::unique_ptr<Mark>> ExcelMarkModule::FromFields(
    const std::string& mark_id, const MarkFields& fields) {
  SLIM_ASSIGN_OR_RETURN(std::string file, GetField(fields, "fileName"));
  SLIM_ASSIGN_OR_RETURN(std::string sheet, GetField(fields, "sheetName"));
  SLIM_ASSIGN_OR_RETURN(std::string range_text, GetField(fields, "range"));
  SLIM_ASSIGN_OR_RETURN(doc::RangeRef range, doc::ParseRange(range_text));
  return std::unique_ptr<Mark>(
      std::make_unique<ExcelMark>(mark_id, file, sheet, range));
}

// ---------------------------------------------------------------------------
// XML
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Mark>> XmlMarkModule::CreateFromSelection(
    const std::string& mark_id) {
  SLIM_ASSIGN_OR_RETURN(baseapp::Selection sel, app_->CurrentSelection());
  auto m = std::make_unique<XmlMark>(mark_id, sel.file_name, sel.address);
  m->set_excerpt(sel.content);
  return std::unique_ptr<Mark>(std::move(m));
}

Status XmlMarkModule::Resolve(const Mark& m) {
  return app_->NavigateTo(m.file_name(), m.address());
}

Result<std::string> XmlMarkModule::ExtractContent(const Mark& m) {
  return app_->ExtractContent(m.file_name(), m.address());
}

Result<std::unique_ptr<Mark>> XmlMarkModule::FromFields(
    const std::string& mark_id, const MarkFields& fields) {
  SLIM_ASSIGN_OR_RETURN(std::string file, GetField(fields, "fileName"));
  SLIM_ASSIGN_OR_RETURN(std::string path, GetField(fields, "xmlPath"));
  return std::unique_ptr<Mark>(std::make_unique<XmlMark>(mark_id, file, path));
}

// ---------------------------------------------------------------------------
// Text
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Mark>> TextMarkModule::CreateFromSelection(
    const std::string& mark_id) {
  SLIM_ASSIGN_OR_RETURN(baseapp::Selection sel, app_->CurrentSelection());
  SLIM_ASSIGN_OR_RETURN(doc::text::TextSpan span,
                        doc::text::TextSpan::Parse(sel.address));
  auto m = std::make_unique<TextMark>(mark_id, sel.file_name, span);
  m->set_excerpt(sel.content);
  return std::unique_ptr<Mark>(std::move(m));
}

Status TextMarkModule::Resolve(const Mark& m) {
  return app_->NavigateTo(m.file_name(), m.address());
}

Result<std::string> TextMarkModule::ExtractContent(const Mark& m) {
  return app_->ExtractContent(m.file_name(), m.address());
}

Result<std::unique_ptr<Mark>> TextMarkModule::FromFields(
    const std::string& mark_id, const MarkFields& fields) {
  SLIM_ASSIGN_OR_RETURN(std::string file, GetField(fields, "fileName"));
  SLIM_ASSIGN_OR_RETURN(std::string span_text, GetField(fields, "span"));
  SLIM_ASSIGN_OR_RETURN(doc::text::TextSpan span,
                        doc::text::TextSpan::Parse(span_text));
  return std::unique_ptr<Mark>(
      std::make_unique<TextMark>(mark_id, file, span));
}

// ---------------------------------------------------------------------------
// Slides
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Mark>> SlideMarkModule::CreateFromSelection(
    const std::string& mark_id) {
  SLIM_ASSIGN_OR_RETURN(baseapp::Selection sel, app_->CurrentSelection());
  SLIM_ASSIGN_OR_RETURN(auto parsed,
                        baseapp::SlideApp::ParseAddress(sel.address));
  auto m = std::make_unique<SlideMark>(mark_id, sel.file_name, parsed.first,
                                       parsed.second);
  m->set_excerpt(sel.content);
  return std::unique_ptr<Mark>(std::move(m));
}

Status SlideMarkModule::Resolve(const Mark& m) {
  return app_->NavigateTo(m.file_name(), m.address());
}

Result<std::string> SlideMarkModule::ExtractContent(const Mark& m) {
  return app_->ExtractContent(m.file_name(), m.address());
}

Result<std::unique_ptr<Mark>> SlideMarkModule::FromFields(
    const std::string& mark_id, const MarkFields& fields) {
  SLIM_ASSIGN_OR_RETURN(std::string file, GetField(fields, "fileName"));
  SLIM_ASSIGN_OR_RETURN(std::string slide_text, GetField(fields, "slide"));
  SLIM_ASSIGN_OR_RETURN(std::string shape_id, GetField(fields, "shapeId"));
  long long slide = 0;
  if (!ParseInt(slide_text, &slide) || slide < 0) {
    return Status::ParseError("bad slide index '" + slide_text + "'");
  }
  return std::unique_ptr<Mark>(std::make_unique<SlideMark>(
      mark_id, file, static_cast<int32_t>(slide), shape_id));
}

// ---------------------------------------------------------------------------
// PDF
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Mark>> PdfMarkModule::CreateFromSelection(
    const std::string& mark_id) {
  SLIM_ASSIGN_OR_RETURN(baseapp::Selection sel, app_->CurrentSelection());
  SLIM_ASSIGN_OR_RETURN(auto parsed,
                        baseapp::PdfApp::ParseAddress(sel.address));
  auto m = std::make_unique<PdfMark>(mark_id, sel.file_name, parsed.first,
                                     parsed.second);
  m->set_excerpt(sel.content);
  return std::unique_ptr<Mark>(std::move(m));
}

Status PdfMarkModule::Resolve(const Mark& m) {
  return app_->NavigateTo(m.file_name(), m.address());
}

Result<std::string> PdfMarkModule::ExtractContent(const Mark& m) {
  return app_->ExtractContent(m.file_name(), m.address());
}

Result<std::unique_ptr<Mark>> PdfMarkModule::FromFields(
    const std::string& mark_id, const MarkFields& fields) {
  SLIM_ASSIGN_OR_RETURN(std::string file, GetField(fields, "fileName"));
  SLIM_ASSIGN_OR_RETURN(std::string page_text, GetField(fields, "page"));
  SLIM_ASSIGN_OR_RETURN(std::string rect_text, GetField(fields, "rect"));
  long long page = 0;
  if (!ParseInt(page_text, &page) || page < 0) {
    return Status::ParseError("bad page index '" + page_text + "'");
  }
  SLIM_ASSIGN_OR_RETURN(doc::pdf::Rect rect, doc::pdf::Rect::Parse(rect_text));
  return std::unique_ptr<Mark>(std::make_unique<PdfMark>(
      mark_id, file, static_cast<int32_t>(page), rect));
}

// ---------------------------------------------------------------------------
// HTML
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Mark>> HtmlMarkModule::CreateFromSelection(
    const std::string& mark_id) {
  SLIM_ASSIGN_OR_RETURN(baseapp::Selection sel, app_->CurrentSelection());
  auto m = std::make_unique<HtmlMark>(mark_id, sel.file_name, sel.address);
  m->set_excerpt(sel.content);
  return std::unique_ptr<Mark>(std::move(m));
}

Status HtmlMarkModule::Resolve(const Mark& m) {
  return app_->NavigateTo(m.file_name(), m.address());
}

Result<std::string> HtmlMarkModule::ExtractContent(const Mark& m) {
  return app_->ExtractContent(m.file_name(), m.address());
}

Result<std::unique_ptr<Mark>> HtmlMarkModule::FromFields(
    const std::string& mark_id, const MarkFields& fields) {
  SLIM_ASSIGN_OR_RETURN(std::string url, GetField(fields, "url"));
  SLIM_ASSIGN_OR_RETURN(std::string locator, GetField(fields, "locator"));
  return std::unique_ptr<Mark>(
      std::make_unique<HtmlMark>(mark_id, url, locator));
}

}  // namespace slim::mark
