#ifndef SLIM_MARK_VALIDATOR_H_
#define SLIM_MARK_VALIDATOR_H_

/// \file validator.h
/// \brief Mark validation: detecting stale and dangling marks.
///
/// Paper §3: bundles deliberately duplicate base information ("redundancy
/// in bundles can be useful"), and marks exist "to minimize inconsistency".
/// Base documents keep living, though — cells are edited, lab reports
/// regenerated, files removed. This pass audits every mark in a manager
/// against the live base layer and classifies it:
///
///   kValid          — resolves, content matches the creation-time excerpt
///   kContentChanged — resolves, but the element's content has drifted
///   kDangling       — no longer resolves (document/element gone)
///
/// Superimposed applications surface the report to the user (e.g. flag
/// drifted scraps on the pad) rather than silently showing stale excerpts.

#include <string>
#include <vector>

#include "mark/mark_manager.h"

namespace slim::mark {

/// \brief Validation outcome for one mark.
enum class MarkHealth { kValid, kContentChanged, kDangling };

std::string_view MarkHealthName(MarkHealth health);

/// \brief One audited mark.
struct MarkAudit {
  std::string mark_id;
  MarkHealth health;
  std::string detail;  ///< Current content, or the resolution error.
};

/// \brief Whole-manager audit report.
struct ValidationReport {
  std::vector<MarkAudit> audits;
  size_t valid = 0;
  size_t changed = 0;
  size_t dangling = 0;

  bool all_valid() const { return changed == 0 && dangling == 0; }
  std::string ToString() const;
};

/// Audits every mark in `manager` against the live base layer. Marks with
/// an empty creation-time excerpt cannot drift-check and count as valid
/// when they resolve.
ValidationReport ValidateAllMarks(MarkManager* manager);

}  // namespace slim::mark

#endif  // SLIM_MARK_VALIDATOR_H_
