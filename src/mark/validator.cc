#include "mark/validator.h"

#include "obs/obs.h"

namespace slim::mark {

std::string_view MarkHealthName(MarkHealth health) {
  switch (health) {
    case MarkHealth::kValid: return "valid";
    case MarkHealth::kContentChanged: return "content-changed";
    case MarkHealth::kDangling: return "dangling";
  }
  return "unknown";
}

std::string ValidationReport::ToString() const {
  std::string out = std::to_string(audits.size()) + " mark(s): " +
                    std::to_string(valid) + " valid, " +
                    std::to_string(changed) + " changed, " +
                    std::to_string(dangling) + " dangling";
  for (const MarkAudit& a : audits) {
    if (a.health == MarkHealth::kValid) continue;
    out += "\n  [";
    out += MarkHealthName(a.health);
    out += "] ";
    out += a.mark_id;
    out += ": ";
    out += a.detail;
  }
  return out;
}

ValidationReport ValidateAllMarks(MarkManager* manager) {
  SLIM_OBS_SPAN(span, "mark.audit");
  SLIM_OBS_TIMER(timer, "mark.audit.latency_us");
  ValidationReport report;
  for (const std::string& id : manager->MarkIds()) {
    MarkAudit audit;
    audit.mark_id = id;
    Result<std::string> content = manager->ExtractContent(id);
    if (!content.ok()) {
      audit.health = MarkHealth::kDangling;
      audit.detail = content.status().ToString();
      ++report.dangling;
      SLIM_OBS_COUNT("mark.audit.dangling");
    } else {
      const Mark* m = manager->GetMark(id).ValueOrDie();
      if (!m->excerpt().empty() && m->excerpt() != *content) {
        audit.health = MarkHealth::kContentChanged;
        audit.detail = "was \"" + m->excerpt() + "\", now \"" + *content +
                       "\"";
        ++report.changed;
        SLIM_OBS_COUNT("mark.audit.changed");
      } else {
        audit.health = MarkHealth::kValid;
        audit.detail = *content;
        ++report.valid;
        SLIM_OBS_COUNT("mark.audit.valid");
      }
    }
    report.audits.push_back(std::move(audit));
  }
  span.AddTag("marks", std::to_string(report.audits.size()));
  return report;
}

}  // namespace slim::mark
