#ifndef SLIM_MARK_MARK_MANAGER_H_
#define SLIM_MARK_MARK_MANAGER_H_

/// \file mark_manager.h
/// \brief The Mark Manager (paper §4.2, Fig. 7).
///
/// "Mark management hides the details of the different kinds of base-layer
/// information and base-layer applications from the superimposed
/// application. From the superimposed application's viewpoint, a base
/// information element is addressed by a mark, regardless of its type."
///
/// The manager owns the marks, routes creation and resolution to the right
/// mark module, supports alternative resolvers per type (the Monikers
/// contrast of §5), and persists marks through XML.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mark/mark_module.h"
#include "util/id_generator.h"
#include "util/result.h"

namespace slim::mark {

/// \brief Owns marks; routes module operations by mark type.
class MarkManager {
 public:
  MarkManager() : ids_("mark") {}
  MarkManager(const MarkManager&) = delete;
  MarkManager& operator=(const MarkManager&) = delete;

  /// Registers a module under (mark_type, resolver_name). The module with
  /// resolver "context" is the type's default (used for creation and
  /// loading). The manager does not take ownership.
  Status RegisterModule(MarkModule* module);

  /// Mark types with a registered default module.
  std::vector<std::string> SupportedTypes() const;

  /// Creates a mark from the current selection of `mark_type`'s base
  /// application and takes ownership. Returns the mark id — the value a
  /// MarkHandle stores.
  Result<std::string> CreateMarkFromSelection(const std::string& mark_type);

  /// Adopts an externally constructed mark (e.g. built programmatically by
  /// a workload generator). Its id must be unused.
  Status AdoptMark(std::unique_ptr<Mark> mark);

  /// Fresh unique mark id (for building marks to adopt).
  std::string NextMarkId() { return ids_.Next(); }

  /// Looks up a mark by id.
  Result<const Mark*> GetMark(const std::string& mark_id) const;

  /// Removes a mark.
  Status RemoveMark(const std::string& mark_id);

  /// Resolves the mark with the named resolver ("context" drives the base
  /// application to the element and highlights it).
  Status ResolveMark(const std::string& mark_id,
                     const std::string& resolver = "context");

  /// §6 extension behavior: content of the marked element, no navigation.
  Result<std::string> ExtractContent(const std::string& mark_id);

  /// Number of marks held.
  size_t size() const { return marks_.size(); }

  /// All mark ids, in id order.
  std::vector<std::string> MarkIds() const;

  /// \name Persistence (XML, like the rest of the superimposed layer).
  /// @{
  std::string ToXml() const;
  Status FromXml(std::string_view xml_text);
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);
  /// @}

 private:
  Result<MarkModule*> FindModule(std::string_view mark_type,
                                 std::string_view resolver) const;

  std::map<std::pair<std::string, std::string>, MarkModule*> modules_;
  std::map<std::string, std::unique_ptr<Mark>> marks_;
  IdGenerator ids_;
};

}  // namespace slim::mark

#endif  // SLIM_MARK_MARK_MANAGER_H_
