#ifndef SLIM_MARK_MARK_H_
#define SLIM_MARK_MARK_H_

/// \file mark.h
/// \brief Marks: resolvable addresses into base-layer information.
///
/// Paper Fig. 3/Fig. 8: "A mark contains the address to the marked
/// information element, in whatever form required by the base source. There
/// is one subclass of Mark for each type of base information supported."
/// Each subclass carries exactly the fields the paper shows for its type
/// (e.g. Excel: fileName, sheetName, range; XML: fileName, xmlPath), plus a
/// content excerpt captured at creation time (used by "display in place"
/// and by SLIMPad to label scraps without resolving).

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "doc/pdf/pdf_document.h"
#include "doc/spreadsheet/a1.h"
#include "doc/text/text_document.h"
#include "util/result.h"

namespace slim::mark {

/// \brief Named string fields of a mark; the persistence and interchange
/// form (order is significant for round trips).
using MarkFields = std::vector<std::pair<std::string, std::string>>;

/// \brief Abstract mark.
class Mark {
 public:
  virtual ~Mark() = default;

  /// Unique id; MarkHandles in the superimposed layer refer to this.
  const std::string& mark_id() const { return mark_id_; }

  /// The base document (file name or URL) the mark points into.
  const std::string& file_name() const { return file_name_; }

  /// Mark type tag; selects the mark module ("excel", "xml", "text",
  /// "slides", "pdf", "html").
  virtual std::string_view type() const = 0;

  /// The address in the base application's native syntax — what
  /// BaseApplication::NavigateTo consumes.
  virtual std::string address() const = 0;

  /// Typed fields for persistence (excluding mark_id/excerpt, which the
  /// manager serializes uniformly).
  virtual MarkFields Fields() const = 0;

  /// Excerpt of the marked element's content, captured at creation.
  const std::string& excerpt() const { return excerpt_; }
  void set_excerpt(std::string excerpt) { excerpt_ = std::move(excerpt); }

  /// One-line description for UIs/logs: "excel:meds.book!Meds!B2:D2".
  std::string Describe() const;

 protected:
  Mark(std::string mark_id, std::string file_name)
      : mark_id_(std::move(mark_id)), file_name_(std::move(file_name)) {}

 private:
  std::string mark_id_;
  std::string file_name_;
  std::string excerpt_;
};

/// \brief Mark into a spreadsheet workbook (paper Fig. 8 left).
class ExcelMark : public Mark {
 public:
  ExcelMark(std::string mark_id, std::string file_name, std::string sheet_name,
            doc::RangeRef range)
      : Mark(std::move(mark_id), std::move(file_name)),
        sheet_name_(std::move(sheet_name)),
        range_(range) {}

  std::string_view type() const override { return "excel"; }
  const std::string& sheet_name() const { return sheet_name_; }
  const doc::RangeRef& range() const { return range_; }
  std::string address() const override {
    return sheet_name_ + "!" + doc::FormatRange(range_);
  }
  MarkFields Fields() const override {
    return {{"fileName", file_name()},
            {"sheetName", sheet_name_},
            {"range", doc::FormatRange(range_)}};
  }

 private:
  std::string sheet_name_;
  doc::RangeRef range_;
};

/// \brief Mark into an XML document (paper Fig. 8 right).
class XmlMark : public Mark {
 public:
  XmlMark(std::string mark_id, std::string file_name, std::string xml_path)
      : Mark(std::move(mark_id), std::move(file_name)),
        xml_path_(std::move(xml_path)) {}

  std::string_view type() const override { return "xml"; }
  const std::string& xml_path() const { return xml_path_; }
  std::string address() const override { return xml_path_; }
  MarkFields Fields() const override {
    return {{"fileName", file_name()}, {"xmlPath", xml_path_}};
  }

 private:
  std::string xml_path_;
};

/// \brief Span mark into a word-processor document.
class TextMark : public Mark {
 public:
  TextMark(std::string mark_id, std::string file_name,
           doc::text::TextSpan span)
      : Mark(std::move(mark_id), std::move(file_name)), span_(span) {}

  std::string_view type() const override { return "text"; }
  const doc::text::TextSpan& span() const { return span_; }
  std::string address() const override { return span_.ToString(); }
  MarkFields Fields() const override {
    return {{"fileName", file_name()}, {"span", span_.ToString()}};
  }

 private:
  doc::text::TextSpan span_;
};

/// \brief Mark onto a presentation slide or one of its shapes.
class SlideMark : public Mark {
 public:
  SlideMark(std::string mark_id, std::string file_name, int32_t slide,
            std::string shape_id)
      : Mark(std::move(mark_id), std::move(file_name)),
        slide_(slide),
        shape_id_(std::move(shape_id)) {}

  std::string_view type() const override { return "slides"; }
  int32_t slide() const { return slide_; }
  const std::string& shape_id() const { return shape_id_; }
  std::string address() const override;
  MarkFields Fields() const override {
    return {{"fileName", file_name()},
            {"slide", std::to_string(slide_)},
            {"shapeId", shape_id_}};
  }

 private:
  int32_t slide_;
  std::string shape_id_;
};

/// \brief Region mark into a (simulated) PDF document.
class PdfMark : public Mark {
 public:
  PdfMark(std::string mark_id, std::string file_name, int32_t page,
          doc::pdf::Rect region)
      : Mark(std::move(mark_id), std::move(file_name)),
        page_(page),
        region_(region) {}

  std::string_view type() const override { return "pdf"; }
  int32_t page() const { return page_; }
  const doc::pdf::Rect& region() const { return region_; }
  std::string address() const override;
  MarkFields Fields() const override {
    return {{"fileName", file_name()},
            {"page", std::to_string(page_)},
            {"rect", region_.ToString()}};
  }

 private:
  int32_t page_;
  doc::pdf::Rect region_;
};

/// \brief Mark into an HTML page (by id, anchor, or structural path).
class HtmlMark : public Mark {
 public:
  HtmlMark(std::string mark_id, std::string url, std::string locator)
      : Mark(std::move(mark_id), std::move(url)),
        locator_(std::move(locator)) {}

  std::string_view type() const override { return "html"; }
  /// The "id:", "anchor:" or "path:" locator.
  const std::string& locator() const { return locator_; }
  std::string address() const override { return locator_; }
  MarkFields Fields() const override {
    return {{"url", file_name()}, {"locator", locator_}};
  }

 private:
  std::string locator_;
};

}  // namespace slim::mark

#endif  // SLIM_MARK_MARK_H_
