#ifndef SLIM_MARK_MODULES_H_
#define SLIM_MARK_MODULES_H_

/// \file modules.h
/// \brief Concrete mark modules, one per base application (paper Fig. 7).

#include <memory>

#include "baseapp/html_app.h"
#include "baseapp/pdf_app.h"
#include "baseapp/slide_app.h"
#include "baseapp/spreadsheet_app.h"
#include "baseapp/text_app.h"
#include "baseapp/xml_app.h"
#include "mark/mark_module.h"

namespace slim::mark {

/// \brief Excel mark module: selection -> ExcelMark; resolution opens the
/// file, activates the worksheet and selects the range (paper §4.2).
class ExcelMarkModule : public MarkModule {
 public:
  explicit ExcelMarkModule(baseapp::SpreadsheetApp* app) : app_(app) {}
  std::string_view mark_type() const override { return "excel"; }
  Result<std::unique_ptr<Mark>> CreateFromSelection(
      const std::string& mark_id) override;
  Status Resolve(const Mark& m) override;
  Result<std::string> ExtractContent(const Mark& m) override;
  Result<std::unique_ptr<Mark>> FromFields(const std::string& mark_id,
                                           const MarkFields& fields) override;

 private:
  baseapp::SpreadsheetApp* app_;
};

/// \brief XML mark module (xmlPath addressing).
class XmlMarkModule : public MarkModule {
 public:
  explicit XmlMarkModule(baseapp::XmlApp* app) : app_(app) {}
  std::string_view mark_type() const override { return "xml"; }
  Result<std::unique_ptr<Mark>> CreateFromSelection(
      const std::string& mark_id) override;
  Status Resolve(const Mark& m) override;
  Result<std::string> ExtractContent(const Mark& m) override;
  Result<std::unique_ptr<Mark>> FromFields(const std::string& mark_id,
                                           const MarkFields& fields) override;

 private:
  baseapp::XmlApp* app_;
};

/// \brief Word-processor span marks.
class TextMarkModule : public MarkModule {
 public:
  explicit TextMarkModule(baseapp::TextApp* app) : app_(app) {}
  std::string_view mark_type() const override { return "text"; }
  Result<std::unique_ptr<Mark>> CreateFromSelection(
      const std::string& mark_id) override;
  Status Resolve(const Mark& m) override;
  Result<std::string> ExtractContent(const Mark& m) override;
  Result<std::unique_ptr<Mark>> FromFields(const std::string& mark_id,
                                           const MarkFields& fields) override;

 private:
  baseapp::TextApp* app_;
};

/// \brief Presentation slide/shape marks.
class SlideMarkModule : public MarkModule {
 public:
  explicit SlideMarkModule(baseapp::SlideApp* app) : app_(app) {}
  std::string_view mark_type() const override { return "slides"; }
  Result<std::unique_ptr<Mark>> CreateFromSelection(
      const std::string& mark_id) override;
  Status Resolve(const Mark& m) override;
  Result<std::string> ExtractContent(const Mark& m) override;
  Result<std::unique_ptr<Mark>> FromFields(const std::string& mark_id,
                                           const MarkFields& fields) override;

 private:
  baseapp::SlideApp* app_;
};

/// \brief PDF page/region marks.
class PdfMarkModule : public MarkModule {
 public:
  explicit PdfMarkModule(baseapp::PdfApp* app) : app_(app) {}
  std::string_view mark_type() const override { return "pdf"; }
  Result<std::unique_ptr<Mark>> CreateFromSelection(
      const std::string& mark_id) override;
  Status Resolve(const Mark& m) override;
  Result<std::string> ExtractContent(const Mark& m) override;
  Result<std::unique_ptr<Mark>> FromFields(const std::string& mark_id,
                                           const MarkFields& fields) override;

 private:
  baseapp::PdfApp* app_;
};

/// \brief HTML page marks.
class HtmlMarkModule : public MarkModule {
 public:
  explicit HtmlMarkModule(baseapp::HtmlApp* app) : app_(app) {}
  std::string_view mark_type() const override { return "html"; }
  Result<std::unique_ptr<Mark>> CreateFromSelection(
      const std::string& mark_id) override;
  Status Resolve(const Mark& m) override;
  Result<std::string> ExtractContent(const Mark& m) override;
  Result<std::unique_ptr<Mark>> FromFields(const std::string& mark_id,
                                           const MarkFields& fields) override;

 private:
  baseapp::HtmlApp* app_;
};

/// \brief The §5/§6 alternative resolver: an in-place viewer for any mark
/// type. Resolving does NOT drive the base application's visible state;
/// instead the element's content is fetched and handed to the superimposed
/// application (the independent-viewing style of Fig. 6).
class InPlaceModule : public MarkModule {
 public:
  /// Wraps the type's default module; `delegate` must outlive this.
  explicit InPlaceModule(MarkModule* delegate) : delegate_(delegate) {}

  std::string_view mark_type() const override {
    return delegate_->mark_type();
  }
  std::string_view resolver_name() const override { return "inplace"; }

  /// In-place modules do not create marks.
  Result<std::unique_ptr<Mark>> CreateFromSelection(
      const std::string&) override {
    return Status::Unsupported("in-place module cannot create marks");
  }

  /// Fetches the content and stores it for the caller to display in place.
  Status Resolve(const Mark& m) override {
    SLIM_ASSIGN_OR_RETURN(last_displayed_, delegate_->ExtractContent(m));
    return Status::OK();
  }

  Result<std::string> ExtractContent(const Mark& m) override {
    return delegate_->ExtractContent(m);
  }

  Result<std::unique_ptr<Mark>> FromFields(const std::string& mark_id,
                                           const MarkFields& fields) override {
    return delegate_->FromFields(mark_id, fields);
  }

  /// Content produced by the last in-place resolution.
  const std::string& last_displayed() const { return last_displayed_; }

 private:
  MarkModule* delegate_;
  std::string last_displayed_;
};

}  // namespace slim::mark

#endif  // SLIM_MARK_MODULES_H_
