#ifndef SLIM_MARK_MARK_MODULE_H_
#define SLIM_MARK_MARK_MODULE_H_

/// \file mark_module.h
/// \brief Mark modules (paper §4.2): the per-application adapters.
///
/// "A mark module, specific to a base-layer application, enables the
/// creation of marks by receiving information from that application... A
/// mark module resolves a mark by driving the base-layer application to the
/// information element designated by the mark."
///
/// §5 (Monikers comparison): because a *manager* resolves marks rather than
/// the mark itself, several modules can serve the same mark type with
/// different behaviors — e.g. one displays the element in context, another
/// acts as an in-place viewer. `resolver_name()` distinguishes them.

#include <memory>
#include <string>

#include "mark/mark.h"
#include "util/result.h"

namespace slim::mark {

/// \brief Abstract per-application mark module.
class MarkModule {
 public:
  virtual ~MarkModule() = default;

  /// The mark type this module serves ("excel", "xml", ...).
  virtual std::string_view mark_type() const = 0;

  /// Which resolution behavior this module provides. The default module of
  /// a type is "context" (navigate + highlight in the base app); an
  /// in-place-viewer module would be "inplace".
  virtual std::string_view resolver_name() const { return "context"; }

  /// Creates a mark (with the given id) from the base application's
  /// current selection — the paper's creation flow: the application hands
  /// its selection to the module, the module builds the typed mark.
  virtual Result<std::unique_ptr<Mark>> CreateFromSelection(
      const std::string& mark_id) = 0;

  /// Resolves the mark: drives the base application to the addressed
  /// element (or whatever this resolver's behavior is).
  virtual Status Resolve(const Mark& m) = 0;

  /// §6 extension: returns the element's current content without visible
  /// navigation.
  virtual Result<std::string> ExtractContent(const Mark& m) = 0;

  /// Reconstructs a typed mark from persisted fields.
  virtual Result<std::unique_ptr<Mark>> FromFields(
      const std::string& mark_id, const MarkFields& fields) = 0;
};

/// Looks up a field by name in persisted MarkFields.
Result<std::string> GetField(const MarkFields& fields,
                             const std::string& name);

}  // namespace slim::mark

#endif  // SLIM_MARK_MARK_MODULE_H_
