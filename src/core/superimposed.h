#ifndef SLIM_CORE_SUPERIMPOSED_H_
#define SLIM_CORE_SUPERIMPOSED_H_

/// \file superimposed.h
/// \brief Umbrella header: the public API of the superimposed-information
/// architecture (the paper's primary contribution).
///
/// The contribution is not one class but the three generic components of
/// paper Fig. 5 and the application built on them:
///
///  - **Mark management** (`slim::mark`): MarkManager, typed Mark
///    subclasses, per-application mark modules, alternative resolvers, and
///    the staleness validator.
///  - **Superimposed information management** (`slim::trim`, `slim::store`):
///    TRIM triple stores (hash-indexed and interned), the metamodel
///    (models/schemas/instances as triples), conformance checking, schema
///    induction, mappings, queries, and RDF/XML interchange.
///  - **Application-specific DMIs** (`slim::dmi`, `slim::pad`): the
///    runtime-generated DynamicDmi and SLIMPad's hand-written SlimPadDmi.
///  - **SLIMPad** (`slim::pad`): the Bundle-Scrap application with the
///    three viewing styles.
///
/// Base applications and document substrates live under `slim::baseapp`
/// and `slim::doc`; superimposed applications depend only on the
/// interfaces re-exported here.

// Error handling.
#include "util/result.h"
#include "util/status.h"

// Base-application contract (what a new source type must implement) and
// the six bundled base applications.
#include "baseapp/base_application.h"
#include "baseapp/html_app.h"
#include "baseapp/pdf_app.h"
#include "baseapp/slide_app.h"
#include "baseapp/spreadsheet_app.h"
#include "baseapp/text_app.h"
#include "baseapp/xml_app.h"

// Mark management (interface, the six bundled modules, the manager).
#include "mark/mark.h"
#include "mark/mark_manager.h"
#include "mark/mark_module.h"
#include "mark/modules.h"
#include "mark/validator.h"

// Superimposed information management.
#include "slim/conformance.h"
#include "slim/instance.h"
#include "slim/mapping.h"
#include "slim/model.h"
#include "slim/query.h"
#include "slim/schema.h"
#include "trim/persistence.h"
#include "trim/rdf_xml.h"
#include "trim/triple_store.h"

// Data-manipulation interfaces.
#include "dmi/dynamic_dmi.h"

// The SLIMPad application.
#include "slimpad/slimpad_app.h"
#include "slimpad/slimpad_dmi.h"

#endif  // SLIM_CORE_SUPERIMPOSED_H_
