#ifndef SLIM_OBS_LOCK_PROFILER_H_
#define SLIM_OBS_LOCK_PROFILER_H_

/// \file lock_profiler.h
/// \brief Turns util::InstrumentedMutex events into lock-contention
/// telemetry.
///
/// `util::InstrumentedMutex` publishes one `MutexEvent` per acquire/release
/// cycle through a process-wide hook (util stays obs-free); this profiler
/// is the hook's implementation. While installed it keeps per-site
/// aggregates (acquisitions, contended count, total/max wait and hold
/// times) and emits, per named lock site:
///
///   - `obs.lock.<site>.wait_us`   histogram — time lock() blocked
///   - `obs.lock.<site>.hold_us`   histogram — critical-section length
///   - `obs.lock.<site>.acquisitions` counter
///   - `obs.lock.<site>.contended`    counter — acquisitions that blocked
///
/// into a MetricsRegistry (`obs.lock.*` in the DESIGN.md §8 catalog). The
/// registry's own mutex is itself instrumented, so recording an event can
/// generate another event; a per-thread reentrancy guard drops those
/// nested events instead of recursing.
///
/// `HotLockTable()` renders the sites sorted by total wait time — the
/// "which lock is the bottleneck" view used by `obs_dump` and the flight
/// recorder bundle.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/instrumented_mutex.h"
#include "util/thread_annotations.h"

namespace slim::obs {

class MetricsRegistry;

class LockProfiler {
 public:
  struct SiteStats {
    const char* site = nullptr;
    uint64_t acquisitions = 0;
    uint64_t contended = 0;
    uint64_t wait_ns_total = 0;
    uint64_t wait_ns_max = 0;
    uint64_t hold_ns_total = 0;
    uint64_t hold_ns_max = 0;
  };

  LockProfiler() = default;
  ~LockProfiler() { Uninstall(); }
  LockProfiler(const LockProfiler&) = delete;
  LockProfiler& operator=(const LockProfiler&) = delete;

  /// Installs this profiler as the process-wide mutex-event hook. Events
  /// are aggregated per site and, when `registry` is non-null, emitted as
  /// `obs.lock.*` metrics into it. Only one profiler (and one mutex-event
  /// hook) can be installed at a time; returns false if another is active.
  bool Install(MetricsRegistry* registry);
  void Uninstall();
  bool installed() const;

  /// Per-site aggregates, sorted by total wait time (desc), then site name.
  std::vector<SiteStats> Sites() const;

  /// Human-readable hot-lock table (top `max_rows` sites by wait time).
  std::string HotLockTable(size_t max_rows = 16) const;

  /// JSON array of per-site aggregates (flight-recorder bundle section).
  std::string ToJson() const;

  /// Drops all per-site aggregates (obs.lock.* metrics are not reset).
  void Clear();

  /// Process-wide instance used by obs_dump and the flight recorder.
  static LockProfiler& Default();

 private:
  static void OnEventThunk(const util::MutexEvent& event);
  void OnEvent(const util::MutexEvent& event);

  // Raw mutex by design: this lock sits *inside* the mutex-event hook, so
  // instrumenting it would feed the profiler its own lock traffic (and the
  // reentrancy guard would drop every event it generated anyway).
  // slim-lint: allow(raw-mutex) -- inside the mutex-event hook itself
  mutable std::mutex mu_;
  // Keyed by the site literal's address: one entry per declaration site.
  std::map<const char*, SiteStats> sites_ GUARDED_BY(mu_);
  MetricsRegistry* registry_ = nullptr;  // set in Install, before hooking
};

}  // namespace slim::obs

#endif  // SLIM_OBS_LOCK_PROFILER_H_
