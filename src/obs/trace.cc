#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"

namespace slim::obs {

std::string FormatSpanJson(const SpanRecord& span) {
  std::string out = "{\"id\":" + std::to_string(span.id) +
                    ",\"parent\":" + std::to_string(span.parent_id) +
                    ",\"depth\":" + std::to_string(span.depth) +
                    ",\"name\":" + JsonQuote(span.name) +
                    ",\"start_ns\":" + std::to_string(span.start_ns) +
                    ",\"duration_ns\":" + std::to_string(span.duration_ns);
  if (!span.tags.empty()) {
    out += ",\"tags\":{";
    for (size_t i = 0; i < span.tags.size(); ++i) {
      if (i) out += ',';
      out += JsonQuote(span.tags[i].first) + ":" +
             JsonQuote(span.tags[i].second);
    }
    out += '}';
  }
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

void RingBufferSink::OnSpanEnd(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() == capacity_) {
    spans_.pop_front();
    ++dropped_;
  }
  spans_.push_back(span);
}

std::vector<SpanRecord> RingBufferSink::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {spans_.begin(), spans_.end()};
}

size_t RingBufferSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

size_t RingBufferSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void RingBufferSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  dropped_ = 0;
}

JsonlFileSink::JsonlFileSink(const std::string& path)
    : out_(path, std::ios::binary | std::ios::app) {}

void JsonlFileSink::OnSpanEnd(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) return;
  out_ << FormatSpanJson(span) << "\n";
  out_.flush();
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    start_ = other.start_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->FinishSpan(&record_, start_);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

void Tracer::AddSink(TraceSink* sink) {
  if (sink == nullptr) return;
  if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end()) {
    sinks_.push_back(sink);
  }
}

void Tracer::RemoveSink(TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

Span Tracer::StartSpan(std::string name) {
  if (!active()) return Span{};
  SpanRecord record;
  record.id = next_id_++;
  record.parent_id = open_.empty() ? 0 : open_.back();
  record.depth = static_cast<int>(open_.size());
  record.name = std::move(name);
  auto now = std::chrono::steady_clock::now();
  record.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count());
  open_.push_back(record.id);
  return Span(this, std::move(record), now);
}

void Tracer::FinishSpan(SpanRecord* record,
                        std::chrono::steady_clock::time_point start) {
  record->duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  // Usually the innermost open span ends first; a moved span ending out of
  // order is simply removed wherever it is.
  auto it = std::find(open_.rbegin(), open_.rend(), record->id);
  if (it != open_.rend()) {
    open_.erase(std::next(it).base());
  }
  ++finished_;
  for (TraceSink* sink : sinks_) sink->OnSpanEnd(*record);
}

Tracer& DefaultTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace slim::obs
