#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"

namespace slim::obs {

std::string FormatSpanJson(const SpanRecord& span) {
  std::string out = "{\"id\":" + std::to_string(span.id) +
                    ",\"parent\":" + std::to_string(span.parent_id) +
                    ",\"depth\":" + std::to_string(span.depth) +
                    ",\"name\":" + JsonQuote(span.name) +
                    ",\"start_ns\":" + std::to_string(span.start_ns) +
                    ",\"duration_ns\":" + std::to_string(span.duration_ns);
  if (!span.tags.empty()) {
    out += ",\"tags\":{";
    for (size_t i = 0; i < span.tags.size(); ++i) {
      if (i) out += ',';
      out += JsonQuote(span.tags[i].first) + ":" +
             JsonQuote(span.tags[i].second);
    }
    out += '}';
  }
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

void RingBufferSink::OnSpanEnd(const SpanRecord& span) {
  util::MutexLock lock(&mu_);
  if (spans_.size() == capacity_) {
    spans_.pop_front();
    ++dropped_;
  }
  spans_.push_back(span);
}

std::vector<SpanRecord> RingBufferSink::Spans() const {
  util::MutexLock lock(&mu_);
  return {spans_.begin(), spans_.end()};
}

size_t RingBufferSink::size() const {
  util::MutexLock lock(&mu_);
  return spans_.size();
}

size_t RingBufferSink::dropped() const {
  util::MutexLock lock(&mu_);
  return dropped_;
}

void RingBufferSink::Clear() {
  util::MutexLock lock(&mu_);
  spans_.clear();
  dropped_ = 0;
}

JsonlFileSink::JsonlFileSink(const std::string& path)
    : out_(path, std::ios::binary | std::ios::app) {}

void JsonlFileSink::OnSpanEnd(const SpanRecord& span) {
  util::MutexLock lock(&mu_);
  if (!out_.is_open()) return;
  out_ << FormatSpanJson(span) << "\n";
  out_.flush();
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    start_ = other.start_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->FinishSpan(&record_, start_);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

namespace {

/// Per-thread stack of open spans, outermost first. Entries carry the
/// owning tracer so several tracers (the default one plus test-local ones)
/// can nest independently on the same thread.
struct OpenSpan {
  const Tracer* tracer;
  uint64_t id;
};
thread_local std::vector<OpenSpan> t_open_spans;

}  // namespace

void Tracer::AddSink(TraceSink* sink) {
  if (sink == nullptr) return;
  util::MutexLock lock(&mu_);
  if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end()) {
    sinks_.push_back(sink);
    sink_count_.store(sinks_.size(), std::memory_order_release);
  }
}

void Tracer::RemoveSink(TraceSink* sink) {
  util::MutexLock lock(&mu_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
  sink_count_.store(sinks_.size(), std::memory_order_release);
}

Span Tracer::StartSpan(std::string name) {
  if (!active()) return Span{};
  SpanRecord record;
  record.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  record.parent_id = 0;
  int depth = 0;
  for (const OpenSpan& open : t_open_spans) {
    if (open.tracer == this) {
      record.parent_id = open.id;  // innermost-so-far; loop ends on deepest
      ++depth;
    }
  }
  record.depth = depth;
  record.name = std::move(name);
  auto now = std::chrono::steady_clock::now();
  record.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count());
  t_open_spans.push_back(OpenSpan{this, record.id});
  return Span(this, std::move(record), now);
}

void Tracer::FinishSpan(SpanRecord* record,
                        std::chrono::steady_clock::time_point start) {
  record->duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  // Usually the innermost open span ends first; a moved span ending out of
  // order is removed wherever it is. A span ended on a different thread
  // than it started on is simply absent from this thread's stack.
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->tracer == this && it->id == record->id) {
      t_open_spans.erase(std::next(it).base());
      break;
    }
  }
  finished_.fetch_add(1, std::memory_order_relaxed);
  // Delivery holds the tracer's mutex (like Logger): records from any
  // thread serialize, and RemoveSink cannot return while a sink is still
  // being offered a record.
  util::MutexLock lock(&mu_);
  for (TraceSink* sink : sinks_) sink->OnSpanEnd(*record);
}

Tracer& DefaultTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace slim::obs
