#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"

namespace slim::obs {

std::string FormatSpanJson(const SpanRecord& span) {
  std::string out = "{\"id\":" + std::to_string(span.id) +
                    ",\"parent\":" + std::to_string(span.parent_id) +
                    ",\"depth\":" + std::to_string(span.depth) +
                    ",\"name\":" + JsonQuote(span.name) +
                    ",\"start_ns\":" + std::to_string(span.start_ns) +
                    ",\"duration_ns\":" + std::to_string(span.duration_ns);
  if (!span.tags.empty()) {
    out += ",\"tags\":{";
    for (size_t i = 0; i < span.tags.size(); ++i) {
      if (i) out += ',';
      out += JsonQuote(span.tags[i].first) + ":" +
             JsonQuote(span.tags[i].second);
    }
    out += '}';
  }
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

void RingBufferSink::OnSpanEnd(const SpanRecord& span) {
  util::MutexLock lock(&mu_);
  if (spans_.size() == capacity_) {
    spans_.pop_front();
    ++dropped_;
  }
  spans_.push_back(span);
}

std::vector<SpanRecord> RingBufferSink::Spans() const {
  util::MutexLock lock(&mu_);
  return {spans_.begin(), spans_.end()};
}

size_t RingBufferSink::size() const {
  util::MutexLock lock(&mu_);
  return spans_.size();
}

size_t RingBufferSink::dropped() const {
  util::MutexLock lock(&mu_);
  return dropped_;
}

void RingBufferSink::Clear() {
  util::MutexLock lock(&mu_);
  spans_.clear();
  dropped_ = 0;
}

JsonlFileSink::JsonlFileSink(const std::string& path)
    : out_(path, std::ios::binary | std::ios::app) {}

void JsonlFileSink::OnSpanEnd(const SpanRecord& span) {
  util::MutexLock lock(&mu_);
  if (!out_.is_open()) return;
  out_ << FormatSpanJson(span) << "\n";
  out_.flush();
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    start_ = other.start_;
    slot_ = other.slot_;
    tracked_in_map_ = other.tracked_in_map_;
    lightweight_ = other.lightweight_;
    stack_only_ = other.stack_only_;
    stack_ = other.stack_;
    stack_prev_depth_ = other.stack_prev_depth_;
    other.tracer_ = nullptr;
    other.slot_ = nullptr;
    other.tracked_in_map_ = false;
    other.lightweight_ = false;
    other.stack_only_ = false;
    other.stack_ = nullptr;
    other.stack_prev_depth_ = 0;
  }
  return *this;
}

void Span::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  if (stack_ != nullptr) {
    tracer->PopStack(stack_, stack_prev_depth_);
    stack_ = nullptr;
  }
  if (stack_only_) {
    stack_only_ = false;
    return;
  }
  if (slot_ != nullptr) {
    tracer->ReleaseSlot(slot_, record_.id);
    slot_ = nullptr;
  }
  if (tracked_in_map_) {
    tracer->UnregisterActive(record_.id);
    tracked_in_map_ = false;
  }
  if (lightweight_) {
    lightweight_ = false;
    tracer->NoteFinished();
    return;
  }
  tracer->FinishSpan(&record_, start_);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

namespace {

/// Per-thread stack of open spans, outermost first. Entries carry the
/// owning tracer so several tracers (the default one plus test-local ones)
/// can nest independently on the same thread.
struct OpenSpan {
  const Tracer* tracer;
  uint64_t id;
};
thread_local std::vector<OpenSpan> t_open_spans;

/// This thread's slot slabs, one per tracer it has started tracked spans
/// on. Keyed by the tracer's process-unique epoch (never reused), so an
/// entry for a destroyed tracer can never be matched — it just sits inert.
struct SlabRef {
  uint64_t tracer_epoch;
  ActiveSlab* slab;
};
thread_local std::vector<SlabRef> t_slabs;

/// This thread's span stacks, keyed like t_slabs by the tracer's
/// process-unique epoch.
struct StackRef {
  uint64_t tracer_epoch;
  SpanStack* stack;
};
thread_local std::vector<StackRef> t_stacks;

/// Thread-local memo for Tracer::InternSpanNameCached: a direct-mapped
/// cache in the spirit of the metrics registry's Get* memo, so steady-state
/// stack pushes never touch names_mu_.
struct NameMemo {
  uint64_t tracer_epoch = 0;
  uint64_t hash = 0;
  uint32_t id = 0;
  std::string name;
};
inline constexpr size_t kNameMemoSlots = 16;
thread_local NameMemo t_name_memo[kNameMemoSlots];

}  // namespace

namespace internal {
uint64_t NextTracerEpoch() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

thread_local SigStackRef t_sig_stack;
}  // namespace internal

void Tracer::AddSink(TraceSink* sink) {
  if (sink == nullptr) return;
  util::MutexLock lock(&mu_);
  if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end()) {
    sinks_.push_back(sink);
    sink_count_.store(sinks_.size(), std::memory_order_release);
  }
}

void Tracer::RemoveSink(TraceSink* sink) {
  util::MutexLock lock(&mu_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
  sink_count_.store(sinks_.size(), std::memory_order_release);
}

const std::string* Tracer::TrackFilter::Find(const std::string& name) const {
  auto it = std::lower_bound(names.begin(), names.end(), name);
  if (it == names.end() || *it != name) return nullptr;
  return &*it;
}

ActiveSlab* Tracer::LocalSlab() {
  for (const SlabRef& ref : t_slabs) {
    if (ref.tracer_epoch == tracer_epoch_) return ref.slab;
  }
  auto slab = std::make_unique<ActiveSlab>();
  ActiveSlab* raw = slab.get();
  {
    util::MutexLock lock(&active_mu_);
    slabs_.push_back(std::move(slab));
  }
  t_slabs.push_back(SlabRef{tracer_epoch_, raw});
  return raw;
}

SpanStack* Tracer::LocalStack() {
  for (const StackRef& ref : t_stacks) {
    if (ref.tracer_epoch == tracer_epoch_) {
      // Re-publish for the SIGPROF sampler: the thread may have used
      // another tracer since, or the profiler may have (re)started.
      internal::t_sig_stack.stack.store(ref.stack, std::memory_order_relaxed);
      internal::t_sig_stack.tracer_epoch.store(tracer_epoch_,
                                               std::memory_order_relaxed);
      return ref.stack;
    }
  }
  auto stack = std::make_unique<SpanStack>();
  SpanStack* raw = stack.get();
  {
    util::MutexLock lock(&active_mu_);
    stacks_.push_back(std::move(stack));
    stack_count_.store(stacks_.size(), std::memory_order_release);
  }
  t_stacks.push_back(StackRef{tracer_epoch_, raw});
  internal::t_sig_stack.stack.store(raw, std::memory_order_relaxed);
  internal::t_sig_stack.tracer_epoch.store(tracer_epoch_,
                                           std::memory_order_relaxed);
  return raw;
}

SpanStack* Tracer::CurrentStack() const {
  for (const StackRef& ref : t_stacks) {
    if (ref.tracer_epoch == tracer_epoch_) return ref.stack;
  }
  return nullptr;
}

uint32_t Tracer::InternSpanName(const std::string& name) {
  util::MutexLock lock(&names_mu_);
  auto [it, inserted] = name_ids_.emplace(name, 0);
  if (inserted) {
    names_by_id_.push_back(&it->first);
    it->second = static_cast<uint32_t>(names_by_id_.size());
  }
  return it->second;
}

uint32_t Tracer::InternSpanNameCached(const std::string& name) {
  const uint64_t hash = internal::HashMetricName(name);
  NameMemo& memo = t_name_memo[hash & (kNameMemoSlots - 1)];
  if (memo.tracer_epoch == tracer_epoch_ && memo.hash == hash &&
      memo.name == name) {
    return memo.id;
  }
  const uint32_t id = InternSpanName(name);
  memo.tracer_epoch = tracer_epoch_;
  memo.hash = hash;
  memo.id = id;
  memo.name = name;
  return id;
}

std::vector<std::string> Tracer::SpanNameTable() const {
  util::MutexLock lock(&names_mu_);
  std::vector<std::string> out;
  out.reserve(names_by_id_.size());
  for (const std::string* name : names_by_id_) out.push_back(*name);
  return out;
}

std::vector<const SpanStack*> Tracer::StackRegistry() const {
  util::MutexLock lock(&active_mu_);
  std::vector<const SpanStack*> out;
  out.reserve(stacks_.size());
  for (const auto& stack : stacks_) out.push_back(stack.get());
  return out;
}

ActiveSlot* Tracer::ClaimSlot(uint64_t id, const std::string* name,
                              uint64_t start_ns) {
  ActiveSlab* slab = LocalSlab();
  for (ActiveSlot& slot : slab->slots) {
    // Only this thread claims slots in its slab (End() may clear them from
    // another thread, but that only ever frees slots — never claims).
    if (slot.id.load(std::memory_order_relaxed) != 0) continue;
    slot.name.store(name, std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.id.store(id, std::memory_order_release);
    return &slot;
  }
  // Every slot busy (16 concurrent tracked spans on this thread): the
  // shared map still catches the span, at mutex cost.
  util::MutexLock lock(&active_mu_);
  active_.emplace(id, ActiveSpanInfo{id, *name, start_ns});
  return nullptr;
}

Span Tracer::StartSpan(std::string name) {
  if (Disabled()) return Span{};
  const bool to_sinks = sink_count() != 0;
  const bool track_all = tracking_active();
  const bool stacks = stack_tracking();
  const std::string* interned = nullptr;
  if (!track_all) {
    const TrackFilter* filter =
        track_filter_.load(std::memory_order_acquire);
    if (filter != nullptr) interned = filter->Find(name);
  }
  if (!to_sinks && !track_all && interned == nullptr && !stacks) {
    return Span{};
  }

  SpanStack* stack = nullptr;
  uint32_t stack_prev_depth = 0;
  if (stacks) {
    stack = LocalStack();
    stack_prev_depth = PushStack(stack, InternSpanNameCached(name));
  }

  if (!to_sinks && !track_all && interned == nullptr) {
    // Stack-only fastest path: the span exists purely so the sampling
    // profiler sees the frame. No id fetch_add, no clock read; after the
    // first span of a name on a thread, no locks either.
    Span span;
    span.tracer_ = this;
    span.stack_only_ = true;
    span.stack_ = stack;
    span.stack_prev_depth_ = stack_prev_depth;
    return span;
  }

  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto now = std::chrono::steady_clock::now();
  const uint64_t start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count());

  if (!to_sinks && !track_all) {
    // Tracked-only fast path: the span exists solely for stall detection.
    // No parent bookkeeping, no name copy — ~30ns on top of an inert span.
    SpanRecord record;
    record.id = id;
    Span span(this, std::move(record), now);
    span.slot_ = ClaimSlot(id, interned, start_ns);
    span.tracked_in_map_ = span.slot_ == nullptr;
    span.lightweight_ = true;
    span.stack_ = stack;
    span.stack_prev_depth_ = stack_prev_depth;
    return span;
  }

  SpanRecord record;
  record.id = id;
  record.parent_id = 0;
  int depth = 0;
  for (const OpenSpan& open : t_open_spans) {
    if (open.tracer == this) {
      record.parent_id = open.id;  // innermost-so-far; loop ends on deepest
      ++depth;
    }
  }
  record.depth = depth;
  record.name = std::move(name);
  record.start_ns = start_ns;
  t_open_spans.push_back(OpenSpan{this, record.id});
  Span span(this, std::move(record), now);
  span.stack_ = stack;
  span.stack_prev_depth_ = stack_prev_depth;
  if (track_all) {
    util::MutexLock lock(&active_mu_);
    active_.emplace(id, ActiveSpanInfo{id, span.record_.name, start_ns});
    span.tracked_in_map_ = true;
  } else if (interned != nullptr) {
    span.slot_ = ClaimSlot(id, interned, start_ns);
    span.tracked_in_map_ = span.slot_ == nullptr;
  }
  return span;
}

void Tracer::set_track_active(bool enabled) {
  track_active_.store(enabled, std::memory_order_relaxed);
  if (!enabled) {
    // Spans started while tracking was on unregister themselves on End()
    // whether or not tracking is still enabled; clearing here just frees
    // entries for spans that will finish after a disable raced them.
    util::MutexLock lock(&active_mu_);
    active_.clear();
  }
}

void Tracer::set_track_filter(std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  if (names.empty()) {
    track_filter_.store(nullptr, std::memory_order_release);
    return;
  }
  auto filter = std::make_unique<TrackFilter>();
  filter->names = std::move(names);
  const TrackFilter* raw = filter.get();
  util::MutexLock lock(&active_mu_);
  // Superseded filters are retained, not freed: slots in still-open spans
  // hold pointers into them.
  filters_.push_back(std::move(filter));
  track_filter_.store(raw, std::memory_order_release);
}

void Tracer::UnregisterActive(uint64_t id) {
  util::MutexLock lock(&active_mu_);
  active_.erase(id);
}

std::vector<ActiveSpanInfo> Tracer::ActiveSpans() const {
  util::MutexLock lock(&active_mu_);
  std::vector<ActiveSpanInfo> out;
  out.reserve(active_.size());
  for (const auto& [id, info] : active_) out.push_back(info);
  for (const auto& slab : slabs_) {
    for (const ActiveSlot& slot : slab->slots) {
      const uint64_t id = slot.id.load(std::memory_order_acquire);
      if (id == 0) continue;
      const std::string* name = slot.name.load(std::memory_order_relaxed);
      const uint64_t start_ns = slot.start_ns.load(std::memory_order_relaxed);
      // A claim raced us: ids are never reused, so an unchanged id means
      // the fields belong together.
      if (name == nullptr ||
          slot.id.load(std::memory_order_acquire) != id) {
        continue;
      }
      out.push_back(ActiveSpanInfo{id, *name, start_ns});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ActiveSpanInfo& a, const ActiveSpanInfo& b) {
              return a.id < b.id;
            });
  return out;
}

size_t Tracer::active_span_count() const {
  util::MutexLock lock(&active_mu_);
  size_t count = active_.size();
  for (const auto& slab : slabs_) {
    for (const ActiveSlot& slot : slab->slots) {
      if (slot.id.load(std::memory_order_acquire) != 0) ++count;
    }
  }
  return count;
}

void Tracer::FinishSpan(SpanRecord* record,
                        std::chrono::steady_clock::time_point start) {
  record->duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  // Usually the innermost open span ends first; a moved span ending out of
  // order is removed wherever it is. A span ended on a different thread
  // than it started on is simply absent from this thread's stack.
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->tracer == this && it->id == record->id) {
      t_open_spans.erase(std::next(it).base());
      break;
    }
  }
  finished_.fetch_add(1, std::memory_order_relaxed);
  if (sink_count() == 0) return;  // tracking-only mode: nothing to deliver
  // Delivery holds the tracer's mutex (like Logger): records from any
  // thread serialize, and RemoveSink cannot return while a sink is still
  // being offered a record.
  util::MutexLock lock(&mu_);
  for (TraceSink* sink : sinks_) sink->OnSpanEnd(*record);
}

Tracer& DefaultTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace slim::obs
