#include "obs/history.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/json.h"
#include "obs/obs.h"

namespace slim::obs {

namespace {

std::string FormatRate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", rate);
  return buf;
}

}  // namespace

MetricsHistory::MetricsHistory(const MetricsRegistry* registry,
                               Options options)
    : registry_(registry), options_(options) {}

MetricsHistory::~MetricsHistory() { Stop(); }

int64_t MetricsHistory::NowMs() const {
  if (options_.now_ms != nullptr) return options_.now_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void MetricsHistory::CaptureOnce() {
  MetricsSnapshot snap = registry_->Snapshot();
  const int64_t now = NowMs();
  SLIM_OBS_COUNT("obs.history.captures");

  util::MutexLock lock(&mu_);
  HistorySample sample;
  sample.seq = ++captures_;
  sample.t_ms = now;
  sample.dt_ms = captures_ > 1 ? now - prev_t_ms_ : 0;

  // Both snapshots are name-sorted (registry maps are ordered), so the
  // previous value of each metric is found with a linear merge walk. A
  // counter that shrank (Reset between captures) restarts: delta = value.
  sample.counters.reserve(snap.counters.size());
  {
    size_t j = 0;
    for (const auto& [name, value] : snap.counters) {
      while (j < prev_.counters.size() && prev_.counters[j].first < name) ++j;
      uint64_t prev_value =
          (j < prev_.counters.size() && prev_.counters[j].first == name)
              ? prev_.counters[j].second
              : 0;
      HistorySample::CounterEntry entry;
      entry.name = name;
      entry.value = value;
      entry.delta = value >= prev_value ? value - prev_value : value;
      entry.rate_per_s = sample.dt_ms > 0
                             ? double(entry.delta) * 1000.0 / sample.dt_ms
                             : 0.0;
      sample.counters.push_back(std::move(entry));
    }
  }
  sample.gauges.reserve(snap.gauges.size());
  for (const auto& [name, value] : snap.gauges) {
    sample.gauges.push_back({name, value});
  }
  sample.histograms.reserve(snap.histograms.size());
  {
    size_t j = 0;
    for (const auto& [name, hs] : snap.histograms) {
      while (j < prev_.histograms.size() && prev_.histograms[j].first < name) {
        ++j;
      }
      const HistogramSnapshot* prev_hs =
          (j < prev_.histograms.size() && prev_.histograms[j].first == name)
              ? &prev_.histograms[j].second
              : nullptr;
      HistorySample::HistogramEntry entry;
      entry.name = name;
      entry.count = hs.count;
      entry.sum = hs.sum;
      uint64_t prev_count = prev_hs != nullptr ? prev_hs->count : 0;
      uint64_t prev_sum = prev_hs != nullptr ? prev_hs->sum : 0;
      entry.count_delta =
          hs.count >= prev_count ? hs.count - prev_count : hs.count;
      entry.sum_delta = hs.sum >= prev_sum ? hs.sum - prev_sum : hs.sum;
      sample.histograms.push_back(std::move(entry));
    }
  }

  ring_.push_back(std::move(sample));
  while (ring_.size() > options_.capacity) {
    ring_.pop_front();
    ++dropped_;
  }
  prev_ = std::move(snap);
  prev_t_ms_ = now;
}

Status MetricsHistory::Start() {
  if (running_) {
    return Status::FailedPrecondition("metrics history already running");
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { Run(); });
  running_ = true;
  return Status::OK();
}

void MetricsHistory::Stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  thread_.join();
  running_ = false;
}

void MetricsHistory::Run() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stop_requested_) {
    lock.unlock();
    CaptureOnce();
    lock.lock();
    wake_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                      [this] { return stop_requested_; });
  }
}

std::vector<HistorySample> MetricsHistory::Samples() const {
  util::MutexLock lock(&mu_);
  return {ring_.begin(), ring_.end()};
}

uint64_t MetricsHistory::capture_count() const {
  util::MutexLock lock(&mu_);
  return captures_;
}

uint64_t MetricsHistory::dropped() const {
  util::MutexLock lock(&mu_);
  return dropped_;
}

std::string MetricsHistory::ExportJson() const {
  util::MutexLock lock(&mu_);
  std::string out = "{\"schema\":\"slim-metrics-history-v1\"";
  out += ",\"interval_ms\":" + std::to_string(options_.interval_ms);
  out += ",\"capacity\":" + std::to_string(options_.capacity);
  out += ",\"captures\":" + std::to_string(captures_);
  out += ",\"dropped\":" + std::to_string(dropped_);
  out += ",\"samples\":[";
  bool first_sample = true;
  for (const HistorySample& s : ring_) {
    if (!first_sample) out += ',';
    first_sample = false;
    out += "{\"seq\":" + std::to_string(s.seq) +
           ",\"t_ms\":" + std::to_string(s.t_ms) +
           ",\"dt_ms\":" + std::to_string(s.dt_ms) + ",\"counters\":{";
    bool first = true;
    for (const auto& c : s.counters) {
      if (!first) out += ',';
      first = false;
      out += JsonQuote(c.name) + ":{\"value\":" + std::to_string(c.value) +
             ",\"delta\":" + std::to_string(c.delta) +
             ",\"rate_per_s\":" + FormatRate(c.rate_per_s) + "}";
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& g : s.gauges) {
      if (!first) out += ',';
      first = false;
      out += JsonQuote(g.name) + ":" + std::to_string(g.value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& h : s.histograms) {
      if (!first) out += ',';
      first = false;
      out += JsonQuote(h.name) + ":{\"count\":" + std::to_string(h.count) +
             ",\"count_delta\":" + std::to_string(h.count_delta) +
             ",\"sum\":" + std::to_string(h.sum) +
             ",\"sum_delta\":" + std::to_string(h.sum_delta) + "}";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace slim::obs
