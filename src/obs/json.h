#ifndef SLIM_OBS_JSON_H_
#define SLIM_OBS_JSON_H_

/// \file json.h
/// \brief Shared JSON string escaping for every obs emitter.
///
/// The trace JSONL sink, the log JSONL sink, the flight-recorder bundle and
/// the metrics JSON exporter all quote user-supplied strings (span names,
/// tag values, log messages, error messages). They share this one escaper so
/// a newline in a mark description can never produce an invalid JSONL line.

#include <string>
#include <string_view>

namespace slim::obs {

/// Appends the JSON escape of `s` — without surrounding quotes — to `*out`.
/// `"` and `\` get a backslash; newline/tab/CR/backspace/form-feed use their
/// two-character escapes; every other byte below 0x20 becomes `\u00XX`.
void AppendJsonEscaped(std::string_view s, std::string* out);

/// The JSON escape of `s`, without quotes.
std::string EscapeJson(std::string_view s);

/// `s` escaped and wrapped in double quotes: ready to emit as a JSON string.
std::string JsonQuote(std::string_view s);

}  // namespace slim::obs

#endif  // SLIM_OBS_JSON_H_
