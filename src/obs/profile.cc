#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "obs/obs.h"

namespace slim::obs {

void SpanProfiler::OnSpanEnd(const SpanRecord& span) {
  util::MutexLock lock(&mu_);
  ++span_count_;

  // Child time accumulated while this span was open (children end first).
  uint64_t child_ns = 0;
  auto open = open_child_ns_.find(span.id);
  if (open != open_child_ns_.end()) {
    child_ns = open->second;
    open_child_ns_.erase(open);
  }

  SpanStats& stats = by_name_[span.name];
  if (stats.name.empty()) stats.name = span.name;
  stats.count += 1;
  stats.total_ns += span.duration_ns;
  // Clock granularity can make a child appear longer than its parent;
  // clamp instead of wrapping.
  stats.self_ns +=
      span.duration_ns > child_ns ? span.duration_ns - child_ns : 0;

  if (span.parent_id != 0) {
    open_child_ns_[span.parent_id] += span.duration_ns;
  }

  if (max_records_ > 0) {
    if (records_.size() == max_records_) {
      records_.pop_front();
      ++records_dropped_;
      // Evictions were only visible through records_dropped(); the counter
      // makes capacity pressure show up on /metrics and in bundles.
      SLIM_OBS_COUNT("obs.profile.evicted");
    }
    records_.push_back(span);
  }
}

std::vector<SpanStats> SpanProfiler::HotSpots() const {
  util::MutexLock lock(&mu_);
  std::vector<SpanStats> out;
  out.reserve(by_name_.size());
  for (const auto& [_, stats] : by_name_) out.push_back(stats);
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
    return a.name < b.name;
  });
  return out;
}

uint64_t SpanProfiler::span_count() const {
  util::MutexLock lock(&mu_);
  return span_count_;
}

uint64_t SpanProfiler::records_dropped() const {
  util::MutexLock lock(&mu_);
  return records_dropped_;
}

std::string SpanProfiler::HotSpotTable() const {
  std::vector<SpanStats> rows = HotSpots();
  std::string out =
      "span name                                  count    total_us     self_us\n";
  char line[160];
  for (const SpanStats& row : rows) {
    std::snprintf(line, sizeof(line), "%-40s %7llu %11llu %11llu\n",
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.count),
                  static_cast<unsigned long long>(row.total_ns / 1000),
                  static_cast<unsigned long long>(row.self_ns / 1000));
    out += line;
  }
  return out;
}

std::string SpanProfiler::CollapsedStacks() const {
  util::MutexLock lock(&mu_);
  // Index the retained records so each one can walk its ancestor chain.
  std::unordered_map<uint64_t, const SpanRecord*> by_id;
  by_id.reserve(records_.size());
  std::unordered_map<uint64_t, uint64_t> child_ns;
  for (const SpanRecord& r : records_) {
    by_id[r.id] = &r;
    if (r.parent_id != 0) child_ns[r.parent_id] += r.duration_ns;
  }

  std::map<std::string, uint64_t> stacks;  // stack -> self_us
  for (const SpanRecord& r : records_) {
    std::string stack = r.name;
    uint64_t parent = r.parent_id;
    while (parent != 0) {
      auto it = by_id.find(parent);
      if (it == by_id.end()) break;  // ancestor evicted: truncate
      stack = it->second->name + ";" + stack;
      parent = it->second->parent_id;
    }
    uint64_t children = 0;
    if (auto it = child_ns.find(r.id); it != child_ns.end()) {
      children = it->second;
    }
    uint64_t self_ns =
        r.duration_ns > children ? r.duration_ns - children : 0;
    stacks[stack] += self_ns / 1000;
  }

  std::string out;
  for (const auto& [stack, self_us] : stacks) {
    out += stack + " " + std::to_string(self_us) + "\n";
  }
  return out;
}

void SpanProfiler::Clear() {
  util::MutexLock lock(&mu_);
  records_.clear();
  records_dropped_ = 0;
  span_count_ = 0;
  by_name_.clear();
  open_child_ns_.clear();
}

}  // namespace slim::obs
