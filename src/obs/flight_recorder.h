#ifndef SLIM_OBS_FLIGHT_RECORDER_H_
#define SLIM_OBS_FLIGHT_RECORDER_H_

/// \file flight_recorder.h
/// \brief Failure flight recorder: a bounded window of recent activity that
/// can be dumped as one post-mortem bundle when something goes wrong.
///
/// The recorder is simultaneously a `LogSink` and a `TraceSink`; `Install()`
/// registers it with the default logger and tracer and hooks
/// `util::Status` error construction, so every non-OK status anywhere in
/// the four layers lands in the ring as an `error`-level event without any
/// call-site changes. Error paths that want a bundle on disk call
/// `MaybeDumpOnError()` (via the `SLIM_OBS_DUMP_ON_ERROR` macro), which
/// writes the bundle only when a dump path has been configured — idle
/// deployments pay nothing.
///
/// A bundle is a single JSON document: the recent log events (including the
/// recorded statuses), the recent spans, and the full
/// `obs::DefaultRegistry()` metrics export.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/log.h"
#include "obs/trace.h"
#include "util/instrumented_mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace slim::obs {

class FlightRecorder : public LogSink, public TraceSink {
 public:
  explicit FlightRecorder(size_t event_capacity = 256,
                          size_t span_capacity = 256);
  ~FlightRecorder() override;

  /// Registers with DefaultLogger() and DefaultTracer() and installs the
  /// util::Status error hook. Only one recorder can be installed at a time;
  /// installing a second one is a no-op that returns false.
  bool Install();
  void Uninstall();
  bool installed() const;

  /// \name Sink interfaces (also callable directly in tests).
  /// @{
  void OnLogEvent(const LogEvent& event) override;
  void OnSpanEnd(const SpanRecord& span) override;
  /// @}

  /// Records a non-OK status as an error-level event (the Status hook
  /// target). Never constructs a Status itself.
  void RecordStatus(StatusCode code, std::string_view message);

  std::vector<LogEvent> RecentEvents() const;
  std::vector<SpanRecord> RecentSpans() const;
  uint64_t statuses_recorded() const;

  /// When non-empty, MaybeDumpOnError() writes the bundle here. Dumping on
  /// every error overwrites the file, so the bundle on disk always
  /// describes the most recent failure.
  void set_dump_path(std::string path);
  std::string dump_path() const;

  /// Attaches a `slim-cpuprofile-v1` document (CpuProfile::ToJson) to
  /// subsequent bundles — the watchdog stores a short capture here when a
  /// stall/heartbeat trip fires, so the bundle says what the process was
  /// doing. An empty string clears it (the bundle then renders
  /// `"cpu_profile":null`, keeping profiler-less deployments valid JSON).
  void SetCpuProfile(std::string profile_json);

  /// The bundle as a JSON document (events, spans, metrics, lock_sites,
  /// cpu_profile).
  std::string RenderBundle() const;

  /// Writes RenderBundle() to `path`.
  Status DumpDiagnostics(const std::string& path) const;

  /// DumpDiagnostics(dump_path()) if a dump path is set, tagging the bundle
  /// request with `source` (recorded as an event first, so the bundle names
  /// its own trigger). Returns the number of bundles written (0 or 1).
  size_t MaybeDumpOnError(std::string_view source);

  void Clear();

 private:
  mutable util::InstrumentedMutex mu_{"obs.flight_recorder.ring"};
  size_t event_capacity_ GUARDED_BY(mu_);
  size_t span_capacity_ GUARDED_BY(mu_);
  std::deque<LogEvent> events_ GUARDED_BY(mu_);
  std::deque<SpanRecord> spans_ GUARDED_BY(mu_);
  std::atomic<uint64_t> statuses_{0};
  std::string dump_path_ GUARDED_BY(mu_);
  /// Pre-rendered cpu profile JSON; empty = none captured.
  std::string cpu_profile_json_ GUARDED_BY(mu_);
};

/// Process-wide recorder used by SLIM_OBS_DUMP_ON_ERROR.
FlightRecorder& DefaultFlightRecorder();

}  // namespace slim::obs

#endif  // SLIM_OBS_FLIGHT_RECORDER_H_
