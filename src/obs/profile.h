#ifndef SLIM_OBS_PROFILE_H_
#define SLIM_OBS_PROFILE_H_

/// \file profile.h
/// \brief Span profiler: turns a trace stream into hot-spot tables and
/// flamegraph input.
///
/// `SpanProfiler` is a `TraceSink`. As spans finish it aggregates, per span
/// name, the call count, total (inclusive) time and *self* time — total
/// minus the time spent in child spans, computed from the `parent_id`
/// nesting that `Tracer` records. Because children always end before their
/// record reaches the sink, child time can be charged to the still-open
/// parent incrementally, so the per-name statistics are exact regardless of
/// how many records the profiler retains.
///
/// Two renderings:
///  - `HotSpotTable()` — per-name rows sorted by self time, for humans.
///  - `CollapsedStacks()` — `root;child;leaf <self_us>` lines, the input
///    format of flamegraph.pl / speedscope, built from the retained records
///    (bounded by `max_records`; older stacks are dropped and counted).

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/instrumented_mutex.h"
#include "util/thread_annotations.h"

namespace slim::obs {

/// \brief Aggregated statistics for one span name.
struct SpanStats {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;  ///< Inclusive (with children).
  uint64_t self_ns = 0;   ///< Exclusive (children subtracted).
};

class SpanProfiler : public TraceSink {
 public:
  /// `max_records` bounds the raw records kept for `CollapsedStacks()`;
  /// the per-name aggregation is unaffected by eviction.
  explicit SpanProfiler(size_t max_records = 65536)
      : max_records_(max_records) {}

  void OnSpanEnd(const SpanRecord& span) override;

  /// Per-name statistics, sorted by self time (descending, ties by name).
  std::vector<SpanStats> HotSpots() const;

  /// Total spans seen, and records evicted from the collapsed-stack buffer.
  uint64_t span_count() const;
  uint64_t records_dropped() const;

  /// Fixed-width table of HotSpots(): name, count, total_us, self_us.
  std::string HotSpotTable() const;

  /// One line per distinct stack: `a;b;c <self_us>`, sorted by stack name.
  /// Ancestors missing from the retained records truncate the stack (the
  /// deepest retained ancestor becomes the root).
  std::string CollapsedStacks() const;

  void Clear();

 private:
  mutable util::InstrumentedMutex mu_{"obs.profile.spans"};
  size_t max_records_ GUARDED_BY(mu_);
  std::deque<SpanRecord> records_ GUARDED_BY(mu_);
  uint64_t records_dropped_ GUARDED_BY(mu_) = 0;
  uint64_t span_count_ GUARDED_BY(mu_) = 0;
  std::map<std::string, SpanStats> by_name_ GUARDED_BY(mu_);
  /// Accumulated child time of spans still open (keyed by span id); the
  /// entry is consumed when the parent's own record arrives.
  std::map<uint64_t, uint64_t> open_child_ns_ GUARDED_BY(mu_);
};

}  // namespace slim::obs

#endif  // SLIM_OBS_PROFILE_H_
