#include "obs/lock_profiler.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>

#include "obs/json.h"
#include "obs/metrics.h"

namespace slim::obs {

namespace {

// The installed profiler; the thunk routes events here. At most one.
std::atomic<LockProfiler*> g_active_profiler{nullptr};

// Recording an event touches the metrics registry, whose own mutex is
// instrumented — so the hook re-enters itself one level deep. Drop the
// nested events: they describe the profiler's bookkeeping, not the
// workload.
thread_local bool t_in_lock_hook = false;

}  // namespace

bool LockProfiler::Install(MetricsRegistry* registry) {
  LockProfiler* expected = nullptr;
  if (!g_active_profiler.compare_exchange_strong(expected, this)) {
    return expected == this;
  }
  registry_ = registry;
  util::SetMutexEventHook(&LockProfiler::OnEventThunk);
  return true;
}

void LockProfiler::Uninstall() {
  LockProfiler* expected = this;
  if (g_active_profiler.compare_exchange_strong(expected, nullptr)) {
    util::SetMutexEventHook(nullptr);
  }
}

bool LockProfiler::installed() const {
  return g_active_profiler.load(std::memory_order_acquire) == this;
}

void LockProfiler::OnEventThunk(const util::MutexEvent& event) {
  LockProfiler* profiler = g_active_profiler.load(std::memory_order_acquire);
  if (profiler != nullptr) profiler->OnEvent(event);
}

void LockProfiler::OnEvent(const util::MutexEvent& event) {
  if (t_in_lock_hook) return;
  t_in_lock_hook = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SiteStats& stats = sites_[event.site];
    stats.site = event.site;
    stats.acquisitions += 1;
    if (event.contended) stats.contended += 1;
    stats.wait_ns_total += event.wait_ns;
    stats.wait_ns_max = std::max(stats.wait_ns_max, event.wait_ns);
    stats.hold_ns_total += event.hold_ns;
    stats.hold_ns_max = std::max(stats.hold_ns_max, event.hold_ns);
  }
  if (registry_ != nullptr &&
      MetricsRegistry::IsValidMetricName(event.site)) {
    const std::string prefix = std::string("obs.lock.") + event.site;
    registry_->GetHistogram(prefix + ".wait_us")->Record(event.wait_ns / 1000);
    registry_->GetHistogram(prefix + ".hold_us")->Record(event.hold_ns / 1000);
    registry_->GetCounter(prefix + ".acquisitions")->Increment();
    if (event.contended) {
      registry_->GetCounter(prefix + ".contended")->Increment();
    }
  }
  t_in_lock_hook = false;
}

std::vector<LockProfiler::SiteStats> LockProfiler::Sites() const {
  std::vector<SiteStats> sites;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sites.reserve(sites_.size());
    for (const auto& [_, stats] : sites_) sites.push_back(stats);
  }
  std::sort(sites.begin(), sites.end(),
            [](const SiteStats& a, const SiteStats& b) {
              if (a.wait_ns_total != b.wait_ns_total) {
                return a.wait_ns_total > b.wait_ns_total;
              }
              return std::strcmp(a.site, b.site) < 0;
            });
  return sites;
}

std::string LockProfiler::HotLockTable(size_t max_rows) const {
  std::vector<SiteStats> sites = Sites();
  if (sites.size() > max_rows) sites.resize(max_rows);
  std::string out =
      "site                            acquire  contend   wait_total_us "
      "wait_max_us   hold_total_us hold_max_us\n";
  char line[256];
  for (const SiteStats& s : sites) {
    std::snprintf(line, sizeof(line),
                  "%-30s %8llu %8llu %15llu %11llu %15llu %11llu\n", s.site,
                  static_cast<unsigned long long>(s.acquisitions),
                  static_cast<unsigned long long>(s.contended),
                  static_cast<unsigned long long>(s.wait_ns_total / 1000),
                  static_cast<unsigned long long>(s.wait_ns_max / 1000),
                  static_cast<unsigned long long>(s.hold_ns_total / 1000),
                  static_cast<unsigned long long>(s.hold_ns_max / 1000));
    out += line;
  }
  return out;
}

std::string LockProfiler::ToJson() const {
  std::string out = "[";
  bool first = true;
  for (const SiteStats& s : Sites()) {
    if (!first) out += ',';
    first = false;
    out += "{\"site\":" + JsonQuote(s.site) +
           ",\"acquisitions\":" + std::to_string(s.acquisitions) +
           ",\"contended\":" + std::to_string(s.contended) +
           ",\"wait_ns_total\":" + std::to_string(s.wait_ns_total) +
           ",\"wait_ns_max\":" + std::to_string(s.wait_ns_max) +
           ",\"hold_ns_total\":" + std::to_string(s.hold_ns_total) +
           ",\"hold_ns_max\":" + std::to_string(s.hold_ns_max) + "}";
  }
  out += "]";
  return out;
}

void LockProfiler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
}

LockProfiler& LockProfiler::Default() {
  static LockProfiler* profiler = new LockProfiler();
  return *profiler;
}

}  // namespace slim::obs
