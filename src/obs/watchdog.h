#ifndef SLIM_OBS_WATCHDOG_H_
#define SLIM_OBS_WATCHDOG_H_

/// \file watchdog.h
/// \brief Stall/heartbeat watchdog: the judging half of the obs stack.
///
/// A background thread (or a test driving `CheckOnce()` with an injected
/// clock) periodically checks four things:
///
///   1. **Stalled spans** — the tracer's active-span registry
///      (Tracer::ActiveSpans) against per-name deadlines set with
///      `SetSpanDeadline`. A span strictly *older* than its deadline is a
///      stall: a critical `stall:<name>` alert is raised, an error event
///      logged, and the flight recorder fires (a bundle lands on disk when
///      a dump path is configured). A span that finishes exactly at its
///      deadline never trips.
///   2. **Heartbeats** — subsystems registered with `RegisterHeartbeat`
///      must call `Beat` within `max_silence_ms` (measured from the later
///      of the last beat and the time the watchdog was armed). Silence is
///      heartbeat loss: critical alert + flight dump. Hot layers instead
///      use `RegisterOnActivity` (the `SLIM_OBS_HEARTBEAT` macro):
///      activity heartbeats only record liveness for `/healthz` and never
///      trip — an idle system is not a broken one.
///   3. **Long lock holds** — when a LockProfiler is attached, any site
///      whose max hold time grows past `long_hold_threshold_ns` raises a
///      warn `lock_hold:<site>` alert.
///   4. **SLOs** — an attached SloEngine is evaluated every tick, so SLO
///      burn alerts ride the same cadence.
///
/// `Health()` folds heartbeats, stalls and SLO verdicts into a
/// per-subsystem ok/degraded/failing report; StatsServer serves it at
/// `/healthz` (HTTP 503 + JSON naming the failing subsystems when
/// failing). `Beat` costs two relaxed atomic ops when armed and one load
/// when not, so instrumenting hot paths is free until someone is watching.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/instrumented_mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace slim::obs {

class AlertRing;
class SloEngine;
class LockProfiler;
class CpuProfiler;

enum class HealthState { kOk = 0, kDegraded = 1, kFailing = 2 };

/// "ok" / "degraded" / "failing".
std::string_view HealthStateName(HealthState state);

struct SubsystemHealth {
  std::string name;  ///< Heartbeat name, "span:<name>" or "slo:<id>".
  HealthState state = HealthState::kOk;
  std::string detail;
};

/// \brief Point-in-time readiness verdict (served at /healthz).
struct HealthReport {
  HealthState overall = HealthState::kOk;
  bool watchdog_running = false;
  std::vector<SubsystemHealth> subsystems;

  /// Failing subsystem names (convenience for callers and the JSON body).
  std::vector<std::string> failing() const;
  std::string ToJson() const;
};

struct WatchdogOptions {
  int64_t poll_interval_ms = 200;  ///< Background check period.
  /// Deadline applied to span names with no explicit SetSpanDeadline entry;
  /// 0 disables the default (only named deadlines are checked).
  int64_t default_span_deadline_ms = 0;
  /// Lock-hold alert threshold; 0 disables the lock check.
  uint64_t long_hold_threshold_ns = 0;
  /// When a CpuProfiler is attached (set_cpu_profiler), a *fresh* stall or
  /// heartbeat trip captures a profile window this long and stores it in
  /// the flight recorder before the dump fires, so the bundle says what
  /// the process was doing. The capture blocks the check pass for the
  /// window; 0 disables it.
  int64_t trip_profile_ms = 200;
  /// Injectable monotonic clock (ms). nullptr = steady_clock.
  int64_t (*now_ms)() = nullptr;
};

class Watchdog {
 public:
  using Options = WatchdogOptions;

  /// \brief One registered subsystem pulse. Stable address for the
  /// watchdog's lifetime; `Beat` writes it lock-free.
  struct Heartbeat {
    std::string name;
    int64_t max_silence_ms = 0;  ///< 0 (on-activity) never trips.
    bool periodic = false;
    int64_t registered_ms = 0;
    /// Stamped by the watchdog when it *observes* new beats (CheckOnce or
    /// Health), not by Beat() itself — beats are clock-free, so liveness
    /// has poll-interval precision.
    std::atomic<int64_t> last_beat_ms{-1};
    std::atomic<uint64_t> beats{0};
    /// Beats already folded into last_beat_ms; watchdog-internal.
    uint64_t beats_seen = 0;
  };

  /// Registry and tracer must outlive the watchdog. obs.watchdog.* metrics
  /// are created lazily on Arm(), so an un-armed watchdog (the Default()
  /// instance in processes that never start it) adds nothing anywhere.
  Watchdog(MetricsRegistry* registry, Tracer* tracer, Options options = {});
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// \name Configuration (safe while running).
  /// @{
  void SetSpanDeadline(std::string_view span_name, int64_t deadline_ms)
      EXCLUDES(mu_);
  /// Registers (or finds) a named heartbeat. `periodic` subsystems must
  /// beat every `max_silence_ms` once the watchdog is armed; re-registering
  /// an existing name updates its policy and returns the same pointer.
  Heartbeat* RegisterHeartbeat(std::string_view name, int64_t max_silence_ms,
                               bool periodic) EXCLUDES(mu_);
  /// An activity-only heartbeat: liveness shows in Health(), never trips.
  Heartbeat* RegisterOnActivity(std::string_view name) EXCLUDES(mu_) {
    return RegisterHeartbeat(name, 0, false);
  }
  void set_alerts(AlertRing* alerts) EXCLUDES(mu_);
  void set_slo(SloEngine* slo) EXCLUDES(mu_);
  void set_lock_profiler(const LockProfiler* profiler) EXCLUDES(mu_);
  /// While set, fresh stall/heartbeat trips capture a
  /// `options().trip_profile_ms` cpu-profile window into the flight
  /// recorder (see WatchdogOptions::trip_profile_ms). The profiler must
  /// outlive the watchdog or be detached with nullptr first.
  void set_cpu_profiler(CpuProfiler* profiler) {
    cpu_profiler_.store(profiler, std::memory_order_release);
  }
  /// @}

  /// Records one pulse. Near-free when the watchdog is not armed (one
  /// relaxed load) and clock-free when it is (one relaxed fetch_add);
  /// never locks. The watchdog folds the count into last_beat_ms at its
  /// next check, so a beat is credited with poll-interval precision.
  void Beat(Heartbeat* heartbeat) {
    if (heartbeat == nullptr || !armed()) return;
    heartbeat->beats.fetch_add(1, std::memory_order_relaxed);
  }

  /// Arms checking (enables the tracer's active-span registry, starts the
  /// heartbeat-silence clocks) without a background thread — tests and
  /// obs_dump drive CheckOnce() manually. Idempotent.
  void Arm() EXCLUDES(mu_);
  void Disarm() EXCLUDES(mu_);
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Arm() + spawn the background check thread. Fails when already running.
  Status Start() EXCLUDES(mu_);
  /// Stops and joins the thread, then disarms. Idempotent.
  void Stop() EXCLUDES(mu_);
  bool running() const { return running_; }

  /// One full check pass: spans, heartbeats, locks, SLO evaluation.
  void CheckOnce() EXCLUDES(mu_);

  /// The span-deadline check alone, against an explicit "now" on the
  /// tracer's clock (deterministic deadline-edge tests). Returns the
  /// number of currently stalled spans. A span whose age equals its
  /// deadline exactly is NOT stalled — only strictly past it.
  size_t CheckSpansAt(uint64_t now_ns) EXCLUDES(mu_);

  /// Folds heartbeats, current stalls and SLO verdicts into a readiness
  /// report.
  HealthReport Health() const EXCLUDES(mu_);

  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }

  /// Process-wide watchdog over DefaultRegistry()/DefaultTracer(); used by
  /// the SLIM_OBS_HEARTBEAT macro. Never armed unless someone starts it.
  static Watchdog& Default();

 private:
  void Run();
  int64_t NowMs() const {
    if (options_.now_ms != nullptr) return options_.now_ms();
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  /// Lazily resolves the obs.watchdog.* metrics (first Arm()).
  void EnsureMetrics() REQUIRES(mu_);
  /// Credits unobserved beats to `now` (Beat() is clock-free).
  void FoldBeats(Heartbeat* heartbeat, int64_t now) const REQUIRES(mu_);
  /// Publishes the deadline-name set as the tracer's track filter.
  void PublishTrackFilter() EXCLUDES(mu_);
  /// Returns the number of *fresh* heartbeat misses this pass; the caller
  /// fires the trip profile + dump after releasing mu_.
  size_t CheckHeartbeats(int64_t now) REQUIRES(mu_);
  void CheckLocks() REQUIRES(mu_);
  /// Captures a trip_profile_ms window from the attached profiler into the
  /// flight recorder. Blocks for the window; never call under mu_.
  void CaptureTripProfile() EXCLUDES(mu_);

  MetricsRegistry* const registry_;
  Tracer* const tracer_;
  const Options options_;

  std::atomic<bool> armed_{false};
  std::atomic<int64_t> armed_at_ms_{0};
  std::atomic<uint64_t> checks_{0};
  std::atomic<CpuProfiler*> cpu_profiler_{nullptr};

  mutable util::InstrumentedMutex mu_{"obs.watchdog.state"};
  std::map<std::string, int64_t, std::less<>> deadlines_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Heartbeat>, std::less<>> heartbeats_
      GUARDED_BY(mu_);
  /// Span names currently considered stalled (raised, not yet recovered).
  std::map<std::string, uint64_t> stalled_ GUARDED_BY(mu_);
  /// Heartbeat names currently considered lost.
  std::map<std::string, int64_t> missed_ GUARDED_BY(mu_);
  /// Per-site hold_ns_max high-water mark already alerted on.
  std::map<const char*, uint64_t> hold_alerted_ GUARDED_BY(mu_);
  AlertRing* alerts_ GUARDED_BY(mu_) = nullptr;
  SloEngine* slo_ GUARDED_BY(mu_) = nullptr;
  const LockProfiler* lock_profiler_ GUARDED_BY(mu_) = nullptr;
  Heartbeat* self_heartbeat_ GUARDED_BY(mu_) = nullptr;

  bool metrics_ready_ GUARDED_BY(mu_) = false;
  Counter* c_checks_ GUARDED_BY(mu_) = nullptr;
  Counter* c_stalled_ GUARDED_BY(mu_) = nullptr;
  Counter* c_misses_ GUARDED_BY(mu_) = nullptr;
  Counter* c_long_holds_ GUARDED_BY(mu_) = nullptr;
  Counter* c_trips_ GUARDED_BY(mu_) = nullptr;
  Gauge* g_running_ GUARDED_BY(mu_) = nullptr;
  Gauge* g_active_spans_ GUARDED_BY(mu_) = nullptr;
  Gauge* g_subsystems_ GUARDED_BY(mu_) = nullptr;

  // Wakeup plumbing for the check thread (same shape as MetricsHistory).
  // slim-lint: allow(raw-mutex) -- cv companion for wake_cv_
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  // slim-lint: allow(unguarded) -- guarded by raw cv-companion wake_mu_
  bool stop_requested_ = false;
  // slim-lint: allow(unguarded) -- joined only by the Start/Stop caller
  std::thread thread_;
  // slim-lint: allow(unguarded) -- written only by the Start/Stop caller
  bool running_ = false;
};

}  // namespace slim::obs

#endif  // SLIM_OBS_WATCHDOG_H_
