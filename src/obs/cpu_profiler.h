#ifndef SLIM_OBS_CPU_PROFILER_H_
#define SLIM_OBS_CPU_PROFILER_H_

/// \file cpu_profiler.h
/// \brief Always-on sampling profiler over the tracer's span stacks.
///
/// The exact span profiler (obs/profile.h) needs every span traced, which
/// is the overhead a loaded daemon cannot pay. This profiler is the
/// statistical complement: it enables `Tracer::set_stack_tracking`, so each
/// thread publishes its span nesting as a fixed-size array of interned name
/// ids (obs/trace.h `SpanStack` — atomically published, never allocated on
/// the sampling side), and a sampler periodically snapshots every live
/// thread's stack, aggregating hits into collapsed stacks keyed by span
/// path ("query.execute;store.scan 124").
///
/// Two sampling engines:
///  - **Ticker** (default, portable, TSan-clean): a background thread wakes
///    `sample_hz` times per second and walks the tracer's stack registry.
///    This is a *wall-clock* profile — blocked threads keep their frames,
///    which is exactly what stall diagnosis wants.
///  - **Itimer** (`Mode::kItimer`): `setitimer(ITIMER_PROF)` + a SIGPROF
///    handler that snapshots the *interrupted* thread's stack into a
///    lock-free ring (Vyukov bounded queue: atomics only, no allocation —
///    async-signal-safe). This is a *CPU* profile: samples land where
///    cycles burn. One itimer profiler per process; the handler attributes
///    only threads whose latest stack belongs to the profiled tracer.
///    With the `SLIM_OBS_NATIVE_STACKS` cmake option, the handler also
///    captures `backtrace()` program counters, fused beneath the span path.
///
/// Exports: flamegraph-collapsed text and a `slim-cpuprofile-v1` JSON
/// document that is also a loadable speedscope file. StatsServer serves
/// both at `GET /profile/cpu?seconds=N` and `GET /profile/cpu.collapsed`;
/// the Watchdog captures a short window on stall/heartbeat trips and embeds
/// it in the flight-recorder bundle.
///
/// Overhead: with the profiler stopped, spans are untouched. Running at the
/// default 99 Hz, a span on the stack-only path costs two relaxed atomic
/// stores plus a memoized name lookup (no id fetch_add, no clock read);
/// bench/bench_profiler_overhead.cc gates the end-to-end cost at <1% p50
/// on the watched query workload.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/instrumented_mutex.h"
#include "util/thread_annotations.h"

namespace slim::obs {

namespace internal {
/// Bounded lock-free sample queue (cpu_profiler.cc); namespace-level so the
/// SIGPROF handler can hold a pointer to it.
struct CpuSampleRing;
}  // namespace internal

/// \brief One aggregated profile: collapsed stacks plus sample accounting.
/// Plain value type; safe to copy, diff and render off to the side.
struct CpuProfile {
  /// One unique span path and its hit count. `frames` are indices into
  /// `frame_names`, outermost first.
  struct StackCount {
    std::vector<uint32_t> frames;
    uint64_t count = 0;
  };

  std::string mode;  ///< "ticker" or "itimer".
  uint64_t sample_hz = 0;
  uint64_t duration_ms = 0;   ///< Window length (0 for cumulative snapshots).
  uint64_t samples = 0;       ///< Samples with at least one span frame.
  uint64_t samples_idle = 0;  ///< Samples that found an empty stack.
  uint64_t samples_dropped = 0;  ///< Ring overflow (itimer mode only).
  std::vector<std::string> frame_names;
  /// Sorted by count descending, then path ascending (deterministic).
  std::vector<StackCount> stacks;

  /// Flamegraph-collapsed text: one "name;name;name count" line per stack.
  std::string ToCollapsed() const;
  /// `slim-cpuprofile-v1` JSON; also a valid speedscope document
  /// (`$schema`, `shared.frames`, one "sampled" profile).
  std::string ToJson() const;
  /// Total hits attributed to stacks whose path (";"-joined names) starts
  /// with `prefix` — attribution-accuracy checks in tests and EXPERIMENTS.
  uint64_t CountWithPrefix(const std::string& prefix) const;
};

enum class CpuProfilerMode {
  kTicker,  ///< Portable wall-clock sampler thread (default).
  kItimer,  ///< ITIMER_PROF + SIGPROF handler: CPU-time attribution.
};

struct CpuProfilerOptions {
  uint64_t sample_hz = 99;  ///< Prime, so it never beats with 10ms loops.
  CpuProfilerMode mode = CpuProfilerMode::kTicker;
  /// Itimer-mode sample ring capacity (rounded up to a power of two).
  /// At 99 Hz a drain every 10ms uses ~2 slots; headroom is for bursts.
  size_t ring_capacity = 1024;
  /// Capture native backtrace() frames beneath the span path (itimer mode
  /// only; ignored unless built with SLIM_OBS_NATIVE_STACKS).
  bool native_frames = false;
};

/// \brief Samples span stacks on a timer and aggregates collapsed stacks.
/// Thread-safe: Start/Stop/CaptureWindow/Snapshot may race from the stats
/// server, the watchdog and callers; the registry and tracer must outlive
/// the profiler.
class CpuProfiler {
 public:
  using Mode = CpuProfilerMode;
  using Options = CpuProfilerOptions;

  /// Metrics are created lazily on first Start(), so a never-started
  /// profiler (the Default() instance in most processes) adds nothing.
  CpuProfiler(MetricsRegistry* registry, Tracer* tracer, Options options = {});
  ~CpuProfiler();
  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

  /// Enables the tracer's stack tracking and starts sampling. Idempotent
  /// (true when already running). False when itimer mode lost the race for
  /// the process-wide SIGPROF slot to another profiler.
  bool Start() EXCLUDES(lifecycle_mu_, mu_);
  /// Stops sampling and joins the sampler thread. Aggregates are retained
  /// (a restart keeps accumulating). Idempotent.
  void Stop() EXCLUDES(lifecycle_mu_, mu_);
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Everything aggregated since construction (duration_ms = 0).
  CpuProfile Snapshot() const EXCLUDES(mu_);
  /// Blocks for `window_ms` and returns only the samples landing inside
  /// the window. When the profiler is stopped, it runs just for the window
  /// (and stops again); when running, the window is a delta and sampling
  /// continues undisturbed. Never holds a lock while blocked.
  CpuProfile CaptureWindow(uint64_t window_ms)
      EXCLUDES(lifecycle_mu_, mu_);
  /// Drops all aggregates and sample counts (not the interned names).
  void Reset() EXCLUDES(mu_);

  uint64_t samples() const {
    return samples_total_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return options_; }

  /// Process-wide profiler over DefaultRegistry()/DefaultTracer(); used by
  /// obs_dump --serve and anything that wants the ambient one.
  static CpuProfiler& Default();

  /// One ticker pass, callable without the sampler thread — exists so
  /// bench_profiler_overhead can price a tick in isolation. The tracer's
  /// stack tracking must already be on for the pass to see frames.
  void SampleOnceForBench() EXCLUDES(mu_) { SampleOnce(); }

 private:
  void Run();
  /// One ticker pass: snapshot every registered stack, fold into agg_.
  void SampleOnce() EXCLUDES(mu_);
  /// Itimer mode: pop every queued handler sample into agg_.
  void DrainRing() EXCLUDES(mu_);
  /// Folds one sampled stack (`n` ids, outermost first; optional native
  /// pcs beneath) into agg_ and the sample counters.
  void AggregateLocked(const uint32_t* frames, uint32_t n,
                       const uint64_t* pcs, uint32_t native_n) REQUIRES(mu_);
  void EnsureMetrics() REQUIRES(mu_);
  static CpuProfile Diff(const CpuProfile& later, const CpuProfile& earlier);

  MetricsRegistry* const registry_;
  Tracer* const tracer_;
  const Options options_;

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> samples_total_{0};

  /// Serializes Start/Stop (CaptureWindow's temporary run may race the
  /// stats server's). The sampler thread never takes it.
  util::InstrumentedMutex lifecycle_mu_{"obs.cpuprof.lifecycle"};

  mutable util::InstrumentedMutex mu_{"obs.cpuprof.agg"};
  /// Collapsed aggregation: interned-id path -> hits.
  std::map<std::vector<uint32_t>, uint64_t> agg_ GUARDED_BY(mu_);
  uint64_t samples_span_ GUARDED_BY(mu_) = 0;
  uint64_t samples_idle_ GUARDED_BY(mu_) = 0;
  uint64_t samples_dropped_ GUARDED_BY(mu_) = 0;
  /// Ring drop count already folded into samples_dropped_.
  uint64_t dropped_seen_ GUARDED_BY(mu_) = 0;
  /// Native frame names (itimer + SLIM_OBS_NATIVE_STACKS): pc -> id in the
  /// profiler's own table, offset past the tracer's span-name ids at
  /// export. Empty otherwise.
  std::map<uint64_t, uint32_t> native_ids_ GUARDED_BY(mu_);
  std::vector<std::string> native_names_ GUARDED_BY(mu_);

  bool metrics_ready_ GUARDED_BY(mu_) = false;
  Counter* c_samples_ GUARDED_BY(mu_) = nullptr;
  Counter* c_idle_ GUARDED_BY(mu_) = nullptr;
  Counter* c_dropped_ GUARDED_BY(mu_) = nullptr;
  Counter* c_ticks_ GUARDED_BY(mu_) = nullptr;
  Counter* c_captures_ GUARDED_BY(mu_) = nullptr;
  Gauge* g_running_ GUARDED_BY(mu_) = nullptr;
  Gauge* g_stacks_ GUARDED_BY(mu_) = nullptr;
  Gauge* g_hz_ GUARDED_BY(mu_) = nullptr;

  /// Itimer-mode sample ring; allocated on first itimer Start and kept for
  /// the profiler's lifetime (a handler caught mid-publish during Stop may
  /// still write into it — the destructor grants a grace period).
  // slim-lint: allow(unguarded) -- set once under lifecycle_mu_, stable after
  std::unique_ptr<internal::CpuSampleRing> ring_;

  // Wakeup plumbing for the sampler thread (same shape as Watchdog).
  // slim-lint: allow(raw-mutex) -- cv companion for wake_cv_
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  // slim-lint: allow(unguarded) -- guarded by raw cv-companion wake_mu_
  bool stop_requested_ = false;
  // slim-lint: allow(unguarded) -- guarded by lifecycle_mu_ transitions
  std::thread thread_;
};

}  // namespace slim::obs

#endif  // SLIM_OBS_CPU_PROFILER_H_
