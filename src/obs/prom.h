#ifndef SLIM_OBS_PROM_H_
#define SLIM_OBS_PROM_H_

/// \file prom.h
/// \brief Prometheus text exposition of a MetricsRegistry, plus a minimal
/// localhost scrape endpoint.
///
/// `ExportPrometheus` renders the registry in the Prometheus text format
/// (version 0.0.4): `# HELP`/`# TYPE` headers, plain counter/gauge samples,
/// and full histogram series — cumulative `_bucket{le="..."}` samples
/// ending at `le="+Inf"`, plus `_sum` and `_count`. Repository names
/// (`layer.op.outcome`, `[a-z0-9._]+` enforced by MetricsRegistry) map onto
/// exposition names by `.` → `_`; anything else that sneaks through is
/// folded to `_` too, so a scrape can never be rejected by the server side.
///
/// `StatsServer` is a dependency-free POSIX-socket HTTP responder bound to
/// 127.0.0.1: a background thread runs a blocking accept loop and answers
/// `GET /metrics` (the exposition) and `GET /healthz` ("ok"). It exists so
/// a real scraper can pull a running workload — production deployments
/// would put a real server in front, but the format is the contract and
/// this serves it faithfully.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.h"
#include "util/status.h"

namespace slim::obs {

class MetricsHistory;

/// Exposition-format name for a registry metric name: lowercase `[a-z0-9_]`
/// with `.` (and any other illegal byte) mapped to `_`; a leading digit is
/// prefixed with `_`.
std::string PromMetricName(std::string_view name);

/// The whole registry in Prometheus text format.
std::string ExportPrometheus(const MetricsRegistry& registry);

/// \brief Localhost `GET /metrics` + `GET /healthz` endpoint over a
/// registry. Start() binds and spawns the accept thread; Stop() (or the
/// destructor) shuts it down.
class StatsServer {
 public:
  /// `port` 0 picks an ephemeral port — read it back with port() after
  /// Start() succeeds. The registry must outlive the server.
  explicit StatsServer(const MetricsRegistry* registry, uint16_t port = 0);
  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  Status Start();
  void Stop();

  /// Attaches a metrics history ring; while set, `GET /metrics/history`
  /// serves its ExportJson document. The history must outlive the server
  /// (or be detached with set_history(nullptr) first). May be swapped
  /// while the server runs.
  void set_history(const MetricsHistory* history) {
    history_.store(history, std::memory_order_release);
  }

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after Start() returns OK).
  uint16_t port() const { return port_; }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);

  const MetricsRegistry* registry_;
  std::atomic<const MetricsHistory*> history_{nullptr};
  uint16_t port_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace slim::obs

#endif  // SLIM_OBS_PROM_H_
