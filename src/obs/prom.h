#ifndef SLIM_OBS_PROM_H_
#define SLIM_OBS_PROM_H_

/// \file prom.h
/// \brief Prometheus text exposition of a MetricsRegistry, plus a minimal
/// localhost scrape endpoint.
///
/// `ExportPrometheus` renders the registry in the Prometheus text format
/// (version 0.0.4): `# HELP`/`# TYPE` headers, plain counter/gauge samples,
/// and full histogram series — cumulative `_bucket{le="..."}` samples
/// ending at `le="+Inf"`, plus `_sum` and `_count`. Repository names
/// (`layer.op.outcome`, `[a-z0-9._]+` enforced by MetricsRegistry) map onto
/// exposition names by `.` → `_`; anything else that sneaks through is
/// folded to `_` too, so a scrape can never be rejected by the server side.
///
/// `StatsServer` is a dependency-free POSIX-socket HTTP responder bound to
/// 127.0.0.1: a background thread runs a blocking accept loop and answers
/// `GET /metrics` (the exposition), `GET /metrics/history`, `GET
/// /vars.json`, `GET /slo.json`, `GET /alerts.json` and `GET /healthz`.
/// Requests are parsed defensively: an incomplete request line (partial
/// read) is 400, an oversized one 414, a non-GET method 405 — and every
/// connection/outcome is counted (`obs.stats_server.{requests,errors}`).
/// `/healthz` consults an attached Watchdog: 200 + "ok" while healthy (or
/// when no watchdog is attached/armed — backward compatible), 200 + a JSON
/// health report when degraded, and HTTP 503 + the JSON report naming the
/// failing subsystems when failing. It exists so a real scraper can pull a
/// running workload — production deployments would put a real server in
/// front, but the format is the contract and this serves it faithfully.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.h"
#include "util/status.h"

namespace slim::obs {

class MetricsHistory;
class SloEngine;
class AlertRing;
class Watchdog;
class CpuProfiler;

/// Exposition-format name for a registry metric name: lowercase `[a-z0-9_]`
/// with `.` (and any other illegal byte) mapped to `_`; a leading digit is
/// prefixed with `_`.
std::string PromMetricName(std::string_view name);

/// The whole registry in Prometheus text format.
std::string ExportPrometheus(const MetricsRegistry& registry);

/// \brief Localhost `GET /metrics` + `GET /healthz` endpoint over a
/// registry. Start() binds and spawns the accept thread; Stop() (or the
/// destructor) shuts it down.
class StatsServer {
 public:
  /// `port` 0 picks an ephemeral port — read it back with port() after
  /// Start() succeeds. The registry must outlive the server.
  explicit StatsServer(const MetricsRegistry* registry, uint16_t port = 0);
  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  Status Start();
  void Stop();

  /// Attaches a metrics history ring; while set, `GET /metrics/history`
  /// serves its ExportJson document. The history must outlive the server
  /// (or be detached with set_history(nullptr) first). May be swapped
  /// while the server runs.
  void set_history(const MetricsHistory* history) {
    history_.store(history, std::memory_order_release);
  }
  /// While set, `GET /slo.json` serves the engine's slim-slo-v1 document.
  /// Same lifetime/swap contract as set_history.
  void set_slo(const SloEngine* slo) {
    slo_.store(slo, std::memory_order_release);
  }
  /// While set, `GET /alerts.json` serves the ring's slim-alerts-v1
  /// document. Same lifetime/swap contract as set_history.
  void set_alerts(const AlertRing* alerts) {
    alerts_.store(alerts, std::memory_order_release);
  }
  /// While set *and armed*, `/healthz` reports the watchdog's Health()
  /// verdict (503 when failing). Same lifetime/swap contract.
  void set_watchdog(const Watchdog* watchdog) {
    watchdog_.store(watchdog, std::memory_order_release);
  }
  /// While set, `GET /profile/cpu?seconds=N` serves a slim-cpuprofile-v1
  /// JSON window (default 1s, clamped to 10s — the accept loop is serial,
  /// so a capture blocks other scrapes for its window) and `GET
  /// /profile/cpu.collapsed` the flamegraph-collapsed text (cumulative
  /// snapshot unless `seconds=` asks for a window). Non-const: captures
  /// may start a stopped profiler for the window. Same lifetime/swap
  /// contract as set_history.
  void set_cpu_profiler(CpuProfiler* profiler) {
    cpu_profiler_.store(profiler, std::memory_order_release);
  }

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after Start() returns OK).
  uint16_t port() const { return port_; }
  /// Connections handled (also `obs.stats_server.requests`).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Error responses + aborted requests (also `obs.stats_server.errors`).
  uint64_t errors_served() const {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);

  const MetricsRegistry* registry_;
  std::atomic<const MetricsHistory*> history_{nullptr};
  std::atomic<const SloEngine*> slo_{nullptr};
  std::atomic<const AlertRing*> alerts_{nullptr};
  std::atomic<const Watchdog*> watchdog_{nullptr};
  std::atomic<CpuProfiler*> cpu_profiler_{nullptr};
  uint16_t port_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::thread thread_;
};

}  // namespace slim::obs

#endif  // SLIM_OBS_PROM_H_
