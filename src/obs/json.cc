#include "obs/json.h"

#include <cstdio>

namespace slim::obs {

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(s, &out);
  return out;
}

std::string JsonQuote(std::string_view s) {
  std::string out = "\"";
  AppendJsonEscaped(s, &out);
  out += '"';
  return out;
}

}  // namespace slim::obs
