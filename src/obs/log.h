#ifndef SLIM_OBS_LOG_H_
#define SLIM_OBS_LOG_H_

/// \file log.h
/// \brief Structured, leveled logging across the four layers.
///
/// A `LogEvent` is a key-value record — level, emitting layer, message and
/// an ordered list of string fields — delivered to pluggable `LogSink`s in
/// the same style as trace.h: a ring buffer for tests, interactive dumps and
/// the flight recorder, a JSONL file for offline analysis.
///
/// Call sites use the `SLIM_OBS_LOG` macro from obs.h, which compiles out
/// under SLIM_ENABLE_OBS=OFF:
///
///   SLIM_OBS_LOG(kWarn, "trim", "store save failed", {{"path", path}});
///
/// Each accepted event also bumps a per-level counter
/// (`log.events.<level>`) in the logger's `MetricsRegistry`
/// (`obs::DefaultRegistry()` unless overridden), so a scraper sees error
/// rates without shipping log lines. Delivery holds the logger's mutex, so
/// events from any thread serialize; sinks need no extra locking against
/// one logger.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/instrumented_mutex.h"
#include "util/thread_annotations.h"

namespace slim::obs {

/// \brief Severity, ordered: events below a logger's min level are dropped.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Lower-case name ("debug", "info", "warn", "error").
std::string_view LogLevelName(LogLevel level);

/// Ordered key-value payload of an event.
using LogFields = std::vector<std::pair<std::string, std::string>>;

/// \brief One structured event, as delivered to sinks.
struct LogEvent {
  LogLevel level = LogLevel::kInfo;
  std::string layer;    ///< Emitting layer: "trim", "mark", "slim", ...
  std::string message;  ///< Human-readable, no trailing newline.
  LogFields fields;
  uint64_t timestamp_ns = 0;  ///< Monotonic, relative to the logger's epoch.
};

/// One JSON object (no trailing newline) for an event; shared by the JSONL
/// sink and the flight-recorder bundle.
std::string FormatLogEventJson(const LogEvent& event);

/// \brief Receives accepted events (level filter already applied).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void OnLogEvent(const LogEvent& event) = 0;
};

/// \brief Keeps the most recent `capacity` events in memory.
class RingBufferLogSink : public LogSink {
 public:
  explicit RingBufferLogSink(size_t capacity = 1024) : capacity_(capacity) {}

  void OnLogEvent(const LogEvent& event) override;

  /// Retained events, oldest first.
  std::vector<LogEvent> Events() const;
  size_t size() const;
  /// Events evicted because the buffer was full.
  size_t dropped() const;
  void Clear();

 private:
  mutable util::InstrumentedMutex mu_{"obs.log.ring"};
  size_t capacity_ GUARDED_BY(mu_);
  std::deque<LogEvent> events_ GUARDED_BY(mu_);
  size_t dropped_ GUARDED_BY(mu_) = 0;
};

/// \brief Appends one JSON object per event to a file (JSONL).
class JsonlFileLogSink : public LogSink {
 public:
  explicit JsonlFileLogSink(const std::string& path);

  /// False when the file could not be opened (events are then discarded).
  bool ok() const { return out_.is_open() && out_.good(); }

  void OnLogEvent(const LogEvent& event) override;

 private:
  util::InstrumentedMutex mu_{"obs.log.jsonl"};
  std::ofstream out_ GUARDED_BY(mu_);
};

/// \brief Filters by level, stamps a timestamp, counts per level and fans
/// events out to sinks.
class Logger {
 public:
  Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Sinks are not owned and must outlive their registration.
  void AddSink(LogSink* sink);
  void RemoveSink(LogSink* sink);
  size_t sink_count() const;

  /// Events below this level are dropped before counting. Default kDebug
  /// (everything passes).
  void set_min_level(LogLevel level) { min_level_.store(static_cast<int>(level), std::memory_order_relaxed); }
  LogLevel min_level() const { return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed)); }

  /// Registry receiving the `log.events.<level>` counters; the default
  /// logger uses obs::DefaultRegistry(). Pass nullptr to stop counting.
  void set_registry(MetricsRegistry* registry);

  /// Builds and delivers an event. No-op while obs::Disabled() or below
  /// the min level.
  void Log(LogLevel level, std::string_view layer, std::string_view message,
           LogFields fields = {});

  /// Events accepted (counted and offered to sinks) so far.
  uint64_t events_logged() const { return events_.load(std::memory_order_relaxed); }

 private:
  Counter* LevelCounter(LogLevel level) REQUIRES(mu_);

  mutable util::InstrumentedMutex mu_{"obs.log.logger"};
  std::vector<LogSink*> sinks_ GUARDED_BY(mu_);
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kDebug)};
  std::atomic<uint64_t> events_{0};
  MetricsRegistry* registry_ GUARDED_BY(mu_);
  std::array<Counter*, 4> level_counters_ GUARDED_BY(mu_){};
  const std::chrono::steady_clock::time_point epoch_;
};

/// Process-wide logger used by the SLIM_OBS_LOG instrumentation macro.
Logger& DefaultLogger();

}  // namespace slim::obs

#endif  // SLIM_OBS_LOG_H_
