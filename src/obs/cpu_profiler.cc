#include "obs/cpu_profiler.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <sys/time.h>

#ifdef SLIM_OBS_NATIVE_STACKS
#include <execinfo.h>
#endif

#include "obs/json.h"

namespace slim::obs {

namespace internal {

/// Vyukov-style bounded MPSC queue: the SIGPROF handler (any thread) pushes
/// with a CAS slot claim, the drain thread pops. Atomics only, fixed
/// storage, so both sides are async-signal-safe and allocation-free.
struct CpuSampleRing {
  static constexpr uint32_t kMaxNative = 16;

  struct Slot {
    std::atomic<uint64_t> seq{0};
    uint32_t n = 0;
    uint32_t native_n = 0;
    uint32_t frames[SpanStack::kMaxDepth];
    uint64_t pcs[kMaxNative];
  };

  explicit CpuSampleRing(size_t capacity) {
    cap_ = 1;
    while (cap_ < capacity) cap_ <<= 1;
    slots_ = std::make_unique<Slot[]>(cap_);
    for (size_t i = 0; i < cap_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  bool Push(const uint32_t* frames, uint32_t n, const uint64_t* pcs,
            uint32_t native_n) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & (cap_ - 1)];
      const uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const int64_t diff =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.n = n < SpanStack::kMaxDepth ? n : SpanStack::kMaxDepth;
          std::memcpy(slot.frames, frames, slot.n * sizeof(uint32_t));
          slot.native_n = native_n < kMaxNative ? native_n : kMaxNative;
          std::memcpy(slot.pcs, pcs, slot.native_n * sizeof(uint64_t));
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        // Full: a consumer hasn't recycled this slot yet. Count and drop —
        // a handler must never wait.
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single consumer (the drain thread).
  bool Pop(uint32_t* frames, uint32_t* n, uint64_t* pcs, uint32_t* native_n) {
    Slot& slot = slots_[tail_ & (cap_ - 1)];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<int64_t>(seq) - static_cast<int64_t>(tail_ + 1) < 0) {
      return false;
    }
    *n = slot.n;
    std::memcpy(frames, slot.frames, slot.n * sizeof(uint32_t));
    *native_n = slot.native_n;
    std::memcpy(pcs, slot.pcs, slot.native_n * sizeof(uint64_t));
    slot.seq.store(tail_ + cap_, std::memory_order_release);
    ++tail_;
    return true;
  }

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  std::unique_ptr<Slot[]> slots_;
  size_t cap_ = 0;
  std::atomic<uint64_t> head_{0};
  uint64_t tail_ = 0;
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace internal

namespace {

/// High bit marks a native-frame id inside an aggregation key; the low bits
/// index the profiler's native_names_ table. Span-name ids (>= 1, dense)
/// never reach this range.
constexpr uint32_t kNativeBit = 0x80000000u;

/// SIGPROF plumbing. One itimer-mode profiler owns the signal at a time;
/// the handler validates the interrupted thread's published stack against
/// the profiled tracer's epoch before reading it.
std::atomic<CpuProfiler*> g_itimer_owner{nullptr};
std::atomic<uint64_t> g_profiled_epoch{0};
std::atomic<internal::CpuSampleRing*> g_ring{nullptr};
std::atomic<bool> g_native_frames{false};
std::atomic<bool> g_handler_installed{false};

void SigprofHandler(int /*signo*/) {
  const int saved_errno = errno;
  internal::CpuSampleRing* ring = g_ring.load(std::memory_order_acquire);
  const uint64_t epoch = g_profiled_epoch.load(std::memory_order_relaxed);
  if (ring != nullptr && epoch != 0) {
    uint32_t frames[SpanStack::kMaxDepth];
    uint32_t n = 0;
    const internal::SigStackRef& ref = internal::t_sig_stack;
    if (ref.tracer_epoch.load(std::memory_order_relaxed) == epoch) {
      const SpanStack* stack = ref.stack.load(std::memory_order_relaxed);
      if (stack != nullptr) n = stack->Snapshot(frames);
    }
    uint64_t pcs[internal::CpuSampleRing::kMaxNative];
    uint32_t native_n = 0;
#ifdef SLIM_OBS_NATIVE_STACKS
    if (g_native_frames.load(std::memory_order_relaxed)) {
      // Skip the two innermost frames (this handler + the signal
      // trampoline); Start() pre-warmed libgcc so this never dlopens here.
      void* bt[internal::CpuSampleRing::kMaxNative + 2];
      const int got =
          backtrace(bt, internal::CpuSampleRing::kMaxNative + 2);
      for (int i = 2; i < got; ++i) {
        pcs[native_n++] = reinterpret_cast<uint64_t>(bt[i]);
      }
    }
#endif
    ring->Push(frames, n, pcs, native_n);
  }
  errno = saved_errno;
}

std::string JoinPath(const CpuProfile& profile,
                     const CpuProfile::StackCount& stack) {
  std::string out;
  for (size_t i = 0; i < stack.frames.size(); ++i) {
    if (i) out += ';';
    const uint32_t frame = stack.frames[i];
    out += frame < profile.frame_names.size() ? profile.frame_names[frame]
                                              : "?";
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// CpuProfile
// ---------------------------------------------------------------------------

std::string CpuProfile::ToCollapsed() const {
  std::string out;
  for (const StackCount& stack : stacks) {
    out += JoinPath(*this, stack);
    out += ' ';
    out += std::to_string(stack.count);
    out += '\n';
  }
  return out;
}

std::string CpuProfile::ToJson() const {
  std::string out = "{\"schema\":\"slim-cpuprofile-v1\"";
  out += ",\"$schema\":\"https://www.speedscope.app/file-format-schema.json\"";
  out += ",\"name\":\"slim cpu profile\"";
  out += ",\"exporter\":\"slim-obs\"";
  out += ",\"mode\":" + JsonQuote(mode);
  out += ",\"sample_hz\":" + std::to_string(sample_hz);
  out += ",\"duration_ms\":" + std::to_string(duration_ms);
  out += ",\"samples\":" + std::to_string(samples);
  out += ",\"samples_idle\":" + std::to_string(samples_idle);
  out += ",\"samples_dropped\":" + std::to_string(samples_dropped);
  out += ",\"shared\":{\"frames\":[";
  for (size_t i = 0; i < frame_names.size(); ++i) {
    if (i) out += ',';
    out += "{\"name\":" + JsonQuote(frame_names[i]) + "}";
  }
  out += "]},\"profiles\":[{\"type\":\"sampled\"";
  out += ",\"name\":\"spans\",\"unit\":\"none\",\"startValue\":0";
  uint64_t total = 0;
  for (const StackCount& stack : stacks) total += stack.count;
  out += ",\"endValue\":" + std::to_string(total);
  out += ",\"samples\":[";
  for (size_t i = 0; i < stacks.size(); ++i) {
    if (i) out += ',';
    out += '[';
    for (size_t j = 0; j < stacks[i].frames.size(); ++j) {
      if (j) out += ',';
      out += std::to_string(stacks[i].frames[j]);
    }
    out += ']';
  }
  out += "],\"weights\":[";
  for (size_t i = 0; i < stacks.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(stacks[i].count);
  }
  out += "]}]}";
  return out;
}

uint64_t CpuProfile::CountWithPrefix(const std::string& prefix) const {
  uint64_t total = 0;
  for (const StackCount& stack : stacks) {
    if (JoinPath(*this, stack).rfind(prefix, 0) == 0) total += stack.count;
  }
  return total;
}

// ---------------------------------------------------------------------------
// CpuProfiler
// ---------------------------------------------------------------------------

CpuProfiler::CpuProfiler(MetricsRegistry* registry, Tracer* tracer,
                         Options options)
    : registry_(registry), tracer_(tracer), options_(options) {}

CpuProfiler::~CpuProfiler() {
  Stop();
  if (ring_ != nullptr) {
    // A SIGPROF delivered in the last instants before Stop() cleared the
    // timer may still be publishing into the ring; give it time to finish
    // before the storage dies.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void CpuProfiler::EnsureMetrics() {
  if (metrics_ready_ || registry_ == nullptr) return;
  c_samples_ = registry_->GetCounter("obs.cpuprof.samples");
  c_idle_ = registry_->GetCounter("obs.cpuprof.samples_idle");
  c_dropped_ = registry_->GetCounter("obs.cpuprof.dropped");
  c_ticks_ = registry_->GetCounter("obs.cpuprof.ticks");
  c_captures_ = registry_->GetCounter("obs.cpuprof.captures");
  g_running_ = registry_->GetGauge("obs.cpuprof.running");
  g_stacks_ = registry_->GetGauge("obs.cpuprof.stacks");
  g_hz_ = registry_->GetGauge("obs.cpuprof.sample_hz");
  metrics_ready_ = true;
}

bool CpuProfiler::Start() {
  util::MutexLock lifecycle(&lifecycle_mu_);
  if (running()) return true;
  {
    util::MutexLock lock(&mu_);
    EnsureMetrics();
    if (g_hz_ != nullptr) {
      g_hz_->Set(static_cast<int64_t>(options_.sample_hz));
    }
  }
  if (options_.mode == Mode::kItimer) {
    CpuProfiler* expected = nullptr;
    if (!g_itimer_owner.compare_exchange_strong(expected, this,
                                               std::memory_order_acq_rel)) {
      return false;  // another profiler owns SIGPROF
    }
    if (ring_ == nullptr) {
      ring_ = std::make_unique<internal::CpuSampleRing>(options_.ring_capacity);
    }
#ifdef SLIM_OBS_NATIVE_STACKS
    if (options_.native_frames) {
      void* warm[4];
      backtrace(warm, 4);  // force libgcc load outside the handler
      g_native_frames.store(true, std::memory_order_relaxed);
    }
#else
    (void)options_.native_frames;
#endif
    g_profiled_epoch.store(tracer_->tracer_epoch(), std::memory_order_relaxed);
    g_ring.store(ring_.get(), std::memory_order_release);
    if (!g_handler_installed.exchange(true, std::memory_order_acq_rel)) {
      // Installed once and left in place: restoring the default SIGPROF
      // action with a signal still pending would kill the process. The
      // handler no-ops whenever g_ring is cleared.
      struct sigaction sa;
      std::memset(&sa, 0, sizeof(sa));
      sa.sa_handler = &SigprofHandler;
      sa.sa_flags = SA_RESTART;
      sigemptyset(&sa.sa_mask);
      sigaction(SIGPROF, &sa, nullptr);
    }
    const uint64_t hz = std::max<uint64_t>(1, options_.sample_hz);
    itimerval timer;
    timer.it_interval.tv_sec = 0;
    timer.it_interval.tv_usec = static_cast<suseconds_t>(
        std::max<uint64_t>(1, 1'000'000 / hz));
    timer.it_value = timer.it_interval;
    setitimer(ITIMER_PROF, &timer, nullptr);
  }
  tracer_->set_stack_tracking(true);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { Run(); });
  running_.store(true, std::memory_order_release);
  {
    util::MutexLock lock(&mu_);
    if (g_running_ != nullptr) g_running_->Set(1);
  }
  return true;
}

void CpuProfiler::Stop() {
  util::MutexLock lifecycle(&lifecycle_mu_);
  if (!running()) return;
  if (options_.mode == Mode::kItimer) {
    itimerval zero;
    std::memset(&zero, 0, sizeof(zero));
    setitimer(ITIMER_PROF, &zero, nullptr);
    g_ring.store(nullptr, std::memory_order_release);
    g_profiled_epoch.store(0, std::memory_order_relaxed);
    g_native_frames.store(false, std::memory_order_relaxed);
    g_itimer_owner.store(nullptr, std::memory_order_release);
  }
  tracer_->set_stack_tracking(false);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  thread_.join();
  running_.store(false, std::memory_order_release);
  {
    util::MutexLock lock(&mu_);
    if (g_running_ != nullptr) g_running_->Set(0);
  }
}

void CpuProfiler::Run() {
  const uint64_t hz = std::max<uint64_t>(1, options_.sample_hz);
  // Itimer mode only drains the handler's queue; 10ms keeps the ring far
  // from full at any sane rate without burning a core.
  const auto interval = options_.mode == Mode::kItimer
                            ? std::chrono::nanoseconds(10'000'000)
                            : std::chrono::nanoseconds(1'000'000'000 / hz);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      if (stop_requested_) break;
      wake_cv_.wait_for(lock, interval, [this] { return stop_requested_; });
      if (stop_requested_) break;
    }
    if (options_.mode == Mode::kItimer) {
      DrainRing();
    } else {
      SampleOnce();
    }
  }
  // Final pass so Stop() never strands queued samples.
  if (options_.mode == Mode::kItimer) DrainRing();
}

void CpuProfiler::SampleOnce() {
  const std::vector<const SpanStack*> stacks = tracer_->StackRegistry();
  uint32_t frames[SpanStack::kMaxDepth];
  util::MutexLock lock(&mu_);
  if (c_ticks_ != nullptr) c_ticks_->Increment();
  if (g_stacks_ != nullptr) {
    g_stacks_->Set(static_cast<int64_t>(stacks.size()));
  }
  for (const SpanStack* stack : stacks) {
    const uint32_t n = stack->Snapshot(frames);
    if (n == 0) {
      ++samples_idle_;
      if (c_idle_ != nullptr) c_idle_->Increment();
      continue;
    }
    AggregateLocked(frames, n, nullptr, 0);
  }
}

void CpuProfiler::DrainRing() {
  if (ring_ == nullptr) return;
  uint32_t frames[SpanStack::kMaxDepth];
  uint64_t pcs[internal::CpuSampleRing::kMaxNative];
  uint32_t n = 0;
  uint32_t native_n = 0;
  util::MutexLock lock(&mu_);
  if (c_ticks_ != nullptr) c_ticks_->Increment();
  if (g_stacks_ != nullptr) {
    g_stacks_->Set(static_cast<int64_t>(tracer_->stack_count()));
  }
  while (ring_->Pop(frames, &n, pcs, &native_n)) {
    if (n == 0 && native_n == 0) {
      ++samples_idle_;
      if (c_idle_ != nullptr) c_idle_->Increment();
      continue;
    }
    AggregateLocked(frames, n, pcs, native_n);
  }
  const uint64_t dropped = ring_->dropped();
  if (dropped > dropped_seen_) {
    const uint64_t delta = dropped - dropped_seen_;
    dropped_seen_ = dropped;
    samples_dropped_ += delta;
    if (c_dropped_ != nullptr) c_dropped_->Increment(delta);
  }
}

void CpuProfiler::AggregateLocked(const uint32_t* frames, uint32_t n,
                                  const uint64_t* pcs, uint32_t native_n) {
  std::vector<uint32_t> key;
  key.reserve(n + native_n);
  key.assign(frames, frames + n);
  for (uint32_t i = 0; i < native_n; ++i) {
    auto [it, inserted] =
        native_ids_.emplace(pcs[i], static_cast<uint32_t>(
                                        native_names_.size()));
    if (inserted) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "native:0x%llx",
                    static_cast<unsigned long long>(pcs[i]));
      native_names_.push_back(buf);
    }
    key.push_back(kNativeBit | it->second);
  }
  ++agg_[key];
  ++samples_span_;
  samples_total_.fetch_add(1, std::memory_order_relaxed);
  if (c_samples_ != nullptr) c_samples_->Increment();
}

CpuProfile CpuProfiler::Snapshot() const {
  CpuProfile out;
  out.mode = options_.mode == Mode::kItimer ? "itimer" : "ticker";
  out.sample_hz = options_.sample_hz;
  std::map<std::vector<uint32_t>, uint64_t> agg;
  std::vector<std::string> native_names;
  {
    util::MutexLock lock(&mu_);
    agg = agg_;
    native_names = native_names_;
    out.samples = samples_span_;
    out.samples_idle = samples_idle_;
    out.samples_dropped = samples_dropped_;
  }
  // Fetched *after* the aggregate copy: the intern table only grows, so
  // every id referenced by `agg` is already in it.
  const std::vector<std::string> span_names = tracer_->SpanNameTable();
  const uint32_t span_count = static_cast<uint32_t>(span_names.size());
  out.frame_names = span_names;
  out.frame_names.insert(out.frame_names.end(), native_names.begin(),
                         native_names.end());
  out.stacks.reserve(agg.size());
  for (const auto& [key, count] : agg) {
    CpuProfile::StackCount stack;
    stack.count = count;
    stack.frames.reserve(key.size());
    for (const uint32_t id : key) {
      // Span ids are 1-based; native ids index past the span table.
      stack.frames.push_back((id & kNativeBit) != 0
                                 ? span_count + (id & ~kNativeBit)
                                 : id - 1);
    }
    out.stacks.push_back(std::move(stack));
  }
  std::sort(out.stacks.begin(), out.stacks.end(),
            [](const CpuProfile::StackCount& a,
               const CpuProfile::StackCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.frames < b.frames;
            });
  return out;
}

CpuProfile CpuProfiler::Diff(const CpuProfile& later,
                             const CpuProfile& earlier) {
  std::map<std::string, uint64_t> prev;
  for (const CpuProfile::StackCount& stack : earlier.stacks) {
    prev[JoinPath(earlier, stack)] = stack.count;
  }
  CpuProfile out = later;
  out.stacks.clear();
  for (const CpuProfile::StackCount& stack : later.stacks) {
    const auto it = prev.find(JoinPath(later, stack));
    const uint64_t base = it == prev.end() ? 0 : it->second;
    if (stack.count > base) {
      out.stacks.push_back(
          CpuProfile::StackCount{stack.frames, stack.count - base});
    }
  }
  out.samples =
      later.samples > earlier.samples ? later.samples - earlier.samples : 0;
  out.samples_idle = later.samples_idle > earlier.samples_idle
                         ? later.samples_idle - earlier.samples_idle
                         : 0;
  out.samples_dropped = later.samples_dropped > earlier.samples_dropped
                            ? later.samples_dropped - earlier.samples_dropped
                            : 0;
  return out;
}

CpuProfile CpuProfiler::CaptureWindow(uint64_t window_ms) {
  const bool was_running = running();
  if (!was_running && !Start()) return CpuProfile{};
  const CpuProfile before = Snapshot();
  std::this_thread::sleep_for(std::chrono::milliseconds(window_ms));
  const CpuProfile after = Snapshot();
  if (!was_running) Stop();
  CpuProfile window = Diff(after, before);
  window.duration_ms = window_ms;
  {
    util::MutexLock lock(&mu_);
    EnsureMetrics();
    if (c_captures_ != nullptr) c_captures_->Increment();
  }
  return window;
}

void CpuProfiler::Reset() {
  util::MutexLock lock(&mu_);
  agg_.clear();
  samples_span_ = 0;
  samples_idle_ = 0;
  samples_dropped_ = 0;
  samples_total_.store(0, std::memory_order_relaxed);
}

CpuProfiler& CpuProfiler::Default() {
  static CpuProfiler* profiler =
      new CpuProfiler(&DefaultRegistry(), &DefaultTracer());
  return *profiler;
}

}  // namespace slim::obs
