#include "obs/slo.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/json.h"

namespace slim::obs {

std::string_view SloStateName(SloState state) {
  switch (state) {
    case SloState::kOk:
      return "ok";
    case SloState::kDegraded:
      return "degraded";
    case SloState::kFailing:
      return "failing";
  }
  return "ok";
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

namespace {

std::vector<std::string> SplitTokens(std::string_view spec) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < spec.size()) {
    while (i < spec.size() && (spec[i] == ' ' || spec[i] == '\t')) ++i;
    size_t start = i;
    while (i < spec.size() && spec[i] != ' ' && spec[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(spec.substr(start, i - start));
  }
  return tokens;
}

bool ParseNumber(std::string_view text, double* value) {
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  *value = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

/// "5ms", "500us", "2.5s" -> microseconds. False on anything else.
bool ParseDurationUs(std::string_view token, uint64_t* us) {
  double mult = 0;
  std::string_view number = token;
  if (token.size() > 2 && token.substr(token.size() - 2) == "us") {
    mult = 1;
    number = token.substr(0, token.size() - 2);
  } else if (token.size() > 2 && token.substr(token.size() - 2) == "ms") {
    mult = 1e3;
    number = token.substr(0, token.size() - 2);
  } else if (token.size() > 1 && token.back() == 's') {
    mult = 1e6;
    number = token.substr(0, token.size() - 1);
  } else {
    return false;
  }
  double value = 0;
  if (!ParseNumber(number, &value) || value <= 0) return false;
  *us = static_cast<uint64_t>(std::llround(value * mult));
  return *us > 0;
}

/// "0.1%" -> 0.001; "0.001" -> 0.001. Must land in (0, 1).
bool ParseFraction(std::string_view token, double* fraction) {
  double value = 0;
  if (!token.empty() && token.back() == '%') {
    if (!ParseNumber(token.substr(0, token.size() - 1), &value)) return false;
    value /= 100.0;
  } else if (!ParseNumber(token, &value)) {
    return false;
  }
  if (value <= 0 || value >= 1) return false;
  *fraction = value;
  return true;
}

/// "p50" / "p99" / "p99.9" (also spelled "p999") -> quantile in (0, 1).
bool ParseQuantile(std::string_view token, double* quantile) {
  if (token.size() < 2 || token[0] != 'p') return false;
  std::string_view digits = token.substr(1);
  double value = 0;
  if (digits == "999") {
    value = 99.9;
  } else if (!ParseNumber(digits, &value)) {
    return false;
  }
  if (value <= 0 || value >= 100) return false;
  *quantile = value / 100.0;
  return true;
}

bool ValidId(std::string_view id) {
  if (id.empty()) return false;
  for (char c : id) {
    bool legal = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!legal) return false;
  }
  return true;
}

/// Metric-name charset folded into the id charset: '.' -> '_'.
std::string SanitizeId(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) out += c == '.' ? '_' : c;
  return out;
}

std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

Result<SloObjective> SloObjective::Parse(std::string_view spec) {
  std::vector<std::string> tokens = SplitTokens(spec);
  SloObjective obj;

  if (tokens.size() >= 2 && tokens[tokens.size() - 2] == "window") {
    uint64_t us = 0;
    if (!ParseDurationUs(tokens.back(), &us) || us < 1000) {
      return Status::ParseError("SLO spec: bad window duration '" +
                                tokens.back() + "' in: " + std::string(spec));
    }
    obj.window_ms = static_cast<int64_t>(us / 1000);
    tokens.resize(tokens.size() - 2);
  }

  std::string id_hint;
  if (!tokens.empty() && tokens[0].size() > 1 && tokens[0].back() == ':') {
    id_hint = tokens[0].substr(0, tokens[0].size() - 1);
    tokens.erase(tokens.begin());
  }

  if (tokens.size() == 3 && tokens[0].rfind("errors(", 0) == 0) {
    // errors(<error_counter>,<total_counter>) < <fraction>
    if (tokens[0].back() != ')' || tokens[1] != "<" ||
        !ParseFraction(tokens[2], &obj.max_error_fraction)) {
      return Status::ParseError("SLO spec: expected errors(err,total) < N%: " +
                                std::string(spec));
    }
    std::string inside = tokens[0].substr(7, tokens[0].size() - 8);
    size_t comma = inside.find(',');
    if (comma == std::string::npos) {
      return Status::ParseError("SLO spec: errors(...) needs two counters: " +
                                std::string(spec));
    }
    obj.kind = SloKind::kErrorRate;
    obj.error_counter = inside.substr(0, comma);
    obj.total_counter = inside.substr(comma + 1);
    obj.id = SanitizeId(obj.error_counter) + "_rate";
  } else if (tokens.size() == 4 &&
             (tokens[1] == "error_rate" || tokens[1] == "error-rate")) {
    // <base> error_rate < <fraction>   (counters <base>.error/<base>.calls)
    if (tokens[2] != "<" || !ParseFraction(tokens[3], &obj.max_error_fraction)) {
      return Status::ParseError("SLO spec: expected <base> error_rate < N%: " +
                                std::string(spec));
    }
    obj.kind = SloKind::kErrorRate;
    obj.error_counter = tokens[0] + ".error";
    obj.total_counter = tokens[0] + ".calls";
    obj.id = SanitizeId(tokens[0]) + "_error_rate";
  } else if (tokens.size() == 4 && ParseQuantile(tokens[1], &obj.quantile)) {
    // <histogram> pN < <duration>
    if (tokens[2] != "<" || !ParseDurationUs(tokens[3], &obj.threshold_us)) {
      return Status::ParseError("SLO spec: expected <histogram> pN < <dur>: " +
                                std::string(spec));
    }
    obj.kind = SloKind::kLatency;
    obj.metric = tokens[0];
    obj.id = SanitizeId(obj.metric) + "_" + SanitizeId(tokens[1]);
  } else {
    return Status::ParseError("SLO spec: unrecognized form: " +
                              std::string(spec));
  }

  for (const std::string* name :
       {&obj.metric, &obj.error_counter, &obj.total_counter}) {
    if (!name->empty() && !MetricsRegistry::IsValidMetricName(*name)) {
      return Status::ParseError("SLO spec: bad metric name '" + *name +
                                "' in: " + std::string(spec));
    }
  }
  if (!id_hint.empty()) obj.id = id_hint;
  if (!ValidId(obj.id)) {
    return Status::ParseError("SLO spec: objective id must be [a-z0-9_]+, "
                              "got '" + obj.id + "'");
  }
  return obj;
}

std::string SloObjective::ToString() const {
  std::string out = id + ": ";
  if (kind == SloKind::kLatency) {
    out += metric + " p" + FormatDouble(quantile * 100) + " < " +
           std::to_string(threshold_us) + "us";
  } else {
    out += "errors(" + error_counter + "," + total_counter + ") < " +
           FormatDouble(max_error_fraction * 100) + "%";
  }
  out += " window " + std::to_string(window_ms) + "ms";
  return out;
}

// ---------------------------------------------------------------------------
// SloEngine
// ---------------------------------------------------------------------------

SloEngine::SloEngine(MetricsRegistry* registry, Options options)
    : registry_(registry), options_(options) {}

int64_t SloEngine::NowMs() const {
  if (options_.now_ms != nullptr) return options_.now_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status SloEngine::AddObjective(std::string_view spec) {
  auto parsed = SloObjective::Parse(spec);
  if (!parsed.ok()) return parsed.status();
  return Add(std::move(parsed).ValueOrDie());
}

Status SloEngine::Add(SloObjective objective) {
  util::MutexLock lock(&mu_);
  for (const Tracked& tracked : objectives_) {
    if (tracked.objective.id == objective.id) {
      return Status::InvalidArgument("duplicate SLO objective id: " +
                                     objective.id);
    }
  }
  Tracked tracked;
  tracked.status.objective = objective;
  tracked.objective = std::move(objective);
  objectives_.push_back(std::move(tracked));
  return Status::OK();
}

void SloEngine::set_alerts(AlertRing* alerts) {
  util::MutexLock lock(&mu_);
  alerts_ = alerts;
}

SloEngine::Sample SloEngine::Read(Tracked* tracked, int64_t now) {
  const SloObjective& obj = tracked->objective;
  Sample sample;
  sample.t_ms = now;
  if (obj.kind == SloKind::kLatency) {
    if (tracked->histogram == nullptr) {
      tracked->histogram = registry_->GetHistogram(obj.metric);
    }
    const LatencyHistogram& h = *tracked->histogram;
    uint64_t total = h.count();
    uint64_t good = 0;
    for (size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
      if (LatencyHistogram::BucketUpperBound(i) > obj.threshold_us) break;
      good += h.BucketValue(i);
    }
    // Relaxed per-bucket reads can momentarily disagree with count();
    // clamp so a racing writer never produces negative "bad".
    sample.total = total;
    sample.bad = total > good ? total - good : 0;
  } else {
    if (tracked->error == nullptr) {
      tracked->error = registry_->GetCounter(obj.error_counter);
      tracked->total = registry_->GetCounter(obj.total_counter);
    }
    sample.total = tracked->total->value();
    sample.bad = tracked->error->value();
    if (sample.bad > sample.total) sample.bad = sample.total;
  }
  return sample;
}

void SloEngine::EvaluateOne(Tracked* tracked, int64_t now) {
  const SloObjective& obj = tracked->objective;
  Sample current = Read(tracked, now);

  std::deque<Sample>& samples = tracked->samples;
  if (!samples.empty() && (current.total < samples.back().total ||
                           current.bad < samples.back().bad)) {
    // Registry Reset() (counters shrank): restart the window from here.
    samples.clear();
  }
  samples.push_back(current);
  while (samples.size() > options_.max_samples) samples.pop_front();
  // The baseline is the newest sample that is at least one window old; if
  // none is old enough yet, the oldest retained sample serves.
  while (samples.size() >= 2 && samples[1].t_ms <= now - obj.window_ms) {
    samples.pop_front();
  }

  SloStatus& status = tracked->status;
  status.objective = obj;
  const Sample& base = samples.front();
  const uint64_t window_total =
      samples.size() >= 2 ? current.total - base.total : 0;
  const uint64_t window_bad =
      samples.size() >= 2 ? current.bad - base.bad : 0;
  status.window_total = window_total;
  status.window_bad = window_bad;
  if (window_total == 0) {
    // No baseline yet, or an idle window: no verdict to render.
    status.has_data = false;
    status.bad_fraction = 0;
    status.burn_rate = 0;
    status.budget_remaining = 1.0;
    status.state = SloState::kOk;
  } else {
    status.has_data = true;
    status.bad_fraction =
        static_cast<double>(window_bad) / static_cast<double>(window_total);
    status.burn_rate = status.bad_fraction / obj.budget();
    status.budget_remaining = 1.0 - status.burn_rate;
    status.state = status.burn_rate < 1.0 ? SloState::kOk
                   : status.burn_rate < obj.critical_burn
                       ? SloState::kDegraded
                       : SloState::kFailing;
  }

  if (tracked->burn_gauge == nullptr) {
    const std::string base_name = "slim.slo." + obj.id + ".";
    tracked->burn_gauge = registry_->GetGauge(base_name + "burn_x1000");
    tracked->budget_gauge = registry_->GetGauge(base_name + "budget_x1000");
    tracked->state_gauge = registry_->GetGauge(base_name + "state");
  }
  tracked->burn_gauge->Set(
      static_cast<int64_t>(std::llround(status.burn_rate * 1000)));
  tracked->budget_gauge->Set(
      static_cast<int64_t>(std::llround(status.budget_remaining * 1000)));
  tracked->state_gauge->Set(static_cast<int64_t>(status.state));

  if (alerts_ != nullptr) {
    const std::string key = "slo:" + obj.id;
    if (status.state == SloState::kOk) {
      alerts_->Resolve(key);
    } else {
      const std::string message =
          "burn rate " + FormatDouble(status.burn_rate) + "x budget (bad " +
          std::to_string(window_bad) + "/" + std::to_string(window_total) +
          " over " + std::to_string(obj.window_ms) + "ms): " + obj.ToString();
      alerts_->Raise(key, "slo_burn",
                     status.state == SloState::kFailing
                         ? AlertSeverity::kCritical
                         : AlertSeverity::kWarn,
                     message);
    }
  }
}

void SloEngine::Evaluate() {
  util::MutexLock lock(&mu_);
  const int64_t now = NowMs();
  if (evaluations_counter_ == nullptr) {
    evaluations_counter_ = registry_->GetCounter("slim.slo.evaluations");
  }
  evaluations_counter_->Increment();
  ++evaluations_;
  for (Tracked& tracked : objectives_) EvaluateOne(&tracked, now);
}

std::vector<SloStatus> SloEngine::Statuses() const {
  util::MutexLock lock(&mu_);
  std::vector<SloStatus> out;
  out.reserve(objectives_.size());
  for (const Tracked& tracked : objectives_) out.push_back(tracked.status);
  return out;
}

SloState SloEngine::OverallState() const {
  util::MutexLock lock(&mu_);
  SloState worst = SloState::kOk;
  for (const Tracked& tracked : objectives_) {
    if (static_cast<int>(tracked.status.state) > static_cast<int>(worst)) {
      worst = tracked.status.state;
    }
  }
  return worst;
}

size_t SloEngine::objective_count() const {
  util::MutexLock lock(&mu_);
  return objectives_.size();
}

uint64_t SloEngine::evaluations() const {
  util::MutexLock lock(&mu_);
  return evaluations_;
}

std::string SloEngine::ToText() const {
  util::MutexLock lock(&mu_);
  std::string out = "SLO objectives (" + std::to_string(evaluations_) +
                    " evaluations)\n";
  for (const Tracked& tracked : objectives_) {
    const SloStatus& s = tracked.status;
    out += "  [" + std::string(SloStateName(s.state)) + "] " +
           tracked.objective.ToString();
    if (s.has_data) {
      out += "  burn=" + FormatDouble(s.burn_rate) + "x bad=" +
             std::to_string(s.window_bad) + "/" +
             std::to_string(s.window_total);
    } else {
      out += "  (no data)";
    }
    out += "\n";
  }
  return out;
}

std::string SloEngine::ExportJson() const {
  util::MutexLock lock(&mu_);
  SloState worst = SloState::kOk;
  for (const Tracked& tracked : objectives_) {
    if (static_cast<int>(tracked.status.state) > static_cast<int>(worst)) {
      worst = tracked.status.state;
    }
  }
  std::string out = "{\"schema\":\"slim-slo-v1\"";
  out += ",\"evaluations\":" + std::to_string(evaluations_);
  out += ",\"overall\":" + JsonQuote(SloStateName(worst));
  out += ",\"objectives\":[";
  for (size_t i = 0; i < objectives_.size(); ++i) {
    const SloObjective& obj = objectives_[i].objective;
    const SloStatus& s = objectives_[i].status;
    if (i) out += ',';
    out += "{\"id\":" + JsonQuote(obj.id);
    out += ",\"kind\":";
    out += obj.kind == SloKind::kLatency ? "\"latency\"" : "\"error_rate\"";
    out += ",\"spec\":" + JsonQuote(obj.ToString());
    if (obj.kind == SloKind::kLatency) {
      out += ",\"metric\":" + JsonQuote(obj.metric);
      out += ",\"quantile\":" + FormatDouble(obj.quantile);
      out += ",\"threshold_us\":" + std::to_string(obj.threshold_us);
    } else {
      out += ",\"error_counter\":" + JsonQuote(obj.error_counter);
      out += ",\"total_counter\":" + JsonQuote(obj.total_counter);
      out += ",\"max_error_fraction\":" + FormatDouble(obj.max_error_fraction);
    }
    out += ",\"window_ms\":" + std::to_string(obj.window_ms);
    out += ",\"budget\":" + FormatDouble(obj.budget());
    out += ",\"state\":" + JsonQuote(SloStateName(s.state));
    out += ",\"has_data\":";
    out += s.has_data ? "true" : "false";
    out += ",\"window_total\":" + std::to_string(s.window_total);
    out += ",\"window_bad\":" + std::to_string(s.window_bad);
    out += ",\"bad_fraction\":" + FormatDouble(s.bad_fraction);
    out += ",\"burn_rate\":" + FormatDouble(s.burn_rate);
    out += ",\"budget_remaining\":" + FormatDouble(s.budget_remaining);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace slim::obs
