#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <mutex>
#include <vector>

#include "obs/json.h"

namespace slim::obs {

// ---------------------------------------------------------------------------
// Shard-id pool
// ---------------------------------------------------------------------------

namespace internal {

namespace {

struct ShardIdPool {
  // Raw mutex by design: this pool sits *under* every sharded metric write
  // and under the lock profiler itself, so it must not be instrumented.
  // slim-lint: allow(raw-mutex) -- sits under every sharded metric write
  std::mutex mu;
  std::vector<uint32_t> free_ids;
  uint32_t next_id = 0;
};

// Leaky singleton: thread-exit destructors (ShardIdHolder) may run after
// static destruction would have torn a plain global down.
ShardIdPool& Pool() {
  static ShardIdPool* pool = new ShardIdPool();
  return *pool;
}

}  // namespace

uint32_t AcquireShardId() {
  ShardIdPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mu);
  if (!pool.free_ids.empty()) {
    uint32_t id = pool.free_ids.back();
    pool.free_ids.pop_back();
    return id;
  }
  if (pool.next_id < kShards) return pool.next_id++;
  // More than kShards live threads: share the overflow slot (RMW writes).
  return kShards;
}

void ReleaseShardId(uint32_t id) {
  if (id >= kShards) return;  // the overflow id is shared, never recycled
  ShardIdPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mu);
  // The pool mutex also transfers the slot's last value to the next owner:
  // release here happens-before the successor's AcquireShardId, so its
  // first load+store increment starts from the predecessor's final store.
  pool.free_ids.push_back(id);
}

uint64_t HashMetricName(std::string_view name) {
  // 64-bit mix (splitmix-style) over 8-byte chunks; quality matters more
  // than speed here — hashing only runs on memo-cache misses.
  uint64_t h = 0x9e3779b97f4a7c15ull ^ (uint64_t(name.size()) << 1);
  size_t i = 0;
  while (i + 8 <= name.size()) {
    uint64_t chunk;
    std::memcpy(&chunk, name.data() + i, 8);
    h ^= chunk;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    i += 8;
  }
  uint64_t tail = 0;
  if (i < name.size()) {
    std::memcpy(&tail, name.data() + i, name.size() - i);
    h ^= tail;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
  }
  return h;
}

uint64_t NextRegistryEpoch() {
  static std::atomic<uint64_t> epoch{1};
  return epoch.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

void LatencyHistogram::Record(uint64_t value) {
  size_t bucket = kBucketBounds.size();  // overflow by default
  for (size_t i = 0; i < kBucketBounds.size(); ++i) {
    if (value <= kBucketBounds[i]) {
      bucket = i;
      break;
    }
  }
  const size_t shard_index = internal::CurrentShardId();
  Shard& shard = shards_[shard_index];
  if (shard_index < internal::kShards) {
    // Exclusive shard: single writer, plain relaxed load+store updates.
    shard.buckets[bucket].store(
        shard.buckets[bucket].load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    shard.count.store(shard.count.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    shard.sum.store(shard.sum.load(std::memory_order_relaxed) + value,
                    std::memory_order_relaxed);
    if (value > shard.max.load(std::memory_order_relaxed)) {
      shard.max.store(value, std::memory_order_relaxed);
    }
    if (value < shard.min.load(std::memory_order_relaxed)) {
      shard.min.store(value, std::memory_order_relaxed);
    }
  } else {
    // Overflow shard: shared between threads, interlocked updates.
    shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = shard.max.load(std::memory_order_relaxed);
    while (value > seen && !shard.max.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
    seen = shard.min.load(std::memory_order_relaxed);
    while (value < seen && !shard.min.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }
}

uint64_t LatencyHistogram::count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LatencyHistogram::sum() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LatencyHistogram::max() const {
  uint64_t result = 0;
  for (const auto& shard : shards_) {
    result = std::max(result, shard.max.load(std::memory_order_relaxed));
  }
  return result;
}

uint64_t LatencyHistogram::min() const {
  uint64_t result = UINT64_MAX;
  for (const auto& shard : shards_) {
    result = std::min(result, shard.min.load(std::memory_order_relaxed));
  }
  return result == UINT64_MAX ? 0 : result;
}

uint64_t LatencyHistogram::BucketValue(size_t bucket) const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.buckets[bucket].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LatencyHistogram::ApproxPercentile(double p) const {
  uint64_t total = count();
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(p * double(total));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += BucketValue(i);
    if (seen >= rank) {
      return i < kBucketBounds.size() ? kBucketBounds[i] : max();
    }
  }
  return max();
}

void LatencyHistogram::Merge(uint64_t count, uint64_t sum, uint64_t min_value,
                             uint64_t max_value,
                             const std::vector<uint64_t>& buckets) {
  const size_t shard_index = internal::CurrentShardId();
  Shard& shard = shards_[shard_index];
  const bool exclusive = shard_index < internal::kShards;
  for (size_t i = 0; i < kBucketCount && i < buckets.size(); ++i) {
    if (exclusive) {
      shard.buckets[i].store(
          shard.buckets[i].load(std::memory_order_relaxed) + buckets[i],
          std::memory_order_relaxed);
    } else {
      shard.buckets[i].fetch_add(buckets[i], std::memory_order_relaxed);
    }
  }
  if (exclusive) {
    shard.count.store(shard.count.load(std::memory_order_relaxed) + count,
                      std::memory_order_relaxed);
    shard.sum.store(shard.sum.load(std::memory_order_relaxed) + sum,
                    std::memory_order_relaxed);
  } else {
    shard.count.fetch_add(count, std::memory_order_relaxed);
    shard.sum.fetch_add(sum, std::memory_order_relaxed);
  }
  if (count == 0) return;
  if (exclusive) {
    if (max_value > shard.max.load(std::memory_order_relaxed)) {
      shard.max.store(max_value, std::memory_order_relaxed);
    }
    if (min_value < shard.min.load(std::memory_order_relaxed)) {
      shard.min.store(min_value, std::memory_order_relaxed);
    }
  } else {
    uint64_t seen = shard.max.load(std::memory_order_relaxed);
    while (max_value > seen && !shard.max.compare_exchange_weak(
                                   seen, max_value,
                                   std::memory_order_relaxed)) {
    }
    seen = shard.min.load(std::memory_order_relaxed);
    while (min_value < seen && !shard.min.compare_exchange_weak(
                                   seen, min_value,
                                   std::memory_order_relaxed)) {
    }
  }
}

void LatencyHistogram::Reset() {
  for (auto& shard : shards_) {
    for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.max.store(0, std::memory_order_relaxed);
    shard.min.store(UINT64_MAX, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

bool MetricsRegistry::IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' ||
          c == '_')) {
      return false;
    }
  }
  return true;
}

Counter* MetricsRegistry::GetCounterMiss(std::string_view name,
                                         internal::MemoEntry* memo) {
  assert(IsValidMetricName(name) && "metric names must match [a-z0-9._]+");
  const uint64_t hash = internal::HashMetricName(name);
  auto hit = counter_index_.Find(name, hash);
  if (hit.value == nullptr) {
    util::MutexLock lock(&mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(name), std::make_unique<Counter>())
               .first;
      counter_index_.Insert(&it->first, it->second.get());
    }
    hit = {it->second.get(), &it->first};
  }
  *memo = {this, epoch_, hit.key, hit.value};
  return hit.value;
}

Gauge* MetricsRegistry::GetGaugeMiss(std::string_view name,
                                     internal::MemoEntry* memo) {
  assert(IsValidMetricName(name) && "metric names must match [a-z0-9._]+");
  const uint64_t hash = internal::HashMetricName(name);
  auto hit = gauge_index_.Find(name, hash);
  if (hit.value == nullptr) {
    util::MutexLock lock(&mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
      gauge_index_.Insert(&it->first, it->second.get());
    }
    hit = {it->second.get(), &it->first};
  }
  *memo = {this, epoch_, hit.key, hit.value};
  return hit.value;
}

LatencyHistogram* MetricsRegistry::GetHistogramMiss(
    std::string_view name, internal::MemoEntry* memo) {
  assert(IsValidMetricName(name) && "metric names must match [a-z0-9._]+");
  const uint64_t hash = internal::HashMetricName(name);
  auto hit = histogram_index_.Find(name, hash);
  if (hit.value == nullptr) {
    util::MutexLock lock(&mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_
               .emplace(std::string(name),
                        std::make_unique<LatencyHistogram>())
               .first;
      histogram_index_.Insert(&it->first, it->second.get());
    }
    hit = {it->second.get(), &it->first};
  }
  *memo = {this, epoch_, hit.key, hit.value};
  return hit.value;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  util::MutexLock lock(&mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->count();
    hs.sum = h->sum();
    for (size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
      hs.buckets[i] = h->BucketValue(i);
    }
    snap.histograms.emplace_back(name, hs);
  }
  return snap;
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  util::MutexLock lock(&mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

size_t MetricsRegistry::MetricCount() const {
  util::MutexLock lock(&mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string MetricsRegistry::ExportText() const {
  util::MutexLock lock(&mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "counter   " + name + " = " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "gauge     " + name + " = " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "histogram " + name + " count=" + std::to_string(h->count()) +
           " sum=" + std::to_string(h->sum()) +
           " min=" + std::to_string(h->min()) +
           " mean=" + std::to_string(static_cast<uint64_t>(h->mean())) +
           " p50=" + std::to_string(h->ApproxPercentile(0.5)) +
           " p95=" + std::to_string(h->ApproxPercentile(0.95)) +
           " max=" + std::to_string(h->max()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  util::MutexLock lock(&mu_);
  auto quote = [](const std::string& s) { return JsonQuote(s); };
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += quote(name) + ":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += quote(name) + ":" + std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += quote(name) + ":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + std::to_string(h->sum()) +
           ",\"min\":" + std::to_string(h->min()) +
           ",\"max\":" + std::to_string(h->max()) + ",\"buckets\":[";
    for (size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
      if (i) out += ',';
      out += std::to_string(h->BucketValue(i));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

namespace {

// Minimal parser for the subset of JSON ExportJson emits: objects keyed by
// strings, unsigned/negative integers, and flat arrays of integers.
struct JsonCursor {
  std::string_view src;
  size_t i = 0;
  std::string error;

  bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(i);
    }
    return false;
  }
  void SkipSpace() {
    while (i < src.size() &&
           std::isspace(static_cast<unsigned char>(src[i]))) {
      ++i;
    }
  }
  bool Expect(char c) {
    SkipSpace();
    if (i >= src.size() || src[i] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++i;
    return true;
  }
  bool Peek(char c) {
    SkipSpace();
    return i < src.size() && src[i] == c;
  }
  bool ParseString(std::string* out) {
    if (!Expect('"')) return false;
    out->clear();
    while (i < src.size()) {
      char c = src[i++];
      if (c == '\\' && i < src.size()) {
        char e = src[i++];
        switch (e) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            unsigned value = 0;
            for (int d = 0; d < 4; ++d) {
              if (i >= src.size() ||
                  !std::isxdigit(static_cast<unsigned char>(src[i]))) {
                return Fail("bad \\u escape");
              }
              char h = src[i++];
              value = value * 16 +
                      static_cast<unsigned>(h <= '9' ? h - '0'
                                                     : (h | 0x20) - 'a' + 10);
            }
            // Names are ASCII by construction; anything wider is replaced.
            out->push_back(value < 0x80 ? static_cast<char>(value) : '?');
            break;
          }
          default: out->push_back(e);
        }
      } else if (c == '"') {
        return true;
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }
  bool ParseInt(int64_t* out) {
    SkipSpace();
    bool negative = false;
    if (i < src.size() && src[i] == '-') {
      negative = true;
      ++i;
    }
    if (i >= src.size() || !std::isdigit(static_cast<unsigned char>(src[i]))) {
      return Fail("expected an integer");
    }
    uint64_t value = 0;
    while (i < src.size() &&
           std::isdigit(static_cast<unsigned char>(src[i]))) {
      value = value * 10 + static_cast<uint64_t>(src[i] - '0');
      ++i;
    }
    *out = negative ? -static_cast<int64_t>(value)
                    : static_cast<int64_t>(value);
    return true;
  }
  bool ParseUint(uint64_t* out) {
    SkipSpace();
    if (i >= src.size() || !std::isdigit(static_cast<unsigned char>(src[i]))) {
      return Fail("expected an unsigned integer");
    }
    uint64_t value = 0;
    while (i < src.size() &&
           std::isdigit(static_cast<unsigned char>(src[i]))) {
      value = value * 10 + static_cast<uint64_t>(src[i] - '0');
      ++i;
    }
    *out = value;
    return true;
  }
};

}  // namespace

bool MetricsRegistry::ImportJson(std::string_view json, std::string* error) {
  JsonCursor c;
  c.src = json;
  auto fail = [&]() {
    if (error != nullptr) *error = c.error;
    return false;
  };
  // Parse each section into scratch space first so a malformed document
  // leaves the registry untouched.
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  struct HistogramData {
    std::string name;
    uint64_t count = 0, sum = 0, min = 0, max = 0;
    std::vector<uint64_t> buckets;
  };
  std::vector<HistogramData> histograms;

  if (!c.Expect('{')) return fail();
  bool first_section = true;
  while (!c.Peek('}')) {
    if (!first_section && !c.Expect(',')) return fail();
    first_section = false;
    std::string section;
    if (!c.ParseString(&section) || !c.Expect(':') || !c.Expect('{')) {
      return fail();
    }
    bool first_entry = true;
    while (!c.Peek('}')) {
      if (!first_entry && !c.Expect(',')) return fail();
      first_entry = false;
      std::string name;
      if (!c.ParseString(&name) || !c.Expect(':')) return fail();
      if (section == "counters") {
        uint64_t value = 0;
        if (!c.ParseUint(&value)) return fail();
        counters.emplace_back(std::move(name), value);
      } else if (section == "gauges") {
        int64_t value = 0;
        if (!c.ParseInt(&value)) return fail();
        gauges.emplace_back(std::move(name), value);
      } else if (section == "histograms") {
        HistogramData h;
        h.name = std::move(name);
        if (!c.Expect('{')) return fail();
        bool first_field = true;
        while (!c.Peek('}')) {
          if (!first_field && !c.Expect(',')) return fail();
          first_field = false;
          std::string field;
          if (!c.ParseString(&field) || !c.Expect(':')) return fail();
          if (field == "buckets") {
            if (!c.Expect('[')) return fail();
            while (!c.Peek(']')) {
              if (!h.buckets.empty() && !c.Expect(',')) return fail();
              uint64_t value = 0;
              if (!c.ParseUint(&value)) return fail();
              h.buckets.push_back(value);
            }
            if (!c.Expect(']')) return fail();
          } else {
            uint64_t value = 0;
            if (!c.ParseUint(&value)) return fail();
            if (field == "count") h.count = value;
            else if (field == "sum") h.sum = value;
            else if (field == "min") h.min = value;
            else if (field == "max") h.max = value;
            else { c.Fail("unknown histogram field '" + field + "'"); return fail(); }
          }
        }
        if (!c.Expect('}')) return fail();
        histograms.push_back(std::move(h));
      } else {
        c.Fail("unknown section '" + section + "'");
        return fail();
      }
    }
    if (!c.Expect('}')) return fail();
  }
  if (!c.Expect('}')) return fail();

  for (auto& [name, value] : counters) GetCounter(name)->Increment(value);
  for (auto& [name, value] : gauges) GetGauge(name)->Add(value);
  for (auto& h : histograms) {
    GetHistogram(h.name)->Merge(h.count, h.sum, h.min, h.max, h.buckets);
  }
  return true;
}

void MetricsRegistry::Reset() {
  util::MutexLock lock(&mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Reset();
  for (auto& [_, h] : histograms_) h->Reset();
}

MetricsRegistry& DefaultRegistry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace slim::obs
