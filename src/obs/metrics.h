#ifndef SLIM_OBS_METRICS_H_
#define SLIM_OBS_METRICS_H_

/// \file metrics.h
/// \brief Metrics substrate for the layered architecture (paper §6).
///
/// The paper's experiments measure the cost of stacking mark management,
/// TRIM, the SLIM metamodel and generated DMIs (Fig. 5); this registry is
/// the runtime counterpart — lock-cheap counters, gauges and fixed-bucket
/// latency histograms that every layer can write into from its hot path.
///
/// Naming convention: `layer.op.outcome`, e.g. `trim.add.ok`,
/// `mark.resolve.error`, `slimpad.open_scrap.independent`. Histograms
/// append the unit: `trim.view.latency_us`, `trim.view.fanout`.
///
/// ## Concurrency design (bench/bench_metrics_contention.cc measures it)
///
/// Counters and histograms are *sharded*: each holds `kShards` cache-line
/// sized (`alignas(64)`) slots plus one overflow slot. Every thread gets a
/// small dense shard id from a recycling pool on first use; a thread whose
/// id is below `kShards` is the *only* writer of its slot, so it updates
/// with plain relaxed load+store pairs — no interlocked RMW, no cache-line
/// ping-pong between writers. Threads beyond `kShards` concurrent writers
/// share the overflow slot with `fetch_add`. Reads aggregate across slots.
///
/// Exactness: totals observed *while* writers run are approximate in the
/// usual relaxed-atomics sense (a sum over per-slot loads), but totals
/// observed after joining the writers are exact — thread join gives
/// happens-before for each slot's final store, and shard-id recycling is
/// synchronized through the pool's mutex, so a successor thread reusing an
/// id always sees its predecessor's last value. `Reset()` concurrent with
/// writers can lose in-flight increments (same contract as the pre-shard
/// single-atomic `store(0)`).
///
/// Registry lookups (`GetCounter("name")`) are also lock-free on the hot
/// path: a per-thread 8-entry memo cache (epoch-guarded against registry
/// destruction) fronts a lock-free open-addressing name index; the mutex
/// and ordered `std::map` are only touched on first resolution of a name
/// from a given thread. Call sites should still cache the returned pointer
/// (the macros in obs.h do this) — pointers stay valid for the registry's
/// lifetime; Reset() zeroes values but never removes metrics.

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/instrumented_mutex.h"
#include "util/thread_annotations.h"

namespace slim::obs {

/// \name Global kill switch.
/// When disabled, the instrumentation macros and ScopedOpTimer become
/// near-zero cost (one relaxed atomic load, no clock reads). Compile-time
/// removal is the SLIM_ENABLE_OBS cmake option instead.
/// @{
namespace internal {
inline std::atomic<bool> g_disabled{false};
}  // namespace internal

inline bool Disabled() {
  return internal::g_disabled.load(std::memory_order_relaxed);
}
inline void SetDisabled(bool disabled) {
  internal::g_disabled.store(disabled, std::memory_order_relaxed);
}
/// @}

namespace internal {

/// Number of exclusive single-writer slots per sharded metric. Threads
/// beyond this many *concurrent* writers share the overflow slot (ids are
/// recycled at thread exit, so short-lived workers reuse the dense range).
inline constexpr size_t kShards = 16;

/// Shard-id pool (metrics.cc): dense ids handed out smallest-first and
/// recycled on thread exit; ids >= kShards are the shared overflow.
uint32_t AcquireShardId();
void ReleaseShardId(uint32_t id);

struct ShardIdHolder {
  uint32_t id = AcquireShardId();
  ~ShardIdHolder() { ReleaseShardId(id); }
};

/// The calling thread's shard id in [0, kShards]; stable for the thread's
/// lifetime. Values below kShards mean exclusive slot ownership.
inline size_t CurrentShardId() {
  thread_local ShardIdHolder holder;
  return holder.id;
}

uint64_t HashMetricName(std::string_view name);
uint64_t NextRegistryEpoch();

/// One slot of the per-thread Get* memo cache. `interned` points at the
/// registry's own map key, so it is valid exactly as long as the registry;
/// the (registry, epoch) pair is checked first, which proves the registry
/// is alive before `interned` is dereferenced.
struct MemoEntry {
  const void* registry = nullptr;
  uint64_t epoch = 0;
  const std::string* interned = nullptr;
  void* value = nullptr;
};
inline constexpr size_t kMemoSlots = 8;
inline size_t MemoIndex(std::string_view name) {
  const size_t first =
      name.empty() ? 0 : static_cast<unsigned char>(name.front());
  return (name.size() ^ first) & (kMemoSlots - 1);
}

/// \brief Lock-free read index from metric name to metric pointer.
///
/// Open addressing, insert-only. `Find` is wait-free and runs without the
/// registry mutex; `Insert` (and table growth) runs only *under* it. A new
/// entry is published with a release store of its key pointer, so a reader
/// that sees the key also sees the value; a reader racing a grow may miss
/// a just-inserted name and falls back to the locked map lookup. Retired
/// tables are kept until destruction (readers may still hold them); total
/// retired memory is bounded by the live table's size.
template <typename T>
class NameIndex {
 public:
  struct Hit {
    T* value = nullptr;
    const std::string* key = nullptr;
  };

  Hit Find(std::string_view name, uint64_t hash) const {
    const Table* table = table_.load(std::memory_order_acquire);
    if (table == nullptr) return {};
    const size_t mask = table->capacity - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    for (size_t probes = 0; probes <= mask; ++probes, i = (i + 1) & mask) {
      const std::string* key =
          table->slots[i].key.load(std::memory_order_acquire);
      if (key == nullptr) return {};
      if (key->size() == name.size() &&
          std::memcmp(key->data(), name.data(), name.size()) == 0) {
        return {table->slots[i].value, key};
      }
    }
    return {};
  }

  /// Caller holds the registry mutex. `key` must outlive this index (it
  /// points at a map node's key).
  void Insert(const std::string* key, T* value) {
    const Table* table = table_.load(std::memory_order_relaxed);
    if (table == nullptr || (size_ + 1) * 2 > table->capacity) {
      table = Grow(table);
    }
    const size_t mask = table->capacity - 1;
    size_t i = static_cast<size_t>(HashMetricName(*key)) & mask;
    while (table->slots[i].key.load(std::memory_order_relaxed) != nullptr) {
      i = (i + 1) & mask;
    }
    table->slots[i].value = value;
    table->slots[i].key.store(key, std::memory_order_release);
    ++size_;
  }

 private:
  struct Slot {
    std::atomic<const std::string*> key{nullptr};
    T* value = nullptr;
  };
  struct Table {
    explicit Table(size_t cap) : capacity(cap), slots(new Slot[cap]) {}
    size_t capacity;
    std::unique_ptr<Slot[]> slots;
  };

  const Table* Grow(const Table* old) {
    auto fresh = std::make_unique<Table>(old ? old->capacity * 2 : 64);
    if (old != nullptr) {
      const size_t mask = fresh->capacity - 1;
      for (size_t i = 0; i < old->capacity; ++i) {
        const std::string* key =
            old->slots[i].key.load(std::memory_order_relaxed);
        if (key == nullptr) continue;
        size_t j = static_cast<size_t>(HashMetricName(*key)) & mask;
        while (fresh->slots[j].key.load(std::memory_order_relaxed) !=
               nullptr) {
          j = (j + 1) & mask;
        }
        fresh->slots[j].value = old->slots[i].value;
        fresh->slots[j].key.store(key, std::memory_order_relaxed);
      }
    }
    const Table* result = fresh.get();
    tables_.push_back(std::move(fresh));
    table_.store(result, std::memory_order_release);
    return result;
  }

  std::atomic<const Table*> table_{nullptr};
  size_t size_ = 0;                             // writers only, under mu_
  std::vector<std::unique_ptr<Table>> tables_;  // live + retired
};

}  // namespace internal

/// \brief Monotonically increasing event count, sharded per writer thread.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    const size_t shard = internal::CurrentShardId();
    std::atomic<uint64_t>& slot = shards_[shard].value;
    if (shard < internal::kShards) {
      // Exclusive slot: this thread is the only writer, so a plain relaxed
      // load+store pair replaces the interlocked fetch_add.
      slot.store(slot.load(std::memory_order_relaxed) + delta,
                 std::memory_order_relaxed);
    } else {
      slot.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  /// Sum over shards; exact once writers have been joined.
  uint64_t value() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (auto& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  // One cache line per slot: writers on different shards never share a
  // line, and the trailing padding stops false sharing with whatever is
  // allocated next to this metric.
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, internal::kShards + 1> shards_;
};

/// \brief A value that can move both ways (open documents, live triples).
/// Set() semantics don't shard; the single atomic gets its own cache line
/// so adjacent metrics can't false-share with it.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram for latencies (µs) and size distributions
/// (view fan-out, query solutions). Buckets are cumulative-exportable
/// upper bounds; the last bucket is the overflow (+inf). Sharded like
/// Counter: each writer thread owns a full bucket array.
class LatencyHistogram {
 public:
  /// Upper bounds (inclusive) of the finite buckets, in recording units.
  /// The 1-2-5 ladder tops out at 10M (ten seconds when recording µs):
  /// whole-pad rebuilds and 100k-triple persistence runs land in seconds,
  /// and with the old 1M ceiling they all collapsed into the overflow
  /// bucket, blinding ApproxPercentile above p≈0.9 for those series
  /// (tests/obs_test.cc pins these bounds).
  static constexpr std::array<uint64_t, 22> kBucketBounds = {
      1,     2,     5,      10,     25,     50,      100,     250,
      500,   1000,  2500,   5000,   10000,  25000,   50000,   100000,
      250000, 500000, 1000000, 2500000, 5000000, 10000000};
  static constexpr size_t kBucketCount = kBucketBounds.size() + 1;

  void Record(uint64_t value);

  uint64_t count() const;
  uint64_t sum() const;
  /// 0 when empty.
  uint64_t max() const;
  /// 0 when empty.
  uint64_t min() const;
  double mean() const { return count() ? double(sum()) / double(count()) : 0; }

  /// Sum over shards of one bucket's occupancy.
  uint64_t BucketValue(size_t bucket) const;
  /// UINT64_MAX for the overflow bucket.
  static uint64_t BucketUpperBound(size_t bucket) {
    return bucket < kBucketBounds.size() ? kBucketBounds[bucket] : UINT64_MAX;
  }

  /// Approximate percentile (0 < p <= 1): the upper bound of the bucket
  /// holding the p-th recorded value. 0 when empty.
  uint64_t ApproxPercentile(double p) const;

  /// Adds another histogram's observations into this one (JSON import and
  /// per-session roll-ups).
  void Merge(uint64_t count, uint64_t sum, uint64_t min_value,
             uint64_t max_value, const std::vector<uint64_t>& buckets);

  void Reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBucketCount> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
    std::atomic<uint64_t> min{UINT64_MAX};
  };
  std::array<Shard, internal::kShards + 1> shards_;
};

/// \brief Point-in-time copy of one histogram (for exporters that must not
/// hold the registry lock while rendering).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, LatencyHistogram::kBucketCount> buckets{};
};

/// \brief Point-in-time copy of a whole registry, names sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// \brief Named metrics, created on first use. One process-wide default
/// plus per-SlimPadApp / per-workload-session instances.
class MetricsRegistry {
 public:
  MetricsRegistry() : epoch_(internal::NextRegistryEpoch()) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// True when `name` matches `[a-z0-9._]+` — the repository's
  /// `layer.op.outcome` convention, chosen so every name maps cleanly onto
  /// the Prometheus exposition format (obs/prom.h). Get* asserts this in
  /// debug builds so a bad name fails loudly at creation, not at scrape
  /// time.
  static bool IsValidMetricName(std::string_view name);

  /// \name Finds or creates; the pointer stays valid for the registry's
  /// lifetime. Hot path is a per-thread memo hit (no lock, no hashing);
  /// misses go through the lock-free name index, and only the first
  /// resolution of a name takes the registry mutex.
  /// @{
  Counter* GetCounter(std::string_view name) {
    thread_local internal::MemoEntry memo[internal::kMemoSlots];
    internal::MemoEntry& entry = memo[internal::MemoIndex(name)];
    if (entry.registry == this && entry.epoch == epoch_ &&
        entry.interned->size() == name.size() &&
        std::memcmp(entry.interned->data(), name.data(), name.size()) == 0) {
      return static_cast<Counter*>(entry.value);
    }
    return GetCounterMiss(name, &entry);
  }
  Gauge* GetGauge(std::string_view name) {
    thread_local internal::MemoEntry memo[internal::kMemoSlots];
    internal::MemoEntry& entry = memo[internal::MemoIndex(name)];
    if (entry.registry == this && entry.epoch == epoch_ &&
        entry.interned->size() == name.size() &&
        std::memcmp(entry.interned->data(), name.data(), name.size()) == 0) {
      return static_cast<Gauge*>(entry.value);
    }
    return GetGaugeMiss(name, &entry);
  }
  LatencyHistogram* GetHistogram(std::string_view name) {
    thread_local internal::MemoEntry memo[internal::kMemoSlots];
    internal::MemoEntry& entry = memo[internal::MemoIndex(name)];
    if (entry.registry == this && entry.epoch == epoch_ &&
        entry.interned->size() == name.size() &&
        std::memcmp(entry.interned->data(), name.data(), name.size()) == 0) {
      return static_cast<LatencyHistogram*>(entry.value);
    }
    return GetHistogramMiss(name, &entry);
  }
  /// @}

  /// Consistent copy of every metric's current value.
  MetricsSnapshot Snapshot() const;

  /// Current value of a counter, 0 when it was never created.
  uint64_t CounterValue(std::string_view name) const;

  size_t MetricCount() const;

  /// \name Exporters.
  /// `ExportText` is the human report (one line per metric); `ExportJson`
  /// is machine-readable and round-trips through `ImportJson`, which
  /// *merges* the imported values into this registry (so per-session
  /// summaries can be aggregated).
  /// @{
  std::string ExportText() const;
  std::string ExportJson() const;
  bool ImportJson(std::string_view json, std::string* error = nullptr);
  /// @}

  /// Zeroes every metric. Never removes them (call sites cache pointers).
  void Reset();

 private:
  Counter* GetCounterMiss(std::string_view name, internal::MemoEntry* memo);
  Gauge* GetGaugeMiss(std::string_view name, internal::MemoEntry* memo);
  LatencyHistogram* GetHistogramMiss(std::string_view name,
                                     internal::MemoEntry* memo);

  /// Globally unique per registry instance; lets the per-thread memo
  /// caches detect a dead registry (or a new one at the same address)
  /// without dereferencing anything.
  const uint64_t epoch_;
  mutable util::InstrumentedMutex mu_{"obs.metrics.registry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_ GUARDED_BY(mu_);
  // Lock-free read indexes over the maps above; mutated only under mu_,
  // but read without it by design, so GUARDED_BY would be a lie.
  // slim-lint: allow(unguarded) -- lock-free read index
  internal::NameIndex<Counter> counter_index_;
  // slim-lint: allow(unguarded) -- lock-free read index
  internal::NameIndex<Gauge> gauge_index_;
  // slim-lint: allow(unguarded) -- lock-free read index
  internal::NameIndex<LatencyHistogram> histogram_index_;
};

/// Process-wide registry: the sink for all layer instrumentation.
MetricsRegistry& DefaultRegistry();

}  // namespace slim::obs

#endif  // SLIM_OBS_METRICS_H_
