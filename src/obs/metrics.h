#ifndef SLIM_OBS_METRICS_H_
#define SLIM_OBS_METRICS_H_

/// \file metrics.h
/// \brief Metrics substrate for the layered architecture (paper §6).
///
/// The paper's experiments measure the cost of stacking mark management,
/// TRIM, the SLIM metamodel and generated DMIs (Fig. 5); this registry is
/// the runtime counterpart — lock-cheap counters, gauges and fixed-bucket
/// latency histograms that every layer can write into from its hot path.
///
/// Naming convention: `layer.op.outcome`, e.g. `trim.add.ok`,
/// `mark.resolve.error`, `slimpad.open_scrap.independent`. Histograms
/// append the unit: `trim.view.latency_us`, `trim.view.fanout`.
///
/// Individual metric objects are atomics (no lock on the write path); the
/// registry itself takes a mutex only on first lookup of a name, so call
/// sites cache the returned pointer (the macros in obs.h do this). Pointers
/// returned by Get* stay valid for the registry's lifetime — Reset() zeroes
/// values but never removes metrics.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace slim::obs {

/// \name Global kill switch.
/// When disabled, the instrumentation macros and ScopedOpTimer become
/// near-zero cost (one relaxed atomic load, no clock reads). Compile-time
/// removal is the SLIM_ENABLE_OBS cmake option instead.
/// @{
namespace internal {
inline std::atomic<bool> g_disabled{false};
}  // namespace internal

inline bool Disabled() {
  return internal::g_disabled.load(std::memory_order_relaxed);
}
inline void SetDisabled(bool disabled) {
  internal::g_disabled.store(disabled, std::memory_order_relaxed);
}
/// @}

/// \brief Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief A value that can move both ways (open documents, live triples).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram for latencies (µs) and size distributions
/// (view fan-out, query solutions). Buckets are cumulative-exportable
/// upper bounds; the last bucket is the overflow (+inf).
class LatencyHistogram {
 public:
  /// Upper bounds (inclusive) of the finite buckets, in recording units.
  /// The 1-2-5 ladder tops out at 10M (ten seconds when recording µs):
  /// whole-pad rebuilds and 100k-triple persistence runs land in seconds,
  /// and with the old 1M ceiling they all collapsed into the overflow
  /// bucket, blinding ApproxPercentile above p≈0.9 for those series
  /// (tests/obs_test.cc pins these bounds).
  static constexpr std::array<uint64_t, 22> kBucketBounds = {
      1,     2,     5,      10,     25,     50,      100,     250,
      500,   1000,  2500,   5000,   10000,  25000,   50000,   100000,
      250000, 500000, 1000000, 2500000, 5000000, 10000000};
  static constexpr size_t kBucketCount = kBucketBounds.size() + 1;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t min() const;
  double mean() const { return count() ? double(sum()) / double(count()) : 0; }

  uint64_t BucketValue(size_t bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  /// UINT64_MAX for the overflow bucket.
  static uint64_t BucketUpperBound(size_t bucket) {
    return bucket < kBucketBounds.size() ? kBucketBounds[bucket] : UINT64_MAX;
  }

  /// Approximate percentile (0 < p <= 1): the upper bound of the bucket
  /// holding the p-th recorded value. 0 when empty.
  uint64_t ApproxPercentile(double p) const;

  /// Adds another histogram's observations into this one (JSON import and
  /// per-session roll-ups).
  void Merge(uint64_t count, uint64_t sum, uint64_t min_value,
             uint64_t max_value, const std::vector<uint64_t>& buckets);

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
};

/// \brief Point-in-time copy of one histogram (for exporters that must not
/// hold the registry lock while rendering).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, LatencyHistogram::kBucketCount> buckets{};
};

/// \brief Point-in-time copy of a whole registry, names sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// \brief Named metrics, created on first use. One process-wide default
/// plus per-SlimPadApp / per-workload-session instances.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// True when `name` matches `[a-z0-9._]+` — the repository's
  /// `layer.op.outcome` convention, chosen so every name maps cleanly onto
  /// the Prometheus exposition format (obs/prom.h). Get* asserts this in
  /// debug builds so a bad name fails loudly at creation, not at scrape
  /// time.
  static bool IsValidMetricName(std::string_view name);

  /// Finds or creates; the pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Consistent copy of every metric's current value.
  MetricsSnapshot Snapshot() const;

  /// Current value of a counter, 0 when it was never created.
  uint64_t CounterValue(const std::string& name) const;

  size_t MetricCount() const;

  /// \name Exporters.
  /// `ExportText` is the human report (one line per metric); `ExportJson`
  /// is machine-readable and round-trips through `ImportJson`, which
  /// *merges* the imported values into this registry (so per-session
  /// summaries can be aggregated).
  /// @{
  std::string ExportText() const;
  std::string ExportJson() const;
  bool ImportJson(std::string_view json, std::string* error = nullptr);
  /// @}

  /// Zeroes every metric. Never removes them (call sites cache pointers).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      GUARDED_BY(mu_);
};

/// Process-wide registry: the sink for all layer instrumentation.
MetricsRegistry& DefaultRegistry();

}  // namespace slim::obs

#endif  // SLIM_OBS_METRICS_H_
