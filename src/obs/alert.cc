#include "obs/alert.h"

#include <chrono>
#include <utility>

#include "obs/json.h"

namespace slim::obs {

std::string_view AlertSeverityName(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kInfo:
      return "info";
    case AlertSeverity::kWarn:
      return "warn";
    case AlertSeverity::kCritical:
      return "critical";
  }
  return "info";
}

AlertRing::AlertRing(MetricsRegistry* registry, Options options)
    : registry_(registry), options_(options) {}

int64_t AlertRing::NowMs() const {
  if (options_.now_ms != nullptr) return options_.now_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool AlertRing::NoteTransition(KeyState* state, int64_t now) {
  if (now - state->window_start_ms > options_.flap_window_ms) {
    // A calmer (or first) window: start counting afresh. Leaving the
    // flapping state therefore costs one full quiet-ish window, and a
    // persistent flapper emits at most one raise/resolve pair per window.
    state->window_start_ms = now;
    state->transitions = 0;
    state->flapping = false;
  }
  ++state->transitions;
  if (state->transitions > options_.flap_threshold) state->flapping = true;
  return state->flapping;
}

void AlertRing::Append(AlertEvent event) {
  if (options_.capacity == 0) return;
  if (events_.size() == options_.capacity) {
    events_.pop_front();
    ++evicted_;
    if (registry_ != nullptr) {
      registry_->GetCounter("obs.alert.evicted")->Increment();
    }
  }
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
}

bool AlertRing::Raise(std::string_view key, std::string_view kind,
                      AlertSeverity severity, std::string_view message) {
  util::MutexLock lock(&mu_);
  const int64_t now = NowMs();
  auto it = keys_.find(key);
  if (it == keys_.end()) {
    it = keys_.emplace(std::string(key), KeyState{}).first;
  }
  KeyState& state = it->second;

  if (state.active && severity <= state.severity) {
    // Same condition still firing: fold into the active alert.
    ++state.count;
    state.message = std::string(message);
    ++deduped_;
    if (registry_ != nullptr) {
      registry_->GetCounter("obs.alert.deduped")->Increment();
    }
    return false;
  }

  const bool escalation = state.active;
  if (!state.active) {
    state.active = true;
    state.since_ms = now;
    state.count = 0;
    ++active_;
  }
  state.kind = std::string(kind);
  state.severity = severity;
  state.message = std::string(message);
  ++state.count;
  ++raised_;
  if (registry_ != nullptr) {
    registry_->GetCounter("obs.alert.raised")->Increment();
    registry_->GetGauge("obs.alert.active")
        ->Set(static_cast<int64_t>(active_));
  }

  // Escalations are not raise/resolve flips, so they don't feed the flap
  // counter — but an already-flapping key stays quiet for them too.
  const bool suppressed =
      escalation ? (state.flapping &&
                    now - state.window_start_ms <= options_.flap_window_ms)
                 : NoteTransition(&state, now);
  if (suppressed) {
    ++flap_suppressed_;
    if (registry_ != nullptr) {
      registry_->GetCounter("obs.alert.flap_suppressed")->Increment();
    }
    return false;
  }

  AlertEvent event;
  event.t_ms = now;
  event.key = it->first;
  event.kind = state.kind;
  event.severity = severity;
  event.message = state.message;
  event.resolved = false;
  Append(std::move(event));
  return true;
}

bool AlertRing::Resolve(std::string_view key) {
  util::MutexLock lock(&mu_);
  const int64_t now = NowMs();
  auto it = keys_.find(key);
  if (it == keys_.end() || !it->second.active) return false;
  KeyState& state = it->second;
  state.active = false;
  --active_;
  ++resolved_;
  if (registry_ != nullptr) {
    registry_->GetCounter("obs.alert.resolved")->Increment();
    registry_->GetGauge("obs.alert.active")
        ->Set(static_cast<int64_t>(active_));
  }

  if (NoteTransition(&state, now)) {
    ++flap_suppressed_;
    if (registry_ != nullptr) {
      registry_->GetCounter("obs.alert.flap_suppressed")->Increment();
    }
    return false;
  }

  AlertEvent event;
  event.t_ms = now;
  event.key = it->first;
  event.kind = state.kind;
  event.severity = state.severity;
  event.message = state.message;
  event.resolved = true;
  Append(std::move(event));
  return true;
}

bool AlertRing::IsActive(std::string_view key) const {
  util::MutexLock lock(&mu_);
  auto it = keys_.find(key);
  return it != keys_.end() && it->second.active;
}

size_t AlertRing::active_count() const {
  util::MutexLock lock(&mu_);
  return active_;
}

std::vector<AlertEvent> AlertRing::Events() const {
  util::MutexLock lock(&mu_);
  return {events_.begin(), events_.end()};
}

std::vector<ActiveAlert> AlertRing::Active() const {
  util::MutexLock lock(&mu_);
  std::vector<ActiveAlert> out;
  for (const auto& [key, state] : keys_) {
    if (!state.active) continue;
    ActiveAlert alert;
    alert.key = key;
    alert.kind = state.kind;
    alert.severity = state.severity;
    alert.message = state.message;
    alert.since_ms = state.since_ms;
    alert.count = state.count;
    alert.flapping = state.flapping;
    out.push_back(std::move(alert));
  }
  return out;
}

uint64_t AlertRing::raised() const {
  util::MutexLock lock(&mu_);
  return raised_;
}
uint64_t AlertRing::resolved() const {
  util::MutexLock lock(&mu_);
  return resolved_;
}
uint64_t AlertRing::deduped() const {
  util::MutexLock lock(&mu_);
  return deduped_;
}
uint64_t AlertRing::flap_suppressed() const {
  util::MutexLock lock(&mu_);
  return flap_suppressed_;
}
uint64_t AlertRing::evicted() const {
  util::MutexLock lock(&mu_);
  return evicted_;
}

namespace {

void AppendAlertJson(const AlertEvent& event, std::string* out) {
  *out += "{\"seq\":" + std::to_string(event.seq) +
          ",\"t_ms\":" + std::to_string(event.t_ms) +
          ",\"key\":" + JsonQuote(event.key) +
          ",\"kind\":" + JsonQuote(event.kind) + ",\"severity\":" +
          JsonQuote(AlertSeverityName(event.severity)) +
          ",\"message\":" + JsonQuote(event.message) +
          ",\"resolved\":" + (event.resolved ? "true" : "false") + "}";
}

}  // namespace

std::string AlertRing::ExportJson() const {
  util::MutexLock lock(&mu_);
  std::string out = "{\"schema\":\"slim-alerts-v1\"";
  out += ",\"capacity\":" + std::to_string(options_.capacity);
  out += ",\"raised\":" + std::to_string(raised_);
  out += ",\"resolved\":" + std::to_string(resolved_);
  out += ",\"deduped\":" + std::to_string(deduped_);
  out += ",\"flap_suppressed\":" + std::to_string(flap_suppressed_);
  out += ",\"evicted\":" + std::to_string(evicted_);
  out += ",\"active\":[";
  bool first = true;
  for (const auto& [key, state] : keys_) {
    if (!state.active) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"key\":" + JsonQuote(key) +
           ",\"kind\":" + JsonQuote(state.kind) + ",\"severity\":" +
           JsonQuote(AlertSeverityName(state.severity)) +
           ",\"message\":" + JsonQuote(state.message) +
           ",\"since_ms\":" + std::to_string(state.since_ms) +
           ",\"count\":" + std::to_string(state.count) +
           ",\"flapping\":" + (state.flapping ? "true" : "false") + "}";
  }
  out += "],\"events\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i) out += ',';
    AppendAlertJson(events_[i], &out);
  }
  out += "]}";
  return out;
}

void AlertRing::Clear() {
  util::MutexLock lock(&mu_);
  events_.clear();
  keys_.clear();
  active_ = 0;
  if (registry_ != nullptr) registry_->GetGauge("obs.alert.active")->Set(0);
}

}  // namespace slim::obs
