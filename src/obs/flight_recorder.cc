#include "obs/flight_recorder.h"

#include <chrono>
#include <fstream>

#include "obs/json.h"
#include "obs/lock_profiler.h"
#include "obs/metrics.h"

namespace slim::obs {

namespace {

std::atomic<FlightRecorder*> g_installed{nullptr};

// The hook runs on whatever thread constructed the error. A status
// constructed *while recording* one (e.g. the recorder's own dump failing)
// must not recurse.
void StatusHookTrampoline(StatusCode code, std::string_view message) {
  if (Disabled()) return;
  thread_local bool in_hook = false;
  if (in_hook) return;
  in_hook = true;
  if (FlightRecorder* recorder = g_installed.load(std::memory_order_acquire);
      recorder != nullptr) {
    recorder->RecordStatus(code, message);
  }
  in_hook = false;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

FlightRecorder::FlightRecorder(size_t event_capacity, size_t span_capacity)
    : event_capacity_(event_capacity), span_capacity_(span_capacity) {}

FlightRecorder::~FlightRecorder() { Uninstall(); }

bool FlightRecorder::Install() {
  FlightRecorder* expected = nullptr;
  if (!g_installed.compare_exchange_strong(expected, this,
                                           std::memory_order_acq_rel)) {
    return expected == this;  // re-installing self is fine
  }
  DefaultLogger().AddSink(this);
  DefaultTracer().AddSink(this);
  SetStatusErrorHook(&StatusHookTrampoline);
  return true;
}

void FlightRecorder::Uninstall() {
  FlightRecorder* expected = this;
  if (!g_installed.compare_exchange_strong(expected, nullptr,
                                           std::memory_order_acq_rel)) {
    return;
  }
  SetStatusErrorHook(nullptr);
  DefaultLogger().RemoveSink(this);
  DefaultTracer().RemoveSink(this);
}

bool FlightRecorder::installed() const {
  return g_installed.load(std::memory_order_acquire) == this;
}

void FlightRecorder::OnLogEvent(const LogEvent& event) {
  util::MutexLock lock(&mu_);
  if (events_.size() == event_capacity_) events_.pop_front();
  events_.push_back(event);
}

void FlightRecorder::OnSpanEnd(const SpanRecord& span) {
  util::MutexLock lock(&mu_);
  if (spans_.size() == span_capacity_) spans_.pop_front();
  spans_.push_back(span);
}

void FlightRecorder::RecordStatus(StatusCode code, std::string_view message) {
  statuses_.fetch_add(1, std::memory_order_relaxed);
  LogEvent event;
  event.level = LogLevel::kError;
  event.layer = "status";
  event.message = std::string(message);
  event.fields.emplace_back("code", std::string(StatusCodeName(code)));
  event.timestamp_ns = NowNs();
  OnLogEvent(event);
}

std::vector<LogEvent> FlightRecorder::RecentEvents() const {
  util::MutexLock lock(&mu_);
  return {events_.begin(), events_.end()};
}

std::vector<SpanRecord> FlightRecorder::RecentSpans() const {
  util::MutexLock lock(&mu_);
  return {spans_.begin(), spans_.end()};
}

uint64_t FlightRecorder::statuses_recorded() const {
  return statuses_.load(std::memory_order_relaxed);
}

void FlightRecorder::set_dump_path(std::string path) {
  util::MutexLock lock(&mu_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  util::MutexLock lock(&mu_);
  return dump_path_;
}

void FlightRecorder::SetCpuProfile(std::string profile_json) {
  util::MutexLock lock(&mu_);
  cpu_profile_json_ = std::move(profile_json);
}

std::string FlightRecorder::RenderBundle() const {
  std::vector<LogEvent> events = RecentEvents();
  std::vector<SpanRecord> spans = RecentSpans();
  std::string cpu_profile;
  {
    util::MutexLock lock(&mu_);
    cpu_profile = cpu_profile_json_;
  }

  std::string out = "{\"events\":[\n";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i) out += ",\n";
    out += FormatLogEventJson(events[i]);
  }
  out += "\n],\"spans\":[\n";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i) out += ",\n";
    out += FormatSpanJson(spans[i]);
  }
  out += "\n],\"metrics\":";
  out += DefaultRegistry().ExportJson();
  // Lock-contention aggregates since the profiler was installed (empty
  // array when no LockProfiler is active — Sites() is then empty too).
  out += ",\"lock_sites\":";
  out += LockProfiler::Default().ToJson();
  // What the process was doing: a slim-cpuprofile-v1 capture when the
  // watchdog (or anyone) stored one, null otherwise — both shapes are
  // valid JSON, so bundles stay parseable with the profiler disabled.
  out += ",\"cpu_profile\":";
  out += cpu_profile.empty() ? "null" : cpu_profile;
  out += "}\n";
  return out;
}

Status FlightRecorder::DumpDiagnostics(const std::string& path) const {
  // Render before touching the filesystem so no recorder lock is held when
  // an IoError status (which re-enters via the hook) gets constructed.
  std::string bundle = RenderBundle();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for diagnostics dump");
  }
  out << bundle;
  if (!out.good()) {
    return Status::IoError("diagnostics dump to '" + path + "' failed");
  }
  return Status::OK();
}

size_t FlightRecorder::MaybeDumpOnError(std::string_view source) {
  std::string path = dump_path();
  if (path.empty()) return 0;
  LogEvent trigger;
  trigger.level = LogLevel::kInfo;
  trigger.layer = "obs";
  trigger.message = "diagnostics dump triggered";
  trigger.fields.emplace_back("source", std::string(source));
  trigger.timestamp_ns = NowNs();
  OnLogEvent(trigger);
  return DumpDiagnostics(path).ok() ? 1 : 0;
}

void FlightRecorder::Clear() {
  util::MutexLock lock(&mu_);
  events_.clear();
  spans_.clear();
  cpu_profile_json_.clear();
  statuses_.store(0, std::memory_order_relaxed);
}

FlightRecorder& DefaultFlightRecorder() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

}  // namespace slim::obs
