#include "obs/watchdog.h"

#include <algorithm>
#include <utility>

#include "obs/alert.h"
#include "obs/cpu_profiler.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/lock_profiler.h"
#include "obs/obs.h"
#include "obs/slo.h"

namespace slim::obs {

std::string_view HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kFailing:
      return "failing";
  }
  return "ok";
}

std::vector<std::string> HealthReport::failing() const {
  std::vector<std::string> out;
  for (const SubsystemHealth& s : subsystems) {
    if (s.state == HealthState::kFailing) out.push_back(s.name);
  }
  return out;
}

std::string HealthReport::ToJson() const {
  std::string out = "{\"status\":" + JsonQuote(HealthStateName(overall));
  out += ",\"watchdog_running\":";
  out += watchdog_running ? "true" : "false";
  out += ",\"failing\":[";
  bool first = true;
  for (const SubsystemHealth& s : subsystems) {
    if (s.state != HealthState::kFailing) continue;
    if (!first) out += ',';
    first = false;
    out += JsonQuote(s.name);
  }
  out += "],\"subsystems\":[";
  for (size_t i = 0; i < subsystems.size(); ++i) {
    if (i) out += ',';
    out += "{\"name\":" + JsonQuote(subsystems[i].name) +
           ",\"state\":" + JsonQuote(HealthStateName(subsystems[i].state)) +
           ",\"detail\":" + JsonQuote(subsystems[i].detail) + "}";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

Watchdog::Watchdog(MetricsRegistry* registry, Tracer* tracer, Options options)
    : registry_(registry), tracer_(tracer), options_(options) {
  // The watchdog reports its own last check time like any other subsystem
  // (activity-only: a manually driven watchdog must not fail itself).
  self_heartbeat_ = RegisterOnActivity("obs.watchdog");
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::EnsureMetrics() {
  if (metrics_ready_ || registry_ == nullptr) return;
  c_checks_ = registry_->GetCounter("obs.watchdog.checks");
  c_stalled_ = registry_->GetCounter("obs.watchdog.stalled_spans");
  c_misses_ = registry_->GetCounter("obs.watchdog.heartbeat_misses");
  c_long_holds_ = registry_->GetCounter("obs.watchdog.long_holds");
  c_trips_ = registry_->GetCounter("obs.watchdog.trips");
  g_running_ = registry_->GetGauge("obs.watchdog.running");
  g_active_spans_ = registry_->GetGauge("obs.watchdog.active_spans");
  g_subsystems_ = registry_->GetGauge("obs.watchdog.subsystems");
  metrics_ready_ = true;
}

void Watchdog::SetSpanDeadline(std::string_view span_name,
                               int64_t deadline_ms) {
  {
    util::MutexLock lock(&mu_);
    deadlines_[std::string(span_name)] = deadline_ms;
  }
  // An armed watchdog in filter mode must see the new name immediately.
  if (armed() && options_.default_span_deadline_ms == 0) {
    PublishTrackFilter();
  }
}

void Watchdog::PublishTrackFilter() {
  std::vector<std::string> names;
  {
    util::MutexLock lock(&mu_);
    names.reserve(deadlines_.size());
    for (const auto& [name, deadline_ms] : deadlines_) {
      if (deadline_ms > 0) names.push_back(name);
    }
  }
  tracer_->set_track_filter(std::move(names));
}

void Watchdog::FoldBeats(Heartbeat* heartbeat, int64_t now) const {
  const uint64_t beats = heartbeat->beats.load(std::memory_order_relaxed);
  if (beats != heartbeat->beats_seen) {
    heartbeat->beats_seen = beats;
    heartbeat->last_beat_ms.store(now, std::memory_order_relaxed);
  }
}

Watchdog::Heartbeat* Watchdog::RegisterHeartbeat(std::string_view name,
                                                 int64_t max_silence_ms,
                                                 bool periodic) {
  util::MutexLock lock(&mu_);
  auto it = heartbeats_.find(name);
  if (it == heartbeats_.end()) {
    auto heartbeat = std::make_unique<Heartbeat>();
    heartbeat->name = std::string(name);
    heartbeat->registered_ms = NowMs();
    it = heartbeats_.emplace(heartbeat->name, std::move(heartbeat)).first;
  }
  it->second->max_silence_ms = max_silence_ms;
  it->second->periodic = periodic;
  return it->second.get();
}

void Watchdog::set_alerts(AlertRing* alerts) {
  util::MutexLock lock(&mu_);
  alerts_ = alerts;
}

void Watchdog::set_slo(SloEngine* slo) {
  util::MutexLock lock(&mu_);
  slo_ = slo;
}

void Watchdog::set_lock_profiler(const LockProfiler* profiler) {
  util::MutexLock lock(&mu_);
  lock_profiler_ = profiler;
}

void Watchdog::Arm() {
  {
    util::MutexLock lock(&mu_);
    EnsureMetrics();
    if (g_running_ != nullptr) g_running_->Set(1);
  }
  armed_at_ms_.store(NowMs(), std::memory_order_relaxed);
  if (!armed_.exchange(true, std::memory_order_acq_rel)) {
    // A blanket default deadline needs every span registered; named
    // deadlines use the cheap filtered fast path.
    if (options_.default_span_deadline_ms != 0) {
      tracer_->set_track_active(true);
    } else {
      PublishTrackFilter();
    }
  }
}

void Watchdog::Disarm() {
  if (armed_.exchange(false, std::memory_order_acq_rel)) {
    if (options_.default_span_deadline_ms != 0) {
      tracer_->set_track_active(false);
    } else {
      tracer_->set_track_filter({});
    }
  }
  util::MutexLock lock(&mu_);
  if (g_running_ != nullptr) g_running_->Set(0);
  // Resolve anything still firing so a re-arm starts from a clean slate.
  if (alerts_ != nullptr) {
    for (const auto& [name, age] : stalled_) alerts_->Resolve("stall:" + name);
    for (const auto& [name, silence] : missed_) {
      alerts_->Resolve("heartbeat:" + name);
    }
  }
  stalled_.clear();
  missed_.clear();
}

size_t Watchdog::CheckSpansAt(uint64_t now_ns) {
  std::vector<ActiveSpanInfo> spans = tracer_->ActiveSpans();
  size_t stalled_spans = 0;
  size_t fresh_trips = 0;
  {
    util::MutexLock lock(&mu_);
    EnsureMetrics();
    if (g_active_spans_ != nullptr) {
      g_active_spans_->Set(static_cast<int64_t>(spans.size()));
    }
    // Worst current overage per span name. Strictly past the deadline only:
    // a span whose age equals the deadline exactly has not missed it yet.
    std::map<std::string, int64_t> stalled_now;
    for (const ActiveSpanInfo& span : spans) {
      int64_t deadline_ms = options_.default_span_deadline_ms;
      auto it = deadlines_.find(span.name);
      if (it != deadlines_.end()) deadline_ms = it->second;
      if (deadline_ms <= 0 || now_ns <= span.start_ns) continue;
      const uint64_t age_ns = now_ns - span.start_ns;
      if (age_ns > static_cast<uint64_t>(deadline_ms) * 1'000'000u) {
        ++stalled_spans;
        const int64_t age_ms = static_cast<int64_t>(age_ns / 1'000'000u);
        auto [worst, inserted] = stalled_now.emplace(span.name, age_ms);
        if (!inserted) worst->second = std::max(worst->second, age_ms);
      }
    }
    for (const auto& [name, age_ms] : stalled_now) {
      const bool fresh = stalled_.find(name) == stalled_.end();
      stalled_[name] = static_cast<uint64_t>(age_ms);
      if (!fresh) continue;
      ++fresh_trips;
      if (c_stalled_ != nullptr) c_stalled_->Increment();
      if (c_trips_ != nullptr) c_trips_->Increment();
      if (alerts_ != nullptr) {
        auto it = deadlines_.find(name);
        const int64_t deadline_ms = it != deadlines_.end()
                                        ? it->second
                                        : options_.default_span_deadline_ms;
        alerts_->Raise("stall:" + name, "stall", AlertSeverity::kCritical,
                       "span '" + name + "' open for " +
                           std::to_string(age_ms) + "ms (deadline " +
                           std::to_string(deadline_ms) + "ms)");
      }
      SLIM_OBS_LOG(kError, "obs", "watchdog: stalled span",
                   {{"span", name}, {"age_ms", std::to_string(age_ms)}});
    }
    for (auto it = stalled_.begin(); it != stalled_.end();) {
      if (stalled_now.find(it->first) == stalled_now.end()) {
        if (alerts_ != nullptr) alerts_->Resolve("stall:" + it->first);
        it = stalled_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // The capture blocks and the dump takes the flight recorder's lock, so
  // both run after mu_ is released; the profile is stored first so the
  // dumped bundle embeds it.
  if (fresh_trips > 0) {
    CaptureTripProfile();
    for (size_t i = 0; i < fresh_trips; ++i) {
      SLIM_OBS_DUMP_ON_ERROR("obs.watchdog.stall");
    }
  }
  return stalled_spans;
}

void Watchdog::CaptureTripProfile() {
  CpuProfiler* profiler = cpu_profiler_.load(std::memory_order_acquire);
  if (profiler == nullptr || options_.trip_profile_ms <= 0) return;
  const CpuProfile profile = profiler->CaptureWindow(
      static_cast<uint64_t>(options_.trip_profile_ms));
  DefaultFlightRecorder().SetCpuProfile(profile.ToJson());
}

size_t Watchdog::CheckHeartbeats(int64_t now) {
  size_t fresh_misses = 0;
  for (const auto& [name, heartbeat] : heartbeats_) {
    FoldBeats(heartbeat.get(), now);
    if (!heartbeat->periodic) continue;
    const int64_t base = std::max(
        heartbeat->last_beat_ms.load(std::memory_order_relaxed),
        std::max(heartbeat->registered_ms,
                 armed_at_ms_.load(std::memory_order_relaxed)));
    const int64_t silence = now - base;
    if (silence > heartbeat->max_silence_ms) {
      const bool fresh = missed_.find(name) == missed_.end();
      missed_[name] = silence;
      if (!fresh) continue;
      ++fresh_misses;
      if (c_misses_ != nullptr) c_misses_->Increment();
      if (c_trips_ != nullptr) c_trips_->Increment();
      if (alerts_ != nullptr) {
        alerts_->Raise("heartbeat:" + name, "heartbeat",
                       AlertSeverity::kCritical,
                       "subsystem '" + name + "' silent for " +
                           std::to_string(silence) + "ms (limit " +
                           std::to_string(heartbeat->max_silence_ms) + "ms)");
      }
      SLIM_OBS_LOG(kError, "obs", "watchdog: heartbeat lost",
                   {{"subsystem", name},
                    {"silence_ms", std::to_string(silence)}});
    } else if (missed_.find(name) != missed_.end()) {
      missed_.erase(name);
      if (alerts_ != nullptr) alerts_->Resolve("heartbeat:" + name);
    }
  }
  // The dump (and the trip profile before it) runs in CheckOnce after mu_
  // is released.
  return fresh_misses;
}

void Watchdog::CheckLocks() {
  if (lock_profiler_ == nullptr || options_.long_hold_threshold_ns == 0) {
    return;
  }
  for (const LockProfiler::SiteStats& site : lock_profiler_->Sites()) {
    uint64_t& alerted = hold_alerted_[site.site];
    const std::string name = site.site != nullptr ? site.site : "?";
    if (site.hold_ns_max > options_.long_hold_threshold_ns &&
        site.hold_ns_max > alerted) {
      alerted = site.hold_ns_max;
      if (c_long_holds_ != nullptr) c_long_holds_->Increment();
      if (alerts_ != nullptr) {
        alerts_->Raise("lock_hold:" + name, "lock_hold", AlertSeverity::kWarn,
                       "lock '" + name + "' held for " +
                           std::to_string(site.hold_ns_max / 1000) +
                           "us (threshold " +
                           std::to_string(options_.long_hold_threshold_ns /
                                          1000) +
                           "us)");
      }
    } else if (alerted != 0 && site.hold_ns_max <= alerted &&
               alerts_ != nullptr) {
      // No new high-water mark since the alert: the hold was an episode,
      // not a condition — clear it.
      alerts_->Resolve("lock_hold:" + name);
    }
  }
}

void Watchdog::CheckOnce() {
  const int64_t now = NowMs();
  checks_.fetch_add(1, std::memory_order_relaxed);
  CheckSpansAt(tracer_->now_ns());
  SloEngine* slo = nullptr;
  Heartbeat* self = nullptr;
  size_t fresh_misses = 0;
  {
    util::MutexLock lock(&mu_);
    EnsureMetrics();
    if (c_checks_ != nullptr) c_checks_->Increment();
    if (g_subsystems_ != nullptr) {
      g_subsystems_->Set(static_cast<int64_t>(heartbeats_.size()));
    }
    fresh_misses = CheckHeartbeats(now);
    CheckLocks();
    slo = slo_;
    self = self_heartbeat_;
  }
  // Outside mu_: the trip profile blocks for its window and the SLO engine
  // takes its own lock (and may raise alerts).
  if (fresh_misses > 0) {
    CaptureTripProfile();
    for (size_t i = 0; i < fresh_misses; ++i) {
      SLIM_OBS_DUMP_ON_ERROR("obs.watchdog.heartbeat");
    }
  }
  if (slo != nullptr) slo->Evaluate();
  Beat(self);
}

HealthReport Watchdog::Health() const {
  HealthReport report;
  report.watchdog_running = armed();
  std::vector<SloStatus> slo_statuses;
  {
    util::MutexLock lock(&mu_);
    const int64_t now = NowMs();
    const int64_t armed_at = armed_at_ms_.load(std::memory_order_relaxed);
    for (const auto& [name, heartbeat] : heartbeats_) {
      SubsystemHealth sub;
      sub.name = name;
      FoldBeats(heartbeat.get(), now);
      const int64_t last = heartbeat->last_beat_ms.load(
          std::memory_order_relaxed);
      if (heartbeat->periodic) {
        if (!armed()) {
          sub.state = HealthState::kOk;
          sub.detail = "watchdog not armed";
        } else {
          const int64_t base =
              std::max(last, std::max(heartbeat->registered_ms, armed_at));
          const int64_t silence = now - base;
          sub.state = silence > heartbeat->max_silence_ms
                          ? HealthState::kFailing
                          : HealthState::kOk;
          sub.detail = "last beat " + std::to_string(silence) +
                       "ms ago (limit " +
                       std::to_string(heartbeat->max_silence_ms) + "ms)";
        }
      } else {
        sub.state = HealthState::kOk;
        sub.detail = last < 0 ? "no activity recorded"
                              : "last activity " + std::to_string(now - last) +
                                    "ms ago";
      }
      report.subsystems.push_back(std::move(sub));
    }
    for (const auto& [name, age_ms] : stalled_) {
      SubsystemHealth sub;
      sub.name = "span:" + name;
      sub.state = HealthState::kFailing;
      sub.detail = "stalled for " + std::to_string(age_ms) + "ms";
      report.subsystems.push_back(std::move(sub));
    }
    if (slo_ != nullptr) slo_statuses = slo_->Statuses();
  }
  for (const SloStatus& status : slo_statuses) {
    SubsystemHealth sub;
    sub.name = "slo:" + status.objective.id;
    sub.state = static_cast<HealthState>(status.state);
    sub.detail = status.has_data
                     ? "burn rate " + std::to_string(status.burn_rate)
                     : "no data";
    report.subsystems.push_back(std::move(sub));
  }
  for (const SubsystemHealth& sub : report.subsystems) {
    if (static_cast<int>(sub.state) > static_cast<int>(report.overall)) {
      report.overall = sub.state;
    }
  }
  return report;
}

Status Watchdog::Start() {
  if (running_) return Status::FailedPrecondition("watchdog already running");
  Arm();
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { Run(); });
  running_ = true;
  return Status::OK();
}

void Watchdog::Stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  thread_.join();
  running_ = false;
  Disarm();
}

void Watchdog::Run() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stop_requested_) {
    lock.unlock();
    CheckOnce();
    lock.lock();
    if (stop_requested_) break;
    wake_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.poll_interval_ms),
                      [this] { return stop_requested_; });
  }
}

Watchdog& Watchdog::Default() {
  static Watchdog* watchdog =
      new Watchdog(&DefaultRegistry(), &DefaultTracer());
  return *watchdog;
}

}  // namespace slim::obs
