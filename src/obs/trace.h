#ifndef SLIM_OBS_TRACE_H_
#define SLIM_OBS_TRACE_H_

/// \file trace.h
/// \brief Scoped tracing across the four layers (paper Fig. 5).
///
/// A `Span` is an RAII scope: it captures a name, optional tags, its
/// parent (the innermost span still open on the tracer) and a
/// monotonic-clock duration. When the scope ends the completed record is
/// delivered to every registered `TraceSink` — a ring buffer for tests and
/// interactive dumps, a JSONL file for offline analysis.
///
/// Starting a span is free when no sink is attached (or obs is disabled):
/// `StartSpan` returns an inert span and never reads the clock. The tracer
/// is thread-safe: ids and counts are atomics, the sink list is
/// mutex-guarded (delivery holds the tracer's mutex, so finished records
/// from any thread serialize), and nesting bookkeeping is kept on a
/// per-thread stack — a span's parent is the innermost span opened *on the
/// same thread*, so concurrent traces never entangle. A span must end on
/// the thread that started it for its parent linkage to be recorded;
/// ending elsewhere is safe but drops the nesting entry.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/instrumented_mutex.h"
#include "util/thread_annotations.h"

namespace slim::obs {

class Tracer;

/// \brief One finished span, as delivered to sinks.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 for root spans.
  int depth = 0;           ///< 0 for root spans.
  std::string name;
  std::vector<std::pair<std::string, std::string>> tags;
  uint64_t start_ns = 0;  ///< Monotonic, relative to the tracer's epoch.
  uint64_t duration_ns = 0;
};

/// One JSON object (no trailing newline) for a span; shared by the JSONL
/// sink and the flight-recorder bundle. Names and tags are fully escaped
/// (quotes, backslashes, control characters).
std::string FormatSpanJson(const SpanRecord& span);

/// \brief Receives finished spans. Implementations must tolerate delivery
/// from any code path that holds a span (no re-entrant tracing).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnSpanEnd(const SpanRecord& span) = 0;
};

/// \brief Keeps the most recent `capacity` spans in memory.
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(size_t capacity = 1024) : capacity_(capacity) {}

  void OnSpanEnd(const SpanRecord& span) override;

  /// Retained spans, oldest first (in end order).
  std::vector<SpanRecord> Spans() const;
  size_t size() const;
  /// Spans evicted because the buffer was full.
  size_t dropped() const;
  void Clear();

 private:
  mutable util::InstrumentedMutex mu_{"obs.trace.ring"};
  size_t capacity_ GUARDED_BY(mu_);
  std::deque<SpanRecord> spans_ GUARDED_BY(mu_);
  size_t dropped_ GUARDED_BY(mu_) = 0;
};

/// \brief Appends one JSON object per span to a file (JSONL).
class JsonlFileSink : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);

  /// False when the file could not be opened (spans are then discarded).
  bool ok() const { return out_.is_open() && out_.good(); }

  void OnSpanEnd(const SpanRecord& span) override;

 private:
  util::InstrumentedMutex mu_{"obs.trace.jsonl"};
  std::ofstream out_ GUARDED_BY(mu_);
};

/// \brief One lock-free registration slot for the deadline-filtered
/// active-span fast path. Single claimer (the owning thread); the watchdog
/// scans slots from any thread. Writers publish `name`/`start_ns` before
/// the release-store of `id`; ids are never reused, so a scanner that
/// re-reads the same nonzero id saw a consistent snapshot.
struct ActiveSlot {
  std::atomic<uint64_t> id{0};  ///< 0 = free.
  std::atomic<uint64_t> start_ns{0};
  std::atomic<const std::string*> name{nullptr};  ///< Interned in a filter.
};

/// \brief A thread's block of active-span slots. Sized for realistic span
/// nesting; deeper concurrent tracked spans fall back to the shared map.
struct ActiveSlab {
  static constexpr size_t kSlots = 16;
  ActiveSlot slots[kSlots];
};

/// \brief One thread's span-nesting stack, published as interned name ids
/// for asynchronous sampling (obs/cpu_profiler.h). The owning thread is the
/// only writer; samplers — including a SIGPROF handler interrupting the
/// owner — read it lock-free via Snapshot(). Nothing here ever allocates,
/// so the structure is async-signal-safe on both sides.
///
/// Publish protocol: a push stores the frame id (relaxed), then the new
/// depth (release); a pop only lowers `depth`. `depth` may logically exceed
/// kMaxDepth (frames beyond it are not recorded, but pops stay balanced);
/// readers clamp. A reader that races a pop+push can see one frame id from
/// the newer span — a single-sample mis-attribution accepted as sampling
/// noise rather than paying for a sequence counter on the hot path.
struct SpanStack {
  static constexpr uint32_t kMaxDepth = 64;
  std::atomic<uint32_t> depth{0};
  std::atomic<uint32_t> frames[kMaxDepth] = {};

  /// Copies up to kMaxDepth frame ids (outermost first) into `out` and
  /// returns the count. Async-signal-safe: atomics only, no allocation.
  uint32_t Snapshot(uint32_t* out) const {
    uint32_t d = depth.load(std::memory_order_acquire);
    if (d == 0) return 0;
    uint32_t n = d < kMaxDepth ? d : kMaxDepth;
    for (uint32_t i = 0; i < n; ++i) {
      out[i] = frames[i].load(std::memory_order_relaxed);
    }
    // Re-read: frames below min(d, d2) were published before our first
    // acquire and not popped since, so they are a coherent prefix.
    const uint32_t d2 = depth.load(std::memory_order_acquire);
    if (d2 < n) n = d2;
    return n;
  }
};

/// \brief RAII span scope. Default-constructed (or moved-from) spans are
/// inert: every operation is a no-op.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  ~Span() { End(); }

  bool active() const { return tracer_ != nullptr; }
  uint64_t id() const { return record_.id; }

  void AddTag(std::string key, std::string value) {
    if (active()) record_.tags.emplace_back(std::move(key), std::move(value));
  }

  /// Ends the span early (idempotent; the destructor calls this).
  void End();

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanRecord record,
       std::chrono::steady_clock::time_point start)
      : tracer_(tracer), record_(std::move(record)), start_(start) {}

  Tracer* tracer_ = nullptr;
  SpanRecord record_;
  std::chrono::steady_clock::time_point start_;
  /// Fast-path registration; cleared (before any record work) on End().
  ActiveSlot* slot_ = nullptr;
  /// Registered in the tracer's shared active map (track-everything mode,
  /// or slot overflow); End() erases the entry.
  bool tracked_in_map_ = false;
  /// Tracked-only span: no record bookkeeping, no sink delivery — End()
  /// just releases the slot/map entry and counts the finish.
  bool lightweight_ = false;
  /// Stack-only span: exists solely so the sampling profiler sees the
  /// frame; End() pops the stack and does nothing else (no id, no clock).
  bool stack_only_ = false;
  /// The owning thread's published nesting stack, when stack tracking was
  /// on at StartSpan; End() restores `stack_prev_depth_` (on the owning
  /// thread only — ending elsewhere leaves the pop to an enclosing span).
  SpanStack* stack_ = nullptr;
  uint32_t stack_prev_depth_ = 0;
};

/// \brief One still-open span, as reported by Tracer::ActiveSpans(). The
/// watchdog (obs/watchdog.h) compares `start_ns` against per-name deadlines
/// to detect stalled operations.
struct ActiveSpanInfo {
  uint64_t id = 0;
  std::string name;
  uint64_t start_ns = 0;  ///< Monotonic, relative to the tracer's epoch.
};

namespace internal {
/// Process-unique tracer ids for the thread-local slab caches.
uint64_t NextTracerEpoch();

/// The calling thread's most recently used span stack, re-published on
/// every stack-tracked StartSpan. A SIGPROF handler (cpu_profiler.cc)
/// reads it to sample the interrupted thread without any lookup that could
/// allocate or lock; it validates `tracer_epoch` against the profiled
/// tracer before dereferencing. Constant-initialized, so touching it from
/// a handler never runs a dynamic TLS constructor.
struct SigStackRef {
  std::atomic<uint64_t> tracer_epoch{0};
  std::atomic<SpanStack*> stack{nullptr};
};
extern thread_local SigStackRef t_sig_stack;
}  // namespace internal

/// \brief Hands out spans and fans finished records out to sinks.
class Tracer {
 public:
  Tracer()
      : epoch_(std::chrono::steady_clock::now()),
        tracer_epoch_(internal::NextTracerEpoch()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Sinks are not owned and must outlive their registration.
  void AddSink(TraceSink* sink) EXCLUDES(mu_);
  void RemoveSink(TraceSink* sink) EXCLUDES(mu_);
  size_t sink_count() const {
    return sink_count_.load(std::memory_order_acquire);
  }

  /// True when spans are actually recorded (a sink is attached, the
  /// active-span registry is tracking — by filter or wholesale — or the
  /// sampling profiler has stack tracking on).
  bool active() const {
    return (sink_count() != 0 || tracking_active() || stack_tracking() ||
            track_filter_.load(std::memory_order_relaxed) != nullptr) &&
           !Disabled();
  }

  /// Starts a span nested under the innermost span open on this thread.
  /// Inert (and free) when `active()` is false.
  Span StartSpan(std::string name);

  /// Spans delivered to sinks so far.
  uint64_t finished_spans() const {
    return finished_.load(std::memory_order_relaxed);
  }

  /// \name Active-span registry (stall detection).
  /// While tracking is enabled every started span is registered until it
  /// finishes, so a watchdog can see operations that are *still running* —
  /// sinks only ever see completed spans. Off by default: the registry adds
  /// one map insert+erase (under its own mutex) per span.
  /// @{
  void set_track_active(bool enabled) EXCLUDES(active_mu_);
  bool tracking_active() const {
    return track_active_.load(std::memory_order_relaxed);
  }
  /// Tracks only spans whose name is in `names` — the cheap production
  /// mode (the watchdog publishes its deadline names). A filtered span
  /// with no sink attached skips record bookkeeping entirely: one id
  /// fetch_add, one clock read and a lock-free slot claim per span.
  /// Empty `names` clears the filter. Independent of set_track_active
  /// (track-everything wins when both are on). Old filters stay allocated
  /// until the tracer is destroyed, so interned name pointers held by
  /// still-open spans never dangle.
  void set_track_filter(std::vector<std::string> names) EXCLUDES(active_mu_);
  bool has_track_filter() const {
    return track_filter_.load(std::memory_order_relaxed) != nullptr;
  }
  /// Open spans, ordered by id (i.e. start order). Empty when tracking is
  /// disabled.
  std::vector<ActiveSpanInfo> ActiveSpans() const EXCLUDES(active_mu_);
  size_t active_span_count() const EXCLUDES(active_mu_);
  /// The tracer's clock now, on the same epoch as SpanRecord/ActiveSpanInfo
  /// `start_ns` — `now_ns() - info.start_ns` is a span's current age.
  uint64_t now_ns() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }
  /// @}

  /// \name Span-stack publication (sampling profiler).
  /// While stack tracking is on, every span pushes its interned name id
  /// onto the calling thread's SpanStack at StartSpan and pops at End — a
  /// span that would otherwise be inert takes the stack-only fast path (no
  /// id fetch_add, no clock read, no allocation after the name is interned
  /// and the thread's stack exists). CpuProfiler::Start enables this.
  /// @{
  void set_stack_tracking(bool enabled) {
    stack_tracking_.store(enabled, std::memory_order_relaxed);
  }
  bool stack_tracking() const {
    return stack_tracking_.load(std::memory_order_relaxed);
  }
  /// Stable id (>= 1) for `name`; the same name always maps to the same id
  /// for this tracer's lifetime. Callers on the hot path go through the
  /// thread-local memo inside StartSpan instead.
  uint32_t InternSpanName(const std::string& name) EXCLUDES(names_mu_);
  /// Interned names indexed by id - 1 (id 0 is reserved/invalid).
  std::vector<std::string> SpanNameTable() const EXCLUDES(names_mu_);
  /// Every thread stack registered so far (threads that started at least
  /// one stack-tracked span). Pointers stay valid for the tracer's
  /// lifetime; the sampler re-fetches to pick up new threads.
  std::vector<const SpanStack*> StackRegistry() const EXCLUDES(active_mu_);
  size_t stack_count() const {
    return stack_count_.load(std::memory_order_acquire);
  }
  /// This tracer's process-unique identity (never reused), used to key the
  /// thread-local caches and the SIGPROF publication check.
  uint64_t tracer_epoch() const { return tracer_epoch_; }
  /// @}

 private:
  friend class Span;
  void FinishSpan(SpanRecord* record,
                  std::chrono::steady_clock::time_point start)
      EXCLUDES(mu_, active_mu_);
  void NoteFinished() {
    finished_.fetch_add(1, std::memory_order_relaxed);
  }
  void UnregisterActive(uint64_t id) EXCLUDES(active_mu_);

  /// Sorted unique span names whose spans the registry tracks; the vector
  /// is immutable once published, so `&names[i]` intern pointers are
  /// stable for the snapshot's lifetime.
  struct TrackFilter {
    std::vector<std::string> names;
    const std::string* Find(const std::string& name) const;
  };
  /// The calling thread's slab for this tracer (created and registered on
  /// first use).
  ActiveSlab* LocalSlab() EXCLUDES(active_mu_);
  /// Registers an active span: lock-free slot when the thread's slab has
  /// room, shared map otherwise (returns nullptr; caller flags the span
  /// as map-tracked).
  ActiveSlot* ClaimSlot(uint64_t id, const std::string* name,
                        uint64_t start_ns) EXCLUDES(active_mu_);
  void ReleaseSlot(ActiveSlot* slot, uint64_t id) {
    uint64_t expected = id;
    slot->id.compare_exchange_strong(expected, 0, std::memory_order_release,
                                     std::memory_order_relaxed);
  }
  /// The calling thread's span stack for this tracer, creating and
  /// registering it on first use (mirrors LocalSlab).
  SpanStack* LocalStack() EXCLUDES(active_mu_);
  /// The calling thread's stack if it already exists, else nullptr (never
  /// creates — End() uses this to detect cross-thread ends).
  SpanStack* CurrentStack() const;
  /// Memoized InternSpanName for the hot path (thread-local cache).
  uint32_t InternSpanNameCached(const std::string& name);
  static uint32_t PushStack(SpanStack* stack, uint32_t name_id) {
    const uint32_t d = stack->depth.load(std::memory_order_relaxed);
    if (d < SpanStack::kMaxDepth) {
      stack->frames[d].store(name_id, std::memory_order_relaxed);
    }
    stack->depth.store(d + 1, std::memory_order_release);
    return d;
  }
  void PopStack(SpanStack* stack, uint32_t prev_depth) const {
    if (CurrentStack() != stack) return;  // ended on a different thread
    const uint32_t d = stack->depth.load(std::memory_order_relaxed);
    // min(): an outer span that ended out of order already lowered depth
    // past us; never raise it back over a stale frame.
    stack->depth.store(prev_depth < d ? prev_depth : d,
                       std::memory_order_release);
  }

  mutable util::InstrumentedMutex mu_{"obs.trace.sinks"};
  std::vector<TraceSink*> sinks_ GUARDED_BY(mu_);
  /// Mirrors sinks_.size() so the active() fast path never locks.
  std::atomic<size_t> sink_count_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> finished_{0};
  const std::chrono::steady_clock::time_point epoch_;
  /// Distinguishes this tracer from a later one reusing its address, so
  /// thread-local slab caches can never match a destroyed tracer.
  const uint64_t tracer_epoch_;

  std::atomic<bool> track_active_{false};
  std::atomic<const TrackFilter*> track_filter_{nullptr};
  mutable util::InstrumentedMutex active_mu_{"obs.trace.active"};
  std::map<uint64_t, ActiveSpanInfo> active_ GUARDED_BY(active_mu_);
  /// All published filters, kept until destruction (see set_track_filter).
  std::vector<std::unique_ptr<const TrackFilter>> filters_
      GUARDED_BY(active_mu_);
  std::vector<std::unique_ptr<ActiveSlab>> slabs_ GUARDED_BY(active_mu_);

  std::atomic<bool> stack_tracking_{false};
  /// Mirrors stacks_.size() so samplers can poll for new threads cheaply.
  std::atomic<size_t> stack_count_{0};
  std::vector<std::unique_ptr<SpanStack>> stacks_ GUARDED_BY(active_mu_);
  /// Span-name intern table. Ids are dense from 1; names_by_id_ points at
  /// the map's own keys (std::map nodes are stable), so SpanNameTable()
  /// and the memo cache stay valid for the tracer's lifetime.
  mutable util::InstrumentedMutex names_mu_{"obs.trace.names"};
  std::map<std::string, uint32_t> name_ids_ GUARDED_BY(names_mu_);
  std::vector<const std::string*> names_by_id_ GUARDED_BY(names_mu_);
};

/// Process-wide tracer used by the SLIM_OBS_SPAN instrumentation macro.
Tracer& DefaultTracer();

}  // namespace slim::obs

#endif  // SLIM_OBS_TRACE_H_
