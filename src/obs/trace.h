#ifndef SLIM_OBS_TRACE_H_
#define SLIM_OBS_TRACE_H_

/// \file trace.h
/// \brief Scoped tracing across the four layers (paper Fig. 5).
///
/// A `Span` is an RAII scope: it captures a name, optional tags, its
/// parent (the innermost span still open on the tracer) and a
/// monotonic-clock duration. When the scope ends the completed record is
/// delivered to every registered `TraceSink` — a ring buffer for tests and
/// interactive dumps, a JSONL file for offline analysis.
///
/// Starting a span is free when no sink is attached (or obs is disabled):
/// `StartSpan` returns an inert span and never reads the clock. The tracer
/// is thread-safe: ids and counts are atomics, the sink list is
/// mutex-guarded (delivery holds the tracer's mutex, so finished records
/// from any thread serialize), and nesting bookkeeping is kept on a
/// per-thread stack — a span's parent is the innermost span opened *on the
/// same thread*, so concurrent traces never entangle. A span must end on
/// the thread that started it for its parent linkage to be recorded;
/// ending elsewhere is safe but drops the nesting entry.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/instrumented_mutex.h"
#include "util/thread_annotations.h"

namespace slim::obs {

class Tracer;

/// \brief One finished span, as delivered to sinks.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 for root spans.
  int depth = 0;           ///< 0 for root spans.
  std::string name;
  std::vector<std::pair<std::string, std::string>> tags;
  uint64_t start_ns = 0;  ///< Monotonic, relative to the tracer's epoch.
  uint64_t duration_ns = 0;
};

/// One JSON object (no trailing newline) for a span; shared by the JSONL
/// sink and the flight-recorder bundle. Names and tags are fully escaped
/// (quotes, backslashes, control characters).
std::string FormatSpanJson(const SpanRecord& span);

/// \brief Receives finished spans. Implementations must tolerate delivery
/// from any code path that holds a span (no re-entrant tracing).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnSpanEnd(const SpanRecord& span) = 0;
};

/// \brief Keeps the most recent `capacity` spans in memory.
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(size_t capacity = 1024) : capacity_(capacity) {}

  void OnSpanEnd(const SpanRecord& span) override;

  /// Retained spans, oldest first (in end order).
  std::vector<SpanRecord> Spans() const;
  size_t size() const;
  /// Spans evicted because the buffer was full.
  size_t dropped() const;
  void Clear();

 private:
  mutable util::InstrumentedMutex mu_{"obs.trace.ring"};
  size_t capacity_ GUARDED_BY(mu_);
  std::deque<SpanRecord> spans_ GUARDED_BY(mu_);
  size_t dropped_ GUARDED_BY(mu_) = 0;
};

/// \brief Appends one JSON object per span to a file (JSONL).
class JsonlFileSink : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);

  /// False when the file could not be opened (spans are then discarded).
  bool ok() const { return out_.is_open() && out_.good(); }

  void OnSpanEnd(const SpanRecord& span) override;

 private:
  util::InstrumentedMutex mu_{"obs.trace.jsonl"};
  std::ofstream out_ GUARDED_BY(mu_);
};

/// \brief RAII span scope. Default-constructed (or moved-from) spans are
/// inert: every operation is a no-op.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  ~Span() { End(); }

  bool active() const { return tracer_ != nullptr; }
  uint64_t id() const { return record_.id; }

  void AddTag(std::string key, std::string value) {
    if (active()) record_.tags.emplace_back(std::move(key), std::move(value));
  }

  /// Ends the span early (idempotent; the destructor calls this).
  void End();

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanRecord record,
       std::chrono::steady_clock::time_point start)
      : tracer_(tracer), record_(std::move(record)), start_(start) {}

  Tracer* tracer_ = nullptr;
  SpanRecord record_;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Hands out spans and fans finished records out to sinks.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Sinks are not owned and must outlive their registration.
  void AddSink(TraceSink* sink) EXCLUDES(mu_);
  void RemoveSink(TraceSink* sink) EXCLUDES(mu_);
  size_t sink_count() const {
    return sink_count_.load(std::memory_order_acquire);
  }

  /// True when spans are actually recorded.
  bool active() const { return sink_count() != 0 && !Disabled(); }

  /// Starts a span nested under the innermost span open on this thread.
  /// Inert (and free) when `active()` is false.
  Span StartSpan(std::string name);

  /// Spans delivered to sinks so far.
  uint64_t finished_spans() const {
    return finished_.load(std::memory_order_relaxed);
  }

 private:
  friend class Span;
  void FinishSpan(SpanRecord* record,
                  std::chrono::steady_clock::time_point start) EXCLUDES(mu_);

  mutable util::InstrumentedMutex mu_{"obs.trace.sinks"};
  std::vector<TraceSink*> sinks_ GUARDED_BY(mu_);
  /// Mirrors sinks_.size() so the active() fast path never locks.
  std::atomic<size_t> sink_count_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> finished_{0};
  std::chrono::steady_clock::time_point epoch_;
};

/// Process-wide tracer used by the SLIM_OBS_SPAN instrumentation macro.
Tracer& DefaultTracer();

}  // namespace slim::obs

#endif  // SLIM_OBS_TRACE_H_
