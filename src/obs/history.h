#ifndef SLIM_OBS_HISTORY_H_
#define SLIM_OBS_HISTORY_H_

/// \file history.h
/// \brief Time-series snapshot history over a MetricsRegistry.
///
/// The registry stores cumulative values; operators debugging a live SLIM
/// server need *rates* ("how many trim.add.ok per second right now"), and
/// a short window of recent history survives long enough to see a spike
/// after it happened. `MetricsHistory` captures periodic registry
/// snapshots, diffs each against the previous one, and keeps the deltas in
/// a bounded ring:
///
///   - counters:   value, delta since last sample, delta/second
///   - gauges:     current value (deltas of a two-way value mislead)
///   - histograms: cumulative and delta count/sum
///
/// Capture runs either on a background thread (`Start`/`Stop`, one sample
/// per `interval_ms`) or manually via `CaptureOnce` (tests and
/// `obs_dump --watch` drive it deterministically). The clock is
/// injectable, so delta/rate math is unit-testable without sleeping.
///
/// `ExportJson` renders the ring as `slim-metrics-history-v1`, served by
/// StatsServer at `GET /metrics/history` (see obs/prom.h).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/instrumented_mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace slim::obs {

/// One captured registry delta.
struct HistorySample {
  uint64_t seq = 0;    ///< 1-based capture number (monotonic, never reused).
  int64_t t_ms = 0;    ///< Capture time (monotonic clock, ms).
  int64_t dt_ms = 0;   ///< Time since the previous capture; 0 for the first.

  struct CounterEntry {
    std::string name;
    uint64_t value = 0;
    uint64_t delta = 0;
    double rate_per_s = 0.0;
  };
  struct GaugeEntry {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramEntry {
    std::string name;
    uint64_t count = 0;
    uint64_t count_delta = 0;
    uint64_t sum = 0;
    uint64_t sum_delta = 0;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;
};

struct HistoryOptions {
  int64_t interval_ms = 1000;  ///< Background capture period.
  size_t capacity = 120;       ///< Ring size; oldest samples evicted.
  /// Injectable monotonic clock (ms). nullptr = steady_clock.
  int64_t (*now_ms)() = nullptr;
};

class MetricsHistory {
 public:
  using Options = HistoryOptions;

  explicit MetricsHistory(const MetricsRegistry* registry,
                          Options options = {});
  ~MetricsHistory();
  MetricsHistory(const MetricsHistory&) = delete;
  MetricsHistory& operator=(const MetricsHistory&) = delete;

  /// Spawns the capture thread; the first sample is taken immediately.
  /// Fails when already running.
  Status Start();
  /// Stops and joins the capture thread. Idempotent.
  void Stop();
  bool running() const { return running_; }

  /// Takes one sample now. Safe to mix with the background thread and to
  /// call from multiple threads (captures serialize on the ring mutex).
  void CaptureOnce();

  /// Copy of the ring, oldest first.
  std::vector<HistorySample> Samples() const;
  /// Total captures taken (monotonic; includes evicted samples).
  uint64_t capture_count() const;
  /// Samples evicted from the ring so far.
  uint64_t dropped() const;

  /// slim-metrics-history-v1 JSON document over the current ring.
  std::string ExportJson() const;

  int64_t interval_ms() const { return options_.interval_ms; }
  size_t capacity() const { return options_.capacity; }

 private:
  void Run();
  int64_t NowMs() const;

  const MetricsRegistry* registry_;
  const Options options_;

  mutable util::InstrumentedMutex mu_{"obs.history.ring"};
  std::deque<HistorySample> ring_ GUARDED_BY(mu_);
  MetricsSnapshot prev_ GUARDED_BY(mu_);
  int64_t prev_t_ms_ GUARDED_BY(mu_) = 0;
  uint64_t captures_ GUARDED_BY(mu_) = 0;
  uint64_t dropped_ GUARDED_BY(mu_) = 0;

  // Wakeup plumbing for the capture thread. std::condition_variable (the
  // efficient, non-_any flavor) requires a real std::mutex; nothing it
  // guards is worth profiling.
  // slim-lint: allow(raw-mutex) -- cv companion for wake_cv_
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  // slim-lint: allow(unguarded) -- guarded by raw cv-companion wake_mu_
  bool stop_requested_ = false;
  // slim-lint: allow(unguarded) -- joined only by the Start/Stop caller
  std::thread thread_;
  // slim-lint: allow(unguarded) -- written only by the Start/Stop caller
  bool running_ = false;
};

}  // namespace slim::obs

#endif  // SLIM_OBS_HISTORY_H_
