#ifndef SLIM_OBS_OBS_H_
#define SLIM_OBS_OBS_H_

/// \file obs.h
/// \brief One-line instrumentation for the four layers (umbrella header).
///
/// Call sites use the macros below so that a single line instruments an
/// operation, and the whole substrate compiles out when the cmake option
/// SLIM_ENABLE_OBS is OFF (SLIM_OBS_ENABLED becomes 0):
///
///   SLIM_OBS_COUNT("trim.add.ok");                 // cached counter bump
///   SLIM_OBS_COUNT_DYN("mark.resolve.module." + type);  // runtime name
///   SLIM_OBS_HISTOGRAM("trim.view.fanout", out.size());
///   SLIM_OBS_TIMER(timer, "trim.view.latency_us"); // times the scope
///   SLIM_OBS_SPAN(span, "slimpad.open_scrap");     // RAII trace span
///   SLIM_OBS_LOG(kWarn, "trim", "save failed", {{"path", p}});  // event
///   SLIM_OBS_DUMP_ON_ERROR("trim.persistence");    // flight-recorder dump
///   SLIM_OBS_HEARTBEAT("trim.persistence");        // watchdog liveness
///
/// With obs compiled in but `obs::SetDisabled(true)`, every macro costs one
/// relaxed atomic load and nothing else (no clock reads, no lookups).
/// Metric names follow `layer.op.outcome` — see DESIGN.md §Observability.

#include <chrono>

#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

#ifndef SLIM_OBS_ENABLED
#define SLIM_OBS_ENABLED 1
#endif

namespace slim::obs {

/// \brief Times a scope into a LatencyHistogram (µs). Inert when
/// constructed with nullptr or while obs is disabled.
class ScopedOpTimer {
 public:
  explicit ScopedOpTimer(LatencyHistogram* histogram)
      : histogram_(Disabled() ? nullptr : histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;
  ~ScopedOpTimer() {
    if (histogram_ == nullptr) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
  }

 private:
  LatencyHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace slim::obs

#define SLIM_OBS_CONCAT_INNER(a, b) a##b
#define SLIM_OBS_CONCAT(a, b) SLIM_OBS_CONCAT_INNER(a, b)

#if SLIM_OBS_ENABLED

/// Bumps a counter in the default registry by `n`. `name` must be a string
/// literal: the Counter* is looked up once and cached per call site.
#define SLIM_OBS_COUNT_N(name, n)                                           \
  do {                                                                      \
    if (!::slim::obs::Disabled()) {                                         \
      static ::slim::obs::Counter* SLIM_OBS_CONCAT(_slim_obs_ctr,           \
                                                   __LINE__) =              \
          ::slim::obs::DefaultRegistry().GetCounter(name);                  \
      SLIM_OBS_CONCAT(_slim_obs_ctr, __LINE__)->Increment(n);               \
    }                                                                       \
  } while (0)

#define SLIM_OBS_COUNT(name) SLIM_OBS_COUNT_N(name, 1)

/// Counter with a runtime-built name (no per-site caching).
#define SLIM_OBS_COUNT_DYN(name_expr)                                       \
  do {                                                                      \
    if (!::slim::obs::Disabled()) {                                         \
      ::slim::obs::DefaultRegistry().GetCounter(name_expr)->Increment();    \
    }                                                                       \
  } while (0)

/// Records `value` into a histogram in the default registry (cached).
#define SLIM_OBS_HISTOGRAM(name, value)                                     \
  do {                                                                      \
    if (!::slim::obs::Disabled()) {                                         \
      static ::slim::obs::LatencyHistogram* SLIM_OBS_CONCAT(_slim_obs_hst,  \
                                                            __LINE__) =     \
          ::slim::obs::DefaultRegistry().GetHistogram(name);                \
      SLIM_OBS_CONCAT(_slim_obs_hst, __LINE__)->Record(                     \
          static_cast<uint64_t>(value));                                    \
    }                                                                       \
  } while (0)

/// Declares `var`, a ScopedOpTimer recording the enclosing scope's
/// duration (µs) into the named default-registry histogram.
#define SLIM_OBS_TIMER(var, name)                                           \
  static ::slim::obs::LatencyHistogram* SLIM_OBS_CONCAT(var, _histogram) =  \
      ::slim::obs::DefaultRegistry().GetHistogram(name);                    \
  ::slim::obs::ScopedOpTimer var(SLIM_OBS_CONCAT(var, _histogram))

/// Declares `var`, an RAII Span on the default tracer.
#define SLIM_OBS_SPAN(var, name) \
  ::slim::obs::Span var = ::slim::obs::DefaultTracer().StartSpan(name)

/// Emits a structured event on the default logger. `level` is a bare
/// LogLevel enumerator (kDebug/kInfo/kWarn/kError); the trailing varargs
/// are an optional brace-initialized field list:
///   SLIM_OBS_LOG(kError, "trim", "store load failed", {{"path", path}});
#define SLIM_OBS_LOG(level, layer, msg, ...)                               \
  do {                                                                     \
    if (!::slim::obs::Disabled()) {                                        \
      ::slim::obs::DefaultLogger().Log(::slim::obs::LogLevel::level,       \
                                       layer, msg __VA_OPT__(, )           \
                                           __VA_ARGS__);                   \
    }                                                                      \
  } while (0)

/// Asks the default flight recorder for a diagnostics bundle; writes one
/// only when a dump path has been configured (set_dump_path), so error
/// paths can call this unconditionally.
#define SLIM_OBS_DUMP_ON_ERROR(source)                                     \
  do {                                                                     \
    if (!::slim::obs::Disabled()) {                                        \
      ::slim::obs::DefaultFlightRecorder().MaybeDumpOnError(source);       \
    }                                                                      \
  } while (0)

/// Marks the enclosing subsystem alive for the default watchdog
/// (obs/watchdog.h). `name` must be a string literal; the Heartbeat* is
/// registered once and cached per call site. Activity heartbeats show
/// liveness in /healthz but never trip the watchdog — two relaxed atomic
/// writes when the watchdog is armed, one load when it is not.
#define SLIM_OBS_HEARTBEAT(name)                                            \
  do {                                                                      \
    if (!::slim::obs::Disabled()) {                                         \
      static ::slim::obs::Watchdog::Heartbeat* SLIM_OBS_CONCAT(             \
          _slim_obs_hb, __LINE__) =                                         \
          ::slim::obs::Watchdog::Default().RegisterOnActivity(name);        \
      ::slim::obs::Watchdog::Default().Beat(                                \
          SLIM_OBS_CONCAT(_slim_obs_hb, __LINE__));                         \
    }                                                                       \
  } while (0)

#else  // !SLIM_OBS_ENABLED — everything compiles away.

#define SLIM_OBS_COUNT_N(name, n) \
  do {                            \
  } while (0)
#define SLIM_OBS_COUNT(name) \
  do {                       \
  } while (0)
#define SLIM_OBS_COUNT_DYN(name_expr) \
  do {                                \
  } while (0)
#define SLIM_OBS_HISTOGRAM(name, value) \
  do {                                  \
  } while (0)
#define SLIM_OBS_TIMER(var, name) \
  do {                            \
  } while (0)
// An inert Span so `var.AddTag(...)` still compiles (and folds away).
#define SLIM_OBS_SPAN(var, name) ::slim::obs::Span var
#define SLIM_OBS_LOG(level, layer, msg, ...) \
  do {                                       \
  } while (0)
#define SLIM_OBS_DUMP_ON_ERROR(source) \
  do {                                 \
  } while (0)
#define SLIM_OBS_HEARTBEAT(name) \
  do {                           \
  } while (0)

#endif  // SLIM_OBS_ENABLED

#endif  // SLIM_OBS_OBS_H_
