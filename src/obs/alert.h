#ifndef SLIM_OBS_ALERT_H_
#define SLIM_OBS_ALERT_H_

/// \file alert.h
/// \brief Bounded stream of structured alert events with dedup and flap
/// suppression.
///
/// The SLO engine (obs/slo.h) and the watchdog (obs/watchdog.h) report
/// verdicts — "this objective is burning budget", "this span is stalled",
/// "this subsystem stopped heartbeating" — into one `AlertRing`. The ring
/// keeps the most recent `capacity` events plus the current *active* set
/// (keys raised but not yet resolved), and applies two operator-protecting
/// filters:
///
///   - **dedup** — re-raising an active key at the same (or lower) severity
///     bumps its occurrence count instead of appending a new event; only a
///     severity *escalation* emits again while active.
///   - **flap suppression** — a key that transitions (raise/resolve) more
///     than `flap_threshold` times inside `flap_window_ms` stops emitting
///     events (state is still tracked and visible in `Active()`); emission
///     resumes on the first transition of a later, calmer window.
///
/// `ExportJson` renders the `slim-alerts-v1` document served by StatsServer
/// at `GET /alerts.json`. The clock is injectable so eviction/flap math is
/// unit-testable without sleeping.
///
/// Metrics (DESIGN.md §8): `obs.alert.{raised,resolved,deduped,
/// flap_suppressed,evicted}` counters and the `obs.alert.active` gauge.

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/instrumented_mutex.h"
#include "util/thread_annotations.h"

namespace slim::obs {

enum class AlertSeverity { kInfo = 0, kWarn = 1, kCritical = 2 };

/// "info" / "warn" / "critical".
std::string_view AlertSeverityName(AlertSeverity severity);

/// \brief One emitted alert event (a raise, an escalation, or a resolve).
struct AlertEvent {
  uint64_t seq = 0;  ///< 1-based, monotonic, never reused.
  int64_t t_ms = 0;
  std::string key;   ///< Identity for dedup, e.g. "slo:slim_query_p99".
  std::string kind;  ///< "slo_burn", "stall", "heartbeat", "lock_hold".
  AlertSeverity severity = AlertSeverity::kInfo;
  std::string message;
  bool resolved = false;  ///< True for the resolve edge of the alert.
};

/// \brief The current state of a raised-but-unresolved key.
struct ActiveAlert {
  std::string key;
  std::string kind;
  AlertSeverity severity = AlertSeverity::kInfo;
  std::string message;
  int64_t since_ms = 0;
  uint64_t count = 0;  ///< Occurrences folded into this activation.
  bool flapping = false;
};

struct AlertRingOptions {
  size_t capacity = 128;  ///< Event ring size; oldest events evicted.
  /// Flap detection: more than `flap_threshold` raise/resolve transitions
  /// of one key within `flap_window_ms` suppresses further event emission
  /// for that key until a calmer window.
  int64_t flap_window_ms = 60'000;
  int flap_threshold = 4;
  /// Injectable monotonic clock (ms). nullptr = steady_clock.
  int64_t (*now_ms)() = nullptr;
};

class AlertRing {
 public:
  using Options = AlertRingOptions;

  /// `registry` may be null (no obs.alert.* metrics are then emitted); it
  /// must outlive the ring.
  explicit AlertRing(MetricsRegistry* registry = nullptr,
                     Options options = {});
  AlertRing(const AlertRing&) = delete;
  AlertRing& operator=(const AlertRing&) = delete;

  /// Raises `key`. Returns true when an event was appended to the ring —
  /// false when the raise was deduped (key already active at >= severity)
  /// or flap-suppressed. The active state is updated either way.
  bool Raise(std::string_view key, std::string_view kind,
             AlertSeverity severity, std::string_view message)
      EXCLUDES(mu_);

  /// Resolves `key` if active. Returns true when a resolve event was
  /// appended (false when the key was not active or flap-suppressed).
  bool Resolve(std::string_view key) EXCLUDES(mu_);

  bool IsActive(std::string_view key) const EXCLUDES(mu_);
  size_t active_count() const EXCLUDES(mu_);

  /// Retained events, oldest first.
  std::vector<AlertEvent> Events() const EXCLUDES(mu_);
  /// Currently active alerts, sorted by key.
  std::vector<ActiveAlert> Active() const EXCLUDES(mu_);

  /// \name Lifetime totals (monotonic).
  /// @{
  uint64_t raised() const EXCLUDES(mu_);
  uint64_t resolved() const EXCLUDES(mu_);
  uint64_t deduped() const EXCLUDES(mu_);
  uint64_t flap_suppressed() const EXCLUDES(mu_);
  uint64_t evicted() const EXCLUDES(mu_);
  /// @}

  /// The ring as a `slim-alerts-v1` JSON document (counts, active set,
  /// event list) — served at `GET /alerts.json`.
  std::string ExportJson() const EXCLUDES(mu_);

  /// Drops all events and active state (lifetime totals are kept).
  void Clear() EXCLUDES(mu_);

  size_t capacity() const { return options_.capacity; }

 private:
  /// Per-key dedup + flap bookkeeping. Kept after resolve so flap history
  /// survives the inactive half of a flap cycle.
  struct KeyState {
    bool active = false;
    std::string kind;
    AlertSeverity severity = AlertSeverity::kInfo;
    std::string message;
    int64_t since_ms = 0;
    uint64_t count = 0;
    // Flap window: transitions counted since window_start_ms.
    int64_t window_start_ms = 0;
    int transitions = 0;
    bool flapping = false;
  };

  int64_t NowMs() const;
  /// Records one raise/resolve transition for flap accounting; returns
  /// true when the key is (now) flapping and emission must be suppressed.
  bool NoteTransition(KeyState* state, int64_t now) REQUIRES(mu_);
  void Append(AlertEvent event) REQUIRES(mu_);

  MetricsRegistry* const registry_;
  const Options options_;

  mutable util::InstrumentedMutex mu_{"obs.alert.ring"};
  std::map<std::string, KeyState, std::less<>> keys_ GUARDED_BY(mu_);
  std::deque<AlertEvent> events_ GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  size_t active_ GUARDED_BY(mu_) = 0;
  uint64_t raised_ GUARDED_BY(mu_) = 0;
  uint64_t resolved_ GUARDED_BY(mu_) = 0;
  uint64_t deduped_ GUARDED_BY(mu_) = 0;
  uint64_t flap_suppressed_ GUARDED_BY(mu_) = 0;
  uint64_t evicted_ GUARDED_BY(mu_) = 0;
};

}  // namespace slim::obs

#endif  // SLIM_OBS_ALERT_H_
