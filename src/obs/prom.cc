#include "obs/prom.h"

#include "obs/alert.h"
#include "obs/cpu_profiler.h"
#include "obs/history.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "obs/watchdog.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace slim::obs {

std::string PromMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out += '_';
  for (char c : name) {
    bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

std::string ExportPrometheus(const MetricsRegistry& registry) {
  MetricsSnapshot snap = registry.Snapshot();
  std::string out;

  for (const auto& [name, value] : snap.counters) {
    std::string prom = PromMetricName(name);
    out += "# HELP " + prom + " SLIM counter " + name + "\n";
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    std::string prom = PromMetricName(name);
    out += "# HELP " + prom + " SLIM gauge " + name + "\n";
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    std::string prom = PromMetricName(name);
    out += "# HELP " + prom + " SLIM histogram " + name + "\n";
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
      cumulative += h.buckets[i];
      std::string le =
          i < LatencyHistogram::kBucketBounds.size()
              ? std::to_string(LatencyHistogram::BucketUpperBound(i))
              : std::string("+Inf");
      out += prom + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_sum " + std::to_string(h.sum) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// StatsServer
// ---------------------------------------------------------------------------

StatsServer::StatsServer(const MetricsRegistry* registry, uint16_t port)
    : registry_(registry), port_(port) {}

StatsServer::~StatsServer() { Stop(); }

Status StatsServer::Start() {
  if (registry_ == nullptr) {
    return Status::InvalidArgument("StatsServer needs a registry");
  }
  if (running()) return Status::FailedPrecondition("StatsServer already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::IoError(std::string("bind 127.0.0.1:") +
                                std::to_string(port_) + ": " +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 16) < 0) {
    Status st = Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void StatsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock the accept loop; closing alone is not enough on all platforms.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void StatsServer::Serve() {
  while (running()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (Stop) or fatal error
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

namespace {

void SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

void SendResponse(int fd, std::string_view status_line,
                  std::string_view content_type, std::string_view body) {
  std::string head = std::string("HTTP/1.1 ") + std::string(status_line) +
                     "\r\nContent-Type: " + std::string(content_type) +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  SendAll(fd, head);
  SendAll(fd, body);
}

/// Value of an integer `seconds=` query parameter in `path`, or `fallback`
/// when absent/garbled. Anything past 10s is clamped: the accept loop is
/// serial, so one capture window blocks every other scrape.
uint64_t ParseSecondsParam(const std::string& path, uint64_t fallback) {
  const size_t q = path.find('?');
  if (q == std::string::npos) return fallback;
  size_t pos = q + 1;
  while (pos < path.size()) {
    size_t end = path.find('&', pos);
    if (end == std::string::npos) end = path.size();
    const std::string_view param(path.data() + pos, end - pos);
    if (param.rfind("seconds=", 0) == 0) {
      uint64_t value = 0;
      bool any = false;
      for (size_t i = 8; i < param.size(); ++i) {
        if (param[i] < '0' || param[i] > '9') return fallback;
        value = value * 10 + static_cast<uint64_t>(param[i] - '0');
        any = true;
        if (value > 10) return 10;
      }
      return any ? value : fallback;
    }
    pos = end + 1;
  }
  return fallback;
}

}  // namespace

void StatsServer::HandleConnection(int fd) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  SLIM_OBS_COUNT("obs.stats_server.requests");
  auto send_error = [this, fd](std::string_view status_line,
                               std::string_view body) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    SLIM_OBS_COUNT("obs.stats_server.errors");
    SendResponse(fd, status_line, "text/plain", body);
  };

  // Read until the end of the request head (or a sanity cap); the request
  // body, if any, is irrelevant to GET handling.
  constexpr size_t kMaxHead = 16 * 1024;
  constexpr size_t kMaxRequestLine = 8 * 1024;
  std::string request;
  char buf[1024];
  while (request.size() < kMaxHead &&
         request.find("\r\n\r\n") == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }

  // The request line ("<METHOD> <path> HTTP/x.y\r\n") must have arrived in
  // full before anything is routed — a short read used to fall through to
  // the path matcher with a truncated path and mis-route to 404.
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos || line_end > kMaxRequestLine) {
    if (request.empty()) {
      // Connected and went away without sending anything: nobody to answer.
      errors_.fetch_add(1, std::memory_order_relaxed);
      SLIM_OBS_COUNT("obs.stats_server.errors");
      return;
    }
    if (request.size() > kMaxRequestLine) {
      send_error("414 URI Too Long", "request line too long\n");
    } else {
      send_error("400 Bad Request", "incomplete request line\n");
    }
    return;
  }
  const std::string line = request.substr(0, line_end);
  const size_t method_end = line.find(' ');
  const size_t path_end =
      method_end == std::string::npos ? std::string::npos
                                      : line.find(' ', method_end + 1);
  if (method_end == std::string::npos || path_end == std::string::npos ||
      line.compare(path_end + 1, 5, "HTTP/") != 0) {
    send_error("400 Bad Request", "malformed request line\n");
    return;
  }
  const std::string method = line.substr(0, method_end);
  const std::string path =
      line.substr(method_end + 1, path_end - method_end - 1);

  if (method != "GET") {
    send_error("405 Method Not Allowed", "only GET is supported\n");
    return;
  }
  if (path == "/metrics") {
    SendResponse(fd, "200 OK", "text/plain; version=0.0.4; charset=utf-8",
                 ExportPrometheus(*registry_));
  } else if (path == "/metrics/history") {
    const MetricsHistory* history =
        history_.load(std::memory_order_acquire);
    if (history != nullptr) {
      SendResponse(fd, "200 OK", "application/json", history->ExportJson());
    } else {
      send_error("404 Not Found", "no metrics history attached\n");
    }
  } else if (path == "/vars.json") {
    SendResponse(fd, "200 OK", "application/json", registry_->ExportJson());
  } else if (path == "/slo.json") {
    const SloEngine* slo = slo_.load(std::memory_order_acquire);
    if (slo != nullptr) {
      SendResponse(fd, "200 OK", "application/json", slo->ExportJson());
    } else {
      send_error("404 Not Found", "no SLO engine attached\n");
    }
  } else if (path == "/alerts.json") {
    const AlertRing* alerts = alerts_.load(std::memory_order_acquire);
    if (alerts != nullptr) {
      SendResponse(fd, "200 OK", "application/json", alerts->ExportJson());
    } else {
      send_error("404 Not Found", "no alert ring attached\n");
    }
  } else if (path == "/healthz") {
    const Watchdog* watchdog = watchdog_.load(std::memory_order_acquire);
    if (watchdog == nullptr || !watchdog->armed()) {
      // Backward compatible: without an armed watchdog there is no verdict
      // to report, and probes expecting the plain "ok" keep working.
      SendResponse(fd, "200 OK", "text/plain", "ok\n");
    } else {
      const HealthReport report = watchdog->Health();
      if (report.overall == HealthState::kOk) {
        SendResponse(fd, "200 OK", "text/plain", "ok\n");
      } else if (report.overall == HealthState::kDegraded) {
        SendResponse(fd, "200 OK", "application/json", report.ToJson());
      } else {
        errors_.fetch_add(1, std::memory_order_relaxed);
        SLIM_OBS_COUNT("obs.stats_server.errors");
        SendResponse(fd, "503 Service Unavailable", "application/json",
                     report.ToJson());
      }
    }
  } else if (path == "/profile/cpu.collapsed" ||
             path.rfind("/profile/cpu.collapsed?", 0) == 0) {
    CpuProfiler* profiler = cpu_profiler_.load(std::memory_order_acquire);
    if (profiler == nullptr) {
      send_error("404 Not Found", "no cpu profiler attached\n");
    } else {
      // Default: the cumulative aggregate (instant); `seconds=` captures a
      // fresh window instead.
      const uint64_t seconds = ParseSecondsParam(path, 0);
      const CpuProfile profile = seconds == 0
                                     ? profiler->Snapshot()
                                     : profiler->CaptureWindow(seconds * 1000);
      SendResponse(fd, "200 OK", "text/plain; charset=utf-8",
                   profile.ToCollapsed());
    }
  } else if (path == "/profile/cpu" || path.rfind("/profile/cpu?", 0) == 0) {
    CpuProfiler* profiler = cpu_profiler_.load(std::memory_order_acquire);
    if (profiler == nullptr) {
      send_error("404 Not Found", "no cpu profiler attached\n");
    } else {
      const uint64_t seconds = ParseSecondsParam(path, 1);
      const CpuProfile profile = seconds == 0
                                     ? profiler->Snapshot()
                                     : profiler->CaptureWindow(seconds * 1000);
      SendResponse(fd, "200 OK", "application/json", profile.ToJson());
    }
  } else {
    send_error("404 Not Found",
               "try /metrics, /metrics/history, /vars.json, /slo.json, "
               "/alerts.json, /healthz, /profile/cpu or "
               "/profile/cpu.collapsed\n");
  }
}

}  // namespace slim::obs
