#ifndef SLIM_OBS_SLO_H_
#define SLIM_OBS_SLO_H_

/// \file slo.h
/// \brief Declarative service-level objectives over a MetricsRegistry.
///
/// An objective is a one-line spec judged over a rolling window:
///
///   slim.query.latency_us p99 < 5ms window 60s     (latency objective)
///   slim.query.execute error_rate < 0.1%           (counter pair
///                                                   <base>.error /
///                                                   <base>.calls)
///   errors(trim.save.error,trim.save.ok) < 1%      (explicit counters)
///
/// An optional leading `id:` token names the objective (default: derived
/// from the metric name, `.` -> `_`, plus the quantile). `window <dur>`
/// may trail any form (default 60s).
///
/// The engine samples the *cumulative* registry values on every
/// `Evaluate()` call (the watchdog ticks it; tests and `obs_dump --slo`
/// drive it manually with an injected clock) and keeps a per-objective
/// ring of timestamped samples. The oldest retained sample is the window
/// baseline, so:
///
///   bad_fraction = (bad_now - bad_base) / (total_now - total_base)
///   budget       = 1 - quantile            (latency)
///                | max_error_fraction      (error rate)
///   burn_rate    = bad_fraction / budget
///
/// burn_rate < 1 means the objective is met (state `ok`); burn_rate in
/// [1, critical_burn) is `degraded`; >= critical_burn is `failing`. For a
/// latency objective "bad" events are histogram recordings above the
/// threshold — the threshold is snapped down to the histogram's 1-2-5
/// bucket ladder, so pick thresholds on bucket bounds (1/2/5/10/25/...).
///
/// Verdicts are published as `slim.slo.<id>.{burn_x1000,budget_x1000,
/// state}` gauges (x1000 fixed-point; state 0=ok 1=degraded 2=failing),
/// optionally raised into an AlertRing, and served by StatsServer at
/// `GET /slo.json` as `slim-slo-v1`.

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "obs/alert.h"
#include "obs/metrics.h"
#include "util/instrumented_mutex.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace slim::obs {

enum class SloKind { kLatency, kErrorRate };
enum class SloState { kOk = 0, kDegraded = 1, kFailing = 2 };

/// "ok" / "degraded" / "failing".
std::string_view SloStateName(SloState state);

/// \brief One parsed objective.
struct SloObjective {
  std::string id;  ///< `[a-z0-9_]+`; keys the slim.slo.<id>.* gauges.
  SloKind kind = SloKind::kLatency;

  // Latency form.
  std::string metric;        ///< Histogram name.
  double quantile = 0.99;    ///< Target compliance, e.g. p99 -> 0.99.
  uint64_t threshold_us = 0; ///< Bound, in the histogram's recording unit.

  // Error-rate form.
  std::string error_counter;
  std::string total_counter;
  double max_error_fraction = 0.0;

  int64_t window_ms = 60'000;
  /// burn_rate at which the objective flips degraded -> failing.
  double critical_burn = 2.0;

  /// The error budget: the fraction of events allowed to be bad.
  double budget() const {
    return kind == SloKind::kLatency ? 1.0 - quantile : max_error_fraction;
  }

  /// Parses the spec grammar documented at the top of this file.
  static Result<SloObjective> Parse(std::string_view spec);

  /// Round-trippable-ish human rendering (used by ToText and /slo.json).
  std::string ToString() const;
};

/// \brief One objective's latest verdict.
struct SloStatus {
  SloObjective objective;
  SloState state = SloState::kOk;
  /// False until two samples span the window (or any events arrive).
  bool has_data = false;
  uint64_t window_total = 0;
  uint64_t window_bad = 0;
  double bad_fraction = 0.0;
  double burn_rate = 0.0;
  /// 1 - burn_rate; negative when the budget is overspent.
  double budget_remaining = 1.0;
};

struct SloEngineOptions {
  /// Injectable monotonic clock (ms). nullptr = steady_clock.
  int64_t (*now_ms)() = nullptr;
  /// Per-objective sample-ring bound (oldest evicted). 512 samples covers
  /// a 60s window at the watchdog's default 200ms tick with slack.
  size_t max_samples = 512;
};

class SloEngine {
 public:
  using Options = SloEngineOptions;

  /// The registry must outlive the engine. Metric pointers are resolved on
  /// first evaluation (a never-written metric reads as zero events).
  explicit SloEngine(MetricsRegistry* registry, Options options = {});
  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Parses and adds one objective spec. Duplicate ids are rejected.
  Status AddObjective(std::string_view spec) EXCLUDES(mu_);
  Status Add(SloObjective objective) EXCLUDES(mu_);

  /// While set, state transitions raise/resolve `slo:<id>` alerts
  /// (kind "slo_burn"; warn for degraded, critical for failing). The ring
  /// must outlive the engine.
  void set_alerts(AlertRing* alerts) EXCLUDES(mu_);

  /// Takes one cumulative sample per objective and recomputes every
  /// verdict. The first call only establishes the baseline.
  void Evaluate() EXCLUDES(mu_);

  /// Latest verdicts, in objective-addition order.
  std::vector<SloStatus> Statuses() const EXCLUDES(mu_);
  /// Worst state across objectives (kOk when none are defined).
  SloState OverallState() const EXCLUDES(mu_);
  size_t objective_count() const EXCLUDES(mu_);
  uint64_t evaluations() const EXCLUDES(mu_);

  /// Human table, one line per objective.
  std::string ToText() const EXCLUDES(mu_);
  /// The `slim-slo-v1` JSON document served at `GET /slo.json`.
  std::string ExportJson() const EXCLUDES(mu_);

 private:
  struct Sample {
    int64_t t_ms = 0;
    uint64_t total = 0;
    uint64_t bad = 0;
  };
  struct Tracked {
    SloObjective objective;
    // Resolved lazily on first evaluation.
    LatencyHistogram* histogram = nullptr;
    Counter* error = nullptr;
    Counter* total = nullptr;
    Gauge* burn_gauge = nullptr;
    Gauge* budget_gauge = nullptr;
    Gauge* state_gauge = nullptr;
    std::deque<Sample> samples;
    SloStatus status;
  };

  int64_t NowMs() const;
  void EvaluateOne(Tracked* tracked, int64_t now) REQUIRES(mu_);
  /// Cumulative (total, bad) event counts for an objective right now.
  Sample Read(Tracked* tracked, int64_t now) REQUIRES(mu_);

  MetricsRegistry* const registry_;
  const Options options_;

  mutable util::InstrumentedMutex mu_{"obs.slo.engine"};
  std::vector<Tracked> objectives_ GUARDED_BY(mu_);
  AlertRing* alerts_ GUARDED_BY(mu_) = nullptr;
  uint64_t evaluations_ GUARDED_BY(mu_) = 0;
  Counter* evaluations_counter_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace slim::obs

#endif  // SLIM_OBS_SLO_H_
