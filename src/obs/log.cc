#include "obs/log.h"

#include <algorithm>

#include "obs/json.h"

namespace slim::obs {

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

std::string FormatLogEventJson(const LogEvent& event) {
  std::string out = "{\"ts_ns\":" + std::to_string(event.timestamp_ns) +
                    ",\"level\":" + JsonQuote(LogLevelName(event.level)) +
                    ",\"layer\":" + JsonQuote(event.layer) +
                    ",\"message\":" + JsonQuote(event.message);
  if (!event.fields.empty()) {
    out += ",\"fields\":{";
    for (size_t i = 0; i < event.fields.size(); ++i) {
      if (i) out += ',';
      out += JsonQuote(event.fields[i].first) + ":" +
             JsonQuote(event.fields[i].second);
    }
    out += '}';
  }
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

void RingBufferLogSink::OnLogEvent(const LogEvent& event) {
  util::MutexLock lock(&mu_);
  if (events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(event);
}

std::vector<LogEvent> RingBufferLogSink::Events() const {
  util::MutexLock lock(&mu_);
  return {events_.begin(), events_.end()};
}

size_t RingBufferLogSink::size() const {
  util::MutexLock lock(&mu_);
  return events_.size();
}

size_t RingBufferLogSink::dropped() const {
  util::MutexLock lock(&mu_);
  return dropped_;
}

void RingBufferLogSink::Clear() {
  util::MutexLock lock(&mu_);
  events_.clear();
  dropped_ = 0;
}

JsonlFileLogSink::JsonlFileLogSink(const std::string& path)
    : out_(path, std::ios::binary | std::ios::app) {}

void JsonlFileLogSink::OnLogEvent(const LogEvent& event) {
  util::MutexLock lock(&mu_);
  if (!out_.is_open()) return;
  out_ << FormatLogEventJson(event) << "\n";
  out_.flush();
}

// ---------------------------------------------------------------------------
// Logger
// ---------------------------------------------------------------------------

Logger::Logger()
    : registry_(&DefaultRegistry()), epoch_(std::chrono::steady_clock::now()) {}

void Logger::AddSink(LogSink* sink) {
  if (sink == nullptr) return;
  util::MutexLock lock(&mu_);
  if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end()) {
    sinks_.push_back(sink);
  }
}

void Logger::RemoveSink(LogSink* sink) {
  util::MutexLock lock(&mu_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

size_t Logger::sink_count() const {
  util::MutexLock lock(&mu_);
  return sinks_.size();
}

void Logger::set_registry(MetricsRegistry* registry) {
  util::MutexLock lock(&mu_);
  registry_ = registry;
  level_counters_ = {};  // re-resolve against the new registry
}

Counter* Logger::LevelCounter(LogLevel level) {
  // Caller holds mu_.
  size_t i = static_cast<size_t>(level);
  if (level_counters_[i] == nullptr && registry_ != nullptr) {
    level_counters_[i] = registry_->GetCounter(
        "log.events." + std::string(LogLevelName(level)));
  }
  return level_counters_[i];
}

void Logger::Log(LogLevel level, std::string_view layer,
                 std::string_view message, LogFields fields) {
  if (Disabled()) return;
  if (static_cast<int>(level) < min_level_.load(std::memory_order_relaxed)) {
    return;
  }
  LogEvent event;
  event.level = level;
  event.layer = std::string(layer);
  event.message = std::string(message);
  event.fields = std::move(fields);
  event.timestamp_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  events_.fetch_add(1, std::memory_order_relaxed);
  util::MutexLock lock(&mu_);
  if (Counter* c = LevelCounter(level); c != nullptr) c->Increment();
  for (LogSink* sink : sinks_) sink->OnLogEvent(event);
}

Logger& DefaultLogger() {
  static Logger* logger = new Logger();
  return *logger;
}

}  // namespace slim::obs
