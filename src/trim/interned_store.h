#ifndef SLIM_TRIM_INTERNED_STORE_H_
#define SLIM_TRIM_INTERNED_STORE_H_

/// \file interned_store.h
/// \brief The alternative TRIM implementation for large data sets.
///
/// Paper §6: "In applications of our SLIM Store technology beyond SLIMPad,
/// some data sets are quite large and we are developing alternative
/// implementation mechanisms." This store trades TRIM's pointer-rich hash
/// indexes for an interned, columnar layout:
///
///  - every distinct string is stored once in a StringPool; triples are
///    three 32-bit ids plus a kind bit,
///  - triples live in one contiguous array; deletions tombstone,
///  - lookups use sorted posting arrays (by subject / property / object)
///    rebuilt lazily after batches of writes,
///  - persistence is a compact length-prefixed binary format.
///
/// The ablation bench (bench_ablation_store) quantifies the trade against
/// the hash-indexed TripleStore: memory per triple, bulk-load rate, point
/// and range query latency, and cold-load time.

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "trim/triple_store.h"  // Triple / TriplePattern / Object
#include "util/result.h"

namespace slim::trim {

/// \brief Append-only string interner with id lookup.
///
/// Move-only: the index holds views into the deque, so a memberwise copy
/// would leave the copy's index pointing at the source's strings.
class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;
  StringPool(StringPool&&) = default;
  StringPool& operator=(StringPool&&) = default;

  /// Id of `s`, interning it if new.
  uint32_t Intern(std::string_view s);
  /// Id of `s` if already interned.
  std::optional<uint32_t> Find(std::string_view s) const;
  /// The string for an id (must be valid).
  const std::string& Get(uint32_t id) const { return strings_[id]; }
  size_t size() const { return strings_.size(); }
  /// Heap bytes held by the pool (strings + map overhead estimate).
  size_t ApproximateBytes() const;

  /// \name Binary (de)serialization.
  /// @{
  void AppendTo(std::string* out) const;
  static Result<StringPool> ReadFrom(std::string_view data, size_t* offset);
  /// @}

 private:
  // Deque keeps element addresses stable, so the index may hold views.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, uint32_t> index_;  // views into strings_
};

/// \brief Interned, columnar triple store (same logical contract as
/// TripleStore).
class InternedTripleStore {
 public:
  InternedTripleStore() = default;
  InternedTripleStore(const InternedTripleStore&) = delete;
  InternedTripleStore& operator=(const InternedTripleStore&) = delete;
  InternedTripleStore(InternedTripleStore&&) = default;
  InternedTripleStore& operator=(InternedTripleStore&&) = default;

  Status Add(const Triple& triple, bool allow_duplicates = false);
  Status AddLiteral(const std::string& subject, const std::string& property,
                    const std::string& literal);
  Status AddResource(const std::string& subject, const std::string& property,
                     const std::string& resource);
  Status Remove(const Triple& triple);
  bool Contains(const Triple& triple) const;

  std::vector<Triple> Select(const TriplePattern& pattern) const;
  void SelectEach(const TriplePattern& pattern,
                  const std::function<bool(const Triple&)>& fn) const;
  std::optional<Object> GetOne(const std::string& subject,
                               const std::string& property) const;
  std::vector<Triple> ViewFrom(const std::string& resource) const;

  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }
  void Clear();
  void ForEach(const std::function<void(const Triple&)>& fn) const;

  /// Forces posting-list rebuild now (otherwise lazy on first read after a
  /// write batch).
  void Compact();

  /// Heap footprint: pool + triple array + postings.
  size_t ApproximateBytes() const;

  /// \name Compact binary persistence.
  /// @{
  std::string SerializeBinary() const;
  static Result<InternedTripleStore> DeserializeBinary(std::string_view data);
  Status SaveBinary(const std::string& path) const;
  static Result<InternedTripleStore> LoadBinary(const std::string& path);
  /// @}

 private:
  friend StoreStats ComputeStats(const InternedTripleStore& store);

  struct Row {
    uint32_t subject;
    uint32_t property;
    uint32_t object;
    uint8_t object_is_resource;
    uint8_t dead;
  };

  Triple MakeTriple(const Row& row) const;
  bool RowMatches(const Row& row, const std::optional<uint32_t>& s,
                  const std::optional<uint32_t>& p,
                  const std::optional<uint32_t>& o,
                  const std::optional<bool>& o_res) const;
  void EnsureIndexes() const;
  /// Find the live row index of an exact triple, or SIZE_MAX.
  size_t FindRow(const Triple& triple) const;

  StringPool pool_;
  std::vector<Row> rows_;
  size_t live_count_ = 0;

  // Subject access path, maintained eagerly: writes, point reads and graph
  // walks (the dominant DMI access pattern) never trigger index rebuilds.
  std::unordered_map<uint32_t, std::vector<uint32_t>> subject_rows_;

  // Lazily rebuilt sorted postings for property/object-keyed selection.
  mutable bool indexes_valid_ = false;
  mutable std::vector<uint32_t> by_property_;  // sorted by (property, row)
  mutable std::vector<uint32_t> by_object_;    // sorted by (object, row)
};

}  // namespace slim::trim

#endif  // SLIM_TRIM_INTERNED_STORE_H_
