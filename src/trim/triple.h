#ifndef SLIM_TRIM_TRIPLE_H_
#define SLIM_TRIM_TRIPLE_H_

/// \file triple.h
/// \brief The RDF-style triple: the paper's unit of superimposed storage.
///
/// Paper §4.3: "Superimposed model, schema, and instance data is represented
/// using RDF triples (a triple is composed of a property, a resource, and a
/// value)." A value is either another resource (an edge in the graph) or a
/// literal (a leaf string).

#include <string>

namespace slim::trim {

/// \brief Whether a triple's object is a graph node or a leaf string.
enum class ObjectKind { kResource, kLiteral };

/// \brief The object position of a triple.
struct Object {
  ObjectKind kind = ObjectKind::kLiteral;
  std::string text;

  static Object Resource(std::string id) {
    return Object{ObjectKind::kResource, std::move(id)};
  }
  static Object Literal(std::string value) {
    return Object{ObjectKind::kLiteral, std::move(value)};
  }
  bool is_resource() const { return kind == ObjectKind::kResource; }

  friend bool operator==(const Object&, const Object&) = default;
  friend auto operator<=>(const Object&, const Object&) = default;
};

/// \brief One (subject, property, object) statement.
struct Triple {
  std::string subject;   ///< Resource id.
  std::string property;  ///< Property name (vocabulary term).
  Object object;

  friend bool operator==(const Triple&, const Triple&) = default;
  friend auto operator<=>(const Triple&, const Triple&) = default;
};

/// Human-readable "(s, p, o)" form for messages and debugging.
std::string TripleToString(const Triple& t);

}  // namespace slim::trim

#endif  // SLIM_TRIM_TRIPLE_H_
