#include "trim/interned_store.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <queue>
#include <sstream>
#include <unordered_set>

namespace slim::trim {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

bool ReadU32(std::string_view data, size_t* offset, uint32_t* v) {
  if (*offset + 4 > data.size()) return false;
  std::memcpy(v, data.data() + *offset, 4);
  *offset += 4;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// StringPool
// ---------------------------------------------------------------------------

uint32_t StringPool::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  strings_.emplace_back(s);
  uint32_t id = static_cast<uint32_t>(strings_.size() - 1);
  index_[std::string_view(strings_.back())] = id;
  return id;
}

std::optional<uint32_t> StringPool::Find(std::string_view s) const {
  auto it = index_.find(s);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

size_t StringPool::ApproximateBytes() const {
  size_t bytes = 0;
  for (const std::string& s : strings_) {
    bytes += sizeof(std::string) + s.capacity();
  }
  // Hash-map node overhead estimate: view + id + bucket pointer.
  bytes += index_.size() * (sizeof(std::string_view) + sizeof(uint32_t) +
                            2 * sizeof(void*));
  return bytes;
}

void StringPool::AppendTo(std::string* out) const {
  AppendU32(out, static_cast<uint32_t>(strings_.size()));
  for (const std::string& s : strings_) {
    AppendU32(out, static_cast<uint32_t>(s.size()));
    out->append(s);
  }
}

Result<StringPool> StringPool::ReadFrom(std::string_view data,
                                        size_t* offset) {
  StringPool pool;
  uint32_t count = 0;
  if (!ReadU32(data, offset, &count)) {
    return Status::ParseError("string pool: truncated count");
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!ReadU32(data, offset, &len) || *offset + len > data.size()) {
      return Status::ParseError("string pool: truncated entry " +
                                std::to_string(i));
    }
    uint32_t id = pool.Intern(data.substr(*offset, len));
    if (id != i) {
      return Status::ParseError("string pool: duplicate entry " +
                                std::to_string(i));
    }
    *offset += len;
  }
  return pool;
}

// ---------------------------------------------------------------------------
// InternedTripleStore
// ---------------------------------------------------------------------------

Triple InternedTripleStore::MakeTriple(const Row& row) const {
  return Triple{pool_.Get(row.subject), pool_.Get(row.property),
                Object{row.object_is_resource ? ObjectKind::kResource
                                              : ObjectKind::kLiteral,
                       pool_.Get(row.object)}};
}

size_t InternedTripleStore::FindRow(const Triple& triple) const {
  auto s = pool_.Find(triple.subject);
  auto p = pool_.Find(triple.property);
  auto o = pool_.Find(triple.object.text);
  if (!s || !p || !o) return SIZE_MAX;
  auto bucket = subject_rows_.find(*s);
  if (bucket == subject_rows_.end()) return SIZE_MAX;
  for (uint32_t idx : bucket->second) {
    const Row& row = rows_[idx];
    if (row.dead) continue;
    if (row.property == *p && row.object == *o &&
        (row.object_is_resource != 0) == triple.object.is_resource()) {
      return idx;
    }
  }
  return SIZE_MAX;
}

Status InternedTripleStore::Add(const Triple& triple, bool allow_duplicates) {
  if (triple.subject.empty() || triple.property.empty()) {
    return Status::InvalidArgument("triple subject/property must be non-empty");
  }
  if (!allow_duplicates && FindRow(triple) != SIZE_MAX) {
    return Status::AlreadyExists("duplicate statement " +
                                 TripleToString(triple));
  }
  Row row;
  row.subject = pool_.Intern(triple.subject);
  row.property = pool_.Intern(triple.property);
  row.object = pool_.Intern(triple.object.text);
  row.object_is_resource = triple.object.is_resource() ? 1 : 0;
  row.dead = 0;
  rows_.push_back(row);
  subject_rows_[row.subject].push_back(
      static_cast<uint32_t>(rows_.size() - 1));
  ++live_count_;
  indexes_valid_ = false;
  return Status::OK();
}

Status InternedTripleStore::AddLiteral(const std::string& subject,
                                       const std::string& property,
                                       const std::string& literal) {
  return Add(Triple{subject, property, Object::Literal(literal)});
}

Status InternedTripleStore::AddResource(const std::string& subject,
                                        const std::string& property,
                                        const std::string& resource) {
  return Add(Triple{subject, property, Object::Resource(resource)});
}

Status InternedTripleStore::Remove(const Triple& triple) {
  size_t idx = FindRow(triple);
  if (idx == SIZE_MAX) {
    return Status::NotFound("statement not present: " +
                            TripleToString(triple));
  }
  rows_[idx].dead = 1;
  --live_count_;
  // Tombstoning keeps postings usable (dead rows are skipped on read), so
  // the indexes stay valid.
  return Status::OK();
}

bool InternedTripleStore::Contains(const Triple& triple) const {
  return FindRow(triple) != SIZE_MAX;
}

void InternedTripleStore::EnsureIndexes() const {
  if (indexes_valid_) return;
  by_property_.resize(rows_.size());
  by_object_.resize(rows_.size());
  for (uint32_t i = 0; i < rows_.size(); ++i) {
    by_property_[i] = i;
    by_object_[i] = i;
  }
  std::sort(by_property_.begin(), by_property_.end(),
            [&](uint32_t a, uint32_t b) {
              return rows_[a].property != rows_[b].property
                         ? rows_[a].property < rows_[b].property
                         : a < b;
            });
  std::sort(by_object_.begin(), by_object_.end(),
            [&](uint32_t a, uint32_t b) {
              return rows_[a].object != rows_[b].object
                         ? rows_[a].object < rows_[b].object
                         : a < b;
            });
  indexes_valid_ = true;
}

void InternedTripleStore::Compact() {
  // Physically drop tombstones, then rebuild postings.
  std::vector<Row> live;
  live.reserve(live_count_);
  for (const Row& row : rows_) {
    if (!row.dead) live.push_back(row);
  }
  rows_ = std::move(live);
  subject_rows_.clear();
  for (uint32_t i = 0; i < rows_.size(); ++i) {
    subject_rows_[rows_[i].subject].push_back(i);
  }
  indexes_valid_ = false;
  EnsureIndexes();
}

bool InternedTripleStore::RowMatches(const Row& row,
                                     const std::optional<uint32_t>& s,
                                     const std::optional<uint32_t>& p,
                                     const std::optional<uint32_t>& o,
                                     const std::optional<bool>& o_res) const {
  if (row.dead) return false;
  if (s && row.subject != *s) return false;
  if (p && row.property != *p) return false;
  if (o && row.object != *o) return false;
  if (o_res && (row.object_is_resource != 0) != *o_res) return false;
  return true;
}

void InternedTripleStore::SelectEach(
    const TriplePattern& pattern,
    const std::function<bool(const Triple&)>& fn) const {
  // Resolve pattern fields to ids; an unmatched fixed field -> no results.
  std::optional<uint32_t> s, p, o;
  std::optional<bool> o_res;
  if (pattern.subject) {
    auto id = pool_.Find(*pattern.subject);
    if (!id) return;
    s = *id;
  }
  if (pattern.property) {
    auto id = pool_.Find(*pattern.property);
    if (!id) return;
    p = *id;
  }
  if (pattern.object) {
    auto id = pool_.Find(pattern.object->text);
    if (!id) return;
    o = *id;
    o_res = pattern.object->is_resource();
  }

  auto scan_postings = [&](const std::vector<uint32_t>& postings,
                           uint32_t key,
                           auto key_of) {
    auto begin = std::lower_bound(
        postings.begin(), postings.end(), key,
        [&](uint32_t row_idx, uint32_t k) { return key_of(rows_[row_idx]) < k; });
    for (auto it = begin; it != postings.end() && key_of(rows_[*it]) == key;
         ++it) {
      const Row& row = rows_[*it];
      if (RowMatches(row, s, p, o, o_res)) {
        if (!fn(MakeTriple(row))) return;
      }
    }
  };

  if (s) {
    auto bucket = subject_rows_.find(*s);
    if (bucket == subject_rows_.end()) return;
    for (uint32_t idx : bucket->second) {
      const Row& row = rows_[idx];
      if (RowMatches(row, s, p, o, o_res)) {
        if (!fn(MakeTriple(row))) return;
      }
    }
    return;
  }
  EnsureIndexes();
  if (o) {
    scan_postings(by_object_, *o, [](const Row& r) { return r.object; });
    return;
  }
  if (p) {
    scan_postings(by_property_, *p, [](const Row& r) { return r.property; });
    return;
  }
  for (const Row& row : rows_) {
    if (!row.dead) {
      if (!fn(MakeTriple(row))) return;
    }
  }
}

std::vector<Triple> InternedTripleStore::Select(
    const TriplePattern& pattern) const {
  std::vector<Triple> out;
  SelectEach(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

std::optional<Object> InternedTripleStore::GetOne(
    const std::string& subject, const std::string& property) const {
  std::optional<Object> out;
  SelectEach(TriplePattern::BySubjectProperty(subject, property),
             [&](const Triple& t) {
               out = t.object;
               return false;
             });
  return out;
}

std::vector<Triple> InternedTripleStore::ViewFrom(
    const std::string& resource) const {
  std::vector<Triple> out;
  auto start = pool_.Find(resource);
  if (!start) return out;
  std::unordered_set<uint32_t> visited{*start};
  std::queue<uint32_t> frontier;
  frontier.push(*start);
  while (!frontier.empty()) {
    uint32_t cur = frontier.front();
    frontier.pop();
    auto bucket = subject_rows_.find(cur);
    if (bucket == subject_rows_.end()) continue;
    for (uint32_t idx : bucket->second) {
      const Row& row = rows_[idx];
      if (row.dead) continue;
      out.push_back(MakeTriple(row));
      if (row.object_is_resource && visited.insert(row.object).second) {
        frontier.push(row.object);
      }
    }
  }
  return out;
}

void InternedTripleStore::Clear() {
  rows_.clear();
  live_count_ = 0;
  indexes_valid_ = false;
  subject_rows_.clear();
  by_property_.clear();
  by_object_.clear();
  pool_ = StringPool();
}

void InternedTripleStore::ForEach(
    const std::function<void(const Triple&)>& fn) const {
  for (const Row& row : rows_) {
    if (!row.dead) fn(MakeTriple(row));
  }
}

size_t InternedTripleStore::ApproximateBytes() const {
  size_t bytes = pool_.ApproximateBytes();
  bytes += rows_.capacity() * sizeof(Row);
  bytes += (by_property_.capacity() + by_object_.capacity()) *
           sizeof(uint32_t);
  for (const auto& [key, vec] : subject_rows_) {
    bytes += sizeof(key) + vec.capacity() * sizeof(uint32_t) +
             2 * sizeof(void*);
  }
  return bytes;
}

std::string InternedTripleStore::SerializeBinary() const {
  std::string out = "SLIMBIN1";
  pool_.AppendTo(&out);
  AppendU32(&out, static_cast<uint32_t>(live_count_));
  for (const Row& row : rows_) {
    if (row.dead) continue;
    AppendU32(&out, row.subject);
    AppendU32(&out, row.property);
    // Kind bit packed into the high bit of the object id.
    AppendU32(&out, row.object | (row.object_is_resource ? 0x80000000u : 0));
  }
  return out;
}

Result<InternedTripleStore> InternedTripleStore::DeserializeBinary(
    std::string_view data) {
  if (data.substr(0, 8) != "SLIMBIN1") {
    return Status::ParseError("missing SLIMBIN1 magic");
  }
  size_t offset = 8;
  SLIM_ASSIGN_OR_RETURN(StringPool pool, StringPool::ReadFrom(data, &offset));
  uint32_t count = 0;
  if (!ReadU32(data, &offset, &count)) {
    return Status::ParseError("truncated triple count");
  }
  InternedTripleStore store;
  store.pool_ = std::move(pool);
  store.rows_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t s, p, o_packed;
    if (!ReadU32(data, &offset, &s) || !ReadU32(data, &offset, &p) ||
        !ReadU32(data, &offset, &o_packed)) {
      return Status::ParseError("truncated triple " + std::to_string(i));
    }
    uint32_t o = o_packed & 0x7FFFFFFFu;
    if (s >= store.pool_.size() || p >= store.pool_.size() ||
        o >= store.pool_.size()) {
      return Status::ParseError("triple " + std::to_string(i) +
                                " references out-of-pool string");
    }
    Row row{s, p, o,
            static_cast<uint8_t>((o_packed & 0x80000000u) ? 1 : 0), 0};
    store.rows_.push_back(row);
  }
  store.live_count_ = count;
  for (uint32_t i = 0; i < store.rows_.size(); ++i) {
    store.subject_rows_[store.rows_[i].subject].push_back(i);
  }
  if (offset != data.size()) {
    return Status::ParseError("trailing bytes after triples");
  }
  return store;
}

Status InternedTripleStore::SaveBinary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  std::string data = SerializeBinary();
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out.good()) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<InternedTripleStore> InternedTripleStore::LoadBinary(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string data = buf.str();
  return DeserializeBinary(data);
}

}  // namespace slim::trim
