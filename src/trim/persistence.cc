#include "trim/persistence.h"

#include <fstream>
#include <sstream>

#include "doc/xml/parser.h"
#include "doc/xml/writer.h"
#include "obs/obs.h"

namespace slim::trim {

namespace xml = slim::doc::xml;

namespace {

// Store persistence failures are exactly what the flight recorder exists
// for: log the event, snapshot a diagnostics bundle (when configured) and
// hand the status back unchanged.
Status NotePersistenceFailure(Status st, [[maybe_unused]] const char* op,
                              [[maybe_unused]] const std::string& path) {
  SLIM_OBS_LOG(kError, "trim", "store persistence failed",
               {{"op", op}, {"path", path}, {"status", st.ToString()}});
  SLIM_OBS_DUMP_ON_ERROR("trim.persistence");
  return st;
}

}  // namespace

std::string StoreToXml(const TripleStore& store) {
  xml::Document doc;
  auto root = std::make_unique<xml::Element>("trim:store");
  root->SetAttribute("xmlns:trim", "http://slim.ogi.edu/trim");
  store.ForEach([&](const Triple& t) {
    xml::Element* stmt = root->AddElement("trim:statement");
    stmt->SetAttribute("subject", t.subject);
    stmt->SetAttribute("property", t.property);
    xml::Element* obj = stmt->AddElement(
        t.object.is_resource() ? "trim:resource" : "trim:literal");
    if (!t.object.text.empty()) obj->AddText(t.object.text);
  });
  doc.set_root(std::move(root));
  return xml::WriteXml(doc);
}

Status StoreFromXml(std::string_view xml_text, TripleStore* store) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  xml::ParseOptions opts;
  opts.strip_whitespace_text = false;  // literals may be pure whitespace
  SLIM_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> doc,
                        xml::ParseXml(xml_text, opts));
  if (doc->root() == nullptr || doc->root()->name() != "trim:store") {
    return Status::ParseError("root element is not <trim:store>");
  }
  store->Clear();
  for (xml::Element* stmt : doc->root()->ChildElements("trim:statement")) {
    const std::string* subject = stmt->FindAttribute("subject");
    const std::string* property = stmt->FindAttribute("property");
    if (subject == nullptr || property == nullptr) {
      return Status::ParseError(
          "<trim:statement> missing subject/property attribute");
    }
    xml::Element* res = stmt->FirstChild("trim:resource");
    xml::Element* lit = stmt->FirstChild("trim:literal");
    if ((res == nullptr) == (lit == nullptr)) {
      return Status::ParseError(
          "<trim:statement> must contain exactly one of <trim:resource> or "
          "<trim:literal>");
    }
    Object object = res != nullptr ? Object::Resource(res->InnerText())
                                   : Object::Literal(lit->InnerText());
    SLIM_RETURN_NOT_OK(
        store->Add(Triple{*subject, *property, std::move(object)}));
  }
  return Status::OK();
}

Status SaveStore(const TripleStore& store, const std::string& path) {
  SLIM_OBS_HEARTBEAT("trim.persistence");
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return NotePersistenceFailure(
        Status::IoError("cannot open '" + path + "' for writing"), "save",
        path);
  }
  out << StoreToXml(store);
  if (!out.good()) {
    return NotePersistenceFailure(
        Status::IoError("write failed for '" + path + "'"), "save", path);
  }
  return Status::OK();
}

Status LoadStore(const std::string& path, TripleStore* store) {
  SLIM_OBS_HEARTBEAT("trim.persistence");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotePersistenceFailure(
        Status::IoError("cannot open '" + path + "' for reading"), "load",
        path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Status st = StoreFromXml(buf.str(), store);
  if (!st.ok()) return NotePersistenceFailure(std::move(st), "load", path);
  return st;
}

}  // namespace slim::trim
