#include "trim/store_stats.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/json.h"

namespace slim::trim {

namespace {

/// Bucket index for a predicate fanout n >= 1: the smallest i with
/// n <= 2^i (bucket 0 holds n == 1).
size_t FanoutBucket(uint64_t n) {
  size_t idx = 0;
  while ((uint64_t{1} << idx) < n) ++idx;
  return idx;
}

void RecordFanout(uint64_t n, StoreStats* stats) {
  if (n == 0) return;
  size_t bucket = FanoutBucket(n);
  if (stats->predicate_cardinality.size() <= bucket) {
    stats->predicate_cardinality.resize(bucket + 1, 0);
  }
  ++stats->predicate_cardinality[bucket];
  stats->predicate_max_fanout = std::max(stats->predicate_max_fanout, n);
}

void AppendU64(const char* key, uint64_t value, bool* first,
               std::string* out) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":";
  *out += std::to_string(value);
}

}  // namespace

std::string StoreStats::ToText() const {
  std::string out;
  auto line = [&out](const std::string& label, const std::string& value) {
    out += label;
    for (size_t i = label.size(); i < 26; ++i) out += ' ';
    out += ": " + value + "\n";
  };
  line("store backend", backend);
  line("live triples", std::to_string(live_triples));
  line("tombstoned slots", std::to_string(tombstoned));
  line("index subject", std::to_string(subject_keys) + " keys / " +
                            std::to_string(subject_postings) + " postings");
  line("index property", std::to_string(property_keys) + " keys / " +
                             std::to_string(property_postings) + " postings");
  line("index object", std::to_string(object_keys) + " keys / " +
                           std::to_string(object_postings) + " postings");
  std::string fanout = "max " + std::to_string(predicate_max_fanout);
  if (!predicate_cardinality.empty()) {
    fanout += ";";
    for (size_t i = 0; i < predicate_cardinality.size(); ++i) {
      fanout += " [<=" + std::to_string(uint64_t{1} << i) +
                "]=" + std::to_string(predicate_cardinality[i]);
    }
  }
  line("predicate fanout", fanout);
  if (shard_count > 0) {
    line("shards", std::to_string(shard_count) + " (live max " +
                       std::to_string(shard_max_live) + " / min " +
                       std::to_string(shard_min_live) + ", skew x100 " +
                       std::to_string(shard_skew_x100) + ")");
    line("epoch", std::to_string(epoch_current) + " (lag " +
                      std::to_string(epoch_lag) + ", limbo " +
                      std::to_string(epoch_limbo) + ", reclaimed " +
                      std::to_string(epoch_reclaimed) + "/" +
                      std::to_string(epoch_retired) + ")");
  }
  if (backend == "interned") {
    line("interned strings", std::to_string(interned_strings) + " (" +
                                 std::to_string(interned_bytes) + " bytes)");
  }
  line("approx resident bytes", std::to_string(approximate_bytes));
  return out;
}

std::string StoreStats::ToJson() const {
  std::string out = "{\"backend\":" + obs::JsonQuote(backend);
  bool first = false;
  AppendU64("live_triples", live_triples, &first, &out);
  AppendU64("tombstoned", tombstoned, &first, &out);
  AppendU64("subject_keys", subject_keys, &first, &out);
  AppendU64("property_keys", property_keys, &first, &out);
  AppendU64("object_keys", object_keys, &first, &out);
  AppendU64("subject_postings", subject_postings, &first, &out);
  AppendU64("property_postings", property_postings, &first, &out);
  AppendU64("object_postings", object_postings, &first, &out);
  AppendU64("predicate_max_fanout", predicate_max_fanout, &first, &out);
  out += ",\"predicate_cardinality\":[";
  for (size_t i = 0; i < predicate_cardinality.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(predicate_cardinality[i]);
  }
  out += "]";
  AppendU64("interned_strings", interned_strings, &first, &out);
  AppendU64("interned_bytes", interned_bytes, &first, &out);
  AppendU64("shard_count", shard_count, &first, &out);
  out += ",\"shard_live\":[";
  for (size_t i = 0; i < shard_live.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(shard_live[i]);
  }
  out += "]";
  AppendU64("shard_max_live", shard_max_live, &first, &out);
  AppendU64("shard_min_live", shard_min_live, &first, &out);
  AppendU64("shard_skew_x100", shard_skew_x100, &first, &out);
  AppendU64("epoch_current", epoch_current, &first, &out);
  AppendU64("epoch_oldest_pin", epoch_oldest_pin, &first, &out);
  AppendU64("epoch_lag", epoch_lag, &first, &out);
  AppendU64("epoch_retired", epoch_retired, &first, &out);
  AppendU64("epoch_reclaimed", epoch_reclaimed, &first, &out);
  AppendU64("epoch_limbo", epoch_limbo, &first, &out);
  AppendU64("approximate_bytes", approximate_bytes, &first, &out);
  out += "}";
  return out;
}

StoreStats ComputeStats(const TripleStore& store) {
  StoreStats stats;
  stats.backend = "hash";
  // The global per-key tallies are writer-state: hold the writer lock for
  // a consistent reading (stats refreshes are rare; the pause is one map
  // walk, no record scanning).
  util::MutexLock lock(&store.write_mu_);
  stats.live_triples = store.live_count_.load(std::memory_order_relaxed);
  stats.subject_keys = store.subject_live_.size();
  stats.property_keys = store.property_live_.size();
  stats.object_keys = store.object_live_.size();
  for (const auto& [key, live] : store.subject_live_) {
    stats.subject_postings += live;
  }
  for (const auto& [key, live] : store.property_live_) {
    stats.property_postings += live;
    RecordFanout(live, &stats);
  }
  for (const auto& [key, live] : store.object_live_) {
    stats.object_postings += live;
  }
  stats.shard_count = TripleStore::kNumShards;
  stats.shard_live.reserve(TripleStore::kNumShards);
  stats.shard_min_live = UINT64_MAX;
  for (const auto& shard : store.shards_) {
    uint64_t live = shard.live.load(std::memory_order_relaxed);
    stats.tombstoned += shard.dead.load(std::memory_order_relaxed);
    stats.shard_live.push_back(live);
    stats.shard_max_live = std::max(stats.shard_max_live, live);
    stats.shard_min_live = std::min(stats.shard_min_live, live);
  }
  if (stats.shard_min_live == UINT64_MAX) stats.shard_min_live = 0;
  if (stats.live_triples > 0) {
    stats.shard_skew_x100 =
        stats.shard_max_live * stats.shard_count * 100 / stats.live_triples;
  }
  EpochManager::Stats epoch = store.epoch_.GetStats();
  stats.epoch_current = epoch.current;
  stats.epoch_oldest_pin = epoch.oldest_pin;
  stats.epoch_lag = epoch.lag;
  stats.epoch_retired = epoch.retired;
  stats.epoch_reclaimed = epoch.reclaimed;
  stats.epoch_limbo = epoch.limbo;
  stats.approximate_bytes = store.ApproximateBytes();
  return stats;
}

StoreStats ComputeStats(const InternedTripleStore& store) {
  StoreStats stats;
  stats.backend = "interned";
  stats.live_triples = store.live_count_;
  std::unordered_map<uint32_t, uint64_t> per_property;
  std::unordered_set<uint32_t> subjects;
  std::unordered_set<uint32_t> objects;
  for (const auto& row : store.rows_) {
    if (row.dead) {
      ++stats.tombstoned;
      continue;
    }
    subjects.insert(row.subject);
    objects.insert(row.object);
    ++per_property[row.property];
  }
  stats.subject_keys = subjects.size();
  stats.property_keys = per_property.size();
  stats.object_keys = objects.size();
  stats.subject_postings = stats.live_triples;
  stats.property_postings = stats.live_triples;
  stats.object_postings = stats.live_triples;
  for (const auto& [property, fanout] : per_property) {
    RecordFanout(fanout, &stats);
  }
  stats.interned_strings = store.pool_.size();
  stats.interned_bytes = store.pool_.ApproximateBytes();
  stats.approximate_bytes = store.ApproximateBytes();
  return stats;
}

void PublishStoreStats(const StoreStats& stats,
                       obs::MetricsRegistry* registry) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::DefaultRegistry();
  reg.GetCounter("slim.store.refresh.calls")->Increment();
  auto set = [&reg](const std::string& name, uint64_t value) {
    reg.GetGauge(name)->Set(static_cast<int64_t>(value));
  };
  set("slim.store.live_triples", stats.live_triples);
  set("slim.store.tombstones", stats.tombstoned);
  set("slim.store.index.subject.keys", stats.subject_keys);
  set("slim.store.index.property.keys", stats.property_keys);
  set("slim.store.index.object.keys", stats.object_keys);
  set("slim.store.index.subject.postings", stats.subject_postings);
  set("slim.store.index.property.postings", stats.property_postings);
  set("slim.store.index.object.postings", stats.object_postings);
  set("slim.store.predicate.max_fanout", stats.predicate_max_fanout);
  set("slim.store.interned.strings", stats.interned_strings);
  set("slim.store.interned.bytes", stats.interned_bytes);
  set("slim.store.approx_bytes", stats.approximate_bytes);
  set("slim.store.shard.count", stats.shard_count);
  set("slim.store.shard.max_live", stats.shard_max_live);
  set("slim.store.shard.min_live", stats.shard_min_live);
  set("slim.store.shard.skew_x100", stats.shard_skew_x100);
  set("slim.store.epoch.current", stats.epoch_current);
  set("slim.store.epoch.oldest_pin", stats.epoch_oldest_pin);
  set("slim.store.epoch.lag", stats.epoch_lag);
  set("slim.store.epoch.retired", stats.epoch_retired);
  set("slim.store.epoch.reclaimed", stats.epoch_reclaimed);
  set("slim.store.epoch.limbo", stats.epoch_limbo);
}

}  // namespace slim::trim
