#ifndef SLIM_TRIM_RDF_XML_H_
#define SLIM_TRIM_RDF_XML_H_

/// \file rdf_xml.h
/// \brief RDF/XML interchange (paper §4.3: "since RDF defines a
/// serialization-syntax (in XML), we can use the representation for
/// interoperability between superimposed applications").
///
/// The trim-native format (persistence.h) is a statement list; this module
/// emits/consumes the subject-grouped RDF/XML style other tools expect:
///
///   <rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
///     <rdf:Description rdf:about="bundle1">
///       <bundleName>John Smith</bundleName>
///       <bundleContent rdf:resource="scrap4"/>
///     </rdf:Description>
///   </rdf:RDF>
///
/// Property names must be valid XML element names; names in this codebase
/// ("bundleName", "slim:type", ...) all qualify. Exotic property names are
/// rejected with InvalidArgument rather than silently mangled.

#include <string>

#include "trim/triple_store.h"
#include "util/result.h"

namespace slim::trim {

/// Serializes the store as RDF/XML, statements grouped by subject.
Result<std::string> StoreToRdfXml(const TripleStore& store);

/// Parses RDF/XML (the subset StoreToRdfXml emits: Description/about,
/// rdf:resource attributes, text literals) into `store` (cleared first).
Status StoreFromRdfXml(std::string_view xml_text, TripleStore* store);

}  // namespace slim::trim

#endif  // SLIM_TRIM_RDF_XML_H_
