#ifndef SLIM_TRIM_PERSISTENCE_H_
#define SLIM_TRIM_PERSISTENCE_H_

/// \file persistence.h
/// \brief XML persistence for TRIM (paper §4.4: "persist (through XML
/// files)").
///
/// The serialization is an RDF-flavored statement list:
///
///   <trim:store xmlns:trim="http://slim.ogi.edu/trim">
///     <trim:statement subject="bundle1" property="bundleName">
///       <trim:literal>John Smith</trim:literal>
///     </trim:statement>
///     <trim:statement subject="bundle1" property="bundleContent">
///       <trim:resource>scrap4</trim:resource>
///     </trim:statement>
///   </trim:store>

#include <string>

#include "trim/triple_store.h"
#include "util/result.h"

namespace slim::trim {

/// Serializes every triple in the store to XML text.
std::string StoreToXml(const TripleStore& store);

/// Parses XML text produced by StoreToXml into `store` (which is cleared
/// first). Duplicate statements in the file are an error.
Status StoreFromXml(std::string_view xml_text, TripleStore* store);

/// Writes the store to a file.
Status SaveStore(const TripleStore& store, const std::string& path);

/// Loads a store from a file (clears `store` first).
Status LoadStore(const std::string& path, TripleStore* store);

}  // namespace slim::trim

#endif  // SLIM_TRIM_PERSISTENCE_H_
