#ifndef SLIM_TRIM_TRIPLE_STORE_H_
#define SLIM_TRIM_TRIPLE_STORE_H_

/// \file triple_store.h
/// \brief TRIM — the Triple Manager (paper §4.4).
///
/// "Through TRIM, the DMI can create, remove, persist (through XML files),
/// query, and create simple views over the underlying triples. Query is
/// specified by selection, where one or more of the triple fields is fixed,
/// and the result is a set of triples. A view is specified by selecting a
/// resource (such as a Bundle id), where all triples that can be reached
/// from this resource are returned."
///
/// The store keeps three hash indexes (subject, property, object text) and
/// answers selection queries through the most selective fixed field.
///
/// Concurrency contract: *mutations* (Add/Remove/RemoveMatching/SetOne/
/// Clear) serialize on an internal `util::InstrumentedMutex` (lock site
/// `trim.store.write`), so concurrent writers are safe and their
/// contention shows up in the lock profiler — the instrumentation
/// prerequisite for the ROADMAP's concurrent-store work. *Reads* remain
/// deliberately lock-free and unsynchronized: queries nest (SelectEach
/// callbacks issue further Selects during joins), so a read lock here
/// would either deadlock or need to be recursive. Callers must therefore
/// not mutate the store while other threads read it (single-writer or
/// quiescent-readers; the existing single-threaded usage is unchanged).

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "trim/triple.h"
#include "util/instrumented_mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace slim::trim {

/// \brief A selection pattern: any subset of fields fixed.
struct TriplePattern {
  std::optional<std::string> subject;
  std::optional<std::string> property;
  std::optional<Object> object;

  /// Convenience constructors.
  static TriplePattern BySubject(std::string s) {
    return {std::move(s), std::nullopt, std::nullopt};
  }
  static TriplePattern ByProperty(std::string p) {
    return {std::nullopt, std::move(p), std::nullopt};
  }
  static TriplePattern ByObject(Object o) {
    return {std::nullopt, std::nullopt, std::move(o)};
  }
  static TriplePattern BySubjectProperty(std::string s, std::string p) {
    return {std::move(s), std::move(p), std::nullopt};
  }

  bool Matches(const Triple& t) const;
};

struct StoreStats;  // trim/store_stats.h

/// \brief In-memory triple store with S/P/O indexes.
class TripleStore {
 public:
  /// Which access path a selection settled on (obs: the
  /// `trim.select.index.*` counters; also reified into query EXPLAIN
  /// plans, see slim/query_plan.h).
  enum class IndexPath { kSubject, kObject, kProperty, kScan, kEmpty };

  /// Stable lowercase name of an IndexPath ("subject", "scan", ...).
  static const char* IndexPathName(IndexPath path);

  /// \brief What a selection *would* do: the access path CandidateList
  /// would choose and how many candidate ids that path yields (the store
  /// size for a full scan, 0 for a provably-empty selection).
  struct AccessPlan {
    IndexPath path = IndexPath::kScan;
    size_t candidates = 0;
  };

  /// \brief Per-call execution statistics for SelectEach (EXPLAIN ANALYZE).
  struct SelectStats {
    IndexPath path = IndexPath::kScan;
    uint64_t candidates = 0;  ///< Ids the chosen path offered.
    uint64_t examined = 0;    ///< Live candidates tested against the pattern.
    uint64_t matched = 0;     ///< Rows handed to the callback.
  };

  TripleStore() = default;
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  /// Adds a triple. Duplicate statements are allowed only when
  /// `allow_duplicates` is set (default: rejected with AlreadyExists, the
  /// RDF set semantics the paper's representation assumes).
  Status Add(Triple triple, bool allow_duplicates = false);

  /// Convenience: add (s, p, literal) / (s, p, resource).
  Status AddLiteral(std::string subject, std::string property,
                    std::string literal);
  Status AddResource(std::string subject, std::string property,
                     std::string resource);

  /// Removes one exact statement; NotFound if absent.
  Status Remove(const Triple& triple);

  /// Removes every triple matching the pattern; returns how many went.
  size_t RemoveMatching(const TriplePattern& pattern);

  /// True iff the exact statement is present.
  bool Contains(const Triple& triple) const;

  /// Selection query (paper: "one or more of the triple fields is fixed,
  /// and the result is a set of triples").
  std::vector<Triple> Select(const TriplePattern& pattern) const;

  /// Streaming selection; `fn` returning false stops the scan early.
  /// When `stats` is non-null the call additionally reports the access path
  /// taken and the rows examined/matched (the EXPLAIN ANALYZE feed).
  void SelectEach(const TriplePattern& pattern,
                  const std::function<bool(const Triple&)>& fn,
                  SelectStats* stats = nullptr) const;

  /// Plans a selection without executing it: which index would serve the
  /// pattern and how many candidates it holds. Never bumps obs counters.
  AccessPlan PlanAccess(const TriplePattern& pattern) const;

  /// First object for (subject, property), if any. The common "attribute
  /// read" access path of a DMI.
  std::optional<Object> GetOne(const std::string& subject,
                               const std::string& property) const;

  /// Replaces the object of (subject, property): removes all existing
  /// statements with that subject+property, then adds the new one. The
  /// "attribute write" access path of a DMI.
  Status SetOne(const std::string& subject, const std::string& property,
                Object object);

  /// View (paper §4.4): every triple reachable from `resource` by
  /// following resource-valued objects, including the starting resource's
  /// own triples. Cycle-safe.
  std::vector<Triple> ViewFrom(const std::string& resource) const;

  /// All subjects reachable from `resource` (the resources a view spans).
  std::vector<std::string> ReachableResources(const std::string& resource) const;

  /// Number of live triples.
  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  /// \name Index key counts (distinct subjects/properties/object texts).
  /// Cheap O(1) reads; the query planner divides size() by these for
  /// average-cardinality estimates of runtime-bound patterns.
  /// @{
  size_t DistinctSubjects() const { return by_subject_.size(); }
  size_t DistinctProperties() const { return by_property_.size(); }
  size_t DistinctObjects() const { return by_object_text_.size(); }
  /// @}

  /// Removes every triple.
  void Clear();

  /// Visits every live triple.
  void ForEach(const std::function<void(const Triple&)>& fn) const;

  /// Rough heap footprint of stored triple data in bytes (for the space
  /// trade-off experiment, paper §6).
  size_t ApproximateBytes() const;

 private:
  friend StoreStats ComputeStats(const TripleStore& store);

  using TripleId = uint32_t;
  static constexpr TripleId kTombstone = UINT32_MAX;

  /// Lock-split internals: public mutators take write_mu_ once and
  /// delegate here, so compound operations (SetOne = RemoveMatching + Add)
  /// never re-enter the non-recursive mutex.
  Status AddLocked(Triple triple, bool allow_duplicates)
      REQUIRES(write_mu_);
  Status RemoveLocked(const Triple& triple) REQUIRES(write_mu_);
  size_t RemoveMatchingLocked(const TriplePattern& pattern)
      REQUIRES(write_mu_);

  void IndexAdd(TripleId id);
  void IndexRemove(TripleId id);
  /// Candidate ids from the most selective index for a pattern; nullptr
  /// means "no usable index, scan everything". `path` (optional) reports
  /// the chosen access path.
  const std::vector<TripleId>* CandidateList(const TriplePattern& pattern,
                                             std::vector<TripleId>* scratch,
                                             IndexPath* path = nullptr) const;

  /// Serializes mutations only; see the concurrency contract above.
  mutable util::InstrumentedMutex write_mu_{"trim.store.write"};

  std::vector<Triple> triples_;       // slot = id; tombstoned slots reused
  std::vector<TripleId> free_slots_;
  size_t live_count_ = 0;
  std::vector<bool> live_;

  std::unordered_map<std::string, std::vector<TripleId>> by_subject_;
  std::unordered_map<std::string, std::vector<TripleId>> by_property_;
  std::unordered_map<std::string, std::vector<TripleId>> by_object_text_;
};

}  // namespace slim::trim

#endif  // SLIM_TRIM_TRIPLE_STORE_H_
