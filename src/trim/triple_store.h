#ifndef SLIM_TRIM_TRIPLE_STORE_H_
#define SLIM_TRIM_TRIPLE_STORE_H_

/// \file triple_store.h
/// \brief TRIM — the Triple Manager (paper §4.4).
///
/// "Through TRIM, the DMI can create, remove, persist (through XML files),
/// query, and create simple views over the underlying triples. Query is
/// specified by selection, where one or more of the triple fields is fixed,
/// and the result is a set of triples. A view is specified by selecting a
/// resource (such as a Bundle id), where all triples that can be reached
/// from this resource are returned."
///
/// The store keeps three hash indexes (subject, property, object text),
/// sharded 16 ways by subject hash, and answers selection queries through
/// the most selective fixed field.
///
/// Concurrency contract (DESIGN.md §10 is the full specification):
/// *mutations* (Add/Remove/RemoveMatching/SetOne/ApplyBatch/Clear)
/// serialize on an internal `util::InstrumentedMutex` (lock site
/// `trim.store.write`), each committing one **epoch**: every record
/// carries the epoch it was born and the epoch it died, and the whole
/// batch becomes visible atomically when the epoch counter advances.
/// *Reads* (Select/SelectEach/Contains/GetOne/ViewFrom/ForEach/Distinct*)
/// are lock-free and safe to run concurrently with writers: each read pins
/// the current epoch on entry and evaluates against that frozen snapshot,
/// so a reader never blocks a writer, never observes a half-applied batch,
/// and nested reads on the same thread (SelectEach callbacks issuing
/// further Selects during joins) share the outer snapshot. Hold a
/// `TripleStore::Snapshot` to keep one snapshot across several calls.
/// Memory retired by writers (tombstoned payloads, replaced postings) is
/// reclaimed only after the oldest pinned epoch advances past it.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trim/epoch.h"
#include "trim/triple.h"
#include "util/instrumented_mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace slim::trim {

/// \brief A selection pattern: any subset of fields fixed.
struct TriplePattern {
  std::optional<std::string> subject;
  std::optional<std::string> property;
  std::optional<Object> object;

  /// Convenience constructors.
  static TriplePattern BySubject(std::string s) {
    return {std::move(s), std::nullopt, std::nullopt};
  }
  static TriplePattern ByProperty(std::string p) {
    return {std::nullopt, std::move(p), std::nullopt};
  }
  static TriplePattern ByObject(Object o) {
    return {std::nullopt, std::nullopt, std::move(o)};
  }
  static TriplePattern BySubjectProperty(std::string s, std::string p) {
    return {std::move(s), std::move(p), std::nullopt};
  }

  bool Matches(const Triple& t) const;
};

struct StoreStats;  // trim/store_stats.h

/// \brief In-memory triple store with sharded S/P/O indexes and
/// epoch-based snapshot reads.
class TripleStore {
 public:
  /// Shard fan-out, matching the obs registry's shard count. Subjects map
  /// to shards deterministically (ShardOf), so save/load round-trips
  /// re-create identical iteration order.
  static constexpr size_t kNumShards = 16;

  /// Which access path a selection settled on (obs: the
  /// `trim.select.index.*` counters; also reified into query EXPLAIN
  /// plans, see slim/query_plan.h).
  enum class IndexPath { kSubject, kObject, kProperty, kScan, kEmpty };

  /// Stable lowercase name of an IndexPath ("subject", "scan", ...).
  static const char* IndexPathName(IndexPath path);

  /// \brief What a selection *would* do: the access path CandidateList
  /// would choose and how many candidate ids that path yields (the store
  /// size for a full scan, 0 for a provably-empty selection).
  struct AccessPlan {
    IndexPath path = IndexPath::kScan;
    size_t candidates = 0;
  };

  /// \brief Per-call execution statistics for SelectEach (EXPLAIN ANALYZE).
  struct SelectStats {
    IndexPath path = IndexPath::kScan;
    uint64_t candidates = 0;  ///< Ids the chosen path offered.
    uint64_t examined = 0;    ///< Live candidates tested against the pattern.
    uint64_t matched = 0;     ///< Rows handed to the callback.
  };

  /// \brief RAII snapshot pin: freezes one epoch for this thread until
  /// destroyed, so a sequence of reads (a whole query execution) observes
  /// one consistent store state regardless of concurrent writers.
  ///
  /// Pins nest per thread — reads issued while a Snapshot is held reuse
  /// its epoch — and are thread-affine: create and destroy on the same
  /// thread. Movable so callers can hand the pin down a call chain.
  class Snapshot {
   public:
    explicit Snapshot(const TripleStore& store)
        : mgr_(&store.epoch_), epoch_(mgr_->Pin()) {}
    ~Snapshot() {
      if (mgr_ != nullptr) mgr_->Unpin();
    }
    Snapshot(Snapshot&& other) noexcept
        : mgr_(other.mgr_), epoch_(other.epoch_) {
      other.mgr_ = nullptr;
    }
    Snapshot& operator=(Snapshot&& other) noexcept {
      if (this != &other) {
        if (mgr_ != nullptr) mgr_->Unpin();
        mgr_ = other.mgr_;
        epoch_ = other.epoch_;
        other.mgr_ = nullptr;
      }
      return *this;
    }
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    /// The pinned epoch (diagnostics; compare against GetEpochStats()).
    uint64_t epoch() const { return epoch_; }

   private:
    EpochManager* mgr_;
    uint64_t epoch_;
  };

  /// \brief One mutation inside ApplyBatch.
  struct WriteOp {
    enum class Kind { kAdd, kRemove };
    Kind kind = Kind::kAdd;
    Triple triple;
    bool allow_duplicates = false;  ///< Only meaningful for kAdd.

    static WriteOp AddOp(Triple t, bool allow_duplicates = false) {
      return {Kind::kAdd, std::move(t), allow_duplicates};
    }
    static WriteOp RemoveOp(Triple t) { return {Kind::kRemove, std::move(t)}; }
  };

  /// \brief Outcome of ApplyBatch: the epoch the batch committed at and a
  /// per-op status vector (1:1 with the input ops).
  struct BatchResult {
    uint64_t epoch = 0;
    size_t applied = 0;  ///< Ops whose status is OK.
    std::vector<Status> statuses;
  };

  /// Epoch-domain introspection (feeds `slim.store.epoch.*`).
  using EpochStats = EpochManager::Stats;

  TripleStore() = default;
  ~TripleStore();
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  /// Adds a triple. Duplicate statements are allowed only when
  /// `allow_duplicates` is set (default: rejected with AlreadyExists, the
  /// RDF set semantics the paper's representation assumes).
  Status Add(Triple triple, bool allow_duplicates = false);

  /// Convenience: add (s, p, literal) / (s, p, resource).
  Status AddLiteral(std::string subject, std::string property,
                    std::string literal);
  Status AddResource(std::string subject, std::string property,
                     std::string resource);

  /// Removes one exact statement; NotFound if absent.
  Status Remove(const Triple& triple);

  /// Removes every triple matching the pattern; returns how many went.
  size_t RemoveMatching(const TriplePattern& pattern);

  /// Applies a whole batch of adds/removes as ONE epoch: a concurrent
  /// reader sees either none of the batch (pinned before the commit) or
  /// all of it (pinned after) — never a prefix.
  BatchResult ApplyBatch(std::vector<WriteOp> ops);

  /// True iff the exact statement is present.
  bool Contains(const Triple& triple) const;

  /// Selection query (paper: "one or more of the triple fields is fixed,
  /// and the result is a set of triples").
  std::vector<Triple> Select(const TriplePattern& pattern) const;

  /// Streaming selection; `fn` returning false stops the scan early.
  /// When `stats` is non-null the call additionally reports the access path
  /// taken and the rows examined/matched (the EXPLAIN ANALYZE feed).
  void SelectEach(const TriplePattern& pattern,
                  const std::function<bool(const Triple&)>& fn,
                  SelectStats* stats = nullptr) const;

  /// Plans a selection without executing it: which index would serve the
  /// pattern and how many candidates it holds. Never bumps obs counters.
  AccessPlan PlanAccess(const TriplePattern& pattern) const;

  /// First object for (subject, property), if any. The common "attribute
  /// read" access path of a DMI.
  std::optional<Object> GetOne(const std::string& subject,
                               const std::string& property) const;

  /// Replaces the object of (subject, property): removes all existing
  /// statements with that subject+property, then adds the new one, as one
  /// atomically-visible epoch. The "attribute write" access path of a DMI.
  Status SetOne(const std::string& subject, const std::string& property,
                Object object);

  /// View (paper §4.4): every triple reachable from `resource` by
  /// following resource-valued objects, including the starting resource's
  /// own triples. Cycle-safe; evaluated against one snapshot.
  std::vector<Triple> ViewFrom(const std::string& resource) const;

  /// All subjects reachable from `resource` (the resources a view spans).
  std::vector<std::string> ReachableResources(const std::string& resource) const;

  /// Number of live triples.
  size_t size() const { return live_count_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

  /// \name Index key counts (distinct subjects/properties/object texts).
  /// Cheap O(1) reads; the query planner divides size() by these for
  /// average-cardinality estimates of runtime-bound patterns.
  /// @{
  size_t DistinctSubjects() const {
    return distinct_subjects_.load(std::memory_order_relaxed);
  }
  size_t DistinctProperties() const {
    return distinct_properties_.load(std::memory_order_relaxed);
  }
  size_t DistinctObjects() const {
    return distinct_objects_.load(std::memory_order_relaxed);
  }
  /// @}

  /// Removes every triple (one epoch; pinned readers keep their view).
  void Clear();

  /// Visits every live triple, shard by shard in deterministic order.
  void ForEach(const std::function<void(const Triple&)>& fn) const;

  /// Rough heap footprint of stored triple data in bytes (for the space
  /// trade-off experiment, paper §6).
  size_t ApproximateBytes() const;

  /// \name Concurrency introspection
  /// @{
  /// Deterministic shard of a subject (FNV-1a; stable across platforms).
  static size_t ShardOf(std::string_view subject);
  /// Live-triple count per shard (feeds `slim.store.shard.*` gauges).
  std::array<uint64_t, kNumShards> ShardLiveCounts() const;
  /// Epoch counter, oldest pin, and limbo occupancy.
  EpochStats GetEpochStats() const { return epoch_.GetStats(); }
  /// Takes the writer lock, drains every reclaimable limbo entry, and
  /// compacts shards whose garbage is no longer visible to any reader.
  /// Writers also do this opportunistically; this forces it (tests,
  /// stats refresh). Returns the number of limbo entries freed.
  size_t ReclaimRetired();
  /// @}

 private:
  friend StoreStats ComputeStats(const TripleStore& store);
  class WriterScope;

  /// \name Storage layout (DESIGN.md §10)
  ///
  /// Per shard: an append-only record log (fixed-capacity chunk table, so
  /// a record's address never moves) plus three chained hash indexes whose
  /// posting lists are grow-by-copy spines. Records carry birth/death
  /// epochs; nothing is ever mutated in place in a way a pinned reader
  /// could observe, and replaced structures go through the epoch limbo.
  /// @{
  static constexpr size_t kChunkSize = 512;   ///< Records per chunk.
  static constexpr size_t kMaxChunks = 2048;  ///< 1M records per shard.
  static constexpr size_t kIndexBuckets = 1024;
  static constexpr size_t kInitialSpineCap = 4;
  /// Commits between opportunistic reclaim/compaction sweeps.
  static constexpr uint64_t kReclaimInterval = 64;
  /// A shard compacts when its dead-record count passes this floor and
  /// exceeds its live count (amortized O(1) per removal).
  static constexpr uint64_t kCompactDeadFloor = 1024;

  struct Record {
    Triple triple;
    std::atomic<uint64_t> birth{0};
    std::atomic<uint64_t> death{EpochManager::kNeverDies};
  };
  struct Chunk {
    Record records[kChunkSize];
  };
  /// Posting-list storage: fixed-capacity slot array + published count.
  struct Spine {
    explicit Spine(size_t cap) : slots(cap) {}
    std::vector<uint32_t> slots;
    std::atomic<uint64_t> used{0};
  };
  struct PostingList {
    PostingList() : spine(new Spine(kInitialSpineCap)) {}
    ~PostingList() { delete spine.load(std::memory_order_relaxed); }
    std::atomic<Spine*> spine;
  };
  /// Chained hash node; nodes are append-at-head and never unlinked
  /// (whole-guts compaction is the only way a key disappears).
  struct IndexNode {
    IndexNode(std::string k, IndexNode* nxt) : key(std::move(k)), next(nxt) {}
    const std::string key;
    PostingList list;
    /// Current live postings under this key (access-path sizing; exact
    /// when quiescent, approximate mid-batch — see CandidateList).
    std::atomic<uint64_t> live{0};
    IndexNode* const next;
  };
  struct IndexMap {
    std::array<std::atomic<IndexNode*>, kIndexBuckets> buckets{};
  };
  struct ShardGuts {
    std::atomic<uint64_t> size{0};  ///< Published records (incl. dead).
    std::array<std::atomic<Chunk*>, kMaxChunks> chunks{};
    IndexMap by_subject;
    IndexMap by_property;
    IndexMap by_object;
  };
  struct alignas(64) Shard {
    std::atomic<ShardGuts*> guts{nullptr};
    std::atomic<uint64_t> live{0};
    std::atomic<uint64_t> dead{0};
    /// Largest death epoch in this shard's log; writer-only under
    /// write_mu_. Compaction is legal once MinPinned() passes it.
    uint64_t max_death_epoch = 0;
  };
  /// @}

  /// Lock-split internals: public mutators take write_mu_ once, open one
  /// WriterScope, and delegate here, so compound operations (SetOne =
  /// RemoveMatching + Add) commit as a single epoch.
  Status AddLocked(Triple triple, bool allow_duplicates, WriterScope& ws)
      REQUIRES(write_mu_);
  Status RemoveLocked(const Triple& triple, WriterScope& ws)
      REQUIRES(write_mu_);
  size_t RemoveMatchingLocked(const TriplePattern& pattern, WriterScope& ws)
      REQUIRES(write_mu_);
  void BumpKeyLive(const Triple& t, int delta) REQUIRES(write_mu_);
  void MaybeCompactShard(size_t shard_idx, bool force = false)
      REQUIRES(write_mu_);
  void ReclaimLocked() REQUIRES(write_mu_);

  /// Reader entry/exit: returns the snapshot epoch to evaluate at — the
  /// pending epoch when this thread is the writer mid-batch (so compound
  /// mutations read their own effects), a pinned epoch otherwise.
  struct ReadPin {
    uint64_t snapshot = 0;
    bool pinned = false;
  };
  ReadPin BeginRead() const;
  void EndRead(ReadPin pin) const;

  /// The access path a pattern resolves to, plus the index nodes (one per
  /// shard holding the key) a non-scan path will visit.
  struct PathChoice {
    IndexPath path = IndexPath::kScan;
    uint64_t candidates = 0;
    std::array<const IndexNode*, kNumShards> nodes{};
    std::array<const ShardGuts*, kNumShards> node_guts{};
    size_t node_count = 0;
  };
  PathChoice ChoosePath(const TriplePattern& pattern, uint64_t snapshot,
                        const std::array<const ShardGuts*, kNumShards>& guts)
      const;

  static Record* RecordAt(const ShardGuts& guts, uint32_t slot);
  static bool Visible(const Record& rec, uint64_t snapshot);
  static size_t Bucket(std::string_view key) {
    // Shards consume the hash's low bits (ShardOf), so within one shard
    // every key agrees on them; bucket on disjoint high bits or all
    // chains collapse into kIndexBuckets / kNumShards buckets.
    return (Fnv1a(key) >> 32) & (kIndexBuckets - 1);
  }
  static uint64_t Fnv1a(std::string_view s);
  static IndexNode* FindNode(const IndexMap& map, std::string_view key);
  /// FindNode with the bucket index precomputed — the bucket depends only
  /// on the key, so cross-shard gathers hash once and probe every shard.
  static IndexNode* FindNodeAt(const IndexMap& map, std::string_view key,
                               size_t bucket);
  static void FreeGuts(ShardGuts* guts);

  IndexNode* FindOrCreateNode(IndexMap& map, const std::string& key)
      REQUIRES(write_mu_);
  void AppendPosting(IndexNode* node, uint32_t slot, const ShardGuts& guts)
      REQUIRES(write_mu_);

  /// Serializes mutations only; see the concurrency contract above.
  mutable util::InstrumentedMutex write_mu_{"trim.store.write"};
  /// Epoch domain shared by all shards (mutable: const reads pin it).
  // slim-lint: allow(unguarded) -- internally synchronized epoch domain
  mutable EpochManager epoch_;

  // slim-lint: allow(unguarded) -- MVCC: read lock-free under an epoch pin
  Shard shards_[kNumShards];

  std::atomic<uint64_t> live_count_{0};
  std::atomic<uint64_t> distinct_subjects_{0};
  std::atomic<uint64_t> distinct_properties_{0};
  std::atomic<uint64_t> distinct_objects_{0};

  /// Global per-key live counts (a property/object key spans shards, so
  /// the 0<->1 transitions that maintain the distinct counters need a
  /// cross-shard tally). Writer-only; stats readers take write_mu_.
  std::unordered_map<std::string, uint64_t> subject_live_
      GUARDED_BY(write_mu_);
  std::unordered_map<std::string, uint64_t> property_live_
      GUARDED_BY(write_mu_);
  std::unordered_map<std::string, uint64_t> object_live_
      GUARDED_BY(write_mu_);

  uint64_t commit_count_ GUARDED_BY(write_mu_) = 0;
};

}  // namespace slim::trim

#endif  // SLIM_TRIM_TRIPLE_STORE_H_
