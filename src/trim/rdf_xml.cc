#include "trim/rdf_xml.h"

#include <cctype>
#include <map>

#include "doc/xml/parser.h"
#include "doc/xml/writer.h"

namespace slim::trim {

namespace xml = slim::doc::xml;

namespace {

constexpr const char* kRdfNs = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";

bool IsValidElementName(const std::string& name) {
  if (name.empty()) return false;
  char first = name[0];
  if (!(std::isalpha(static_cast<unsigned char>(first)) || first == '_')) {
    return false;
  }
  int colons = 0;
  for (char c : name) {
    if (c == ':') {
      ++colons;
      continue;
    }
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.')) {
      return false;
    }
  }
  return colons <= 1 && name.back() != ':';
}

}  // namespace

Result<std::string> StoreToRdfXml(const TripleStore& store) {
  // Group statements by subject, preserving first-seen subject order.
  std::vector<std::string> subject_order;
  std::map<std::string, std::vector<Triple>> by_subject;
  Status bad;
  store.ForEach([&](const Triple& t) {
    if (!bad.ok()) return;
    if (!IsValidElementName(t.property)) {
      bad = Status::InvalidArgument(
          "property '" + t.property +
          "' is not a valid XML element name; cannot emit RDF/XML");
      return;
    }
    auto [it, inserted] = by_subject.try_emplace(t.subject);
    if (inserted) subject_order.push_back(t.subject);
    it->second.push_back(t);
  });
  SLIM_RETURN_NOT_OK(bad);

  xml::Document doc;
  auto root = std::make_unique<xml::Element>("rdf:RDF");
  root->SetAttribute("xmlns:rdf", kRdfNs);
  for (const std::string& subject : subject_order) {
    xml::Element* desc = root->AddElement("rdf:Description");
    desc->SetAttribute("rdf:about", subject);
    for (const Triple& t : by_subject[subject]) {
      xml::Element* prop = desc->AddElement(t.property);
      if (t.object.is_resource()) {
        prop->SetAttribute("rdf:resource", t.object.text);
      } else if (!t.object.text.empty()) {
        prop->AddText(t.object.text);
      }
    }
  }
  doc.set_root(std::move(root));
  return xml::WriteXml(doc);
}

Status StoreFromRdfXml(std::string_view xml_text, TripleStore* store) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  xml::ParseOptions opts;
  opts.strip_whitespace_text = false;
  SLIM_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> doc,
                        xml::ParseXml(xml_text, opts));
  if (doc->root() == nullptr || doc->root()->name() != "rdf:RDF") {
    return Status::ParseError("root element is not <rdf:RDF>");
  }
  store->Clear();
  for (xml::Element* desc : doc->root()->ChildElements("rdf:Description")) {
    const std::string* about = desc->FindAttribute("rdf:about");
    if (about == nullptr || about->empty()) {
      return Status::ParseError(
          "<rdf:Description> missing rdf:about attribute");
    }
    for (xml::Element* prop : desc->ChildElements()) {
      const std::string* resource = prop->FindAttribute("rdf:resource");
      Object object = resource != nullptr
                          ? Object::Resource(*resource)
                          : Object::Literal(prop->InnerText());
      SLIM_RETURN_NOT_OK(
          store->Add(Triple{*about, prop->name(), std::move(object)}));
    }
  }
  return Status::OK();
}

}  // namespace slim::trim
