#include "trim/epoch.h"

#include <algorithm>

namespace slim::trim {
namespace {

// Per-thread nested-pin cache. A thread that pins an EpochManager and then
// pins it again (a join running a nested SelectEach on the same store)
// must reuse the outer snapshot — both for correctness (one consistent
// snapshot per logical read) and so the reader-slot table holds one entry
// per thread, not one per nesting level. A thread can realistically hold
// pins on a couple of stores at once (e.g. a query over one store while a
// persistence round-trip touches another); 8 concurrent managers per
// thread is far above anything the codebase does.
struct PinEntry {
  const EpochManager* mgr = nullptr;
  int slot = -1;  // index into slots_, or -1 for the overflow list
  uint64_t epoch = 0;
  int depth = 0;
};

constexpr int kMaxThreadPins = 8;
thread_local PinEntry t_pins[kMaxThreadPins];

PinEntry* FindPin(const EpochManager* mgr) {
  for (auto& e : t_pins) {
    if (e.mgr == mgr) return &e;
  }
  return nullptr;
}

PinEntry* FreePin() {
  for (auto& e : t_pins) {
    if (e.mgr == nullptr) return &e;
  }
  return nullptr;
}

}  // namespace

EpochManager::~EpochManager() {
  // No readers can exist by now (destroying the store while reads are in
  // flight is a caller bug); free whatever is still in limbo.
  util::MutexLock lock(&limbo_mu_);
  for (auto& r : limbo_) {
    r.reclaim();
    reclaimed_total_.fetch_add(1, std::memory_order_relaxed);
  }
  limbo_.clear();
  limbo_size_.store(0, std::memory_order_relaxed);
}

uint64_t EpochManager::Pin() {
  PinEntry* entry = FindPin(this);
  if (entry != nullptr) {
    ++entry->depth;
    return entry->epoch;
  }
  entry = FreePin();

  // Claim a slot, then re-check the epoch: if the writer published a new
  // epoch between our read and our store, re-publish the newer pin. The
  // stale (smaller) pin is never unsafe — it only delays reclamation — but
  // re-checking keeps MinPinned() tight. The loop terminates because each
  // iteration observes a strictly newer epoch.
  for (size_t i = 0; entry != nullptr && i < kReaderSlots; ++i) {
    uint64_t e = current();
    uint64_t expect = 0;
    if (!slots_[i].epoch.compare_exchange_strong(expect, e,
                                                 std::memory_order_seq_cst)) {
      continue;
    }
    for (;;) {
      uint64_t now = current();
      if (now == e) break;
      e = now;
      slots_[i].epoch.store(e, std::memory_order_seq_cst);
    }
    *entry = PinEntry{this, static_cast<int>(i), e, 1};
    return e;
  }

  // Slow path: slot table full (or this thread already tracks 8 managers).
  // The overflow list is mutex-guarded; the epoch read under the lock is
  // race-free against Publish because MinPinned() also takes the lock.
  uint64_t e;
  {
    util::MutexLock lock(&overflow_mu_);
    e = current();
    overflow_.push_back(e);
    overflow_count_.fetch_add(1, std::memory_order_seq_cst);
  }
  if (entry != nullptr) *entry = PinEntry{this, -1, e, 1};
  return e;
}

void EpochManager::Unpin() {
  PinEntry* entry = FindPin(this);
  if (entry == nullptr) {
    // Pin() ran with all 8 thread-pin entries busy; the pin went to the
    // overflow list untracked, so we don't know its epoch. Releasing the
    // LARGEST overflow entry is always conservative: every remaining entry
    // is <= some still-pinned epoch, so MinPinned() can only underestimate
    // (delaying reclamation, never corrupting it).
    ReleaseOverflow(kNeverDies);
    return;
  }
  if (--entry->depth > 0) return;
  if (entry->slot >= 0) {
    slots_[entry->slot].epoch.store(0, std::memory_order_seq_cst);
  } else {
    ReleaseOverflow(entry->epoch);
  }
  *entry = PinEntry{};
}

void EpochManager::ReleaseOverflow(uint64_t epoch) {
  util::MutexLock lock(&overflow_mu_);
  if (overflow_.empty()) return;
  auto it = epoch == kNeverDies ? overflow_.end()
                                : std::find(overflow_.begin(), overflow_.end(),
                                            epoch);
  if (it == overflow_.end()) {
    // Exact entry already consumed by an untracked release (or this IS the
    // untracked release): drop the max — see the conservatism note above.
    it = std::max_element(overflow_.begin(), overflow_.end());
  }
  overflow_.erase(it);
  overflow_count_.fetch_sub(1, std::memory_order_seq_cst);
}

uint64_t EpochManager::OldestPin() const {
  uint64_t oldest = kNeverDies;
  for (const auto& s : slots_) {
    uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < oldest) oldest = e;
  }
  if (overflow_count_.load(std::memory_order_seq_cst) > 0) {
    util::MutexLock lock(&overflow_mu_);
    for (uint64_t e : overflow_) {
      if (e < oldest) oldest = e;
    }
  }
  return oldest;
}

uint64_t EpochManager::MinPinned() const {
  uint64_t oldest = OldestPin();
  return oldest == kNeverDies ? current() + 1 : oldest;
}

void EpochManager::Retire(uint64_t safe_epoch, std::function<void()> reclaim) {
  util::MutexLock lock(&limbo_mu_);
  limbo_.push_back(Retired{safe_epoch, std::move(reclaim)});
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  limbo_size_.fetch_add(1, std::memory_order_relaxed);
}

size_t EpochManager::Reclaim() {
  if (limbo_size_.load(std::memory_order_relaxed) == 0) return 0;
  uint64_t min_pinned = MinPinned();
  size_t freed = 0;
  util::MutexLock lock(&limbo_mu_);
  // Safe epochs are monotone non-decreasing in retirement order, so the
  // first unsafe entry ends the drain.
  while (!limbo_.empty() && limbo_.front().safe_epoch <= min_pinned) {
    limbo_.front().reclaim();
    limbo_.pop_front();
    ++freed;
  }
  if (freed > 0) {
    reclaimed_total_.fetch_add(freed, std::memory_order_relaxed);
    limbo_size_.fetch_sub(freed, std::memory_order_relaxed);
  }
  return freed;
}

EpochManager::Stats EpochManager::GetStats() const {
  Stats s;
  s.current = current();
  uint64_t oldest = OldestPin();
  if (oldest != kNeverDies) {
    s.oldest_pin = oldest;
    s.lag = s.current > oldest ? s.current - oldest : 0;
  }
  s.retired = retired_total_.load(std::memory_order_relaxed);
  s.reclaimed = reclaimed_total_.load(std::memory_order_relaxed);
  s.limbo = limbo_size_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace slim::trim
