#include "trim/triple_store.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "obs/obs.h"

namespace slim::trim {

std::string TripleToString(const Triple& t) {
  std::string out = "(" + t.subject + ", " + t.property + ", ";
  if (t.object.is_resource()) {
    out += "<" + t.object.text + ">";
  } else {
    out += "\"" + t.object.text + "\"";
  }
  out += ")";
  return out;
}

const char* TripleStore::IndexPathName(IndexPath path) {
  switch (path) {
    case IndexPath::kSubject: return "subject";
    case IndexPath::kObject: return "object";
    case IndexPath::kProperty: return "property";
    case IndexPath::kScan: return "scan";
    case IndexPath::kEmpty: return "empty";
  }
  return "scan";
}

bool TriplePattern::Matches(const Triple& t) const {
  if (subject && *subject != t.subject) return false;
  if (property && *property != t.property) return false;
  if (object && *object != t.object) return false;
  return true;
}

Status TripleStore::Add(Triple triple, bool allow_duplicates) {
  util::MutexLock lock(&write_mu_);
  return AddLocked(std::move(triple), allow_duplicates);
}

Status TripleStore::AddLocked(Triple triple, bool allow_duplicates) {
  if (triple.subject.empty() || triple.property.empty()) {
    SLIM_OBS_COUNT("trim.add.invalid");
    return Status::InvalidArgument("triple subject/property must be non-empty");
  }
  if (!allow_duplicates && Contains(triple)) {
    SLIM_OBS_COUNT("trim.add.duplicate");
    return Status::AlreadyExists("duplicate statement " +
                                 TripleToString(triple));
  }
  SLIM_OBS_COUNT("trim.add.ok");
  TripleId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    triples_[id] = std::move(triple);
    live_[id] = true;
  } else {
    id = static_cast<TripleId>(triples_.size());
    triples_.push_back(std::move(triple));
    live_.push_back(true);
  }
  ++live_count_;
  IndexAdd(id);
  return Status::OK();
}

Status TripleStore::AddLiteral(std::string subject, std::string property,
                               std::string literal) {
  return Add(Triple{std::move(subject), std::move(property),
                    Object::Literal(std::move(literal))});
}

Status TripleStore::AddResource(std::string subject, std::string property,
                                std::string resource) {
  return Add(Triple{std::move(subject), std::move(property),
                    Object::Resource(std::move(resource))});
}

void TripleStore::IndexAdd(TripleId id) {
  const Triple& t = triples_[id];
  by_subject_[t.subject].push_back(id);
  by_property_[t.property].push_back(id);
  by_object_text_[t.object.text].push_back(id);
}

void TripleStore::IndexRemove(TripleId id) {
  const Triple& t = triples_[id];
  auto drop = [id](std::unordered_map<std::string, std::vector<TripleId>>& map,
                   const std::string& key) {
    auto it = map.find(key);
    if (it == map.end()) return;
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), id), vec.end());
    if (vec.empty()) map.erase(it);
  };
  drop(by_subject_, t.subject);
  drop(by_property_, t.property);
  drop(by_object_text_, t.object.text);
}

Status TripleStore::Remove(const Triple& triple) {
  util::MutexLock lock(&write_mu_);
  return RemoveLocked(triple);
}

Status TripleStore::RemoveLocked(const Triple& triple) {
  auto it = by_subject_.find(triple.subject);
  if (it != by_subject_.end()) {
    for (TripleId id : it->second) {
      if (live_[id] && triples_[id] == triple) {
        IndexRemove(id);
        live_[id] = false;
        triples_[id] = Triple{};
        free_slots_.push_back(id);
        --live_count_;
        SLIM_OBS_COUNT("trim.remove.ok");
        return Status::OK();
      }
    }
  }
  SLIM_OBS_COUNT("trim.remove.not_found");
  return Status::NotFound("statement not present: " + TripleToString(triple));
}

size_t TripleStore::RemoveMatching(const TriplePattern& pattern) {
  util::MutexLock lock(&write_mu_);
  return RemoveMatchingLocked(pattern);
}

size_t TripleStore::RemoveMatchingLocked(const TriplePattern& pattern) {
  std::vector<Triple> victims = Select(pattern);
  for (const Triple& t : victims) {
    RemoveLocked(t).ok();  // each was just observed live
  }
  return victims.size();
}

bool TripleStore::Contains(const Triple& triple) const {
  auto it = by_subject_.find(triple.subject);
  if (it == by_subject_.end()) return false;
  for (TripleId id : it->second) {
    if (live_[id] && triples_[id] == triple) return true;
  }
  return false;
}

const std::vector<TripleStore::TripleId>* TripleStore::CandidateList(
    const TriplePattern& pattern, std::vector<TripleId>* scratch,
    IndexPath* path) const {
  // Choose the smallest available index list.
  const std::vector<TripleId>* best = nullptr;
  IndexPath chosen = IndexPath::kScan;
  auto consider = [&](const std::unordered_map<std::string,
                                               std::vector<TripleId>>& map,
                      const std::string& key, IndexPath which) {
    auto it = map.find(key);
    if (it == map.end()) {
      scratch->clear();
      best = scratch;  // empty — nothing can match
      chosen = IndexPath::kEmpty;
      return true;     // can't get more selective than empty
    }
    if (best == nullptr || it->second.size() < best->size()) {
      best = &it->second;
      chosen = which;
    }
    return false;
  };
  auto done = [&]() {
    if (path != nullptr) *path = chosen;
    return best;  // may be nullptr: full scan
  };
  if (pattern.subject &&
      consider(by_subject_, *pattern.subject, IndexPath::kSubject)) {
    return done();
  }
  if (pattern.object &&
      consider(by_object_text_, pattern.object->text, IndexPath::kObject)) {
    return done();
  }
  if (pattern.property &&
      consider(by_property_, *pattern.property, IndexPath::kProperty)) {
    return done();
  }
  return done();
}

std::vector<Triple> TripleStore::Select(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  SelectEach(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

void TripleStore::SelectEach(const TriplePattern& pattern,
                             const std::function<bool(const Triple&)>& fn,
                             SelectStats* stats) const {
  SLIM_OBS_COUNT("trim.select.calls");
  std::vector<TripleId> scratch;
  IndexPath path = IndexPath::kScan;
  const std::vector<TripleId>* candidates =
      CandidateList(pattern, &scratch, &path);
  switch (path) {
    case IndexPath::kSubject: SLIM_OBS_COUNT("trim.select.index.subject"); break;
    case IndexPath::kObject: SLIM_OBS_COUNT("trim.select.index.object"); break;
    case IndexPath::kProperty: SLIM_OBS_COUNT("trim.select.index.property"); break;
    case IndexPath::kScan: SLIM_OBS_COUNT("trim.select.index.scan"); break;
    case IndexPath::kEmpty: SLIM_OBS_COUNT("trim.select.index.empty"); break;
  }
  if (stats != nullptr) {
    stats->path = path;
    stats->candidates =
        candidates != nullptr ? candidates->size() : triples_.size();
  }
  auto visit = [&](TripleId id) {
    if (!live_[id]) return true;
    if (stats != nullptr) ++stats->examined;
    if (!pattern.Matches(triples_[id])) return true;
    if (stats != nullptr) ++stats->matched;
    return fn(triples_[id]);
  };
  if (candidates != nullptr) {
    for (TripleId id : *candidates) {
      if (!visit(id)) return;
    }
    return;
  }
  for (size_t id = 0; id < triples_.size(); ++id) {
    if (!visit(static_cast<TripleId>(id))) return;
  }
}

TripleStore::AccessPlan TripleStore::PlanAccess(
    const TriplePattern& pattern) const {
  std::vector<TripleId> scratch;
  IndexPath path = IndexPath::kScan;
  const std::vector<TripleId>* candidates =
      CandidateList(pattern, &scratch, &path);
  AccessPlan plan;
  plan.path = path;
  plan.candidates = candidates != nullptr ? candidates->size() : live_count_;
  return plan;
}

std::optional<Object> TripleStore::GetOne(const std::string& subject,
                                          const std::string& property) const {
  SLIM_OBS_COUNT("trim.get_one.calls");
  std::optional<Object> out;
  SelectEach(TriplePattern::BySubjectProperty(subject, property),
             [&](const Triple& t) {
               out = t.object;
               return false;
             });
  return out;
}

Status TripleStore::SetOne(const std::string& subject,
                           const std::string& property, Object object) {
  SLIM_OBS_COUNT("trim.set_one.calls");
  util::MutexLock lock(&write_mu_);
  RemoveMatchingLocked(TriplePattern::BySubjectProperty(subject, property));
  return AddLocked(Triple{subject, property, std::move(object)},
                   /*allow_duplicates=*/false);
}

std::vector<Triple> TripleStore::ViewFrom(const std::string& resource) const {
  SLIM_OBS_COUNT("trim.view.calls");
  SLIM_OBS_TIMER(timer, "trim.view.latency_us");
  std::vector<Triple> out;
  std::unordered_set<std::string> visited;
  std::queue<std::string> frontier;
  frontier.push(resource);
  visited.insert(resource);
  while (!frontier.empty()) {
    std::string cur = std::move(frontier.front());
    frontier.pop();
    auto it = by_subject_.find(cur);
    if (it == by_subject_.end()) continue;
    for (TripleId id : it->second) {
      if (!live_[id]) continue;
      const Triple& t = triples_[id];
      out.push_back(t);
      if (t.object.is_resource() && visited.insert(t.object.text).second) {
        frontier.push(t.object.text);
      }
    }
  }
  SLIM_OBS_HISTOGRAM("trim.view.fanout", out.size());
  return out;
}

std::vector<std::string> TripleStore::ReachableResources(
    const std::string& resource) const {
  std::vector<std::string> out;
  std::unordered_set<std::string> visited;
  std::queue<std::string> frontier;
  frontier.push(resource);
  visited.insert(resource);
  out.push_back(resource);
  while (!frontier.empty()) {
    std::string cur = std::move(frontier.front());
    frontier.pop();
    auto it = by_subject_.find(cur);
    if (it == by_subject_.end()) continue;
    for (TripleId id : it->second) {
      if (!live_[id]) continue;
      const Triple& t = triples_[id];
      if (t.object.is_resource() && visited.insert(t.object.text).second) {
        out.push_back(t.object.text);
        frontier.push(t.object.text);
      }
    }
  }
  return out;
}

void TripleStore::Clear() {
  util::MutexLock lock(&write_mu_);
  triples_.clear();
  live_.clear();
  free_slots_.clear();
  live_count_ = 0;
  by_subject_.clear();
  by_property_.clear();
  by_object_text_.clear();
}

void TripleStore::ForEach(const std::function<void(const Triple&)>& fn) const {
  for (size_t id = 0; id < triples_.size(); ++id) {
    if (live_[id]) fn(triples_[id]);
  }
}

size_t TripleStore::ApproximateBytes() const {
  size_t bytes = 0;
  for (size_t id = 0; id < triples_.size(); ++id) {
    if (!live_[id]) continue;
    const Triple& t = triples_[id];
    bytes += sizeof(Triple);
    bytes += t.subject.capacity() + t.property.capacity() +
             t.object.text.capacity();
    bytes += 3 * sizeof(TripleId);  // index postings
  }
  return bytes;
}

}  // namespace slim::trim
