#include "trim/triple_store.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "obs/obs.h"

namespace slim::trim {
namespace {

// Set while a mutator holds write_mu_: reads issued by the writer thread
// itself (duplicate checks, SetOne's embedded RemoveMatching) evaluate at
// the pending epoch so a batch observes its own effects, while other
// threads keep reading the last published snapshot.
struct WriterCtx {
  const void* store = nullptr;
  uint64_t epoch = 0;
};
thread_local WriterCtx t_writer_ctx;

// Per-key live tally behind DistinctSubjects/Properties/Objects. A free
// function (not a lambda over members) so the GUARDED_BY check fires at
// the caller, which holds write_mu_.
void BumpKeyCount(std::unordered_map<std::string, uint64_t>& map,
                  const std::string& key, int delta,
                  std::atomic<uint64_t>& distinct) {
  if (delta > 0) {
    if (++map[key] == 1) distinct.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto it = map.find(key);
  if (it == map.end()) return;
  if (--it->second == 0) {
    map.erase(it);
    distinct.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace

std::string TripleToString(const Triple& t) {
  std::string out = "(" + t.subject + ", " + t.property + ", ";
  if (t.object.is_resource()) {
    out += "<" + t.object.text + ">";
  } else {
    out += "\"" + t.object.text + "\"";
  }
  out += ")";
  return out;
}

const char* TripleStore::IndexPathName(IndexPath path) {
  switch (path) {
    case IndexPath::kSubject: return "subject";
    case IndexPath::kObject: return "object";
    case IndexPath::kProperty: return "property";
    case IndexPath::kScan: return "scan";
    case IndexPath::kEmpty: return "empty";
  }
  return "scan";
}

bool TriplePattern::Matches(const Triple& t) const {
  if (subject && *subject != t.subject) return false;
  if (property && *property != t.property) return false;
  if (object && *object != t.object) return false;
  return true;
}

uint64_t TripleStore::Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

size_t TripleStore::ShardOf(std::string_view subject) {
  return Fnv1a(subject) & (kNumShards - 1);
}

TripleStore::Record* TripleStore::RecordAt(const ShardGuts& guts,
                                           uint32_t slot) {
  Chunk* chunk = guts.chunks[slot / kChunkSize].load(std::memory_order_seq_cst);
  return &chunk->records[slot % kChunkSize];
}

bool TripleStore::Visible(const Record& rec, uint64_t snapshot) {
  uint64_t birth = rec.birth.load(std::memory_order_relaxed);
  if (birth == 0 || birth > snapshot) return false;
  return snapshot < rec.death.load(std::memory_order_relaxed);
}

TripleStore::IndexNode* TripleStore::FindNode(const IndexMap& map,
                                              std::string_view key) {
  return FindNodeAt(map, key, Bucket(key));
}

TripleStore::IndexNode* TripleStore::FindNodeAt(const IndexMap& map,
                                                std::string_view key,
                                                size_t bucket) {
  for (IndexNode* n = map.buckets[bucket].load(std::memory_order_seq_cst);
       n != nullptr; n = n->next) {
    if (n->key == key) return n;
  }
  return nullptr;
}

TripleStore::IndexNode* TripleStore::FindOrCreateNode(IndexMap& map,
                                                      const std::string& key) {
  IndexNode* found = FindNode(map, key);
  if (found != nullptr) return found;
  std::atomic<IndexNode*>& head = map.buckets[Bucket(key)];
  // New node fully built (key, empty spine, next) before publication.
  IndexNode* node = new IndexNode(key, head.load(std::memory_order_relaxed));
  head.store(node, std::memory_order_seq_cst);
  return node;
}

void TripleStore::AppendPosting(IndexNode* node, uint32_t slot,
                                const ShardGuts& guts) {
  Spine* spine = node->list.spine.load(std::memory_order_relaxed);
  uint64_t used = spine->used.load(std::memory_order_relaxed);
  if (used < spine->slots.size()) {
    spine->slots[used] = slot;
    spine->used.store(used + 1, std::memory_order_seq_cst);
    return;
  }
  // Grow by copy. Entries dead at or before the oldest epoch anyone could
  // still pin are dropped on the way — this is where retired postings are
  // pruned as the oldest pinned epoch advances. A future reader pins at
  // least current(), so min(MinPinned, current) bounds every reachable
  // snapshot from below.
  uint64_t cutoff = std::min(epoch_.MinPinned(), epoch_.current());
  Spine* grown = new Spine(std::max<size_t>(kInitialSpineCap, 2 * (used + 1)));
  uint64_t kept = 0;
  for (uint64_t i = 0; i < used; ++i) {
    uint32_t s = spine->slots[i];
    if (RecordAt(guts, s)->death.load(std::memory_order_relaxed) <= cutoff) {
      continue;
    }
    grown->slots[kept++] = s;
  }
  grown->slots[kept++] = slot;
  grown->used.store(kept, std::memory_order_relaxed);  // published by the swap
  node->list.spine.store(grown, std::memory_order_seq_cst);
  // A reader pinned at the current epoch may already hold the old spine
  // pointer, so it only becomes freeable one epoch later.
  epoch_.Retire(epoch_.current() + 1, [spine] { delete spine; });
}

void TripleStore::FreeGuts(ShardGuts* guts) {
  if (guts == nullptr) return;
  for (auto& c : guts->chunks) {
    delete c.load(std::memory_order_relaxed);
  }
  for (IndexMap* map : {&guts->by_subject, &guts->by_property,
                        &guts->by_object}) {
    for (auto& bucket : map->buckets) {
      IndexNode* n = bucket.load(std::memory_order_relaxed);
      while (n != nullptr) {
        IndexNode* next = n->next;
        delete n;  // ~PostingList frees the current spine
        n = next;
      }
    }
  }
  delete guts;
}

// ---------------------------------------------------------------------------
// Writer batch scope
// ---------------------------------------------------------------------------

/// One committed epoch: created by every public mutator right after taking
/// write_mu_ (construction order matters — the lock must outlive the scope
/// so the commit happens while still holding it). Ops stamp births/deaths
/// with the pending epoch; the destructor publishes it, making the whole
/// batch visible atomically, retires the batch's tombstoned payloads, and
/// periodically reclaims.
class TripleStore::WriterScope {
 public:
  explicit WriterScope(TripleStore& store) REQUIRES(store.write_mu_)
      : store_(store), epoch_(store.epoch_.current() + 1) {
    t_writer_ctx = WriterCtx{&store_, epoch_};
  }

  ~WriterScope() REQUIRES(store_.write_mu_) {
    t_writer_ctx = WriterCtx{};
    if (!dirty_) return;
    if (!dead_.empty()) {
      // Payloads freed once every pinned epoch reaches the death epoch
      // (safe = epoch_: a reader pinned at >= epoch_ can't see them).
      auto dead = std::make_shared<std::vector<Record*>>(std::move(dead_));
      store_.epoch_.Retire(epoch_, [dead] {
        for (Record* r : *dead) r->triple = Triple{};
      });
    }
    store_.epoch_.Publish(epoch_);
    if (++store_.commit_count_ % kReclaimInterval == 0) {
      store_.ReclaimLocked();
    }
  }

  WriterScope(const WriterScope&) = delete;
  WriterScope& operator=(const WriterScope&) = delete;

  uint64_t epoch() const { return epoch_; }
  void MarkDirty() { dirty_ = true; }
  void AddDead(Record* rec) { dead_.push_back(rec); }

 private:
  TripleStore& store_;
  uint64_t epoch_;
  bool dirty_ = false;
  std::vector<Record*> dead_;
};

TripleStore::ReadPin TripleStore::BeginRead() const {
  if (t_writer_ctx.store == this) {
    return ReadPin{t_writer_ctx.epoch, false};
  }
  return ReadPin{epoch_.Pin(), true};
}

void TripleStore::EndRead(ReadPin pin) const {
  if (pin.pinned) epoch_.Unpin();
}

TripleStore::~TripleStore() {
  // No reader may outlive the store; with nothing pinned every limbo entry
  // is reclaimable, and the drain must run before the guts it references
  // are freed below.
  epoch_.Reclaim();
  for (Shard& shard : shards_) {
    FreeGuts(shard.guts.load(std::memory_order_relaxed));
  }
}

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

Status TripleStore::Add(Triple triple, bool allow_duplicates) {
  util::MutexLock lock(&write_mu_);
  WriterScope ws(*this);
  return AddLocked(std::move(triple), allow_duplicates, ws);
}

Status TripleStore::AddLocked(Triple triple, bool allow_duplicates,
                              WriterScope& ws) {
  if (triple.subject.empty() || triple.property.empty()) {
    SLIM_OBS_COUNT("trim.add.invalid");
    return Status::InvalidArgument("triple subject/property must be non-empty");
  }
  if (!allow_duplicates && Contains(triple)) {
    SLIM_OBS_COUNT("trim.add.duplicate");
    return Status::AlreadyExists("duplicate statement " +
                                 TripleToString(triple));
  }
  size_t shard_idx = ShardOf(triple.subject);
  Shard& shard = shards_[shard_idx];
  ShardGuts* guts = shard.guts.load(std::memory_order_relaxed);
  if (guts == nullptr) {
    guts = new ShardGuts();
    shard.guts.store(guts, std::memory_order_seq_cst);
  }
  uint64_t slot = guts->size.load(std::memory_order_relaxed);
  if (slot >= kChunkSize * kMaxChunks) {
    // Log full: force a compaction (drops records no snapshot can see) and
    // retry once.
    MaybeCompactShard(shard_idx, /*force=*/true);
    guts = shard.guts.load(std::memory_order_relaxed);
    if (guts == nullptr) {
      guts = new ShardGuts();
      shard.guts.store(guts, std::memory_order_seq_cst);
    }
    slot = guts->size.load(std::memory_order_relaxed);
    if (slot >= kChunkSize * kMaxChunks) {
      return Status::OutOfRange("triple store shard is full");
    }
  }
  SLIM_OBS_COUNT("trim.add.ok");
  size_t chunk_idx = slot / kChunkSize;
  Chunk* chunk = guts->chunks[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    guts->chunks[chunk_idx].store(chunk, std::memory_order_seq_cst);
  }
  Record& rec = chunk->records[slot % kChunkSize];
  rec.triple = std::move(triple);
  rec.birth.store(ws.epoch(), std::memory_order_relaxed);
  rec.death.store(EpochManager::kNeverDies, std::memory_order_relaxed);
  guts->size.store(slot + 1, std::memory_order_seq_cst);

  const Triple& t = rec.triple;
  uint32_t slot32 = static_cast<uint32_t>(slot);
  IndexNode* sn = FindOrCreateNode(guts->by_subject, t.subject);
  AppendPosting(sn, slot32, *guts);
  sn->live.fetch_add(1, std::memory_order_relaxed);
  IndexNode* pn = FindOrCreateNode(guts->by_property, t.property);
  AppendPosting(pn, slot32, *guts);
  pn->live.fetch_add(1, std::memory_order_relaxed);
  IndexNode* on = FindOrCreateNode(guts->by_object, t.object.text);
  AppendPosting(on, slot32, *guts);
  on->live.fetch_add(1, std::memory_order_relaxed);

  shard.live.fetch_add(1, std::memory_order_relaxed);
  live_count_.fetch_add(1, std::memory_order_relaxed);
  BumpKeyLive(t, +1);
  ws.MarkDirty();
  return Status::OK();
}

void TripleStore::BumpKeyLive(const Triple& t, int delta) {
  BumpKeyCount(subject_live_, t.subject, delta, distinct_subjects_);
  BumpKeyCount(property_live_, t.property, delta, distinct_properties_);
  BumpKeyCount(object_live_, t.object.text, delta, distinct_objects_);
}

Status TripleStore::AddLiteral(std::string subject, std::string property,
                               std::string literal) {
  return Add(Triple{std::move(subject), std::move(property),
                    Object::Literal(std::move(literal))});
}

Status TripleStore::AddResource(std::string subject, std::string property,
                                std::string resource) {
  return Add(Triple{std::move(subject), std::move(property),
                    Object::Resource(std::move(resource))});
}

Status TripleStore::Remove(const Triple& triple) {
  util::MutexLock lock(&write_mu_);
  WriterScope ws(*this);
  return RemoveLocked(triple, ws);
}

Status TripleStore::RemoveLocked(const Triple& triple, WriterScope& ws) {
  size_t shard_idx = ShardOf(triple.subject);
  Shard& shard = shards_[shard_idx];
  ShardGuts* guts = shard.guts.load(std::memory_order_relaxed);
  uint64_t epoch = ws.epoch();
  if (guts != nullptr) {
    if (IndexNode* sn = FindNode(guts->by_subject, triple.subject)) {
      Spine* spine = sn->list.spine.load(std::memory_order_relaxed);
      uint64_t used = spine->used.load(std::memory_order_relaxed);
      for (uint64_t i = 0; i < used; ++i) {
        Record* rec = RecordAt(*guts, spine->slots[i]);
        if (!Visible(*rec, epoch)) continue;
        if (!(rec->triple == triple)) continue;
        rec->death.store(epoch, std::memory_order_relaxed);
        sn->live.fetch_sub(1, std::memory_order_relaxed);
        if (IndexNode* pn = FindNode(guts->by_property, triple.property)) {
          pn->live.fetch_sub(1, std::memory_order_relaxed);
        }
        if (IndexNode* on = FindNode(guts->by_object, triple.object.text)) {
          on->live.fetch_sub(1, std::memory_order_relaxed);
        }
        shard.live.fetch_sub(1, std::memory_order_relaxed);
        shard.dead.fetch_add(1, std::memory_order_relaxed);
        shard.max_death_epoch = epoch;
        live_count_.fetch_sub(1, std::memory_order_relaxed);
        BumpKeyLive(triple, -1);
        ws.AddDead(rec);
        ws.MarkDirty();
        SLIM_OBS_COUNT("trim.remove.ok");
        return Status::OK();
      }
    }
  }
  SLIM_OBS_COUNT("trim.remove.not_found");
  return Status::NotFound("statement not present: " + TripleToString(triple));
}

size_t TripleStore::RemoveMatching(const TriplePattern& pattern) {
  util::MutexLock lock(&write_mu_);
  WriterScope ws(*this);
  return RemoveMatchingLocked(pattern, ws);
}

size_t TripleStore::RemoveMatchingLocked(const TriplePattern& pattern,
                                         WriterScope& ws) {
  std::vector<Triple> victims = Select(pattern);
  for (const Triple& t : victims) {
    RemoveLocked(t, ws).ok();  // each was just observed live
  }
  return victims.size();
}

TripleStore::BatchResult TripleStore::ApplyBatch(std::vector<WriteOp> ops) {
  util::MutexLock lock(&write_mu_);
  WriterScope ws(*this);
  BatchResult result;
  result.epoch = ws.epoch();
  result.statuses.reserve(ops.size());
  for (WriteOp& op : ops) {
    Status s = op.kind == WriteOp::Kind::kAdd
                   ? AddLocked(std::move(op.triple), op.allow_duplicates, ws)
                   : RemoveLocked(op.triple, ws);
    if (s.ok()) ++result.applied;
    result.statuses.push_back(std::move(s));
  }
  return result;
}

Status TripleStore::SetOne(const std::string& subject,
                           const std::string& property, Object object) {
  SLIM_OBS_COUNT("trim.set_one.calls");
  util::MutexLock lock(&write_mu_);
  WriterScope ws(*this);
  RemoveMatchingLocked(TriplePattern::BySubjectProperty(subject, property), ws);
  return AddLocked(Triple{subject, property, std::move(object)},
                   /*allow_duplicates=*/false, ws);
}

void TripleStore::Clear() {
  util::MutexLock lock(&write_mu_);
  {
    WriterScope ws(*this);
    uint64_t epoch = ws.epoch();
    for (Shard& shard : shards_) {
      ShardGuts* guts = shard.guts.load(std::memory_order_relaxed);
      if (guts == nullptr) continue;
      uint64_t n = guts->size.load(std::memory_order_relaxed);
      uint64_t cleared = 0;
      for (uint64_t slot = 0; slot < n; ++slot) {
        Record* rec = RecordAt(*guts, static_cast<uint32_t>(slot));
        if (rec->death.load(std::memory_order_relaxed) !=
            EpochManager::kNeverDies) {
          continue;
        }
        rec->death.store(epoch, std::memory_order_relaxed);
        ws.AddDead(rec);
        ++cleared;
      }
      if (cleared > 0) {
        shard.live.store(0, std::memory_order_relaxed);
        shard.dead.fetch_add(cleared, std::memory_order_relaxed);
        shard.max_death_epoch = epoch;
        ws.MarkDirty();
      }
    }
    live_count_.store(0, std::memory_order_relaxed);
    subject_live_.clear();
    property_live_.clear();
    object_live_.clear();
    distinct_subjects_.store(0, std::memory_order_relaxed);
    distinct_properties_.store(0, std::memory_order_relaxed);
    distinct_objects_.store(0, std::memory_order_relaxed);
  }
  // Quiescent stores drop straight back to empty guts here; pinned readers
  // keep their snapshot and the reset waits for them.
  ReclaimLocked();
}

// ---------------------------------------------------------------------------
// Reclamation & compaction
// ---------------------------------------------------------------------------

void TripleStore::MaybeCompactShard(size_t shard_idx, bool force) {
  Shard& shard = shards_[shard_idx];
  uint64_t dead = shard.dead.load(std::memory_order_relaxed);
  if (dead == 0) return;
  uint64_t live = shard.live.load(std::memory_order_relaxed);
  if (!force && live != 0 &&
      (dead < kCompactDeadFloor || dead < live)) {
    return;
  }
  // Every dead record in this shard died at or before max_death_epoch; the
  // compacted guts may drop them only when no pinned reader can still see
  // any of them.
  if (epoch_.MinPinned() <= shard.max_death_epoch) return;
  ShardGuts* old = shard.guts.load(std::memory_order_relaxed);
  if (old == nullptr) return;

  ShardGuts* fresh = nullptr;
  if (live != 0) {
    fresh = new ShardGuts();
    uint64_t n = old->size.load(std::memory_order_relaxed);
    for (uint64_t slot = 0; slot < n; ++slot) {
      Record* rec = RecordAt(*old, static_cast<uint32_t>(slot));
      if (rec->death.load(std::memory_order_relaxed) !=
          EpochManager::kNeverDies) {
        continue;
      }
      uint64_t dst_slot = fresh->size.load(std::memory_order_relaxed);
      size_t chunk_idx = dst_slot / kChunkSize;
      Chunk* chunk = fresh->chunks[chunk_idx].load(std::memory_order_relaxed);
      if (chunk == nullptr) {
        chunk = new Chunk();
        fresh->chunks[chunk_idx].store(chunk, std::memory_order_seq_cst);
      }
      Record& dst = chunk->records[dst_slot % kChunkSize];
      dst.triple = rec->triple;
      // Keep the birth stamp: a reader pinned before this record appeared
      // must still not see it through the compacted guts.
      dst.birth.store(rec->birth.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      fresh->size.store(dst_slot + 1, std::memory_order_seq_cst);
      uint32_t slot32 = static_cast<uint32_t>(dst_slot);
      IndexNode* sn = FindOrCreateNode(fresh->by_subject, dst.triple.subject);
      AppendPosting(sn, slot32, *fresh);
      sn->live.fetch_add(1, std::memory_order_relaxed);
      IndexNode* pn = FindOrCreateNode(fresh->by_property, dst.triple.property);
      AppendPosting(pn, slot32, *fresh);
      pn->live.fetch_add(1, std::memory_order_relaxed);
      IndexNode* on =
          FindOrCreateNode(fresh->by_object, dst.triple.object.text);
      AppendPosting(on, slot32, *fresh);
      on->live.fetch_add(1, std::memory_order_relaxed);
    }
  }
  shard.guts.store(fresh, std::memory_order_seq_cst);
  shard.dead.store(0, std::memory_order_relaxed);
  shard.max_death_epoch = 0;
  // Readers pinned at the current epoch may hold the old guts pointer.
  epoch_.Retire(epoch_.current() + 1, [old] { FreeGuts(old); });
}

void TripleStore::ReclaimLocked() {
  for (size_t i = 0; i < kNumShards; ++i) {
    MaybeCompactShard(i);
  }
  epoch_.Reclaim();
}

size_t TripleStore::ReclaimRetired() {
  util::MutexLock lock(&write_mu_);
  for (size_t i = 0; i < kNumShards; ++i) {
    MaybeCompactShard(i);
  }
  return epoch_.Reclaim();
}

std::array<uint64_t, TripleStore::kNumShards> TripleStore::ShardLiveCounts()
    const {
  std::array<uint64_t, kNumShards> out{};
  for (size_t i = 0; i < kNumShards; ++i) {
    out[i] = shards_[i].live.load(std::memory_order_relaxed);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

bool TripleStore::Contains(const Triple& triple) const {
  ReadPin pin = BeginRead();
  bool found = false;
  const ShardGuts* guts =
      shards_[ShardOf(triple.subject)].guts.load(std::memory_order_seq_cst);
  if (guts != nullptr) {
    if (const IndexNode* sn = FindNode(guts->by_subject, triple.subject)) {
      const Spine* spine = sn->list.spine.load(std::memory_order_seq_cst);
      uint64_t used = spine->used.load(std::memory_order_seq_cst);
      for (uint64_t i = 0; i < used; ++i) {
        Record* rec = RecordAt(*guts, spine->slots[i]);
        if (Visible(*rec, pin.snapshot) && rec->triple == triple) {
          found = true;
          break;
        }
      }
    }
  }
  EndRead(pin);
  return found;
}

TripleStore::PathChoice TripleStore::ChoosePath(
    const TriplePattern& pattern, uint64_t snapshot,
    const std::array<const ShardGuts*, kNumShards>& guts) const {
  PathChoice chosen;
  bool have = false;
  uint64_t best_count = 0;

  // Visible-candidate count + node list for one fixed key. node->live is
  // the exact per-key live count when quiescent (what the pre-shard store
  // reported); when it reads 0 the spines are walked so a pinned snapshot
  // that can still see entries is never short-circuited to kEmpty.
  auto gather = [&](int field, std::string_view key,
                    PathChoice& out) -> uint64_t {
    out.node_count = 0;
    uint64_t live_sum = 0;
    auto add_node = [&](const ShardGuts* g, const IndexNode* n) {
      if (n == nullptr) return;
      out.nodes[out.node_count] = n;
      out.node_guts[out.node_count] = g;
      ++out.node_count;
      live_sum += n->live.load(std::memory_order_relaxed);
    };
    if (field == 0) {
      const ShardGuts* g = guts[ShardOf(key)];
      if (g != nullptr) add_node(g, FindNode(g->by_subject, key));
    } else {
      size_t bucket = Bucket(key);
      for (size_t i = 0; i < kNumShards; ++i) {
        const ShardGuts* g = guts[i];
        if (g == nullptr) continue;
        add_node(g, FindNodeAt(field == 1 ? g->by_object : g->by_property,
                               key, bucket));
      }
    }
    if (live_sum != 0 || out.node_count == 0) return live_sum;
    uint64_t visible = 0;
    for (size_t i = 0; i < out.node_count; ++i) {
      const Spine* spine =
          out.nodes[i]->list.spine.load(std::memory_order_seq_cst);
      uint64_t used = spine->used.load(std::memory_order_seq_cst);
      for (uint64_t j = 0; j < used; ++j) {
        if (Visible(*RecordAt(*out.node_guts[i], spine->slots[j]), snapshot)) {
          ++visible;
        }
      }
    }
    return visible;
  };

  // Same consideration order and tie-breaking as the pre-shard store:
  // subject, then object, then property; a provably-empty key wins
  // outright; otherwise the strictly smaller candidate list.
  auto consider = [&](int field, IndexPath path, std::string_view key) {
    PathChoice candidate;
    candidate.path = path;
    uint64_t count = gather(field, key, candidate);
    if (count == 0) {
      chosen = PathChoice{};
      chosen.path = IndexPath::kEmpty;
      have = true;
      return true;  // can't get more selective than empty
    }
    if (!have || count < best_count) {
      candidate.candidates = count;
      chosen = candidate;
      best_count = count;
      have = true;
    }
    return false;
  };

  if (pattern.subject &&
      consider(0, IndexPath::kSubject, *pattern.subject)) {
    return chosen;
  }
  // A fixed subject resolves to exactly one shard's node; when its posting
  // list is already tiny, walking it is cheaper than probing all
  // kNumShards index maps for the object/property counts. Point reads
  // (GetOne, Contains-style probes) live on this path.
  if (pattern.subject && have && best_count <= 64) {
    return chosen;
  }
  if (pattern.object &&
      consider(1, IndexPath::kObject, pattern.object->text)) {
    return chosen;
  }
  // Same trade as above: once some path's candidate list is tiny, walking
  // it beats another kNumShards-wide index probe for the property count.
  if (have && best_count <= 64) {
    return chosen;
  }
  if (pattern.property &&
      consider(2, IndexPath::kProperty, *pattern.property)) {
    return chosen;
  }
  if (!have) {
    // Full scan: candidate count is every published record slot, dead ones
    // included (they are "candidates the path offers" and get filtered).
    chosen.path = IndexPath::kScan;
    uint64_t total = 0;
    for (const ShardGuts* g : guts) {
      if (g != nullptr) total += g->size.load(std::memory_order_seq_cst);
    }
    chosen.candidates = total;
  }
  return chosen;
}

std::vector<Triple> TripleStore::Select(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  SelectEach(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

void TripleStore::SelectEach(const TriplePattern& pattern,
                             const std::function<bool(const Triple&)>& fn,
                             SelectStats* stats) const {
  SLIM_OBS_COUNT("trim.select.calls");
  ReadPin pin = BeginRead();
  std::array<const ShardGuts*, kNumShards> guts;
  for (size_t i = 0; i < kNumShards; ++i) {
    guts[i] = shards_[i].guts.load(std::memory_order_seq_cst);
  }
  PathChoice choice = ChoosePath(pattern, pin.snapshot, guts);
  switch (choice.path) {
    case IndexPath::kSubject: SLIM_OBS_COUNT("trim.select.index.subject"); break;
    case IndexPath::kObject: SLIM_OBS_COUNT("trim.select.index.object"); break;
    case IndexPath::kProperty: SLIM_OBS_COUNT("trim.select.index.property"); break;
    case IndexPath::kScan: SLIM_OBS_COUNT("trim.select.index.scan"); break;
    case IndexPath::kEmpty: SLIM_OBS_COUNT("trim.select.index.empty"); break;
  }
  if (stats != nullptr) {
    stats->path = choice.path;
    stats->candidates = choice.candidates;
  }
  auto visit = [&](Record* rec) {
    if (!Visible(*rec, pin.snapshot)) return true;
    if (stats != nullptr) ++stats->examined;
    if (!pattern.Matches(rec->triple)) return true;
    if (stats != nullptr) ++stats->matched;
    return fn(rec->triple);
  };
  bool stopped = false;
  if (choice.path == IndexPath::kScan) {
    for (size_t i = 0; i < kNumShards && !stopped; ++i) {
      const ShardGuts* g = guts[i];
      if (g == nullptr) continue;
      uint64_t n = g->size.load(std::memory_order_seq_cst);
      for (uint64_t slot = 0; slot < n; ++slot) {
        if (!visit(RecordAt(*g, static_cast<uint32_t>(slot)))) {
          stopped = true;
          break;
        }
      }
    }
  } else if (choice.path != IndexPath::kEmpty) {
    for (size_t i = 0; i < choice.node_count && !stopped; ++i) {
      const Spine* spine =
          choice.nodes[i]->list.spine.load(std::memory_order_seq_cst);
      uint64_t used = spine->used.load(std::memory_order_seq_cst);
      for (uint64_t j = 0; j < used; ++j) {
        if (!visit(RecordAt(*choice.node_guts[i], spine->slots[j]))) {
          stopped = true;
          break;
        }
      }
    }
  }
  EndRead(pin);
}

TripleStore::AccessPlan TripleStore::PlanAccess(
    const TriplePattern& pattern) const {
  ReadPin pin = BeginRead();
  std::array<const ShardGuts*, kNumShards> guts;
  for (size_t i = 0; i < kNumShards; ++i) {
    guts[i] = shards_[i].guts.load(std::memory_order_seq_cst);
  }
  PathChoice choice = ChoosePath(pattern, pin.snapshot, guts);
  AccessPlan plan;
  plan.path = choice.path;
  plan.candidates =
      choice.path == IndexPath::kScan ? size() : choice.candidates;
  EndRead(pin);
  return plan;
}

std::optional<Object> TripleStore::GetOne(const std::string& subject,
                                          const std::string& property) const {
  SLIM_OBS_COUNT("trim.get_one.calls");
  std::optional<Object> out;
  SelectEach(TriplePattern::BySubjectProperty(subject, property),
             [&](const Triple& t) {
               out = t.object;
               return false;
             });
  return out;
}

std::vector<Triple> TripleStore::ViewFrom(const std::string& resource) const {
  SLIM_OBS_COUNT("trim.view.calls");
  SLIM_OBS_TIMER(timer, "trim.view.latency_us");
  ReadPin pin = BeginRead();
  std::vector<Triple> out;
  std::unordered_set<std::string> visited;
  std::queue<std::string> frontier;
  frontier.push(resource);
  visited.insert(resource);
  while (!frontier.empty()) {
    std::string cur = std::move(frontier.front());
    frontier.pop();
    const ShardGuts* guts =
        shards_[ShardOf(cur)].guts.load(std::memory_order_seq_cst);
    if (guts == nullptr) continue;
    const IndexNode* sn = FindNode(guts->by_subject, cur);
    if (sn == nullptr) continue;
    const Spine* spine = sn->list.spine.load(std::memory_order_seq_cst);
    uint64_t used = spine->used.load(std::memory_order_seq_cst);
    for (uint64_t i = 0; i < used; ++i) {
      Record* rec = RecordAt(*guts, spine->slots[i]);
      if (!Visible(*rec, pin.snapshot)) continue;
      const Triple& t = rec->triple;
      out.push_back(t);
      if (t.object.is_resource() && visited.insert(t.object.text).second) {
        frontier.push(t.object.text);
      }
    }
  }
  EndRead(pin);
  SLIM_OBS_HISTOGRAM("trim.view.fanout", out.size());
  return out;
}

std::vector<std::string> TripleStore::ReachableResources(
    const std::string& resource) const {
  ReadPin pin = BeginRead();
  std::vector<std::string> out;
  std::unordered_set<std::string> visited;
  std::queue<std::string> frontier;
  frontier.push(resource);
  visited.insert(resource);
  out.push_back(resource);
  while (!frontier.empty()) {
    std::string cur = std::move(frontier.front());
    frontier.pop();
    const ShardGuts* guts =
        shards_[ShardOf(cur)].guts.load(std::memory_order_seq_cst);
    if (guts == nullptr) continue;
    const IndexNode* sn = FindNode(guts->by_subject, cur);
    if (sn == nullptr) continue;
    const Spine* spine = sn->list.spine.load(std::memory_order_seq_cst);
    uint64_t used = spine->used.load(std::memory_order_seq_cst);
    for (uint64_t i = 0; i < used; ++i) {
      Record* rec = RecordAt(*guts, spine->slots[i]);
      if (!Visible(*rec, pin.snapshot)) continue;
      const Triple& t = rec->triple;
      if (t.object.is_resource() && visited.insert(t.object.text).second) {
        out.push_back(t.object.text);
        frontier.push(t.object.text);
      }
    }
  }
  EndRead(pin);
  return out;
}

void TripleStore::ForEach(const std::function<void(const Triple&)>& fn) const {
  ReadPin pin = BeginRead();
  for (size_t i = 0; i < kNumShards; ++i) {
    const ShardGuts* guts = shards_[i].guts.load(std::memory_order_seq_cst);
    if (guts == nullptr) continue;
    uint64_t n = guts->size.load(std::memory_order_seq_cst);
    for (uint64_t slot = 0; slot < n; ++slot) {
      Record* rec = RecordAt(*guts, static_cast<uint32_t>(slot));
      if (Visible(*rec, pin.snapshot)) fn(rec->triple);
    }
  }
  EndRead(pin);
}

size_t TripleStore::ApproximateBytes() const {
  ReadPin pin = BeginRead();
  size_t bytes = 0;
  for (size_t i = 0; i < kNumShards; ++i) {
    const ShardGuts* guts = shards_[i].guts.load(std::memory_order_seq_cst);
    if (guts == nullptr) continue;
    uint64_t n = guts->size.load(std::memory_order_seq_cst);
    for (uint64_t slot = 0; slot < n; ++slot) {
      Record* rec = RecordAt(*guts, static_cast<uint32_t>(slot));
      if (!Visible(*rec, pin.snapshot)) continue;
      const Triple& t = rec->triple;
      bytes += sizeof(Triple);
      bytes += t.subject.capacity() + t.property.capacity() +
               t.object.text.capacity();
      bytes += 3 * sizeof(uint32_t);  // index postings
    }
  }
  EndRead(pin);
  return bytes;
}

}  // namespace slim::trim
