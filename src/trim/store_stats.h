#ifndef SLIM_TRIM_STORE_STATS_H_
#define SLIM_TRIM_STORE_STATS_H_

/// \file store_stats.h
/// \brief Store introspection: a point-in-time statistical snapshot of a
/// triple store, for operators and the query planner.
///
/// The paper's TRIM layer serves every selection and reachability view, so
/// understanding *why* a store behaves the way it does — index shapes,
/// predicate skew, tombstone debt, resident bytes — matters as much as the
/// per-op counters PR 1 added. `ComputeStats` walks either backend
/// (hash-indexed `TripleStore` or columnar `InternedTripleStore`) and
/// returns one `StoreStats`; `PublishStoreStats` refreshes the
/// `slim.store.*` gauge family in a metrics registry on demand, from where
/// the Prometheus endpoint and `obs_dump` pick it up.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "trim/interned_store.h"
#include "trim/triple_store.h"

namespace slim::trim {

/// \brief Point-in-time statistics for one store instance.
struct StoreStats {
  std::string backend;  ///< "hash" or "interned".

  uint64_t live_triples = 0;
  uint64_t tombstoned = 0;  ///< Dead slots awaiting reuse / compaction.

  /// Distinct keys per index ("entry count" of each hash/posting index).
  uint64_t subject_keys = 0;
  uint64_t property_keys = 0;
  uint64_t object_keys = 0;
  /// Total posting entries per index (>= keys; == live triples per index
  /// for both backends, kept explicit so an index bug shows up as a skew).
  uint64_t subject_postings = 0;
  uint64_t property_postings = 0;
  uint64_t object_postings = 0;

  /// Predicate-cardinality histogram: bucket i counts predicates whose
  /// live-triple fanout n satisfies 2^(i-1) < n <= 2^i (bucket 0: n == 1).
  /// Skewed stores — one `bundleContent` predicate carrying most triples —
  /// show up as mass in the high buckets.
  std::vector<uint64_t> predicate_cardinality;
  uint64_t predicate_max_fanout = 0;

  /// Interning-table occupancy (interned backend; zero for hash).
  uint64_t interned_strings = 0;
  uint64_t interned_bytes = 0;

  /// \name Shard occupancy (hash backend; zero/empty for interned).
  /// The hash store shards by subject hash; `shard_skew_x100` is the
  /// hottest shard's live count relative to a perfectly balanced share,
  /// times 100 (100 = balanced, 1600 = everything on one of 16 shards).
  /// @{
  uint64_t shard_count = 0;
  std::vector<uint64_t> shard_live;
  uint64_t shard_max_live = 0;
  uint64_t shard_min_live = 0;
  uint64_t shard_skew_x100 = 0;
  /// @}

  /// \name Epoch domain (hash backend): snapshot-read lag + limbo debt.
  /// `epoch_lag` is current minus the oldest pinned epoch — a reader
  /// pinned for a long time holds back reclamation by exactly this many
  /// committed batches.
  /// @{
  uint64_t epoch_current = 0;
  uint64_t epoch_oldest_pin = 0;
  uint64_t epoch_lag = 0;
  uint64_t epoch_retired = 0;
  uint64_t epoch_reclaimed = 0;
  uint64_t epoch_limbo = 0;
  /// @}

  /// Estimated resident heap bytes of triple data + indexes.
  uint64_t approximate_bytes = 0;

  /// Human-readable multi-line report (obs_dump's store section).
  std::string ToText() const;
  /// One JSON object, machine-readable.
  std::string ToJson() const;
};

/// Walks the hash-indexed store. O(live triples + index keys).
StoreStats ComputeStats(const TripleStore& store);

/// Walks the interned columnar store. O(rows).
StoreStats ComputeStats(const InternedTripleStore& store);

/// Refreshes the `slim.store.*` gauge family in `registry` (the process
/// default when null) from `stats`. Gauges are Set, not added, so repeated
/// refreshes are idempotent; `slim.store.refresh.calls` counts refreshes.
void PublishStoreStats(const StoreStats& stats,
                       obs::MetricsRegistry* registry = nullptr);

}  // namespace slim::trim

#endif  // SLIM_TRIM_STORE_STATS_H_
