#ifndef SLIM_TRIM_EPOCH_H_
#define SLIM_TRIM_EPOCH_H_

/// \file epoch.h
/// \brief Epoch-based reclamation for the concurrent TripleStore.
///
/// The sharded store (triple_store.h) lets readers run entirely lock-free
/// against structures that writers keep mutating. The safety protocol is
/// classic epoch-based reclamation (EBR), specified in DESIGN.md §10:
///
///  - A global **epoch** counter advances once per committed writer batch
///    (`Publish`). Every record carries the epoch it was born and the epoch
///    it died; a reader pinned at snapshot epoch S sees exactly the records
///    with `birth <= S < death`.
///  - A reader **pins** the current epoch on entry (`Pin`/`Unpin`, nestable
///    per thread so joins that issue nested selections share one snapshot)
///    by publishing it into a reader-slot table.
///  - Writers never free replaced structures in place; they **retire** them
///    with a `safe_epoch` (`Retire`). `Reclaim` frees a retired object only
///    once every pinned reader's epoch has advanced to `safe_epoch` or
///    beyond — "retired postings are reclaimed when the oldest pinned epoch
///    advances".
///
/// Memory-ordering contract (what makes this TSan-clean): the epoch
/// counter, reader slots, and every data-structure pointer the readers
/// chase are `seq_cst`. A reader that pins S has, by the seq_cst total
/// order, already observed every pointer published at or before S, and a
/// reclaimer that fails to observe a reader's pin is guaranteed — same
/// total order — that the reader's subsequent pointer loads observe the
/// *replacement*, never the retired object. Per-record birth/death stamps
/// ride on those synchronizing operations and can stay relaxed.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>

#include "util/instrumented_mutex.h"
#include "util/thread_annotations.h"

namespace slim::trim {

/// \brief One global epoch domain: counter, reader-slot table, limbo list.
///
/// A TripleStore owns exactly one EpochManager spanning all of its shards,
/// so one pinned epoch yields one cross-shard-consistent snapshot.
class EpochManager {
 public:
  /// Death epoch of a live record: no snapshot ever reaches it.
  static constexpr uint64_t kNeverDies = UINT64_MAX;
  /// Fixed reader-slot table; threads beyond this spill to a mutex-guarded
  /// overflow list (correct, merely slower to scan).
  static constexpr size_t kReaderSlots = 64;

  EpochManager() = default;
  ~EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// The latest committed epoch. Epochs start at 1 so that 0 can mean "slot
  /// free" in the reader table.
  uint64_t current() const { return current_.load(std::memory_order_seq_cst); }

  /// Commits `epoch` (must be `current() + 1`; the caller is the single
  /// serialized writer). Everything stamped with `epoch` becomes visible to
  /// readers that pin afterwards, atomically.
  void Publish(uint64_t epoch) {
    current_.store(epoch, std::memory_order_seq_cst);
  }

  /// \name Reader pinning (nestable per thread)
  /// Pin() returns this thread's snapshot epoch: the current epoch on the
  /// outermost call, the already-pinned epoch on nested calls. Every Pin
  /// must be matched by an Unpin on the same thread.
  /// @{
  uint64_t Pin();
  void Unpin();
  /// @}

  /// Smallest epoch any reader is pinned at; `current() + 1` when no reader
  /// is pinned (everything retired so far is reclaimable).
  uint64_t MinPinned() const;

  /// Hands an unreachable object to the limbo list. `reclaim` runs once
  /// `MinPinned() >= safe_epoch`. Callers pass
  ///  - `death_epoch` for record payloads (a reader pinned at or past the
  ///    death epoch can no longer see the record), and
  ///  - `current() + 1` for replaced structures (spines, shard guts): a
  ///    reader pinned at the current epoch may already hold the old
  ///    pointer, so the epoch must advance past it first.
  /// Safe epochs are monotone in retirement order, so FIFO reclamation
  /// preserves payload-before-container ordering.
  void Retire(uint64_t safe_epoch, std::function<void()> reclaim);

  /// Runs every limbo entry whose safe epoch has been reached, in FIFO
  /// order, and returns how many were reclaimed.
  size_t Reclaim();

  /// Point-in-time introspection for `slim.store.epoch.*` gauges.
  struct Stats {
    uint64_t current = 0;     ///< Latest committed epoch.
    uint64_t oldest_pin = 0;  ///< Oldest pinned epoch; 0 when none pinned.
    uint64_t lag = 0;         ///< current - oldest_pin (0 when none pinned).
    uint64_t retired = 0;     ///< Objects ever handed to limbo.
    uint64_t reclaimed = 0;   ///< Objects freed so far.
    uint64_t limbo = 0;       ///< Objects still awaiting reclamation.
  };
  Stats GetStats() const;

 private:
  /// Oldest pin across slots and overflow, or kNeverDies when none.
  uint64_t OldestPin() const;
  /// Removes one overflow pin: the entry matching `epoch`, or — when the
  /// match is gone or `epoch` is kNeverDies (untracked pin) — the largest
  /// entry, which keeps MinPinned() a safe underestimate.
  void ReleaseOverflow(uint64_t epoch);

  std::atomic<uint64_t> current_{1};

  /// Reader-slot table: 0 = free, otherwise the pinned epoch. Padded so
  /// concurrent pin/unpin on different slots never share a cache line.
  struct alignas(64) ReaderSlot {
    std::atomic<uint64_t> epoch{0};
  };
  // slim-lint: allow(unguarded) -- per-slot atomics; lock-free pin path
  ReaderSlot slots_[kReaderSlots];

  /// Overflow pins for threads that found no free slot.
  mutable util::InstrumentedMutex overflow_mu_{"trim.store.epoch.overflow"};
  std::atomic<uint64_t> overflow_count_{0};
  std::deque<uint64_t> overflow_ GUARDED_BY(overflow_mu_);

  /// Limbo list of retired-but-not-yet-freed objects. Closures run under
  /// the mutex so payload-clearing and container-freeing entries for the
  /// same memory cannot interleave across threads.
  struct Retired {
    uint64_t safe_epoch;
    std::function<void()> reclaim;
  };
  mutable util::InstrumentedMutex limbo_mu_{"trim.store.epoch.limbo"};
  std::deque<Retired> limbo_ GUARDED_BY(limbo_mu_);
  std::atomic<uint64_t> retired_total_{0};
  std::atomic<uint64_t> reclaimed_total_{0};
  std::atomic<uint64_t> limbo_size_{0};
};

}  // namespace slim::trim

#endif  // SLIM_TRIM_EPOCH_H_
