#ifndef SLIM_UTIL_RNG_H_
#define SLIM_UTIL_RNG_H_

/// \file rng.h
/// \brief Deterministic pseudo-random generator for workload synthesis.
///
/// The workload generators must be reproducible across runs and platforms, so
/// we use our own splitmix64/xoshiro-style generator rather than std::mt19937
/// distribution behavior (which the standard does not pin down for
/// std::uniform_*_distribution).

#include <cstdint>
#include <string>
#include <vector>

namespace slim {

/// \brief Deterministic 64-bit PRNG (splitmix64 core).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound) (bound > 0).
  uint64_t Below(uint64_t bound) { return Next64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(v.size())];
  }

  /// Random lowercase identifier of the given length.
  std::string Word(size_t length) {
    static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz";
    std::string out;
    out.reserve(length);
    for (size_t i = 0; i < length; ++i) out.push_back(kAlpha[Below(26)]);
    return out;
  }

 private:
  uint64_t state_;
};

}  // namespace slim

#endif  // SLIM_UTIL_RNG_H_
