#include "util/status.h"

#include <atomic>

namespace slim {

namespace {
const std::string kEmpty;
std::atomic<StatusErrorHook> g_error_hook{nullptr};
}  // namespace

void SetStatusErrorHook(StatusErrorHook hook) {
  g_error_hook.store(hook, std::memory_order_release);
}

StatusErrorHook GetStatusErrorHook() {
  return g_error_hook.load(std::memory_order_acquire);
}

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kConformance: return "Conformance";
    case StatusCode::kUnknown: return "Unknown";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(msg)});
    if (StatusErrorHook hook = GetStatusErrorHook(); hook != nullptr) {
      hook(code, state_->msg);
    }
  }
}

Status::Status(const Status& other) {
  if (other.state_) state_ = std::make_unique<State>(*other.state_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ ? state_->msg : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace slim
