#ifndef SLIM_UTIL_STATUS_H_
#define SLIM_UTIL_STATUS_H_

/// \file status.h
/// \brief Error-handling primitives for the SLIM libraries.
///
/// Following the Arrow/RocksDB idiom, operations that can fail return a
/// `Status` (or a `Result<T>`, see result.h) rather than throwing. A Status
/// carries a coarse machine-readable code plus a human-readable message.

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace slim {

/// \brief Coarse classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed something malformed.
  kNotFound = 2,          ///< Addressed entity does not exist.
  kAlreadyExists = 3,     ///< Uniqueness violated (id, name, ...).
  kOutOfRange = 4,        ///< Index/address outside the valid domain.
  kParseError = 5,        ///< Ill-formed input text (XML, formula, A1, ...).
  kIoError = 6,           ///< Filesystem / stream failure.
  kUnsupported = 7,       ///< Valid request the implementation cannot honor.
  kFailedPrecondition = 8,///< Object not in the required state.
  kConformance = 9,       ///< Instance violates its schema (SLIM store).
  kUnknown = 10,          ///< Anything else.
};

/// \brief Human-readable name of a StatusCode (e.g. "NotFound").
std::string_view StatusCodeName(StatusCode code);

/// \brief Outcome of an operation: OK, or a code plus message.
///
/// The OK state is represented without allocation; error states allocate a
/// small heap record. Statuses are cheap to move and copy-on-error.
///
/// The class is [[nodiscard]]: silently dropping a returned Status is a
/// compile error repo-wide (-Werror=unused-result). Call sites that truly
/// do not care spell it `(void)DoThing();`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. A code of
  /// StatusCode::kOk with a non-empty message is normalized to plain OK.
  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// \name Factory helpers, one per error code.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Conformance(std::string msg) {
    return Status(StatusCode::kConformance, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  /// @}

  /// True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  /// The status code (kOk when ok()).
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }

  /// The error message; empty when ok().
  const std::string& message() const;

  /// \name Code predicates.
  /// @{
  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsConformance() const { return code() == StatusCode::kConformance; }
  /// @}

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message.
  /// OK statuses are returned unchanged.
  Status WithContext(std::string_view context) const;

  /// Two statuses are equal iff their codes and messages are equal.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;  // null == OK
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// \name Error-construction hook.
/// Observers (the obs flight recorder) may install a single process-wide
/// hook that fires whenever a non-OK Status is *constructed* from a code and
/// message (copies and moves do not re-fire; context-wrapping via
/// WithContext constructs a new status and therefore does). The hook runs on
/// the erroring thread and must not itself construct error statuses. Install
/// nullptr to remove. The unsynchronized window between installing and
/// firing is benign: a hook observed as null is simply skipped.
/// @{
using StatusErrorHook = void (*)(StatusCode code, std::string_view message);
void SetStatusErrorHook(StatusErrorHook hook);
StatusErrorHook GetStatusErrorHook();
/// @}

}  // namespace slim

/// Propagates a non-OK Status from the current function.
#define SLIM_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::slim::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (false)

#endif  // SLIM_UTIL_STATUS_H_
