#ifndef SLIM_UTIL_ID_GENERATOR_H_
#define SLIM_UTIL_ID_GENERATOR_H_

/// \file id_generator.h
/// \brief Deterministic unique-identifier generation.
///
/// The paper's MarkHandle/Mark linkage and the TRIM resources both need
/// unique identifiers. We generate ids deterministically ("<prefix><n>") so
/// that tests and persistence round trips are reproducible; uniqueness is
/// per-generator.

#include <cstdint>
#include <string>

namespace slim {

/// \brief Produces "<prefix><counter>" ids, monotonically increasing.
class IdGenerator {
 public:
  /// \param prefix Prepended to every generated id (e.g. "mark").
  explicit IdGenerator(std::string prefix) : prefix_(std::move(prefix)) {}

  /// Returns the next unique id.
  std::string Next() { return prefix_ + std::to_string(next_++); }

  /// Informs the generator that `numeric_suffix` is in use, so future ids
  /// start above it. Used when loading persisted data.
  void ReserveAtLeast(uint64_t numeric_suffix) {
    if (numeric_suffix >= next_) next_ = numeric_suffix + 1;
  }

  /// If `id` is "<prefix><digits>", reserves past it (for reload support).
  void ObserveExisting(const std::string& id);

  /// The counter value the next id will use.
  uint64_t peek() const { return next_; }

 private:
  std::string prefix_;
  uint64_t next_ = 1;
};

}  // namespace slim

#endif  // SLIM_UTIL_ID_GENERATOR_H_
