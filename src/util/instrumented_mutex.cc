#include "util/instrumented_mutex.h"

#include <atomic>
#include <chrono>

namespace slim::util {

namespace {
std::atomic<MutexEventHook> g_mutex_event_hook{nullptr};
}  // namespace

void SetMutexEventHook(MutexEventHook hook) {
  g_mutex_event_hook.store(hook, std::memory_order_release);
}

MutexEventHook GetMutexEventHook() {
  return g_mutex_event_hook.load(std::memory_order_acquire);
}

uint64_t MutexNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void InstrumentedMutex::lock() {
  if (GetMutexEventHook() == nullptr) {
    mu_.lock();
    timed_ = false;
    return;
  }
  uint64_t wait = 0;
  bool contended = false;
  if (!mu_.try_lock()) {
    const uint64_t blocked_at = MutexNowNs();
    mu_.lock();
    wait = MutexNowNs() - blocked_at;
    contended = true;
  }
  wait_ns_ = wait;
  contended_ = contended;
  timed_ = true;
  locked_at_ns_ = MutexNowNs();
}

bool InstrumentedMutex::try_lock() {
  if (!mu_.try_lock()) return false;
  if (GetMutexEventHook() == nullptr) {
    timed_ = false;
    return true;
  }
  wait_ns_ = 0;
  contended_ = false;
  timed_ = true;
  locked_at_ns_ = MutexNowNs();
  return true;
}

void InstrumentedMutex::unlock() {
  if (!timed_) {
    mu_.unlock();
    return;
  }
  MutexEvent event{site_, wait_ns_, MutexNowNs() - locked_at_ns_, contended_};
  timed_ = false;
  mu_.unlock();
  // Fire outside the critical section so the hook can take locks itself.
  if (MutexEventHook hook = GetMutexEventHook()) hook(event);
}

}  // namespace slim::util
