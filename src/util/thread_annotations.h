#ifndef SLIM_UTIL_THREAD_ANNOTATIONS_H_
#define SLIM_UTIL_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// \brief Clang thread-safety-analysis attributes (no-ops elsewhere).
///
/// These macros let headers document which mutex guards which member and
/// which lock a function requires, in a form `clang -Wthread-safety` checks
/// at compile time. Under gcc (and clang without the attribute) they expand
/// to nothing, so annotating costs nothing portably.
///
/// Usage, matching the obs layer's conventions:
///
///   class Registry {
///     ...
///    private:
///     mutable std::mutex mu_;
///     std::map<std::string, int> values_ GUARDED_BY(mu_);
///     void RebuildLocked() REQUIRES(mu_);   // caller holds mu_
///   };
///
/// `EXCLUDES(mu_)` marks a function that must be called *without* the lock
/// (it takes it itself); `NO_THREAD_SAFETY_ANALYSIS` opts one function out
/// when the analysis cannot follow the locking pattern.
///
/// Note: with libstdc++, `std::mutex` is not itself declared as a
/// capability, so clang checks these annotations for consistency (a
/// GUARDED_BY member touched from a REQUIRES-free path still warns) rather
/// than with full capability tracking. The CI clang job builds with
/// `-Wthread-safety` to keep the annotations honest.

#if defined(__clang__) && defined(__has_attribute)
#define SLIM_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define SLIM_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) SLIM_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY SLIM_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) SLIM_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) SLIM_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#endif

#ifndef REQUIRES
#define REQUIRES(...) \
  SLIM_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) \
  SLIM_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) \
  SLIM_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) \
  SLIM_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  SLIM_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) SLIM_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  SLIM_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
#endif

#endif  // SLIM_UTIL_THREAD_ANNOTATIONS_H_
