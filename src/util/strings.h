#ifndef SLIM_UTIL_STRINGS_H_
#define SLIM_UTIL_STRINGS_H_

/// \file strings.h
/// \brief Small string utilities shared across the SLIM libraries.

#include <string>
#include <string_view>
#include <vector>

namespace slim {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits but drops empty fields.
std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep);

/// Joins `parts` with `sep` between each pair.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True iff `s` starts with / ends with `prefix` / `suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);
/// ASCII upper-casing (locale independent).
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True iff every character is an ASCII decimal digit (and s non-empty).
bool IsAllDigits(std::string_view s);

/// Parses a decimal integer; returns false on any malformed input.
bool ParseInt(std::string_view s, long long* out);
/// Parses a floating-point number; returns false on any malformed input.
bool ParseDouble(std::string_view s, double* out);

/// Formats a double the way a spreadsheet displays it: integral values
/// without a trailing ".0", otherwise shortest round-trip representation.
std::string FormatNumber(double value);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

}  // namespace slim

#endif  // SLIM_UTIL_STRINGS_H_
