#ifndef SLIM_UTIL_RESULT_H_
#define SLIM_UTIL_RESULT_H_

/// \file result.h
/// \brief `Result<T>`: a value or a non-OK Status (Arrow idiom).

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace slim {

/// \brief Holds either a successfully computed `T` or the Status explaining
/// why it could not be computed.
///
/// A Result constructed from an OK status is a programming error and is
/// normalized to an Unknown error to keep the invariant "has value xor has
/// non-OK status".
///
/// Like Status, Result is [[nodiscard]]: dropping a returned Result is a
/// compile error repo-wide (-Werror=unused-result).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from an error status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Unknown("Result constructed from OK status");
    }
  }

  /// Constructs from a value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(value)) {}

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is present, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// \name Value access (must hold ok()).
  /// @{
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  /// @}

  /// Returns the value, or `fallback` when in the error state.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace slim

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// binds the value to `lhs`. `lhs` may include a declaration.
#define SLIM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#define SLIM_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define SLIM_ASSIGN_OR_RETURN_NAME(a, b) SLIM_ASSIGN_OR_RETURN_CONCAT(a, b)

#define SLIM_ASSIGN_OR_RETURN(lhs, rexpr) \
  SLIM_ASSIGN_OR_RETURN_IMPL(             \
      SLIM_ASSIGN_OR_RETURN_NAME(_slim_result_, __LINE__), lhs, rexpr)

#endif  // SLIM_UTIL_RESULT_H_
