#include "util/id_generator.h"

#include "util/strings.h"

namespace slim {

void IdGenerator::ObserveExisting(const std::string& id) {
  if (!StartsWith(id, prefix_)) return;
  std::string_view suffix = std::string_view(id).substr(prefix_.size());
  long long n = 0;
  if (ParseInt(suffix, &n) && n >= 0) {
    ReserveAtLeast(static_cast<uint64_t>(n));
  }
}

}  // namespace slim
