#ifndef SLIM_UTIL_INSTRUMENTED_MUTEX_H_
#define SLIM_UTIL_INSTRUMENTED_MUTEX_H_

/// \file instrumented_mutex.h
/// \brief A named, contention-instrumented mutex plus RAII shims.
///
/// `InstrumentedMutex` wraps `std::mutex` and carries a *site name* (a
/// string literal such as `"trim.store.write"`). When a process-wide
/// `MutexEventHook` is installed it measures, per acquisition:
///
///  - **wait time** — how long `lock()` blocked (0 when the fast-path
///    `try_lock()` succeeded, i.e. the lock was uncontended), and
///  - **hold time** — how long the lock was held until `unlock()`.
///
/// The event fires *after* the mutex is released, so hooks may themselves
/// take locks (including other instrumented ones) without extending the
/// critical section or deadlocking against it. With no hook installed the
/// cost over a plain `std::mutex` is one relaxed atomic load and one flag
/// store — no clock reads.
///
/// `util` sits at the bottom of the layer DAG and must not depend on the
/// obs layer, so this header only *publishes* events through a function
/// pointer (the same pattern as `SetStatusErrorHook`); `obs::LockProfiler`
/// installs the hook and turns events into `obs.lock.*` metrics.
///
/// The class is a clang thread-safety `CAPABILITY`, and the `MutexLock` /
/// `UniqueLock` shims are `SCOPED_CAPABILITY`, so `GUARDED_BY` /
/// `REQUIRES` annotations written against an `InstrumentedMutex` get full
/// capability tracking under `clang -Wthread-safety` (std::lock_guard and
/// std::unique_lock are unannotated and would not).

#include <cstdint>
#include <mutex>

#include "util/thread_annotations.h"

namespace slim::util {

/// One completed acquire/release cycle of an InstrumentedMutex. Delivered
/// to the hook after the mutex has been released.
struct MutexEvent {
  const char* site;   ///< The mutex's site name (string literal).
  uint64_t wait_ns;   ///< Time lock() blocked; 0 when uncontended.
  uint64_t hold_ns;   ///< Time between acquisition and release.
  bool contended;     ///< True when the fast-path try_lock failed.
};

/// Process-wide event sink. Must be safe to call from any thread. The hook
/// runs outside the critical section; reentrant acquisitions of other
/// instrumented mutexes inside the hook produce further events, so hooks
/// that record into shared state must guard against their own recursion
/// (see obs::LockProfiler).
using MutexEventHook = void (*)(const MutexEvent& event);

/// Installs (or, with nullptr, removes) the process-wide hook.
void SetMutexEventHook(MutexEventHook hook);
MutexEventHook GetMutexEventHook();

/// Monotonic clock used for the measurements, exposed for tests.
uint64_t MutexNowNs();

class CAPABILITY("mutex") InstrumentedMutex {
 public:
  /// `site` must be a string literal (or otherwise outlive the mutex); it
  /// names the lock in profiler tables and `obs.lock.<site>.*` metrics.
  explicit InstrumentedMutex(const char* site = "unnamed") : site_(site) {}

  InstrumentedMutex(const InstrumentedMutex&) = delete;
  InstrumentedMutex& operator=(const InstrumentedMutex&) = delete;

  void lock() ACQUIRE();
  bool try_lock() TRY_ACQUIRE(true);
  void unlock() RELEASE();

  const char* site() const { return site_; }

 private:
  // The one legitimate raw mutex: this class *is* the instrumentation.
  std::mutex mu_;
  const char* site_;
  // Per-hold measurement state; only touched while mu_ is held (written
  // after acquisition in lock()/try_lock(), read before release in
  // unlock()), so plain members are race-free.
  uint64_t locked_at_ns_ = 0;
  uint64_t wait_ns_ = 0;
  bool contended_ = false;
  bool timed_ = false;
};

/// std::lock_guard shim with scoped-capability annotations.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(InstrumentedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~MutexLock() RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  InstrumentedMutex* mu_;
};

/// std::unique_lock shim: a scoped lock that can be dropped and re-taken,
/// e.g. around a blocking wait or a callback that must run unlocked.
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(InstrumentedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
    owned_ = true;
  }
  ~UniqueLock() RELEASE() {
    if (owned_) mu_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ACQUIRE() {
    mu_->lock();
    owned_ = true;
  }
  void unlock() RELEASE() {
    mu_->unlock();
    owned_ = false;
  }
  bool owns_lock() const { return owned_; }

 private:
  InstrumentedMutex* mu_;
  bool owned_ = false;
};

}  // namespace slim::util

#endif  // SLIM_UTIL_INSTRUMENTED_MUTEX_H_
