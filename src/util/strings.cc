#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace slim {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& part : Split(s, sep)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

bool ParseInt(std::string_view s, long long* out) {
  s = Trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is not universally available; use strtod on a
  // bounded copy.
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

std::string FormatNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "Inf" : "-Inf";
  double rounded = std::round(value);
  if (rounded == value && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  // Shortest representation that round-trips.
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double back = 0;
    if (ParseDouble(buf, &back) && back == value) break;
  }
  return buf;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out += s.substr(start);
      break;
    }
    out += s.substr(start, pos - start);
    out += to;
    start = pos + from.size();
  }
  return out;
}

}  // namespace slim
