#include "baseapp/pdf_app.h"

#include "util/strings.h"

namespace slim::baseapp {

namespace pdf = slim::doc::pdf;

Status PdfApp::RegisterDocument(std::unique_ptr<pdf::PdfDocument> document) {
  if (document == nullptr) return Status::InvalidArgument("null document");
  const std::string& name = document->file_name();
  if (name.empty()) {
    return Status::InvalidArgument("document has no file name");
  }
  if (open_.count(name)) {
    return Status::AlreadyExists("document '" + name + "' already open");
  }
  open_[name] = std::move(document);
  return Status::OK();
}

Status PdfApp::OpenDocument(const std::string& file_name) {
  if (open_.count(file_name)) return Status::OK();
  SLIM_ASSIGN_OR_RETURN(std::unique_ptr<pdf::PdfDocument> doc,
                        pdf::PdfDocument::LoadFromFile(file_name));
  doc->set_file_name(file_name);
  open_[file_name] = std::move(doc);
  return Status::OK();
}

bool PdfApp::IsOpen(const std::string& file_name) const {
  return open_.count(file_name) > 0;
}

Status PdfApp::CloseDocument(const std::string& file_name) {
  auto it = open_.find(file_name);
  if (it == open_.end()) {
    return Status::NotFound("document '" + file_name + "' is not open");
  }
  if (selection_ && selection_->file_name == file_name) selection_.reset();
  open_.erase(it);
  return Status::OK();
}

std::vector<std::string> PdfApp::OpenDocuments() const {
  std::vector<std::string> out;
  out.reserve(open_.size());
  for (const auto& [name, _] : open_) out.push_back(name);
  return out;
}

std::string PdfApp::FormatAddress(int32_t page, const pdf::Rect& region) {
  return "page/" + std::to_string(page) + "/rect/" + region.ToString();
}

Result<std::pair<int32_t, pdf::Rect>> PdfApp::ParseAddress(
    const std::string& address) {
  std::vector<std::string> parts = Split(address, '/');
  if (parts.size() != 4 || parts[0] != "page" || parts[2] != "rect") {
    return Status::ParseError(
        "pdf address must be 'page/<n>/rect/<x,y,w,h>': '" + address + "'");
  }
  long long page = 0;
  if (!ParseInt(parts[1], &page) || page < 0) {
    return Status::ParseError("bad page index in '" + address + "'");
  }
  SLIM_ASSIGN_OR_RETURN(pdf::Rect rect, pdf::Rect::Parse(parts[3]));
  return std::make_pair(static_cast<int32_t>(page), rect);
}

Status PdfApp::SelectRegion(const std::string& file_name, int32_t page,
                            const pdf::Rect& region) {
  SLIM_ASSIGN_OR_RETURN(pdf::PdfDocument * doc, GetDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(std::string content,
                        doc->ExtractRegionText(page, region));
  Selection sel;
  sel.file_name = file_name;
  sel.address = FormatAddress(page, region);
  sel.content = std::move(content);
  selection_ = std::move(sel);
  return Status::OK();
}

Result<Selection> PdfApp::CurrentSelection() const {
  if (!selection_) {
    return Status::FailedPrecondition("no current selection in PDF viewer");
  }
  return *selection_;
}

Status PdfApp::NavigateTo(const std::string& file_name,
                          const std::string& address) {
  SLIM_RETURN_NOT_OK(OpenDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(pdf::PdfDocument * doc, GetDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(auto parsed, ParseAddress(address));
  SLIM_ASSIGN_OR_RETURN(std::string content,
                        doc->ExtractRegionText(parsed.first, parsed.second));
  Selection sel;
  sel.file_name = file_name;
  sel.address = address;
  sel.content = content;
  selection_ = sel;
  RecordNavigation({file_name, address, content});
  return Status::OK();
}

Result<std::string> PdfApp::ExtractContent(const std::string& file_name,
                                           const std::string& address) {
  SLIM_RETURN_NOT_OK(OpenDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(pdf::PdfDocument * doc, GetDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(auto parsed, ParseAddress(address));
  return doc->ExtractRegionText(parsed.first, parsed.second);
}

Result<pdf::PdfDocument*> PdfApp::GetDocument(const std::string& file_name) {
  auto it = open_.find(file_name);
  if (it == open_.end()) {
    return Status::NotFound("document '" + file_name + "' is not open");
  }
  return it->second.get();
}

}  // namespace slim::baseapp
