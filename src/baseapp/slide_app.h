#ifndef SLIM_BASEAPP_SLIDE_APP_H_
#define SLIM_BASEAPP_SLIDE_APP_H_

/// \file slide_app.h
/// \brief The presentation base application ("Microsoft PowerPoint").
///
/// Native address syntax: "slide/<index>" for a whole slide, or
/// "slide/<index>/shape/<id>" for one shape.

#include <map>
#include <memory>
#include <string>

#include "baseapp/base_application.h"
#include "doc/slides/slide_deck.h"

namespace slim::baseapp {

/// \brief In-memory presentation application.
class SlideApp : public BaseApplication {
 public:
  std::string_view app_type() const override { return "slides"; }

  /// Installs an in-memory deck under its file name. Takes ownership.
  Status RegisterDeck(std::unique_ptr<doc::slides::SlideDeck> deck);

  Status OpenDocument(const std::string& file_name) override;
  bool IsOpen(const std::string& file_name) const override;
  Status CloseDocument(const std::string& file_name) override;
  std::vector<std::string> OpenDocuments() const override;

  /// Simulates the user selecting a slide (shape_id empty) or a shape.
  Status Select(const std::string& file_name, int32_t slide,
                const std::string& shape_id = "");

  Result<Selection> CurrentSelection() const override;
  Status NavigateTo(const std::string& file_name,
                    const std::string& address) override;
  Result<std::string> ExtractContent(const std::string& file_name,
                                     const std::string& address) override;

  /// Direct access to an open deck.
  Result<doc::slides::SlideDeck*> GetDeck(const std::string& file_name);

  /// Splits an address into (slide index, shape id-or-empty).
  static Result<std::pair<int32_t, std::string>> ParseAddress(
      const std::string& address);
  /// Formats an address.
  static std::string FormatAddress(int32_t slide, const std::string& shape_id);

 private:
  Result<std::string> ContentAt(const std::string& file_name, int32_t slide,
                                const std::string& shape_id);

  std::map<std::string, std::unique_ptr<doc::slides::SlideDeck>> open_;
  std::optional<Selection> selection_;
};

}  // namespace slim::baseapp

#endif  // SLIM_BASEAPP_SLIDE_APP_H_
