#include "baseapp/slide_app.h"

#include "util/strings.h"

namespace slim::baseapp {

namespace slides = slim::doc::slides;

Status SlideApp::RegisterDeck(std::unique_ptr<slides::SlideDeck> deck) {
  if (deck == nullptr) return Status::InvalidArgument("null deck");
  const std::string& name = deck->file_name();
  if (name.empty()) return Status::InvalidArgument("deck has no file name");
  if (open_.count(name)) {
    return Status::AlreadyExists("deck '" + name + "' already open");
  }
  open_[name] = std::move(deck);
  return Status::OK();
}

Status SlideApp::OpenDocument(const std::string& file_name) {
  if (open_.count(file_name)) return Status::OK();
  SLIM_ASSIGN_OR_RETURN(std::unique_ptr<slides::SlideDeck> deck,
                        slides::SlideDeck::LoadFromFile(file_name));
  deck->set_file_name(file_name);
  open_[file_name] = std::move(deck);
  return Status::OK();
}

bool SlideApp::IsOpen(const std::string& file_name) const {
  return open_.count(file_name) > 0;
}

Status SlideApp::CloseDocument(const std::string& file_name) {
  auto it = open_.find(file_name);
  if (it == open_.end()) {
    return Status::NotFound("deck '" + file_name + "' is not open");
  }
  if (selection_ && selection_->file_name == file_name) selection_.reset();
  open_.erase(it);
  return Status::OK();
}

std::vector<std::string> SlideApp::OpenDocuments() const {
  std::vector<std::string> out;
  out.reserve(open_.size());
  for (const auto& [name, _] : open_) out.push_back(name);
  return out;
}

std::string SlideApp::FormatAddress(int32_t slide,
                                    const std::string& shape_id) {
  std::string out = "slide/" + std::to_string(slide);
  if (!shape_id.empty()) out += "/shape/" + shape_id;
  return out;
}

Result<std::pair<int32_t, std::string>> SlideApp::ParseAddress(
    const std::string& address) {
  std::vector<std::string> parts = Split(address, '/');
  if (parts.size() != 2 && parts.size() != 4) {
    return Status::ParseError("slide address must be 'slide/<n>' or "
                              "'slide/<n>/shape/<id>': '" + address + "'");
  }
  if (parts[0] != "slide") {
    return Status::ParseError("slide address must start with 'slide/': '" +
                              address + "'");
  }
  long long n = 0;
  if (!ParseInt(parts[1], &n) || n < 0) {
    return Status::ParseError("bad slide index in '" + address + "'");
  }
  std::string shape_id;
  if (parts.size() == 4) {
    if (parts[2] != "shape" || parts[3].empty()) {
      return Status::ParseError("malformed shape segment in '" + address +
                                "'");
    }
    shape_id = parts[3];
  }
  return std::make_pair(static_cast<int32_t>(n), shape_id);
}

Result<std::string> SlideApp::ContentAt(const std::string& file_name,
                                        int32_t slide,
                                        const std::string& shape_id) {
  SLIM_ASSIGN_OR_RETURN(slides::SlideDeck * deck, GetDeck(file_name));
  SLIM_ASSIGN_OR_RETURN(const slides::Slide* s, deck->GetSlide(slide));
  if (shape_id.empty()) return s->AllText();
  SLIM_ASSIGN_OR_RETURN(const slides::Shape* shape, s->FindShape(shape_id));
  std::string out = shape->text;
  for (const std::string& b : shape->bullets) {
    if (!out.empty()) out += '\n';
    out += b;
  }
  return out;
}

Status SlideApp::Select(const std::string& file_name, int32_t slide,
                        const std::string& shape_id) {
  SLIM_ASSIGN_OR_RETURN(std::string content,
                        ContentAt(file_name, slide, shape_id));
  Selection sel;
  sel.file_name = file_name;
  sel.address = FormatAddress(slide, shape_id);
  sel.content = std::move(content);
  selection_ = std::move(sel);
  return Status::OK();
}

Result<Selection> SlideApp::CurrentSelection() const {
  if (!selection_) {
    return Status::FailedPrecondition(
        "no current selection in presentation app");
  }
  return *selection_;
}

Status SlideApp::NavigateTo(const std::string& file_name,
                            const std::string& address) {
  SLIM_RETURN_NOT_OK(OpenDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(auto parsed, ParseAddress(address));
  SLIM_ASSIGN_OR_RETURN(std::string content,
                        ContentAt(file_name, parsed.first, parsed.second));
  Selection sel;
  sel.file_name = file_name;
  sel.address = address;
  sel.content = content;
  selection_ = sel;
  RecordNavigation({file_name, address, content});
  return Status::OK();
}

Result<std::string> SlideApp::ExtractContent(const std::string& file_name,
                                             const std::string& address) {
  SLIM_RETURN_NOT_OK(OpenDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(auto parsed, ParseAddress(address));
  return ContentAt(file_name, parsed.first, parsed.second);
}

Result<slides::SlideDeck*> SlideApp::GetDeck(const std::string& file_name) {
  auto it = open_.find(file_name);
  if (it == open_.end()) {
    return Status::NotFound("deck '" + file_name + "' is not open");
  }
  return it->second.get();
}

}  // namespace slim::baseapp
