#ifndef SLIM_BASEAPP_XML_APP_H_
#define SLIM_BASEAPP_XML_APP_H_

/// \file xml_app.h
/// \brief The XML-viewer base application (lab reports in the paper's ICU
/// scenario are XML documents).
///
/// Native address syntax: an XmlPath, e.g. "/report/labs/result[3]".
/// Resolution opens the document and highlights the addressed element
/// (paper Fig. 4: "opens the lab report and highlights the appropriate
/// section of the XML document").

#include <map>
#include <memory>
#include <string>

#include "baseapp/base_application.h"
#include "doc/xml/dom.h"
#include "doc/xml/path.h"

namespace slim::baseapp {

/// \brief In-memory XML viewer with open-document management.
class XmlApp : public BaseApplication {
 public:
  std::string_view app_type() const override { return "xml"; }

  /// Installs an in-memory document under a file name. Takes ownership.
  Status RegisterDocument(const std::string& file_name,
                          std::unique_ptr<doc::xml::Document> document);

  Status OpenDocument(const std::string& file_name) override;
  bool IsOpen(const std::string& file_name) const override;
  Status CloseDocument(const std::string& file_name) override;
  std::vector<std::string> OpenDocuments() const override;

  /// When enabled, selections are addressed by RobustPathOf (attribute
  /// predicates where unique) instead of ordinal-canonical PathOf; such
  /// marks keep resolving after sibling insertions in the base document.
  void set_robust_addressing(bool robust) { robust_addressing_ = robust; }
  bool robust_addressing() const { return robust_addressing_; }

  /// Simulates the user selecting an element; captures its path (canonical
  /// or robust per the addressing policy).
  Status SelectElement(const std::string& file_name,
                       const doc::xml::Element* element);

  /// Selects by path instead of element pointer.
  Status SelectPath(const std::string& file_name,
                    const std::string& path_text);

  Result<Selection> CurrentSelection() const override;
  Status NavigateTo(const std::string& file_name,
                    const std::string& address) override;
  Result<std::string> ExtractContent(const std::string& file_name,
                                     const std::string& address) override;

  /// Direct access to an open document.
  Result<doc::xml::Document*> GetDocument(const std::string& file_name);

 private:
  std::map<std::string, std::unique_ptr<doc::xml::Document>> open_;
  std::optional<Selection> selection_;
  bool robust_addressing_ = false;
};

}  // namespace slim::baseapp

#endif  // SLIM_BASEAPP_XML_APP_H_
