#ifndef SLIM_BASEAPP_HTML_APP_H_
#define SLIM_BASEAPP_HTML_APP_H_

/// \file html_app.h
/// \brief The web-browser base application ("Internet Explorer").
///
/// Native address syntax, in order of robustness:
///   "id:<value>"     — element with that id attribute
///   "anchor:<name>"  — <a name=...> / <a id=...>
///   "path:<XmlPath>" — structural path, e.g. "path:/html/body/p[3]"
/// Pages are addressed by URL; local files act as URLs here.

#include <map>
#include <memory>
#include <string>

#include "baseapp/base_application.h"
#include "doc/html/html.h"

namespace slim::baseapp {

/// \brief In-memory web browser with a page cache.
class HtmlApp : public BaseApplication {
 public:
  std::string_view app_type() const override { return "html"; }

  /// Installs a page under a URL from HTML source text.
  Status RegisterPage(const std::string& url, std::string_view html_source);

  Status OpenDocument(const std::string& url) override;
  bool IsOpen(const std::string& url) const override;
  Status CloseDocument(const std::string& url) override;
  std::vector<std::string> OpenDocuments() const override;

  /// Simulates the user selecting an element in the page.
  Status SelectElement(const std::string& url,
                       const doc::xml::Element* element);

  Result<Selection> CurrentSelection() const override;
  Status NavigateTo(const std::string& url,
                    const std::string& address) override;
  Result<std::string> ExtractContent(const std::string& url,
                                     const std::string& address) override;

  /// Direct access to a loaded page's DOM.
  Result<doc::xml::Document*> GetPage(const std::string& url);

  /// Best available address for an element: id if it has one, enclosing
  /// anchor, otherwise its structural path.
  static std::string AddressOf(const doc::xml::Element* element);

 private:
  Result<doc::xml::Element*> ResolveAddress(const std::string& url,
                                            const std::string& address);

  std::map<std::string, std::unique_ptr<doc::xml::Document>> open_;
  std::optional<Selection> selection_;
};

}  // namespace slim::baseapp

#endif  // SLIM_BASEAPP_HTML_APP_H_
