#ifndef SLIM_BASEAPP_PDF_APP_H_
#define SLIM_BASEAPP_PDF_APP_H_

/// \file pdf_app.h
/// \brief The PDF-viewer base application ("Adobe Acrobat").
///
/// Native address syntax: "page/<n>/rect/<x,y,w,h>" — a page plus a region
/// rectangle. Resolution returns the text objects intersecting the region.

#include <map>
#include <memory>
#include <string>

#include "baseapp/base_application.h"
#include "doc/pdf/pdf_document.h"

namespace slim::baseapp {

/// \brief In-memory PDF viewer.
class PdfApp : public BaseApplication {
 public:
  std::string_view app_type() const override { return "pdf"; }

  /// Installs an in-memory document under its file name. Takes ownership.
  Status RegisterDocument(std::unique_ptr<doc::pdf::PdfDocument> document);

  Status OpenDocument(const std::string& file_name) override;
  bool IsOpen(const std::string& file_name) const override;
  Status CloseDocument(const std::string& file_name) override;
  std::vector<std::string> OpenDocuments() const override;

  /// Simulates the user rubber-banding a region on a page.
  Status SelectRegion(const std::string& file_name, int32_t page,
                      const doc::pdf::Rect& region);

  Result<Selection> CurrentSelection() const override;
  Status NavigateTo(const std::string& file_name,
                    const std::string& address) override;
  Result<std::string> ExtractContent(const std::string& file_name,
                                     const std::string& address) override;

  /// Direct access to an open document.
  Result<doc::pdf::PdfDocument*> GetDocument(const std::string& file_name);

  /// Splits "page/<n>/rect/<x,y,w,h>".
  static Result<std::pair<int32_t, doc::pdf::Rect>> ParseAddress(
      const std::string& address);
  /// Formats an address.
  static std::string FormatAddress(int32_t page, const doc::pdf::Rect& region);

 private:
  std::map<std::string, std::unique_ptr<doc::pdf::PdfDocument>> open_;
  std::optional<Selection> selection_;
};

}  // namespace slim::baseapp

#endif  // SLIM_BASEAPP_PDF_APP_H_
