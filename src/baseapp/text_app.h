#ifndef SLIM_BASEAPP_TEXT_APP_H_
#define SLIM_BASEAPP_TEXT_APP_H_

/// \file text_app.h
/// \brief The word-processor base application ("Microsoft Word").
///
/// Native address syntax: a TextSpan, e.g. "p12:40-58" (paragraph 12,
/// characters 40..58).

#include <map>
#include <memory>
#include <string>

#include "baseapp/base_application.h"
#include "doc/text/text_document.h"

namespace slim::baseapp {

/// \brief In-memory word processor with open-document management.
class TextApp : public BaseApplication {
 public:
  std::string_view app_type() const override { return "text"; }

  /// Installs an in-memory document under a file name. Takes ownership.
  Status RegisterDocument(const std::string& file_name,
                          std::unique_ptr<doc::text::TextDocument> document);

  Status OpenDocument(const std::string& file_name) override;
  bool IsOpen(const std::string& file_name) const override;
  Status CloseDocument(const std::string& file_name) override;
  std::vector<std::string> OpenDocuments() const override;

  /// Simulates the user selecting a character span.
  Status Select(const std::string& file_name, const doc::text::TextSpan& span);

  Result<Selection> CurrentSelection() const override;
  Status NavigateTo(const std::string& file_name,
                    const std::string& address) override;
  Result<std::string> ExtractContent(const std::string& file_name,
                                     const std::string& address) override;

  /// Direct access to an open document.
  Result<doc::text::TextDocument*> GetDocument(const std::string& file_name);

 private:
  std::map<std::string, std::unique_ptr<doc::text::TextDocument>> open_;
  std::optional<Selection> selection_;
};

}  // namespace slim::baseapp

#endif  // SLIM_BASEAPP_TEXT_APP_H_
