#include "baseapp/text_app.h"

namespace slim::baseapp {

namespace text = slim::doc::text;

Status TextApp::RegisterDocument(const std::string& file_name,
                                 std::unique_ptr<text::TextDocument> document) {
  if (document == nullptr) return Status::InvalidArgument("null document");
  if (file_name.empty()) return Status::InvalidArgument("empty file name");
  if (open_.count(file_name)) {
    return Status::AlreadyExists("document '" + file_name + "' already open");
  }
  open_[file_name] = std::move(document);
  return Status::OK();
}

Status TextApp::OpenDocument(const std::string& file_name) {
  if (open_.count(file_name)) return Status::OK();
  SLIM_ASSIGN_OR_RETURN(std::unique_ptr<text::TextDocument> doc,
                        text::TextDocument::LoadFromFile(file_name));
  open_[file_name] = std::move(doc);
  return Status::OK();
}

bool TextApp::IsOpen(const std::string& file_name) const {
  return open_.count(file_name) > 0;
}

Status TextApp::CloseDocument(const std::string& file_name) {
  auto it = open_.find(file_name);
  if (it == open_.end()) {
    return Status::NotFound("document '" + file_name + "' is not open");
  }
  if (selection_ && selection_->file_name == file_name) selection_.reset();
  open_.erase(it);
  return Status::OK();
}

std::vector<std::string> TextApp::OpenDocuments() const {
  std::vector<std::string> out;
  out.reserve(open_.size());
  for (const auto& [name, _] : open_) out.push_back(name);
  return out;
}

Status TextApp::Select(const std::string& file_name,
                       const text::TextSpan& span) {
  SLIM_ASSIGN_OR_RETURN(text::TextDocument * doc, GetDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(std::string content, doc->ExtractSpan(span));
  Selection sel;
  sel.file_name = file_name;
  sel.address = span.ToString();
  sel.content = std::move(content);
  selection_ = std::move(sel);
  return Status::OK();
}

Result<Selection> TextApp::CurrentSelection() const {
  if (!selection_) {
    return Status::FailedPrecondition(
        "no current selection in word processor");
  }
  return *selection_;
}

Status TextApp::NavigateTo(const std::string& file_name,
                           const std::string& address) {
  SLIM_RETURN_NOT_OK(OpenDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(text::TextDocument * doc, GetDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(text::TextSpan span, text::TextSpan::Parse(address));
  SLIM_ASSIGN_OR_RETURN(std::string content, doc->ExtractSpan(span));
  Selection sel;
  sel.file_name = file_name;
  sel.address = address;
  sel.content = content;
  selection_ = sel;
  RecordNavigation({file_name, address, content});
  return Status::OK();
}

Result<std::string> TextApp::ExtractContent(const std::string& file_name,
                                            const std::string& address) {
  SLIM_RETURN_NOT_OK(OpenDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(text::TextDocument * doc, GetDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(text::TextSpan span, text::TextSpan::Parse(address));
  return doc->ExtractSpan(span);
}

Result<text::TextDocument*> TextApp::GetDocument(
    const std::string& file_name) {
  auto it = open_.find(file_name);
  if (it == open_.end()) {
    return Status::NotFound("document '" + file_name + "' is not open");
  }
  return it->second.get();
}

}  // namespace slim::baseapp
