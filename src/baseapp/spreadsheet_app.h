#ifndef SLIM_BASEAPP_SPREADSHEET_APP_H_
#define SLIM_BASEAPP_SPREADSHEET_APP_H_

/// \file spreadsheet_app.h
/// \brief The "Microsoft Excel" base application.
///
/// Native address syntax: "<sheet>!<range>", e.g. "Meds!B2:D2". Resolving a
/// mark drives the app exactly as the paper describes (§4.2): "open the
/// file, activate the worksheet, and select the appropriate range".

#include <map>
#include <memory>
#include <string>

#include "baseapp/base_application.h"
#include "doc/spreadsheet/workbook.h"

namespace slim::baseapp {

/// \brief In-memory spreadsheet application with open-workbook management.
class SpreadsheetApp : public BaseApplication {
 public:
  std::string_view app_type() const override { return "excel"; }

  /// Installs an in-memory workbook under its file name (simulates a file
  /// on disk already open in the app). Takes ownership.
  Status RegisterWorkbook(std::unique_ptr<doc::Workbook> workbook);

  Status OpenDocument(const std::string& file_name) override;
  bool IsOpen(const std::string& file_name) const override;
  Status CloseDocument(const std::string& file_name) override;
  std::vector<std::string> OpenDocuments() const override;

  /// Simulates the user selecting a range; the selection's address becomes
  /// "<sheet>!<range>" and its content the display text of the cells.
  Status Select(const std::string& file_name, const std::string& sheet,
                const doc::RangeRef& range);

  Result<Selection> CurrentSelection() const override;
  Status NavigateTo(const std::string& file_name,
                    const std::string& address) override;
  Result<std::string> ExtractContent(const std::string& file_name,
                                     const std::string& address) override;

  /// Direct access to an open workbook (for examples/tests).
  Result<doc::Workbook*> GetWorkbook(const std::string& file_name);

  /// Splits "<sheet>!<range>" into its parts.
  static Result<std::pair<std::string, doc::RangeRef>> ParseAddress(
      const std::string& address);

 private:
  /// Tab-separated display text of a range (rows newline-separated).
  static std::string RangeText(doc::Workbook* wb, const std::string& sheet,
                               const doc::RangeRef& range);

  std::map<std::string, std::unique_ptr<doc::Workbook>> open_;
  std::optional<Selection> selection_;
};

}  // namespace slim::baseapp

#endif  // SLIM_BASEAPP_SPREADSHEET_APP_H_
