#include "baseapp/base_application.h"

namespace slim::baseapp {

Status AppRegistry::Register(BaseApplication* app) {
  if (app == nullptr) return Status::InvalidArgument("null application");
  std::string type(app->app_type());
  for (const auto& [t, _] : apps_) {
    if (t == type) {
      return Status::AlreadyExists("application type '" + type +
                                   "' already registered");
    }
  }
  apps_.emplace_back(std::move(type), app);
  return Status::OK();
}

Result<BaseApplication*> AppRegistry::Find(std::string_view app_type) const {
  for (const auto& [t, app] : apps_) {
    if (t == app_type) return app;
  }
  return Status::NotFound("no application registered for type '" +
                          std::string(app_type) + "'");
}

std::vector<std::string> AppRegistry::Types() const {
  std::vector<std::string> out;
  out.reserve(apps_.size());
  for (const auto& [t, _] : apps_) out.push_back(t);
  return out;
}

}  // namespace slim::baseapp
