#include "baseapp/html_app.h"

#include "doc/xml/path.h"
#include "util/strings.h"

namespace slim::baseapp {

namespace xml = slim::doc::xml;
namespace html = slim::doc::html;

Status HtmlApp::RegisterPage(const std::string& url,
                             std::string_view html_source) {
  if (url.empty()) return Status::InvalidArgument("empty URL");
  if (open_.count(url)) {
    return Status::AlreadyExists("page '" + url + "' already loaded");
  }
  open_[url] = html::ParseHtml(html_source);
  return Status::OK();
}

Status HtmlApp::OpenDocument(const std::string& url) {
  if (open_.count(url)) return Status::OK();
  SLIM_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> doc,
                        html::ParseHtmlFile(url));
  open_[url] = std::move(doc);
  return Status::OK();
}

bool HtmlApp::IsOpen(const std::string& url) const {
  return open_.count(url) > 0;
}

Status HtmlApp::CloseDocument(const std::string& url) {
  auto it = open_.find(url);
  if (it == open_.end()) {
    return Status::NotFound("page '" + url + "' is not loaded");
  }
  if (selection_ && selection_->file_name == url) selection_.reset();
  open_.erase(it);
  return Status::OK();
}

std::vector<std::string> HtmlApp::OpenDocuments() const {
  std::vector<std::string> out;
  out.reserve(open_.size());
  for (const auto& [name, _] : open_) out.push_back(name);
  return out;
}

std::string HtmlApp::AddressOf(const xml::Element* element) {
  const std::string* id = element->FindAttribute("id");
  if (id != nullptr && !id->empty()) return "id:" + *id;
  if (element->name() == "a") {
    const std::string* name = element->FindAttribute("name");
    if (name != nullptr && !name->empty()) return "anchor:" + *name;
  }
  return "path:" + xml::PathOf(element).ToString();
}

Result<xml::Element*> HtmlApp::ResolveAddress(const std::string& url,
                                              const std::string& address) {
  SLIM_ASSIGN_OR_RETURN(xml::Document * page, GetPage(url));
  if (StartsWith(address, "id:")) {
    xml::Element* e = html::FindById(page, address.substr(3));
    if (e == nullptr) {
      return Status::NotFound("no element with id '" + address.substr(3) +
                              "' in '" + url + "'");
    }
    return e;
  }
  if (StartsWith(address, "anchor:")) {
    xml::Element* e = html::FindAnchor(page, address.substr(7));
    if (e == nullptr) {
      return Status::NotFound("no anchor '" + address.substr(7) + "' in '" +
                              url + "'");
    }
    return e;
  }
  if (StartsWith(address, "path:")) {
    SLIM_ASSIGN_OR_RETURN(xml::XmlPath path,
                          xml::XmlPath::Parse(address.substr(5)));
    return path.Resolve(page);
  }
  return Status::ParseError(
      "html address must start with 'id:', 'anchor:' or 'path:': '" +
      address + "'");
}

Status HtmlApp::SelectElement(const std::string& url,
                              const xml::Element* element) {
  if (element == nullptr) return Status::InvalidArgument("null element");
  if (!open_.count(url)) {
    return Status::NotFound("page '" + url + "' is not loaded");
  }
  Selection sel;
  sel.file_name = url;
  sel.address = AddressOf(element);
  sel.content = html::VisibleText(element);
  selection_ = std::move(sel);
  return Status::OK();
}

Result<Selection> HtmlApp::CurrentSelection() const {
  if (!selection_) {
    return Status::FailedPrecondition("no current selection in browser");
  }
  return *selection_;
}

Status HtmlApp::NavigateTo(const std::string& url,
                           const std::string& address) {
  SLIM_RETURN_NOT_OK(OpenDocument(url));
  SLIM_ASSIGN_OR_RETURN(xml::Element * elem, ResolveAddress(url, address));
  Selection sel;
  sel.file_name = url;
  sel.address = address;
  sel.content = html::VisibleText(elem);
  selection_ = sel;
  RecordNavigation({url, address, sel.content});
  return Status::OK();
}

Result<std::string> HtmlApp::ExtractContent(const std::string& url,
                                            const std::string& address) {
  SLIM_RETURN_NOT_OK(OpenDocument(url));
  SLIM_ASSIGN_OR_RETURN(xml::Element * elem, ResolveAddress(url, address));
  return html::VisibleText(elem);
}

Result<xml::Document*> HtmlApp::GetPage(const std::string& url) {
  auto it = open_.find(url);
  if (it == open_.end()) {
    return Status::NotFound("page '" + url + "' is not loaded");
  }
  return it->second.get();
}

}  // namespace slim::baseapp
