#ifndef SLIM_BASEAPP_BASE_APPLICATION_H_
#define SLIM_BASEAPP_BASE_APPLICATION_H_

/// \file base_application.h
/// \brief The base-layer application interface (paper §1, §4.1).
///
/// The paper deliberately assumes almost nothing about base applications:
/// "we assume only that a base source can supply the address of a currently
/// selected information element, and that it can return to that element
/// given the address." This interface is that contract, plus the §6
/// extension behaviors ("extract content", "display in place") that mark
/// modules may use.
///
/// Each concrete application manages its own open documents (simulating the
/// native application holding files open) and exposes a *current selection*
/// that a mark module can read when the user asks to create a mark.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"

namespace slim::baseapp {

/// \brief The user's current selection inside a base application.
///
/// `address` is in the application's native addressing scheme (an A1 range,
/// an XmlPath, a text span, ...) — exactly what gets captured into a mark.
struct Selection {
  std::string file_name;  ///< Document the selection lives in.
  std::string address;    ///< App-native address of the selected element.
  std::string content;    ///< Excerpt text of the selected element.
};

/// \brief Record of the most recent navigation a resolver drove, so callers
/// (and tests) can observe "the document is displayed with the element
/// highlighted" (paper §3).
struct NavigationState {
  std::string file_name;
  std::string address;
  std::string highlighted_content;
};

/// \brief Abstract base application.
class BaseApplication {
 public:
  virtual ~BaseApplication() = default;

  /// Application type tag; matches the mark type it serves ("excel",
  /// "xml", "text", "slides", "pdf", "html").
  virtual std::string_view app_type() const = 0;

  /// Ensures the named document is open, loading it from disk if needed.
  virtual Status OpenDocument(const std::string& file_name) = 0;

  /// True iff the document is currently open.
  virtual bool IsOpen(const std::string& file_name) const = 0;

  /// Closes the document; NotFound if it is not open.
  virtual Status CloseDocument(const std::string& file_name) = 0;

  /// Names of currently open documents.
  virtual std::vector<std::string> OpenDocuments() const = 0;

  /// The current selection; FailedPrecondition when nothing is selected.
  virtual Result<Selection> CurrentSelection() const = 0;

  /// Drives the application to the addressed element: opens the document,
  /// navigates, and highlights. On success the navigation state reflects
  /// the element.
  virtual Status NavigateTo(const std::string& file_name,
                            const std::string& address) = 0;

  /// §6 extension: returns the element's content without changing the
  /// visible navigation state (used for "display in place" viewers).
  virtual Result<std::string> ExtractContent(const std::string& file_name,
                                             const std::string& address) = 0;

  /// The last successful NavigateTo, if any.
  const std::optional<NavigationState>& last_navigation() const {
    return last_navigation_;
  }
  /// Clears the navigation record (e.g. when the user closes the window).
  void ClearNavigation() { last_navigation_ = std::nullopt; }

 protected:
  void RecordNavigation(NavigationState state) {
    last_navigation_ = std::move(state);
  }

  std::optional<NavigationState> last_navigation_;
};

/// \brief Routes app-type tags to application instances (the fan-out in
/// paper Fig. 7: Mark Manager -> {Excel module, PDF module, HTML module}).
class AppRegistry {
 public:
  /// Registers an application for its app_type(); AlreadyExists on
  /// duplicates. The registry does not take ownership.
  Status Register(BaseApplication* app);

  /// Looks up the application serving `app_type`.
  Result<BaseApplication*> Find(std::string_view app_type) const;

  /// All registered type tags, in registration order.
  std::vector<std::string> Types() const;

  size_t size() const { return apps_.size(); }

 private:
  std::vector<std::pair<std::string, BaseApplication*>> apps_;
};

}  // namespace slim::baseapp

#endif  // SLIM_BASEAPP_BASE_APPLICATION_H_
