#include "baseapp/spreadsheet_app.h"

#include "util/strings.h"

namespace slim::baseapp {

Status SpreadsheetApp::RegisterWorkbook(
    std::unique_ptr<doc::Workbook> workbook) {
  if (workbook == nullptr) return Status::InvalidArgument("null workbook");
  const std::string& name = workbook->file_name();
  if (name.empty()) {
    return Status::InvalidArgument("workbook has no file name");
  }
  if (open_.count(name)) {
    return Status::AlreadyExists("workbook '" + name + "' already open");
  }
  open_[name] = std::move(workbook);
  return Status::OK();
}

Status SpreadsheetApp::OpenDocument(const std::string& file_name) {
  if (open_.count(file_name)) return Status::OK();
  SLIM_ASSIGN_OR_RETURN(std::unique_ptr<doc::Workbook> wb,
                        doc::Workbook::LoadFromFile(file_name));
  wb->set_file_name(file_name);
  open_[file_name] = std::move(wb);
  return Status::OK();
}

bool SpreadsheetApp::IsOpen(const std::string& file_name) const {
  return open_.count(file_name) > 0;
}

Status SpreadsheetApp::CloseDocument(const std::string& file_name) {
  auto it = open_.find(file_name);
  if (it == open_.end()) {
    return Status::NotFound("workbook '" + file_name + "' is not open");
  }
  if (selection_ && selection_->file_name == file_name) {
    selection_.reset();
  }
  open_.erase(it);
  return Status::OK();
}

std::vector<std::string> SpreadsheetApp::OpenDocuments() const {
  std::vector<std::string> out;
  out.reserve(open_.size());
  for (const auto& [name, _] : open_) out.push_back(name);
  return out;
}

std::string SpreadsheetApp::RangeText(doc::Workbook* wb,
                                      const std::string& sheet,
                                      const doc::RangeRef& range) {
  std::string out;
  doc::RangeRef r = range.Normalized();
  for (int32_t row = r.start.row; row <= r.end.row; ++row) {
    if (row != r.start.row) out += '\n';
    for (int32_t col = r.start.col; col <= r.end.col; ++col) {
      if (col != r.start.col) out += '\t';
      out += wb->DisplayText(sheet, doc::CellRef{row, col});
    }
  }
  return out;
}

Status SpreadsheetApp::Select(const std::string& file_name,
                              const std::string& sheet,
                              const doc::RangeRef& range) {
  SLIM_ASSIGN_OR_RETURN(doc::Workbook * wb, GetWorkbook(file_name));
  SLIM_RETURN_NOT_OK(wb->GetSheet(sheet).status());
  Selection sel;
  sel.file_name = file_name;
  sel.address = sheet + "!" + doc::FormatRange(range);
  sel.content = RangeText(wb, sheet, range);
  selection_ = std::move(sel);
  return Status::OK();
}

Result<Selection> SpreadsheetApp::CurrentSelection() const {
  if (!selection_) {
    return Status::FailedPrecondition("no current selection in spreadsheet");
  }
  return *selection_;
}

Result<std::pair<std::string, doc::RangeRef>> SpreadsheetApp::ParseAddress(
    const std::string& address) {
  size_t bang = address.rfind('!');
  if (bang == std::string::npos || bang == 0) {
    return Status::ParseError("spreadsheet address must be 'sheet!range': '" +
                              address + "'");
  }
  SLIM_ASSIGN_OR_RETURN(doc::RangeRef range,
                        doc::ParseRange(address.substr(bang + 1)));
  return std::make_pair(address.substr(0, bang), range);
}

Status SpreadsheetApp::NavigateTo(const std::string& file_name,
                                  const std::string& address) {
  SLIM_RETURN_NOT_OK(OpenDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(doc::Workbook * wb, GetWorkbook(file_name));
  SLIM_ASSIGN_OR_RETURN(auto parsed, ParseAddress(address));
  const auto& [sheet, range] = parsed;
  SLIM_RETURN_NOT_OK(
      wb->GetSheet(sheet).status().WithContext("navigating to '" + address +
                                               "'"));
  // "Activate the worksheet and select the appropriate range."
  Selection sel;
  sel.file_name = file_name;
  sel.address = address;
  sel.content = RangeText(wb, sheet, range);
  selection_ = sel;
  RecordNavigation({file_name, address, sel.content});
  return Status::OK();
}

Result<std::string> SpreadsheetApp::ExtractContent(
    const std::string& file_name, const std::string& address) {
  SLIM_RETURN_NOT_OK(OpenDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(doc::Workbook * wb, GetWorkbook(file_name));
  SLIM_ASSIGN_OR_RETURN(auto parsed, ParseAddress(address));
  const auto& [sheet, range] = parsed;
  SLIM_RETURN_NOT_OK(wb->GetSheet(sheet).status());
  return RangeText(wb, sheet, range);
}

Result<doc::Workbook*> SpreadsheetApp::GetWorkbook(
    const std::string& file_name) {
  auto it = open_.find(file_name);
  if (it == open_.end()) {
    return Status::NotFound("workbook '" + file_name + "' is not open");
  }
  return it->second.get();
}

}  // namespace slim::baseapp
