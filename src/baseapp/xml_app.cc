#include "baseapp/xml_app.h"

#include "doc/xml/parser.h"
#include "util/strings.h"

namespace slim::baseapp {

namespace xml = slim::doc::xml;

Status XmlApp::RegisterDocument(const std::string& file_name,
                                std::unique_ptr<xml::Document> document) {
  if (document == nullptr) return Status::InvalidArgument("null document");
  if (file_name.empty()) return Status::InvalidArgument("empty file name");
  if (open_.count(file_name)) {
    return Status::AlreadyExists("document '" + file_name + "' already open");
  }
  open_[file_name] = std::move(document);
  return Status::OK();
}

Status XmlApp::OpenDocument(const std::string& file_name) {
  if (open_.count(file_name)) return Status::OK();
  SLIM_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> doc,
                        xml::ParseXmlFile(file_name));
  open_[file_name] = std::move(doc);
  return Status::OK();
}

bool XmlApp::IsOpen(const std::string& file_name) const {
  return open_.count(file_name) > 0;
}

Status XmlApp::CloseDocument(const std::string& file_name) {
  auto it = open_.find(file_name);
  if (it == open_.end()) {
    return Status::NotFound("document '" + file_name + "' is not open");
  }
  if (selection_ && selection_->file_name == file_name) selection_.reset();
  open_.erase(it);
  return Status::OK();
}

std::vector<std::string> XmlApp::OpenDocuments() const {
  std::vector<std::string> out;
  out.reserve(open_.size());
  for (const auto& [name, _] : open_) out.push_back(name);
  return out;
}

Status XmlApp::SelectElement(const std::string& file_name,
                             const xml::Element* element) {
  if (element == nullptr) return Status::InvalidArgument("null element");
  if (!open_.count(file_name)) {
    return Status::NotFound("document '" + file_name + "' is not open");
  }
  Selection sel;
  sel.file_name = file_name;
  sel.address = robust_addressing_ ? xml::RobustPathOf(element).ToString()
                                   : xml::PathOf(element).ToString();
  sel.content = element->InnerText();
  selection_ = std::move(sel);
  return Status::OK();
}

Status XmlApp::SelectPath(const std::string& file_name,
                          const std::string& path_text) {
  SLIM_ASSIGN_OR_RETURN(xml::Document * doc, GetDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(xml::XmlPath path, xml::XmlPath::Parse(path_text));
  SLIM_ASSIGN_OR_RETURN(xml::Element * elem, path.Resolve(doc));
  return SelectElement(file_name, elem);
}

Result<Selection> XmlApp::CurrentSelection() const {
  if (!selection_) {
    return Status::FailedPrecondition("no current selection in XML viewer");
  }
  return *selection_;
}

Status XmlApp::NavigateTo(const std::string& file_name,
                          const std::string& address) {
  SLIM_RETURN_NOT_OK(OpenDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(xml::Document * doc, GetDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(xml::XmlPath path, xml::XmlPath::Parse(address));
  SLIM_ASSIGN_OR_RETURN(xml::Element * elem, path.Resolve(doc));
  Selection sel;
  sel.file_name = file_name;
  sel.address = address;
  sel.content = elem->InnerText();
  selection_ = sel;
  RecordNavigation({file_name, address, sel.content});
  return Status::OK();
}

Result<std::string> XmlApp::ExtractContent(const std::string& file_name,
                                           const std::string& address) {
  SLIM_RETURN_NOT_OK(OpenDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(xml::Document * doc, GetDocument(file_name));
  SLIM_ASSIGN_OR_RETURN(xml::XmlPath path, xml::XmlPath::Parse(address));
  SLIM_ASSIGN_OR_RETURN(xml::Element * elem, path.Resolve(doc));
  return elem->InnerText();
}

Result<xml::Document*> XmlApp::GetDocument(const std::string& file_name) {
  auto it = open_.find(file_name);
  if (it == open_.end()) {
    return Status::NotFound("document '" + file_name + "' is not open");
  }
  return it->second.get();
}

}  // namespace slim::baseapp
