#ifndef SLIM_SLIMPAD_SLIMPAD_APP_H_
#define SLIM_SLIMPAD_SLIMPAD_APP_H_

/// \file slimpad_app.h
/// \brief The SLIMPad application (paper §3): a headless controller that
/// wires the DMI, the Mark Manager and the viewing styles together.
///
/// User-level gestures map to methods: dropping a selection onto the pad is
/// AddScrapFromSelection (creates a mark, a MarkHandle and a Scrap — the
/// "digital sticky-note with a digital wire"); double-clicking a scrap is
/// OpenScrap (de-references the mark and drives the base application, or —
/// under independent viewing — displays the content in place, Fig. 6).

#include <memory>
#include <string>
#include <vector>

#include "mark/mark_manager.h"
#include "mark/validator.h"
#include "obs/obs.h"
#include "slim/query.h"
#include "slimpad/slimpad_dmi.h"
#include "util/result.h"

namespace slim::pad {

/// \brief The three viewing styles of paper Fig. 6.
enum class ViewingStyle {
  kSimultaneous,  ///< Pad window + base application window side by side.
  kEnhanced,      ///< Superimposed functionality inside the base app.
  kIndependent,   ///< Base app hidden; content shown in the pad.
};

/// Lower-case style name ("simultaneous"...), used in metric names and
/// span tags.
std::string_view ViewingStyleName(ViewingStyle style);

/// \brief What an OpenScrap gesture produced (for display and for tests).
struct OpenResult {
  ViewingStyle style;
  std::string mark_id;
  /// Content shown in the pad itself (independent viewing), empty
  /// otherwise.
  std::string in_place_content;
  /// True when a base-application window was driven to the element.
  bool base_app_navigated = false;
};

/// \brief A bundle template (§6: "templates for bundles"): a named shape of
/// empty scraps that can be stamped onto a pad — e.g. the resident's
/// worksheet columns.
struct BundleTemplate {
  std::string name;
  double width = 300;
  double height = 200;
  /// (scrap label, position) pairs to pre-create.
  std::vector<std::pair<std::string, Coordinate>> scraps;
};

/// \brief The SLIMPad application controller.
class SlimPadApp {
 public:
  /// `marks` must outlive the app. A fresh triple store + DMI are created
  /// per app instance (the pad's own superimposed storage).
  explicit SlimPadApp(mark::MarkManager* marks);

  SlimPadDmi& dmi() { return *dmi_; }
  mark::MarkManager& marks() { return *marks_; }
  trim::TripleStore& store() { return store_; }

  /// The current pad (created by NewPad or load).
  const SlimPad* pad() const { return pad_; }

  ViewingStyle viewing_style() const { return style_; }
  void set_viewing_style(ViewingStyle style) { style_ = style; }

  /// Creates a fresh pad with an empty root bundle.
  Status NewPad(const std::string& pad_name);

  /// Root bundle id of the current pad.
  Result<std::string> RootBundle() const;

  /// Creates an empty bundle nested in `parent_bundle_id`.
  Result<std::string> CreateBundle(const std::string& parent_bundle_id,
                                   const std::string& name, Coordinate pos,
                                   double width = 200, double height = 150);

  /// The central gesture: takes the *current selection* of the base
  /// application serving `app_type`, creates a mark for it, and places a
  /// scrap (with handle) into `bundle_id`. Returns the scrap id.
  Result<std::string> AddScrapFromSelection(const std::string& bundle_id,
                                            const std::string& app_type,
                                            const std::string& scrap_label,
                                            Coordinate pos);

  /// Adds a mark that already exists in the Mark Manager as a scrap.
  Result<std::string> AddScrapForMark(const std::string& bundle_id,
                                      const std::string& mark_id,
                                      const std::string& scrap_label,
                                      Coordinate pos);

  /// Adds a purely graphic scrap (no mark) — the 'gridlet' of Fig. 4.
  Result<std::string> AddGraphicScrap(const std::string& bundle_id,
                                      const std::string& label,
                                      Coordinate pos);

  /// Double-click: de-reference the scrap's (first) mark per the current
  /// viewing style.
  Result<OpenResult> OpenScrap(const std::string& scrap_id);

  /// §6 extension: stamps a template as a new bundle under `parent`.
  Result<std::string> InstantiateTemplate(const std::string& parent_bundle_id,
                                          const BundleTemplate& tmpl,
                                          Coordinate pos);

  /// §6 extension: declarative queries over the pad's triples, in
  /// addition to navigational access. Example:
  ///   FindScrapsNamed("K 4.9") — all scrap ids with that label.
  /// For arbitrary patterns use QueryPad with the query language of
  /// slim/query.h.
  Result<std::vector<std::string>> FindScrapsNamed(const std::string& name);
  Result<std::vector<store::Binding>> QueryPad(const std::string& query_text);

  /// §3's staleness concern: audits every mark on the pad against the live
  /// base layer (valid / content-changed / dangling).
  mark::ValidationReport AuditMarks() { return mark::ValidateAllMarks(marks_); }

  /// Saves pad data (triples) and marks side by side:
  /// `<path>` and `<path>.marks`.
  Status SavePad(const std::string& path) const;
  /// Loads both files and re-binds the current pad.
  Status LoadPad(const std::string& path);

  /// Per-app gesture metrics (`slimpad.*`). The same events also land in
  /// obs::DefaultRegistry() under identical names, so a process-wide dump
  /// sees every app while each app can still be inspected alone.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  /// Bumps `name` in both the per-app and the default registry.
  void CountGesture(const std::string& name);

  mark::MarkManager* marks_;
  trim::TripleStore store_;
  std::unique_ptr<SlimPadDmi> dmi_;
  const SlimPad* pad_ = nullptr;
  ViewingStyle style_ = ViewingStyle::kSimultaneous;
  obs::MetricsRegistry metrics_;
};

/// The resident's-worksheet template from paper Fig. 2 (patient id,
/// problems, labs/vitals, to-do columns).
BundleTemplate ResidentWorksheetTemplate();

}  // namespace slim::pad

#endif  // SLIM_SLIMPAD_SLIMPAD_APP_H_
