#include "slimpad/slimpad_dmi.h"

#include <algorithm>

#include "slim/vocabulary.h"
#include "trim/persistence.h"
#include "util/strings.h"

namespace slim::pad {

using store::Vocab;

namespace {
// Connector / property names of the Bundle-Scrap model (paper Fig. 3).
constexpr const char* kPadName = "padName";
constexpr const char* kRootBundle = "rootBundle";
constexpr const char* kBundleName = "bundleName";
constexpr const char* kBundlePos = "bundlePos";
constexpr const char* kBundleHeight = "bundleHeight";
constexpr const char* kBundleWidth = "bundleWidth";
constexpr const char* kBundleContent = "bundleContent";
constexpr const char* kNestedBundle = "nestedBundle";
constexpr const char* kScrapName = "scrapName";
constexpr const char* kScrapPos = "scrapPos";
constexpr const char* kScrapMark = "scrapMark";
constexpr const char* kMarkId = "markId";
constexpr const char* kScrapAnnotation = "scrapAnnotation";
constexpr const char* kScrapLink = "scrapLink";
}  // namespace

std::string Coordinate::ToString() const {
  return FormatNumber(x) + "," + FormatNumber(y);
}

Result<Coordinate> Coordinate::Parse(std::string_view text) {
  std::vector<std::string> parts = Split(text, ',');
  Coordinate c;
  if (parts.size() != 2 || !ParseDouble(parts[0], &c.x) ||
      !ParseDouble(parts[1], &c.y)) {
    return Status::ParseError("malformed coordinate '" + std::string(text) +
                              "'");
  }
  return c;
}

SlimPadDmi::SlimPadDmi(trim::TripleStore* store)
    : store_(store),
      model_(store::BuildBundleScrapModel()),
      schema_(store::IdentitySchema(model_, "slimpad").ValueOrDie()),
      instances_(store) {
  // Register model + schema triples so the store is self-describing. If
  // they are already present (e.g. two DMIs sharing a store), that is fine.
  (void)model_.ToTriples(store_);
  (void)schema_.ToTriples(store_);
}

// ---------------------------------------------------------------------------
// Create_*
// ---------------------------------------------------------------------------

Result<const SlimPad*> SlimPadDmi::Create_SlimPad(const std::string& pad_name) {
  SLIM_ASSIGN_OR_RETURN(std::string id,
                        instances_.Create(TypeResource("SlimPad")));
  SLIM_RETURN_NOT_OK(instances_.SetValue(id, kPadName, pad_name));
  auto pad = std::make_unique<SlimPad>();
  pad->id_ = id;
  pad->pad_name_ = pad_name;
  const SlimPad* raw = pad.get();
  pads_[id] = std::move(pad);
  return raw;
}

Result<const Bundle*> SlimPadDmi::Create_Bundle(const std::string& bundle_name,
                                                Coordinate pos, double width,
                                                double height) {
  SLIM_ASSIGN_OR_RETURN(std::string id,
                        instances_.Create(TypeResource("Bundle")));
  SLIM_RETURN_NOT_OK(instances_.SetValue(id, kBundleName, bundle_name));
  SLIM_RETURN_NOT_OK(instances_.SetValue(id, kBundlePos, pos.ToString()));
  SLIM_RETURN_NOT_OK(
      instances_.SetValue(id, kBundleWidth, FormatNumber(width)));
  SLIM_RETURN_NOT_OK(
      instances_.SetValue(id, kBundleHeight, FormatNumber(height)));
  auto bundle = std::make_unique<Bundle>();
  bundle->id_ = id;
  bundle->name_ = bundle_name;
  bundle->pos_ = pos;
  bundle->width_ = width;
  bundle->height_ = height;
  const Bundle* raw = bundle.get();
  bundles_[id] = std::move(bundle);
  return raw;
}

Result<const Scrap*> SlimPadDmi::Create_Scrap(const std::string& scrap_name,
                                              Coordinate pos) {
  SLIM_ASSIGN_OR_RETURN(std::string id,
                        instances_.Create(TypeResource("Scrap")));
  SLIM_RETURN_NOT_OK(instances_.SetValue(id, kScrapName, scrap_name));
  SLIM_RETURN_NOT_OK(instances_.SetValue(id, kScrapPos, pos.ToString()));
  auto scrap = std::make_unique<Scrap>();
  scrap->id_ = id;
  scrap->name_ = scrap_name;
  scrap->pos_ = pos;
  const Scrap* raw = scrap.get();
  scraps_[id] = std::move(scrap);
  return raw;
}

Result<const MarkHandle*> SlimPadDmi::Create_MarkHandle(
    const std::string& mark_id) {
  if (mark_id.empty()) return Status::InvalidArgument("empty mark id");
  SLIM_ASSIGN_OR_RETURN(std::string id,
                        instances_.Create(TypeResource("MarkHandle")));
  SLIM_RETURN_NOT_OK(instances_.SetValue(id, kMarkId, mark_id));
  auto handle = std::make_unique<MarkHandle>();
  handle->id_ = id;
  handle->mark_id_ = mark_id;
  const MarkHandle* raw = handle.get();
  handles_[id] = std::move(handle);
  return raw;
}

// ---------------------------------------------------------------------------
// Update_*
// ---------------------------------------------------------------------------

Status SlimPadDmi::Update_padName(const std::string& pad_id,
                                  const std::string& new_name) {
  auto it = pads_.find(pad_id);
  if (it == pads_.end()) return Status::NotFound("no pad '" + pad_id + "'");
  SLIM_RETURN_NOT_OK(instances_.SetValue(pad_id, kPadName, new_name));
  it->second->pad_name_ = new_name;
  return Status::OK();
}

Status SlimPadDmi::Update_rootBundle(const std::string& pad_id,
                                     const std::string& bundle_id) {
  auto it = pads_.find(pad_id);
  if (it == pads_.end()) return Status::NotFound("no pad '" + pad_id + "'");
  if (!bundles_.count(bundle_id)) {
    return Status::NotFound("no bundle '" + bundle_id + "'");
  }
  store_->RemoveMatching(
      trim::TriplePattern::BySubjectProperty(pad_id, kRootBundle));
  SLIM_RETURN_NOT_OK(instances_.Connect(pad_id, kRootBundle, bundle_id));
  it->second->root_bundle_ = bundle_id;
  return Status::OK();
}

Status SlimPadDmi::Update_bundleName(const std::string& bundle_id,
                                     const std::string& new_name) {
  auto it = bundles_.find(bundle_id);
  if (it == bundles_.end()) {
    return Status::NotFound("no bundle '" + bundle_id + "'");
  }
  SLIM_RETURN_NOT_OK(instances_.SetValue(bundle_id, kBundleName, new_name));
  it->second->name_ = new_name;
  return Status::OK();
}

Status SlimPadDmi::Update_bundlePos(const std::string& bundle_id,
                                    Coordinate pos) {
  auto it = bundles_.find(bundle_id);
  if (it == bundles_.end()) {
    return Status::NotFound("no bundle '" + bundle_id + "'");
  }
  SLIM_RETURN_NOT_OK(
      instances_.SetValue(bundle_id, kBundlePos, pos.ToString()));
  it->second->pos_ = pos;
  return Status::OK();
}

Status SlimPadDmi::Update_bundleSize(const std::string& bundle_id,
                                     double width, double height) {
  auto it = bundles_.find(bundle_id);
  if (it == bundles_.end()) {
    return Status::NotFound("no bundle '" + bundle_id + "'");
  }
  SLIM_RETURN_NOT_OK(
      instances_.SetValue(bundle_id, kBundleWidth, FormatNumber(width)));
  SLIM_RETURN_NOT_OK(
      instances_.SetValue(bundle_id, kBundleHeight, FormatNumber(height)));
  it->second->width_ = width;
  it->second->height_ = height;
  return Status::OK();
}

Status SlimPadDmi::Update_scrapName(const std::string& scrap_id,
                                    const std::string& new_name) {
  auto it = scraps_.find(scrap_id);
  if (it == scraps_.end()) {
    return Status::NotFound("no scrap '" + scrap_id + "'");
  }
  SLIM_RETURN_NOT_OK(instances_.SetValue(scrap_id, kScrapName, new_name));
  it->second->name_ = new_name;
  return Status::OK();
}

Status SlimPadDmi::Update_scrapPos(const std::string& scrap_id,
                                   Coordinate pos) {
  auto it = scraps_.find(scrap_id);
  if (it == scraps_.end()) {
    return Status::NotFound("no scrap '" + scrap_id + "'");
  }
  SLIM_RETURN_NOT_OK(instances_.SetValue(scrap_id, kScrapPos, pos.ToString()));
  it->second->pos_ = pos;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Structure edits
// ---------------------------------------------------------------------------

bool SlimPadDmi::IsNestedUnder(const std::string& maybe_descendant,
                               const std::string& ancestor) const {
  std::string cur = maybe_descendant;
  while (!cur.empty()) {
    if (cur == ancestor) return true;
    auto it = bundles_.find(cur);
    if (it == bundles_.end()) return false;
    cur = it->second->parent_;
  }
  return false;
}

Status SlimPadDmi::AddNestedBundle(const std::string& parent_id,
                                   const std::string& child_id) {
  auto pit = bundles_.find(parent_id);
  auto cit = bundles_.find(child_id);
  if (pit == bundles_.end() || cit == bundles_.end()) {
    return Status::NotFound("no such bundle ('" + parent_id + "' / '" +
                            child_id + "')");
  }
  if (!cit->second->parent_.empty()) {
    return Status::FailedPrecondition("bundle '" + child_id +
                                      "' is already nested in '" +
                                      cit->second->parent_ + "'");
  }
  if (IsNestedUnder(parent_id, child_id)) {
    return Status::InvalidArgument("nesting '" + child_id + "' under '" +
                                   parent_id + "' would create a cycle");
  }
  SLIM_RETURN_NOT_OK(instances_.Connect(parent_id, kNestedBundle, child_id));
  pit->second->nested_bundles_.push_back(child_id);
  cit->second->parent_ = parent_id;
  return Status::OK();
}

Status SlimPadDmi::RemoveNestedBundle(const std::string& parent_id,
                                      const std::string& child_id) {
  auto pit = bundles_.find(parent_id);
  auto cit = bundles_.find(child_id);
  if (pit == bundles_.end() || cit == bundles_.end()) {
    return Status::NotFound("no such bundle ('" + parent_id + "' / '" +
                            child_id + "')");
  }
  if (cit->second->parent_ != parent_id) {
    return Status::FailedPrecondition("bundle '" + child_id +
                                      "' is not nested in '" + parent_id +
                                      "'");
  }
  SLIM_RETURN_NOT_OK(instances_.Disconnect(parent_id, kNestedBundle, child_id));
  auto& vec = pit->second->nested_bundles_;
  vec.erase(std::remove(vec.begin(), vec.end(), child_id), vec.end());
  cit->second->parent_.clear();
  return Status::OK();
}

Status SlimPadDmi::AddScrapToBundle(const std::string& bundle_id,
                                    const std::string& scrap_id) {
  auto bit = bundles_.find(bundle_id);
  if (bit == bundles_.end()) {
    return Status::NotFound("no bundle '" + bundle_id + "'");
  }
  if (!scraps_.count(scrap_id)) {
    return Status::NotFound("no scrap '" + scrap_id + "'");
  }
  // A scrap lives in at most one bundle.
  if (!store_
           ->Select(trim::TriplePattern{std::nullopt, kBundleContent,
                                        trim::Object::Resource(scrap_id)})
           .empty()) {
    return Status::FailedPrecondition("scrap '" + scrap_id +
                                      "' is already placed in a bundle");
  }
  SLIM_RETURN_NOT_OK(instances_.Connect(bundle_id, kBundleContent, scrap_id));
  bit->second->scraps_.push_back(scrap_id);
  return Status::OK();
}

Status SlimPadDmi::RemoveScrapFromBundle(const std::string& bundle_id,
                                         const std::string& scrap_id) {
  auto bit = bundles_.find(bundle_id);
  if (bit == bundles_.end()) {
    return Status::NotFound("no bundle '" + bundle_id + "'");
  }
  auto& vec = bit->second->scraps_;
  auto pos = std::find(vec.begin(), vec.end(), scrap_id);
  if (pos == vec.end()) {
    return Status::NotFound("scrap '" + scrap_id + "' is not in bundle '" +
                            bundle_id + "'");
  }
  SLIM_RETURN_NOT_OK(
      instances_.Disconnect(bundle_id, kBundleContent, scrap_id));
  vec.erase(pos);
  return Status::OK();
}

Status SlimPadDmi::SetScrapMark(const std::string& scrap_id,
                                const std::string& handle_id) {
  auto sit = scraps_.find(scrap_id);
  if (sit == scraps_.end()) {
    return Status::NotFound("no scrap '" + scrap_id + "'");
  }
  if (!handles_.count(handle_id)) {
    return Status::NotFound("no mark handle '" + handle_id + "'");
  }
  SLIM_RETURN_NOT_OK(instances_.Connect(scrap_id, kScrapMark, handle_id));
  sit->second->mark_handles_.push_back(handle_id);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// §6 extensions
// ---------------------------------------------------------------------------

Status SlimPadDmi::AddScrapAnnotation(const std::string& scrap_id,
                                      const std::string& text) {
  auto it = scraps_.find(scrap_id);
  if (it == scraps_.end()) {
    return Status::NotFound("no scrap '" + scrap_id + "'");
  }
  SLIM_RETURN_NOT_OK(instances_.AddValue(scrap_id, kScrapAnnotation, text));
  it->second->annotations_.push_back(text);
  return Status::OK();
}

Status SlimPadDmi::LinkScraps(const std::string& from_scrap_id,
                              const std::string& to_scrap_id) {
  auto fit = scraps_.find(from_scrap_id);
  if (fit == scraps_.end() || !scraps_.count(to_scrap_id)) {
    return Status::NotFound("no such scrap ('" + from_scrap_id + "' / '" +
                            to_scrap_id + "')");
  }
  SLIM_RETURN_NOT_OK(
      instances_.Connect(from_scrap_id, kScrapLink, to_scrap_id));
  fit->second->linked_scraps_.push_back(to_scrap_id);
  return Status::OK();
}

Status SlimPadDmi::UnlinkScraps(const std::string& from_scrap_id,
                                const std::string& to_scrap_id) {
  auto fit = scraps_.find(from_scrap_id);
  if (fit == scraps_.end()) {
    return Status::NotFound("no scrap '" + from_scrap_id + "'");
  }
  SLIM_RETURN_NOT_OK(
      instances_.Disconnect(from_scrap_id, kScrapLink, to_scrap_id));
  auto& vec = fit->second->linked_scraps_;
  vec.erase(std::remove(vec.begin(), vec.end(), to_scrap_id), vec.end());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Delete_*
// ---------------------------------------------------------------------------

Status SlimPadDmi::Delete_MarkHandle(const std::string& handle_id) {
  auto it = handles_.find(handle_id);
  if (it == handles_.end()) {
    return Status::NotFound("no mark handle '" + handle_id + "'");
  }
  instances_.Delete(handle_id);
  // Drop the handle from any scrap referencing it.
  for (auto& [_, scrap] : scraps_) {
    auto& vec = scrap->mark_handles_;
    vec.erase(std::remove(vec.begin(), vec.end(), handle_id), vec.end());
  }
  handles_.erase(it);
  return Status::OK();
}

Status SlimPadDmi::Delete_Scrap(const std::string& scrap_id) {
  auto it = scraps_.find(scrap_id);
  if (it == scraps_.end()) {
    return Status::NotFound("no scrap '" + scrap_id + "'");
  }
  // Handles belong to their scrap; remove them with it.
  std::vector<std::string> handles = it->second->mark_handles_;
  for (const std::string& h : handles) (void)Delete_MarkHandle(h);
  instances_.Delete(scrap_id);
  for (auto& [_, bundle] : bundles_) {
    auto& vec = bundle->scraps_;
    vec.erase(std::remove(vec.begin(), vec.end(), scrap_id), vec.end());
  }
  for (auto& [_, scrap] : scraps_) {
    auto& vec = scrap->linked_scraps_;
    vec.erase(std::remove(vec.begin(), vec.end(), scrap_id), vec.end());
  }
  scraps_.erase(it);
  return Status::OK();
}

Status SlimPadDmi::Delete_Bundle(const std::string& bundle_id) {
  auto it = bundles_.find(bundle_id);
  if (it == bundles_.end()) {
    return Status::NotFound("no bundle '" + bundle_id + "'");
  }
  // Recursively delete contents (copies: Delete_* mutates the vectors).
  std::vector<std::string> scraps = it->second->scraps_;
  for (const std::string& s : scraps) (void)Delete_Scrap(s);
  std::vector<std::string> nested = it->second->nested_bundles_;
  for (const std::string& b : nested) (void)Delete_Bundle(b);

  instances_.Delete(bundle_id);
  for (auto& [_, bundle] : bundles_) {
    auto& vec = bundle->nested_bundles_;
    vec.erase(std::remove(vec.begin(), vec.end(), bundle_id), vec.end());
  }
  for (auto& [_, padp] : pads_) {
    if (padp->root_bundle_ == bundle_id) padp->root_bundle_.clear();
  }
  bundles_.erase(bundle_id);
  return Status::OK();
}

Status SlimPadDmi::Delete_SlimPad(const std::string& pad_id) {
  auto it = pads_.find(pad_id);
  if (it == pads_.end()) return Status::NotFound("no pad '" + pad_id + "'");
  std::string root = it->second->root_bundle_;
  if (!root.empty()) (void)Delete_Bundle(root);
  instances_.Delete(pad_id);
  pads_.erase(it);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

Result<const SlimPad*> SlimPadDmi::GetPad(const std::string& pad_id) const {
  auto it = pads_.find(pad_id);
  if (it == pads_.end()) return Status::NotFound("no pad '" + pad_id + "'");
  return static_cast<const SlimPad*>(it->second.get());
}

Result<const Bundle*> SlimPadDmi::GetBundle(
    const std::string& bundle_id) const {
  auto it = bundles_.find(bundle_id);
  if (it == bundles_.end()) {
    return Status::NotFound("no bundle '" + bundle_id + "'");
  }
  return static_cast<const Bundle*>(it->second.get());
}

Result<const Scrap*> SlimPadDmi::GetScrap(const std::string& scrap_id) const {
  auto it = scraps_.find(scrap_id);
  if (it == scraps_.end()) {
    return Status::NotFound("no scrap '" + scrap_id + "'");
  }
  return static_cast<const Scrap*>(it->second.get());
}

Result<const MarkHandle*> SlimPadDmi::GetMarkHandle(
    const std::string& handle_id) const {
  auto it = handles_.find(handle_id);
  if (it == handles_.end()) {
    return Status::NotFound("no mark handle '" + handle_id + "'");
  }
  return static_cast<const MarkHandle*>(it->second.get());
}

std::vector<const SlimPad*> SlimPadDmi::Pads() const {
  std::vector<const SlimPad*> out;
  for (const auto& [_, p] : pads_) out.push_back(p.get());
  return out;
}

std::vector<const Bundle*> SlimPadDmi::Bundles() const {
  std::vector<const Bundle*> out;
  for (const auto& [_, b] : bundles_) out.push_back(b.get());
  return out;
}

std::vector<const Scrap*> SlimPadDmi::Scraps() const {
  std::vector<const Scrap*> out;
  for (const auto& [_, s] : scraps_) out.push_back(s.get());
  return out;
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

Status SlimPadDmi::save(const std::string& file_name) const {
  return trim::SaveStore(*store_, file_name);
}

Status SlimPadDmi::load(const std::string& file_name) {
  SLIM_RETURN_NOT_OK(trim::LoadStore(file_name, store_));
  return RebuildFromTriples();
}

Status SlimPadDmi::RebuildFromTriples() {
  pads_.clear();
  bundles_.clear();
  scraps_.clear();
  handles_.clear();

  // Make sure model/schema triples exist after a load of a bare data file.
  if (!store_->GetOne(model_.ModelResource(), Vocab::kName)) {
    SLIM_RETURN_NOT_OK(model_.ToTriples(store_));
  }
  if (!store_->GetOne(schema_.SchemaResource(), Vocab::kName)) {
    SLIM_RETURN_NOT_OK(schema_.ToTriples(store_));
  }

  // Pass 1: materialize objects by type.
  for (const std::string& id : instances_.InstancesOf(TypeResource("SlimPad"))) {
    auto pad = std::make_unique<SlimPad>();
    pad->id_ = id;
    SLIM_ASSIGN_OR_RETURN(pad->pad_name_, instances_.GetValue(id, kPadName));
    pads_[id] = std::move(pad);
  }
  for (const std::string& id : instances_.InstancesOf(TypeResource("Bundle"))) {
    auto bundle = std::make_unique<Bundle>();
    bundle->id_ = id;
    SLIM_ASSIGN_OR_RETURN(bundle->name_, instances_.GetValue(id, kBundleName));
    SLIM_ASSIGN_OR_RETURN(std::string pos_text,
                          instances_.GetValue(id, kBundlePos));
    SLIM_ASSIGN_OR_RETURN(bundle->pos_, Coordinate::Parse(pos_text));
    SLIM_ASSIGN_OR_RETURN(std::string w, instances_.GetValue(id, kBundleWidth));
    SLIM_ASSIGN_OR_RETURN(std::string h,
                          instances_.GetValue(id, kBundleHeight));
    if (!ParseDouble(w, &bundle->width_) || !ParseDouble(h, &bundle->height_)) {
      return Status::ParseError("bundle '" + id + "': bad geometry");
    }
    bundles_[id] = std::move(bundle);
  }
  for (const std::string& id : instances_.InstancesOf(TypeResource("Scrap"))) {
    auto scrap = std::make_unique<Scrap>();
    scrap->id_ = id;
    SLIM_ASSIGN_OR_RETURN(scrap->name_, instances_.GetValue(id, kScrapName));
    SLIM_ASSIGN_OR_RETURN(std::string pos_text,
                          instances_.GetValue(id, kScrapPos));
    SLIM_ASSIGN_OR_RETURN(scrap->pos_, Coordinate::Parse(pos_text));
    scraps_[id] = std::move(scrap);
  }
  for (const std::string& id :
       instances_.InstancesOf(TypeResource("MarkHandle"))) {
    auto handle = std::make_unique<MarkHandle>();
    handle->id_ = id;
    SLIM_ASSIGN_OR_RETURN(handle->mark_id_, instances_.GetValue(id, kMarkId));
    handles_[id] = std::move(handle);
  }

  // Pass 2: structure.
  for (auto& [id, pad] : pads_) {
    auto roots = instances_.GetConnected(id, kRootBundle);
    if (!roots.empty()) pad->root_bundle_ = roots.front();
  }
  for (auto& [id, bundle] : bundles_) {
    bundle->scraps_ = instances_.GetConnected(id, kBundleContent);
    bundle->nested_bundles_ = instances_.GetConnected(id, kNestedBundle);
    for (const std::string& child : bundle->nested_bundles_) {
      auto cit = bundles_.find(child);
      if (cit != bundles_.end()) cit->second->parent_ = id;
    }
  }
  for (auto& [id, scrap] : scraps_) {
    scrap->mark_handles_ = instances_.GetConnected(id, kScrapMark);
    scrap->linked_scraps_ = instances_.GetConnected(id, kScrapLink);
    store_->SelectEach(
        trim::TriplePattern::BySubjectProperty(id, kScrapAnnotation),
        [&](const trim::Triple& t) {
          if (!t.object.is_resource()) {
            scrap->annotations_.push_back(t.object.text);
          }
          return true;
        });
  }
  return Status::OK();
}

size_t SlimPadDmi::NativeObjectCount() const {
  return pads_.size() + bundles_.size() + scraps_.size() + handles_.size();
}

size_t SlimPadDmi::ApproximateNativeBytes() const {
  size_t bytes = 0;
  for (const auto& [id, p] : pads_) {
    bytes += sizeof(SlimPad) + id.capacity() + p->pad_name_.capacity() +
             p->root_bundle_.capacity();
  }
  for (const auto& [id, b] : bundles_) {
    bytes += sizeof(Bundle) + id.capacity() + b->name_.capacity() +
             b->parent_.capacity();
    for (const auto& s : b->scraps_) bytes += s.capacity();
    for (const auto& s : b->nested_bundles_) bytes += s.capacity();
  }
  for (const auto& [id, s] : scraps_) {
    bytes += sizeof(Scrap) + id.capacity() + s->name_.capacity();
    for (const auto& h : s->mark_handles_) bytes += h.capacity();
    for (const auto& a : s->annotations_) bytes += a.capacity();
    for (const auto& l : s->linked_scraps_) bytes += l.capacity();
  }
  for (const auto& [id, h] : handles_) {
    bytes += sizeof(MarkHandle) + id.capacity() + h->mark_id_.capacity();
  }
  return bytes;
}

}  // namespace slim::pad
