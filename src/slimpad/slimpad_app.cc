#include "slimpad/slimpad_app.h"

namespace slim::pad {

std::string_view ViewingStyleName(ViewingStyle style) {
  switch (style) {
    case ViewingStyle::kSimultaneous: return "simultaneous";
    case ViewingStyle::kEnhanced: return "enhanced";
    case ViewingStyle::kIndependent: return "independent";
  }
  return "unknown";
}

SlimPadApp::SlimPadApp(mark::MarkManager* marks)
    : marks_(marks), dmi_(std::make_unique<SlimPadDmi>(&store_)) {}

void SlimPadApp::CountGesture(const std::string& name) {
#if SLIM_OBS_ENABLED
  if (obs::Disabled()) return;
  metrics_.GetCounter(name)->Increment();
  obs::DefaultRegistry().GetCounter(name)->Increment();
#else
  (void)name;
#endif
}

Status SlimPadApp::NewPad(const std::string& pad_name) {
  SLIM_ASSIGN_OR_RETURN(const SlimPad* pad, dmi_->Create_SlimPad(pad_name));
  SLIM_ASSIGN_OR_RETURN(
      const Bundle* root,
      dmi_->Create_Bundle(pad_name, Coordinate{0, 0}, 800, 600));
  SLIM_RETURN_NOT_OK(dmi_->Update_rootBundle(pad->id(), root->id()));
  pad_ = pad;
  return Status::OK();
}

Result<std::string> SlimPadApp::RootBundle() const {
  if (pad_ == nullptr) return Status::FailedPrecondition("no pad open");
  if (pad_->root_bundle().empty()) {
    return Status::FailedPrecondition("pad has no root bundle");
  }
  return pad_->root_bundle();
}

Result<std::string> SlimPadApp::CreateBundle(
    const std::string& parent_bundle_id, const std::string& name,
    Coordinate pos, double width, double height) {
  SLIM_ASSIGN_OR_RETURN(const Bundle* bundle,
                        dmi_->Create_Bundle(name, pos, width, height));
  SLIM_RETURN_NOT_OK(dmi_->AddNestedBundle(parent_bundle_id, bundle->id()));
  return bundle->id();
}

Result<std::string> SlimPadApp::AddScrapFromSelection(
    const std::string& bundle_id, const std::string& app_type,
    const std::string& scrap_label, Coordinate pos) {
  SLIM_OBS_TIMER(timer, "slimpad.add_scrap.latency_us");
  SLIM_OBS_SPAN(span, "slimpad.add_scrap_from_selection");
  span.AddTag("app_type", app_type);
  Result<std::string> out = [&]() -> Result<std::string> {
    SLIM_ASSIGN_OR_RETURN(std::string mark_id,
                          marks_->CreateMarkFromSelection(app_type));
    return AddScrapForMark(bundle_id, mark_id, scrap_label, pos);
  }();
  CountGesture(out.ok() ? "slimpad.add_scrap.ok" : "slimpad.add_scrap.error");
  return out;
}

Result<std::string> SlimPadApp::AddScrapForMark(const std::string& bundle_id,
                                                const std::string& mark_id,
                                                const std::string& scrap_label,
                                                Coordinate pos) {
  // Verify the mark exists before wiring anything.
  SLIM_RETURN_NOT_OK(marks_->GetMark(mark_id).status());
  std::string label = scrap_label;
  if (label.empty()) {
    // Default the label to the mark's excerpt (note §3: "a scrap's label
    // and its mark's content may differ" — the user can rename later).
    SLIM_ASSIGN_OR_RETURN(const mark::Mark* m, marks_->GetMark(mark_id));
    label = m->excerpt().empty() ? m->Describe() : m->excerpt();
  }
  SLIM_ASSIGN_OR_RETURN(const Scrap* scrap, dmi_->Create_Scrap(label, pos));
  SLIM_ASSIGN_OR_RETURN(const MarkHandle* handle,
                        dmi_->Create_MarkHandle(mark_id));
  SLIM_RETURN_NOT_OK(dmi_->SetScrapMark(scrap->id(), handle->id()));
  SLIM_RETURN_NOT_OK(dmi_->AddScrapToBundle(bundle_id, scrap->id()));
  return scrap->id();
}

Result<std::string> SlimPadApp::AddGraphicScrap(const std::string& bundle_id,
                                                const std::string& label,
                                                Coordinate pos) {
  SLIM_ASSIGN_OR_RETURN(const Scrap* scrap, dmi_->Create_Scrap(label, pos));
  SLIM_RETURN_NOT_OK(dmi_->AddScrapToBundle(bundle_id, scrap->id()));
  return scrap->id();
}

Result<OpenResult> SlimPadApp::OpenScrap(const std::string& scrap_id) {
  SLIM_OBS_TIMER(timer, "slimpad.open_scrap.latency_us");
  SLIM_OBS_SPAN(span, "slimpad.open_scrap");
  span.AddTag("scrap", scrap_id);
  span.AddTag("style", std::string(ViewingStyleName(style_)));
  Result<OpenResult> result = [&]() -> Result<OpenResult> {
    SLIM_ASSIGN_OR_RETURN(const Scrap* scrap, dmi_->GetScrap(scrap_id));
    if (scrap->mark_handles().empty()) {
      return Status::FailedPrecondition("scrap '" + scrap_id +
                                        "' has no mark (graphic scrap)");
    }
    SLIM_ASSIGN_OR_RETURN(const MarkHandle* handle,
                          dmi_->GetMarkHandle(scrap->mark_handles().front()));
    OpenResult out;
    out.style = style_;
    out.mark_id = handle->mark_id();
    switch (style_) {
      case ViewingStyle::kSimultaneous: {
        // De-reference the mark: the base application window navigates to
        // and highlights the element.
        SLIM_RETURN_NOT_OK(marks_->ResolveMark(handle->mark_id(), "context"));
        out.base_app_navigated = true;
        break;
      }
      case ViewingStyle::kEnhanced: {
        // The base application hosts the superimposed layer: navigate AND
        // surface the content to the (enhanced) base window.
        SLIM_RETURN_NOT_OK(marks_->ResolveMark(handle->mark_id(), "context"));
        SLIM_ASSIGN_OR_RETURN(out.in_place_content,
                              marks_->ExtractContent(handle->mark_id()));
        out.base_app_navigated = true;
        break;
      }
      case ViewingStyle::kIndependent: {
        // The base application stays hidden; content is displayed in place.
        SLIM_ASSIGN_OR_RETURN(out.in_place_content,
                              marks_->ExtractContent(handle->mark_id()));
        out.base_app_navigated = false;
        break;
      }
    }
    return out;
  }();
  if (result.ok()) {
    CountGesture("slimpad.open_scrap." +
                 std::string(ViewingStyleName(style_)));
    CountGesture("slimpad.open_scrap.ok");
  } else {
    CountGesture("slimpad.open_scrap.error");
    SLIM_OBS_LOG(kWarn, "slimpad", "open scrap gesture failed",
                 {{"scrap", scrap_id},
                  {"style", std::string(ViewingStyleName(style_))},
                  {"status", result.status().ToString()}});
  }
  return result;
}

Result<std::string> SlimPadApp::InstantiateTemplate(
    const std::string& parent_bundle_id, const BundleTemplate& tmpl,
    Coordinate pos) {
  SLIM_ASSIGN_OR_RETURN(std::string bundle_id,
                        CreateBundle(parent_bundle_id, tmpl.name, pos,
                                     tmpl.width, tmpl.height));
  for (const auto& [label, scrap_pos] : tmpl.scraps) {
    SLIM_RETURN_NOT_OK(
        AddGraphicScrap(bundle_id, label, scrap_pos).status());
  }
  return bundle_id;
}

Result<std::vector<std::string>> SlimPadApp::FindScrapsNamed(
    const std::string& name) {
  store::Query query;
  query.Where(store::QueryTerm::Var("s"), store::QueryTerm::Res("scrapName"),
              store::QueryTerm::Lit(name));
  SLIM_ASSIGN_OR_RETURN(std::vector<store::Binding> rows,
                        store::Execute(store_, query));
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const store::Binding& row : rows) out.push_back(row.at("s").text);
  return out;
}

Result<std::vector<store::Binding>> SlimPadApp::QueryPad(
    const std::string& query_text) {
  return store::ExecuteText(store_, query_text);
}

Status SlimPadApp::SavePad(const std::string& path) const {
  SLIM_RETURN_NOT_OK(dmi_->save(path));
  return marks_->SaveToFile(path + ".marks");
}

Status SlimPadApp::LoadPad(const std::string& path) {
  SLIM_RETURN_NOT_OK(marks_->LoadFromFile(path + ".marks"));
  SLIM_RETURN_NOT_OK(dmi_->load(path));
  pad_ = nullptr;
  std::vector<const SlimPad*> pads = dmi_->Pads();
  if (pads.empty()) {
    return Status::ParseError("loaded file contains no pad");
  }
  pad_ = pads.front();
  return Status::OK();
}

BundleTemplate ResidentWorksheetTemplate() {
  BundleTemplate tmpl;
  tmpl.name = "Resident worksheet row";
  tmpl.width = 640;
  tmpl.height = 120;
  tmpl.scraps = {
      {"Patient", Coordinate{10, 10}},
      {"Problems", Coordinate{170, 10}},
      {"Labs / vitals", Coordinate{330, 10}},
      {"To do", Coordinate{490, 10}},
  };
  return tmpl;
}

}  // namespace slim::pad
