#ifndef SLIM_SLIMPAD_SLIMPAD_DMI_H_
#define SLIM_SLIMPAD_SLIMPAD_DMI_H_

/// \file slimpad_dmi.h
/// \brief SLIMPad's application-specific DMI (paper §4.4, Fig. 10).
///
/// "When SLIMPad needs to create a Bundle, it calls the Create_Bundle
/// operation in the DMI, which creates a Bundle object for SLIMPad plus the
/// triples to represent a new Bundle. By restricting manipulation of data
/// through the DMI, we store the triples without intervention from the
/// superimposed application."
///
/// Method names follow Fig. 10 (Create_Bundle, Update_padName, ...) rather
/// than house style, to make the correspondence with the paper exact. Every
/// mutator updates the native object graph *and* the triple store; `load`
/// rebuilds the objects from triples, so the two representations are
/// provably interconvertible (tests assert round trips).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "slim/instance.h"
#include "slim/model.h"
#include "slim/schema.h"
#include "slimpad/bundle_scrap.h"
#include "trim/triple_store.h"
#include "util/result.h"

namespace slim::pad {

/// \brief The SLIMPad DMI over TRIM.
class SlimPadDmi {
 public:
  /// `store` must outlive the DMI. The Bundle-Scrap model and its identity
  /// schema ("slimpad") are registered into the store on construction.
  explicit SlimPadDmi(trim::TripleStore* store);

  SlimPadDmi(const SlimPadDmi&) = delete;
  SlimPadDmi& operator=(const SlimPadDmi&) = delete;

  trim::TripleStore* triple_store() { return store_; }
  const store::ModelDef& model() const { return model_; }
  const store::SchemaDef& schema() const { return schema_; }

  /// \name Create_* (paper Fig. 10).
  /// @{
  Result<const SlimPad*> Create_SlimPad(const std::string& pad_name);
  Result<const Bundle*> Create_Bundle(const std::string& bundle_name,
                                      Coordinate pos, double width,
                                      double height);
  Result<const Scrap*> Create_Scrap(const std::string& scrap_name,
                                    Coordinate pos);
  Result<const MarkHandle*> Create_MarkHandle(const std::string& mark_id);
  /// @}

  /// \name Update_* (paper Fig. 10).
  /// @{
  Status Update_padName(const std::string& pad_id,
                        const std::string& new_name);
  Status Update_rootBundle(const std::string& pad_id,
                           const std::string& bundle_id);
  Status Update_bundleName(const std::string& bundle_id,
                           const std::string& new_name);
  Status Update_bundlePos(const std::string& bundle_id, Coordinate pos);
  Status Update_bundleSize(const std::string& bundle_id, double width,
                           double height);
  Status Update_scrapName(const std::string& scrap_id,
                          const std::string& new_name);
  Status Update_scrapPos(const std::string& scrap_id, Coordinate pos);
  /// @}

  /// \name Structure edits.
  /// @{
  /// Nests `child` inside `parent`; rejects cycles and double-parenting.
  Status AddNestedBundle(const std::string& parent_id,
                         const std::string& child_id);
  /// Un-nests `child` from `parent`.
  Status RemoveNestedBundle(const std::string& parent_id,
                            const std::string& child_id);
  /// Places a scrap into a bundle (a scrap lives in at most one bundle).
  Status AddScrapToBundle(const std::string& bundle_id,
                          const std::string& scrap_id);
  Status RemoveScrapFromBundle(const std::string& bundle_id,
                               const std::string& scrap_id);
  /// Attaches a MarkHandle to a scrap.
  Status SetScrapMark(const std::string& scrap_id,
                      const std::string& handle_id);
  /// @}

  /// \name §6 extensions.
  /// @{
  Status AddScrapAnnotation(const std::string& scrap_id,
                            const std::string& text);
  Status LinkScraps(const std::string& from_scrap_id,
                    const std::string& to_scrap_id);
  Status UnlinkScraps(const std::string& from_scrap_id,
                      const std::string& to_scrap_id);
  /// @}

  /// \name Delete_* (paper Fig. 10). Deleting a bundle removes its scraps
  /// and nested bundles recursively; deleting a scrap removes its handles.
  /// @{
  Status Delete_SlimPad(const std::string& pad_id);
  Status Delete_Bundle(const std::string& bundle_id);
  Status Delete_Scrap(const std::string& scrap_id);
  Status Delete_MarkHandle(const std::string& handle_id);
  /// @}

  /// \name Lookup (read-only interfaces, per Fig. 10).
  /// @{
  Result<const SlimPad*> GetPad(const std::string& pad_id) const;
  Result<const Bundle*> GetBundle(const std::string& bundle_id) const;
  Result<const Scrap*> GetScrap(const std::string& scrap_id) const;
  Result<const MarkHandle*> GetMarkHandle(const std::string& handle_id) const;
  std::vector<const SlimPad*> Pads() const;
  std::vector<const Bundle*> Bundles() const;
  std::vector<const Scrap*> Scraps() const;
  size_t mark_handle_count() const { return handles_.size(); }
  /// @}

  /// \name Persistence (paper Fig. 10: save(fileName) / load(fileName)).
  /// The file holds the triple store's XML serialization.
  /// @{
  Status save(const std::string& file_name) const;
  Status load(const std::string& file_name);
  /// @}

  /// Rebuilds native objects from whatever instance triples are currently
  /// in the store (used by load and by tests that write triples directly).
  Status RebuildFromTriples();

  /// Counts of native objects vs triples (space-experiment probes).
  size_t NativeObjectCount() const;
  size_t ApproximateNativeBytes() const;

 private:
  std::string TypeResource(const std::string& element) const {
    return schema_.ElementResource(element);
  }
  /// True iff `maybe_descendant` is (or is nested under) `ancestor`.
  bool IsNestedUnder(const std::string& maybe_descendant,
                     const std::string& ancestor) const;

  trim::TripleStore* store_;
  store::ModelDef model_;
  store::SchemaDef schema_;
  store::InstanceGraph instances_;

  std::map<std::string, std::unique_ptr<SlimPad>> pads_;
  std::map<std::string, std::unique_ptr<Bundle>> bundles_;
  std::map<std::string, std::unique_ptr<Scrap>> scraps_;
  std::map<std::string, std::unique_ptr<MarkHandle>> handles_;
};

}  // namespace slim::pad

#endif  // SLIM_SLIMPAD_SLIMPAD_DMI_H_
