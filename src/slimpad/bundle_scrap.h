#ifndef SLIM_SLIMPAD_BUNDLE_SCRAP_H_
#define SLIM_SLIMPAD_BUNDLE_SCRAP_H_

/// \file bundle_scrap.h
/// \brief SLIMPad's application data: the Bundle-Scrap model (paper Fig. 3)
/// as native objects.
///
/// Fig. 10: "The class structure is identical to the Bundle-Scrap model of
/// SLIMPad, except the classes are writable (i.e., the DMI can set their
/// attributes). ... Only the interfaces are presented to SLIMPad, which
/// allows the DMI to guarantee consistency between the triple representation
/// and the application data."
///
/// In C++ we realize "read-only interfaces, writable classes" with const
/// access: the application receives `const Bundle*` etc.; all mutators are
/// routed through SlimPadDmi (a friend), which mirrors every change into
/// triples.

#include <string>
#include <vector>

#include "util/result.h"

namespace slim::pad {

class SlimPadDmi;

/// \brief A 2-D position on the pad (freeform placement, paper §3: "We
/// allow flexibility for placement of information elements and bundles in
/// two dimensions").
struct Coordinate {
  double x = 0;
  double y = 0;

  std::string ToString() const;
  static Result<Coordinate> Parse(std::string_view text);
  friend bool operator==(const Coordinate&, const Coordinate&) = default;
};

/// \brief References a Mark in the Mark Manager by id (paper Fig. 3:
/// "Each MarkHandle references a Mark through a unique mark id").
class MarkHandle {
 public:
  const std::string& id() const { return id_; }
  const std::string& mark_id() const { return mark_id_; }

 private:
  friend class SlimPadDmi;
  std::string id_;
  std::string mark_id_;
};

/// \brief An information element on the pad: a label, a position, zero or
/// more mark handles, plus the §6 extensions (annotations, links).
class Scrap {
 public:
  const std::string& id() const { return id_; }
  const std::string& name() const { return name_; }
  const Coordinate& pos() const { return pos_; }
  /// MarkHandle ids (empty for purely graphic scraps like the 'gridlet').
  const std::vector<std::string>& mark_handles() const {
    return mark_handles_;
  }
  /// §6 extension: free-text annotations on the scrap.
  const std::vector<std::string>& annotations() const { return annotations_; }
  /// §6 extension: explicit links to other scraps (by scrap id).
  const std::vector<std::string>& linked_scraps() const {
    return linked_scraps_;
  }

 private:
  friend class SlimPadDmi;
  std::string id_;
  std::string name_;
  Coordinate pos_;
  std::vector<std::string> mark_handles_;
  std::vector<std::string> annotations_;
  std::vector<std::string> linked_scraps_;
};

/// \brief A freeform grouping of scraps and nested bundles with a label and
/// geometry.
class Bundle {
 public:
  const std::string& id() const { return id_; }
  const std::string& name() const { return name_; }
  const Coordinate& pos() const { return pos_; }
  double width() const { return width_; }
  double height() const { return height_; }
  /// Contained scrap ids, in placement order.
  const std::vector<std::string>& scraps() const { return scraps_; }
  /// Nested bundle ids, in placement order.
  const std::vector<std::string>& nested_bundles() const {
    return nested_bundles_;
  }
  /// Id of the containing bundle; empty for a root bundle.
  const std::string& parent() const { return parent_; }

 private:
  friend class SlimPadDmi;
  std::string id_;
  std::string name_;
  Coordinate pos_;
  double width_ = 0;
  double height_ = 0;
  std::vector<std::string> scraps_;
  std::vector<std::string> nested_bundles_;
  std::string parent_;
};

/// \brief The top-level object: a named pad designating a root bundle.
class SlimPad {
 public:
  const std::string& id() const { return id_; }
  const std::string& pad_name() const { return pad_name_; }
  /// Root bundle id; empty if not yet set.
  const std::string& root_bundle() const { return root_bundle_; }

 private:
  friend class SlimPadDmi;
  std::string id_;
  std::string pad_name_;
  std::string root_bundle_;
};

}  // namespace slim::pad

#endif  // SLIM_SLIMPAD_BUNDLE_SCRAP_H_
