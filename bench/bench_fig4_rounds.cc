// Experiment F4 (paper Fig. 4): the SLIMPad 'Rounds' scenario end to end.
//
// Regenerates: building the resident's-worksheet pad for a census of P
// patients (bundles + scraps + marks created from live base-application
// selections), and the interactive click-to-resolve latency for the two
// mark types the figure shows (Excel medication rows, XML electrolyte
// results).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "workload/session.h"

namespace slim::workload {
namespace {

void BM_BuildRoundsPad(benchmark::State& state) {
  const int patients = static_cast<int>(state.range(0));
  IcuOptions options;
  options.patients = patients;
  options.seed = 42;
  for (auto _ : state) {
    state.PauseTiming();
    Session session;
    SLIM_BENCH_CHECK(session.LoadIcuWorkload(GenerateIcuWorkload(options)));
    state.ResumeTiming();
    SLIM_BENCH_CHECK(session.BuildRoundsPad());
    benchmark::DoNotOptimize(session.marks().size());
    state.counters["scraps"] =
        static_cast<double>(session.app().dmi().Scraps().size());
    state.counters["marks"] = static_cast<double>(session.marks().size());
  }
  state.SetItemsProcessed(state.iterations() * patients);
}
BENCHMARK(BM_BuildRoundsPad)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The complete Fig. 2 worksheet (all six source types on the pad).
void BM_BuildFullRoundsPad(benchmark::State& state) {
  const int patients = static_cast<int>(state.range(0));
  IcuOptions options;
  options.patients = patients;
  options.seed = 42;
  for (auto _ : state) {
    state.PauseTiming();
    Session session;
    SLIM_BENCH_CHECK(session.LoadIcuWorkload(GenerateIcuWorkload(options)));
    state.ResumeTiming();
    SLIM_BENCH_CHECK(session.BuildFullRoundsPad());
    state.counters["scraps"] =
        static_cast<double>(session.app().dmi().Scraps().size());
  }
  state.SetItemsProcessed(state.iterations() * patients);
}
BENCHMARK(BM_BuildFullRoundsPad)->Arg(4)->Arg(16);

class RoundsFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    if (session_ && patients_ == state.range(0)) return;
    patients_ = state.range(0);
    IcuOptions options;
    options.patients = static_cast<int>(patients_);
    options.seed = 42;
    session_ = std::make_unique<Session>();
    SLIM_BENCH_CHECK(session_->LoadIcuWorkload(GenerateIcuWorkload(options)));
    SLIM_BENCH_CHECK(session_->BuildRoundsPad());
    med_scraps_.clear();
    lyte_scraps_.clear();
    for (const std::string& bundle_id : session_->patient_bundles()) {
      const pad::Bundle* patient =
          *session_->app().dmi().GetBundle(bundle_id);
      for (const auto& s : patient->scraps()) med_scraps_.push_back(s);
      const pad::Bundle* lytes =
          *session_->app().dmi().GetBundle(patient->nested_bundles()[0]);
      for (const auto& s : lytes->scraps()) {
        const pad::Scrap* scrap = *session_->app().dmi().GetScrap(s);
        if (!scrap->mark_handles().empty()) lyte_scraps_.push_back(s);
      }
    }
  }

  int64_t patients_ = -1;
  std::unique_ptr<Session> session_;
  std::vector<std::string> med_scraps_;
  std::vector<std::string> lyte_scraps_;
};

// Fig. 4 left: "By clicking on the scrap ... the medication list is
// displayed with the appropriate medication highlighted."
BENCHMARK_DEFINE_F(RoundsFixture, ClickMedScrap)(benchmark::State& state) {
  int64_t i = 0;
  for (auto _ : state) {
    auto result =
        session_->app().OpenScrap(med_scraps_[i++ % med_scraps_.size()]);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_REGISTER_F(RoundsFixture, ClickMedScrap)->Arg(4)->Arg(16)->Arg(64);

// Fig. 4 right: "Each of these scraps can be double-clicked, which opens
// the lab report and highlights the appropriate section of the XML."
BENCHMARK_DEFINE_F(RoundsFixture, ClickElectrolyteScrap)
(benchmark::State& state) {
  int64_t i = 0;
  for (auto _ : state) {
    auto result =
        session_->app().OpenScrap(lyte_scraps_[i++ % lyte_scraps_.size()]);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_REGISTER_F(RoundsFixture, ClickElectrolyteScrap)
    ->Arg(4)->Arg(16)->Arg(64);

// The whole-shift sweep: open every scrap on the pad once.
BENCHMARK_DEFINE_F(RoundsFixture, OpenAllScraps)(benchmark::State& state) {
  for (auto _ : state) {
    auto opened = session_->OpenAllScraps();
    if (!opened.ok()) state.SkipWithError(opened.status().ToString().c_str());
    state.counters["scraps_opened"] = static_cast<double>(*opened);
  }
  state.SetItemsProcessed(state.iterations() *
                          (med_scraps_.size() + lyte_scraps_.size()));
}
BENCHMARK_REGISTER_F(RoundsFixture, OpenAllScraps)->Arg(4)->Arg(16);

// Handoff (paper §6): save + reload the whole pad.
BENCHMARK_DEFINE_F(RoundsFixture, HandoffSaveLoad)(benchmark::State& state) {
  std::string path = "/tmp/bench_handoff_pad.xml";
  for (auto _ : state) {
    SLIM_BENCH_CHECK(session_->app().SavePad(path));
    Session doctor2;
    IcuOptions options;
    options.patients = static_cast<int>(patients_);
    options.seed = 42;
    SLIM_BENCH_CHECK(doctor2.LoadIcuWorkload(GenerateIcuWorkload(options)));
    SLIM_BENCH_CHECK(doctor2.app().LoadPad(path));
    benchmark::DoNotOptimize(doctor2.app().dmi().Scraps().size());
  }
  std::remove(path.c_str());
  std::remove((path + ".marks").c_str());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_REGISTER_F(RoundsFixture, HandoffSaveLoad)->Arg(4)->Arg(16);

}  // namespace
}  // namespace slim::workload

SLIM_BENCH_MAIN();
