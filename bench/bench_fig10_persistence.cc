// Experiment F10 (paper Fig. 10): save(fileName) / load(fileName).
//
// Regenerates: whole-pad persistence through the triple store's XML form as
// the pad grows — serialize, write, read, parse, and rebuild the native
// object graph (the load path exercises TRIM parse + object rebuild, the
// paper's "consistency between the triple representation and the
// application data").

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "slimpad/slimpad_dmi.h"
#include "trim/persistence.h"

namespace slim::pad {
namespace {

void BuildPad(SlimPadDmi* dmi, int64_t scraps) {
  const SlimPad* pad = *dmi->Create_SlimPad("bench");
  const Bundle* root = *dmi->Create_Bundle("root", {0, 0}, 800, 600);
  SLIM_BENCH_CHECK(dmi->Update_rootBundle(pad->id(), root->id()));
  std::string current = root->id();
  for (int64_t i = 0; i < scraps; ++i) {
    if (i % 16 == 0 && i > 0) {
      const Bundle* b = *dmi->Create_Bundle("b" + std::to_string(i),
                                            {double(i), 0}, 200, 150);
      SLIM_BENCH_CHECK(dmi->AddNestedBundle(root->id(), b->id()));
      current = b->id();
    }
    const Scrap* s =
        *dmi->Create_Scrap("scrap " + std::to_string(i), {double(i % 640), 8});
    SLIM_BENCH_CHECK(dmi->AddScrapToBundle(current, s->id()));
    const MarkHandle* h = *dmi->Create_MarkHandle("mark" + std::to_string(i));
    SLIM_BENCH_CHECK(dmi->SetScrapMark(s->id(), h->id()));
  }
}

class PadFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    if (dmi_ && scraps_ == state.range(0)) return;
    scraps_ = state.range(0);
    store_ = std::make_unique<trim::TripleStore>();
    dmi_ = std::make_unique<SlimPadDmi>(store_.get());
    BuildPad(dmi_.get(), scraps_);
    xml_ = trim::StoreToXml(*store_);
  }

  int64_t scraps_ = -1;
  std::unique_ptr<trim::TripleStore> store_;
  std::unique_ptr<SlimPadDmi> dmi_;
  std::string xml_;
};

BENCHMARK_DEFINE_F(PadFixture, Serialize)(benchmark::State& state) {
  for (auto _ : state) {
    std::string xml = trim::StoreToXml(*store_);
    benchmark::DoNotOptimize(xml);
    state.counters["xml_bytes"] = static_cast<double>(xml.size());
    state.counters["triples"] = static_cast<double>(store_->size());
  }
  state.SetItemsProcessed(state.iterations() * scraps_);
}
BENCHMARK_REGISTER_F(PadFixture, Serialize)->Arg(100)->Arg(1000)->Arg(10000);

BENCHMARK_DEFINE_F(PadFixture, ParseTriples)(benchmark::State& state) {
  for (auto _ : state) {
    trim::TripleStore loaded;
    SLIM_BENCH_CHECK(trim::StoreFromXml(xml_, &loaded));
    benchmark::DoNotOptimize(loaded.size());
  }
  state.SetItemsProcessed(state.iterations() * scraps_);
}
BENCHMARK_REGISTER_F(PadFixture, ParseTriples)->Arg(100)->Arg(1000)->Arg(10000);

BENCHMARK_DEFINE_F(PadFixture, FullLoadWithObjectRebuild)
(benchmark::State& state) {
  for (auto _ : state) {
    trim::TripleStore store;
    SLIM_BENCH_CHECK(trim::StoreFromXml(xml_, &store));
    SlimPadDmi dmi(&store);
    SLIM_BENCH_CHECK(dmi.RebuildFromTriples());
    benchmark::DoNotOptimize(dmi.NativeObjectCount());
  }
  state.SetItemsProcessed(state.iterations() * scraps_);
}
BENCHMARK_REGISTER_F(PadFixture, FullLoadWithObjectRebuild)
    ->Arg(100)->Arg(1000)->Arg(10000);

BENCHMARK_DEFINE_F(PadFixture, SaveLoadThroughDisk)(benchmark::State& state) {
  std::string path = "/tmp/bench_pad_persistence.xml";
  for (auto _ : state) {
    SLIM_BENCH_CHECK(dmi_->save(path));
    trim::TripleStore store;
    SlimPadDmi dmi(&store);
    SLIM_BENCH_CHECK(dmi.load(path));
    benchmark::DoNotOptimize(dmi.NativeObjectCount());
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() * scraps_);
}
BENCHMARK_REGISTER_F(PadFixture, SaveLoadThroughDisk)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace slim::pad

SLIM_BENCH_MAIN();
