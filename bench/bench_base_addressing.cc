// Experiment T5: base-layer addressing — the substrate soundness check.
//
// Every mark type ultimately bottoms out in one of these addressing
// operations (paper §4.2: marks "encapsulate the specific addressing scheme
// of the base-layer information"). Regenerates: A1 codec throughput,
// XmlPath resolution vs tree depth and fan-out, text-span extraction and
// search vs document size, HTML id lookup vs page size, and PDF region
// queries vs page density.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "doc/html/html.h"
#include "doc/pdf/pdf_document.h"
#include "doc/spreadsheet/a1.h"
#include "doc/text/text_document.h"
#include "doc/xml/dom.h"
#include "doc/xml/path.h"
#include "util/rng.h"

namespace slim::doc {
namespace {

void BM_A1_ParseCell(benchmark::State& state) {
  const char* inputs[] = {"A1", "Z99", "AA100", "XFD1048576", "B2", "GH77"};
  int64_t i = 0;
  for (auto _ : state) {
    auto ref = ParseCell(inputs[i++ % 6]);
    benchmark::DoNotOptimize(ref);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_A1_ParseCell);

void BM_A1_FormatRange(benchmark::State& state) {
  int64_t i = 0;
  for (auto _ : state) {
    RangeRef r{{static_cast<int32_t>(i % 1000), static_cast<int32_t>(i % 50)},
               {static_cast<int32_t>(i % 1000 + 3),
                static_cast<int32_t>(i % 50 + 2)}};
    benchmark::DoNotOptimize(FormatRange(r));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_A1_FormatRange);

// XmlPath resolution against trees of varying depth (fixed total size).
void BM_XmlPath_ResolveAtDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto doc = xml::Document::Create("root");
  xml::Element* cur = doc->root();
  for (int d = 0; d < depth; ++d) {
    // Each level: 4 decoy siblings + the spine element.
    for (int s = 0; s < 4; ++s) cur->AddElement("level");
    cur = cur->AddElement("level");
  }
  xml::XmlPath path = xml::PathOf(cur);
  std::string path_text = path.ToString();
  for (auto _ : state) {
    auto parsed = xml::XmlPath::Parse(path_text);
    auto elem = parsed->Resolve(doc.get());
    if (!elem.ok()) state.SkipWithError("resolve failed");
    benchmark::DoNotOptimize(elem);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XmlPath_ResolveAtDepth)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// XmlPath resolution against wide trees (fan-out sweep, depth 2).
void BM_XmlPath_ResolveAtFanout(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  auto doc = xml::Document::Create("root");
  for (int i = 0; i < fanout; ++i) {
    doc->root()->AddElement("result")->AddText("v");
  }
  std::string path_text = "/root/result[" + std::to_string(fanout) + "]";
  for (auto _ : state) {
    auto elem = xml::XmlPath::Parse(path_text)->Resolve(doc.get());
    if (!elem.ok()) state.SkipWithError("resolve failed");
    benchmark::DoNotOptimize(elem);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XmlPath_ResolveAtFanout)->Arg(10)->Arg(100)->Arg(1000);

// Robust (attribute-predicate) vs positional resolution at matched fan-out:
// the price of edit-resilient marks (experiment ROB-1).
void BM_XmlPath_ResolveOrdinal(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  auto doc = xml::Document::Create("root");
  for (int i = 0; i < fanout; ++i) {
    xml::Element* e = doc->root()->AddElement("result");
    e->SetAttribute("name", "analyte" + std::to_string(i));
  }
  std::string text = "/root/result[" + std::to_string(fanout) + "]";
  for (auto _ : state) {
    auto elem = xml::XmlPath::Parse(text)->Resolve(doc.get());
    if (!elem.ok()) state.SkipWithError("resolve failed");
    benchmark::DoNotOptimize(elem);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XmlPath_ResolveOrdinal)->Arg(10)->Arg(100)->Arg(1000);

void BM_XmlPath_ResolveRobust(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  auto doc = xml::Document::Create("root");
  for (int i = 0; i < fanout; ++i) {
    xml::Element* e = doc->root()->AddElement("result");
    e->SetAttribute("name", "analyte" + std::to_string(i));
  }
  std::string text =
      "/root/result[@name='analyte" + std::to_string(fanout - 1) + "']";
  for (auto _ : state) {
    auto elem = xml::XmlPath::Parse(text)->Resolve(doc.get());
    if (!elem.ok()) state.SkipWithError("resolve failed");
    benchmark::DoNotOptimize(elem);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XmlPath_ResolveRobust)->Arg(10)->Arg(100)->Arg(1000);

void BM_XmlPath_PathOf(benchmark::State& state) {
  auto doc = xml::Document::Create("root");
  xml::Element* cur = doc->root();
  for (int d = 0; d < 16; ++d) {
    for (int s = 0; s < 8; ++s) cur->AddElement("n");
    cur = cur->AddElement("n");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::PathOf(cur).ToString());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XmlPath_PathOf);

void BM_TextSpan_Extract(benchmark::State& state) {
  const int paragraphs = static_cast<int>(state.range(0));
  Rng rng(3);
  text::TextDocument doc;
  for (int i = 0; i < paragraphs; ++i) {
    doc.AddParagraph(rng.Word(9) + " " + rng.Word(7) + " " + rng.Word(11));
  }
  int64_t i = 0;
  for (auto _ : state) {
    text::TextSpan span{static_cast<int32_t>(i++ % paragraphs), 2, 9};
    auto out = doc.ExtractSpan(span);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TextSpan_Extract)->Arg(100)->Arg(10000);

void BM_Text_FindAll(benchmark::State& state) {
  const int paragraphs = static_cast<int>(state.range(0));
  Rng rng(3);
  text::TextDocument doc;
  for (int i = 0; i < paragraphs; ++i) {
    std::string para = rng.Word(8);
    for (int w = 0; w < 20; ++w) para += " " + rng.Word(6);
    if (i % 7 == 0) para += " needle";
    doc.AddParagraph(para);
  }
  for (auto _ : state) {
    auto hits = doc.FindAll("needle");
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * doc.TotalChars());
  state.SetBytesProcessed(state.iterations() * doc.TotalChars());
}
BENCHMARK(BM_Text_FindAll)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Html_FindById(benchmark::State& state) {
  const int paragraphs = static_cast<int>(state.range(0));
  Rng rng(4);
  std::string html = "<body>";
  for (int i = 0; i < paragraphs; ++i) {
    html += "<p id=\"p" + std::to_string(i) + "\">" + rng.Word(12) + "</p>";
  }
  html += "</body>";
  auto doc = html::ParseHtml(html);
  int64_t i = 0;
  for (auto _ : state) {
    xml::Element* e =
        html::FindById(doc.get(), "p" + std::to_string(i++ % paragraphs));
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Html_FindById)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Html_Parse(benchmark::State& state) {
  const int paragraphs = static_cast<int>(state.range(0));
  Rng rng(4);
  std::string html = "<html><body>";
  for (int i = 0; i < paragraphs; ++i) {
    html += "<p class=\"c\">" + rng.Word(12) + " &amp; " + rng.Word(8) +
            "</p>";
  }
  html += "</body></html>";
  for (auto _ : state) {
    auto doc = html::ParseHtml(html);
    benchmark::DoNotOptimize(doc->ElementCount());
  }
  state.SetBytesProcessed(state.iterations() * html.size());
}
BENCHMARK(BM_Html_Parse)->Arg(100)->Arg(1000);

void BM_Pdf_RegionQuery(benchmark::State& state) {
  const int paragraphs = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<std::string> paras;
  for (int i = 0; i < paragraphs; ++i) {
    std::string p;
    for (int w = 0; w < 15; ++w) p += rng.Word(6) + " ";
    paras.push_back(p);
  }
  auto doc = pdf::PdfDocument::BuildFromParagraphs(paras);
  pdf::Rect region{72, 300, 400, 100};
  int64_t page = 0;
  for (auto _ : state) {
    auto objs = doc->ObjectsInRegion(
        static_cast<int32_t>(page++ % doc->page_count()), region);
    benchmark::DoNotOptimize(objs);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Pdf_RegionQuery)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace slim::doc

SLIM_BENCH_MAIN();
