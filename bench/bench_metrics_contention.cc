// Multi-writer telemetry cost: what does one `SLIM_OBS_COUNT` cost when
// 1/2/4/8 threads hammer the same counter? The acceptance bar for the
// sharded registry (per-thread alignas(64) shards, relaxed writes,
// aggregate-on-read — see obs/metrics.h) is a >= 4x lower per-op p50 than
// the pre-shard design at 4 writer threads.
//
// The pre-shard design is replicated here verbatim-in-miniature (`legacy`
// namespace below: one cache-line-shared atomic per counter behind a
// mutex-guarded name map) so the comparison survives in one binary and the
// regression gate does not depend on checking out an old commit.
//
// Families:
//   BM_LegacyRegistryIncrement   name lookup + fetch_add on a shared atomic
//   BM_ShardedRegistryIncrement  name lookup (TL memo) + per-thread shard
//   BM_LegacyCachedIncrement     pointer hoisted: shared-atomic RMW only
//   BM_ShardedCachedIncrement    pointer hoisted: owner-shard store only
//   BM_ShardedHistogramRecord    full Record() into a per-thread shard
//
// All families run ->Threads({1,2,4,8})->UseRealTime(); both registries
// carry ~120 filler metrics so the lookup path pays a realistic map/index.

#include <benchmark/benchmark.h>

#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "bench/bench_common.h"
#include "obs/metrics.h"

namespace slim::obs {
namespace {

// ---------------------------------------------------------------------------
// The pre-shard registry, as it was: every writer RMWs one shared cache
// line, and every name lookup takes the registry mutex.
// ---------------------------------------------------------------------------
namespace legacy {

class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Registry {
 public:
  Counter* GetCounter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return &counters_[name];
  }

 private:
  std::mutex mu_;
  std::map<std::string, Counter> counters_;
};

}  // namespace legacy

constexpr int kFillerMetrics = 120;
const char kHotCounter[] = "bench.contention.ops";
const char kHotHistogram[] = "bench.contention.latency_us";

std::string FillerName(int i) {
  return "layer" + std::to_string(i % 7) + ".op" + std::to_string(i) + ".ok";
}

legacy::Registry& LegacyRegistry() {
  static legacy::Registry* registry = [] {
    auto* r = new legacy::Registry();
    for (int i = 0; i < kFillerMetrics; ++i) r->GetCounter(FillerName(i));
    return r;
  }();
  return *registry;
}

MetricsRegistry& ShardedRegistry() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    for (int i = 0; i < kFillerMetrics; ++i) r->GetCounter(FillerName(i));
    return r;
  }();
  return *registry;
}

// --- The headline comparison: the `GetCounter(name)->Increment()` idiom ----

void BM_LegacyRegistryIncrement(benchmark::State& state) {
  legacy::Registry& registry = LegacyRegistry();
  const std::string name = kHotCounter;
  for (auto _ : state) {
    registry.GetCounter(name)->Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LegacyRegistryIncrement)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_ShardedRegistryIncrement(benchmark::State& state) {
  MetricsRegistry& registry = ShardedRegistry();
  for (auto _ : state) {
    registry.GetCounter(kHotCounter)->Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedRegistryIncrement)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

// --- Pointer hoisted: isolates the write path from the lookup path --------

void BM_LegacyCachedIncrement(benchmark::State& state) {
  legacy::Counter* counter = LegacyRegistry().GetCounter(kHotCounter);
  for (auto _ : state) {
    counter->Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LegacyCachedIncrement)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_ShardedCachedIncrement(benchmark::State& state) {
  Counter* counter = ShardedRegistry().GetCounter(kHotCounter);
  for (auto _ : state) {
    counter->Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedCachedIncrement)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

// --- Histograms: Record() touches buckets + count + sum + max + min -------

void BM_ShardedHistogramRecord(benchmark::State& state) {
  MetricsRegistry& registry = ShardedRegistry();
  uint64_t value = 1;
  for (auto _ : state) {
    registry.GetHistogram(kHotHistogram)->Record(value);
    value = value * 33 % 100000 + 1;  // walk the bucket ladder
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedHistogramRecord)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

}  // namespace
}  // namespace slim::obs

SLIM_BENCH_MAIN();
