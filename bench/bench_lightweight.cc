// Experiment T3 (paper §1 "Keep it lightweight" and §6): the superimposed
// layer is a thin veneer over a much larger base layer.
//
// "In most of the applications we've studied or contemplated, the
// superimposed information is a thin layer over more extensive information
// sources in the base layer." / "...we expect the volume of superimposed
// information to be a fraction of the base data."
//
// Regenerates: the superimposed:base size ratio for the ICU scenario as the
// census grows — base bytes (workbook + XML labs + notes + PDF + HTML)
// versus superimposed bytes (pad triples + marks XML). The claim holds if
// the ratio stays well under 1 and shrinks as base documents grow.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "doc/xml/writer.h"
#include "trim/persistence.h"
#include "workload/session.h"

namespace slim::workload {
namespace {

void BM_SuperimposedVsBase(benchmark::State& state) {
  const int patients = static_cast<int>(state.range(0));
  IcuOptions options;
  options.patients = patients;
  options.seed = 42;

  // Measure the base corpus before it moves into the apps.
  IcuWorkload workload = GenerateIcuWorkload(options);
  size_t base_bytes = workload.medication_workbook->Serialize().size();
  for (const auto& lab : workload.lab_reports) {
    base_bytes += doc::xml::WriteXml(*lab).size();
  }
  for (const auto& note : workload.progress_notes) {
    base_bytes += note->Serialize().size();
  }
  base_bytes += workload.guideline_pdf->Serialize().size();
  base_bytes += workload.protocol_html.size();

  Session session;
  SLIM_BENCH_CHECK(session.LoadIcuWorkload(std::move(workload)));
  SLIM_BENCH_CHECK(session.BuildRoundsPad());

  size_t pad_bytes = trim::StoreToXml(session.app().store()).size();
  size_t marks_bytes = session.marks().ToXml().size();
  size_t superimposed_bytes = pad_bytes + marks_bytes;

  for (auto _ : state) {
    benchmark::DoNotOptimize(trim::StoreToXml(session.app().store()));
  }
  state.counters["base_bytes"] = static_cast<double>(base_bytes);
  state.counters["pad_bytes"] = static_cast<double>(pad_bytes);
  state.counters["marks_bytes"] = static_cast<double>(marks_bytes);
  state.counters["superimposed_over_base"] =
      static_cast<double>(superimposed_bytes) /
      static_cast<double>(base_bytes);
}
BENCHMARK(BM_SuperimposedVsBase)->Arg(2)->Arg(8)->Arg(32);

// Same census, richer base documents (longer notes): the superimposed layer
// does not grow with base-document size — only with what the user selects.
void BM_RatioShrinksWithBaseGrowth(benchmark::State& state) {
  const int note_paragraphs = static_cast<int>(state.range(0));
  IcuOptions options;
  options.patients = 8;
  options.note_paragraphs = note_paragraphs;
  options.seed = 42;

  IcuWorkload workload = GenerateIcuWorkload(options);
  size_t base_bytes = workload.medication_workbook->Serialize().size();
  for (const auto& lab : workload.lab_reports) {
    base_bytes += doc::xml::WriteXml(*lab).size();
  }
  for (const auto& note : workload.progress_notes) {
    base_bytes += note->Serialize().size();
  }

  Session session;
  SLIM_BENCH_CHECK(session.LoadIcuWorkload(std::move(workload)));
  SLIM_BENCH_CHECK(session.BuildRoundsPad());
  size_t superimposed_bytes =
      trim::StoreToXml(session.app().store()).size() +
      session.marks().ToXml().size();

  for (auto _ : state) {
    benchmark::DoNotOptimize(session.marks().size());
  }
  state.counters["base_bytes"] = static_cast<double>(base_bytes);
  state.counters["superimposed_bytes"] =
      static_cast<double>(superimposed_bytes);
  state.counters["superimposed_over_base"] =
      static_cast<double>(superimposed_bytes) /
      static_cast<double>(base_bytes);
}
BENCHMARK(BM_RatioShrinksWithBaseGrowth)->Arg(6)->Arg(60)->Arg(600);

}  // namespace
}  // namespace slim::workload

SLIM_BENCH_MAIN();
