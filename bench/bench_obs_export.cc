// Diagnostics-layer throughput: what does it cost to *look at* a running
// system? Structured logging (accepted and level-filtered), span profiling,
// and the two registry export paths a scraper exercises — Prometheus text
// exposition and the JSON merge format — over registries of realistic size.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/prom.h"
#include "obs/trace.h"

namespace slim::obs {
namespace {

// A registry shaped like a live session: per-layer counters plus latency
// histograms with populated buckets.
void FillRegistry(MetricsRegistry* registry, int64_t metrics) {
  for (int64_t i = 0; i < metrics; ++i) {
    std::string base = "layer" + std::to_string(i % 7) + ".op" +
                       std::to_string(i);
    registry->GetCounter(base + ".ok")->Increment(i + 1);
    LatencyHistogram* h = registry->GetHistogram(base + ".latency_us");
    for (uint64_t v : {1u, 9u, 42u, 900u, 100000u}) h->Record(v + i);
  }
}

void BM_LogEventDelivery(benchmark::State& state) {
  MetricsRegistry registry;
  Logger logger;
  logger.set_registry(&registry);
  RingBufferLogSink sink(1024);
  logger.AddSink(&sink);
  for (auto _ : state) {
    logger.Log(LogLevel::kInfo, "trim", "store saved",
               {{"path", "/tmp/pad.xml"}, {"triples", "4096"}});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogEventDelivery);

void BM_LogEventFilteredOut(benchmark::State& state) {
  Logger logger;
  logger.set_registry(nullptr);
  RingBufferLogSink sink(1024);
  logger.AddSink(&sink);
  logger.set_min_level(LogLevel::kError);
  for (auto _ : state) {
    logger.Log(LogLevel::kDebug, "trim", "chatty detail",
               {{"key", "value"}});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogEventFilteredOut);

void BM_SpanProfilerIngest(benchmark::State& state) {
  Tracer tracer;
  SpanProfiler profiler;
  tracer.AddSink(&profiler);
  for (auto _ : state) {
    Span outer = tracer.StartSpan("slimpad.open_scrap");
    {
      Span inner = tracer.StartSpan("mark.resolve");
    }
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_SpanProfilerIngest);

void BM_ExportPrometheus(benchmark::State& state) {
  MetricsRegistry registry;
  FillRegistry(&registry, state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string text = ExportPrometheus(registry);
    bytes = text.size();
    benchmark::DoNotOptimize(text);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExportPrometheus)->Arg(16)->Arg(128)->Arg(1024);

void BM_ExportJson(benchmark::State& state) {
  MetricsRegistry registry;
  FillRegistry(&registry, state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string text = registry.ExportJson();
    bytes = text.size();
    benchmark::DoNotOptimize(text);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExportJson)->Arg(16)->Arg(128)->Arg(1024);

void BM_RegistrySnapshot(benchmark::State& state) {
  MetricsRegistry registry;
  FillRegistry(&registry, state.range(0));
  for (auto _ : state) {
    MetricsSnapshot snap = registry.Snapshot();
    benchmark::DoNotOptimize(snap);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RegistrySnapshot)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace slim::obs

SLIM_BENCH_MAIN();
