// Self-diagnosis overhead: what does the armed runtime cost the hot path?
//
// The acceptance bar for the SLO engine + stall watchdog + alert stream
// (obs/slo.h, obs/watchdog.h, obs/alert.h) is < 1% added p50 on the
// declarative-query hot path. The watched configuration is the full
// production wiring: the default watchdog armed — which turns on the
// tracer's deadline-filtered active-span registry and the heartbeat fast
// path — with a two-objective SLO engine and an alert ring attached. The
// poll tick itself is priced separately (BM_WatchdogCheckOnce).
//
// Families:
//   BM_QueryUnwatched      store::Execute, watchdog off (the seed path)
//   BM_QueryWatched        same query under the armed self-diagnosis stack
//   BM_HeartbeatUnarmed    SLIM_OBS_HEARTBEAT when the watchdog is idle
//   BM_HeartbeatArmed      the same beat with the watchdog armed
//   BM_WatchdogCheckOnce   one full poll tick: spans + heartbeats + SLO
//   BM_SloEvaluate         two objectives over a live registry window
//
// The <1% gate compares BM_QueryWatched p50 against BM_QueryUnwatched p50
// via tools/bench_report and the seeded baseline in
// bench/baselines/BENCH_slo_overhead.json.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/alert.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "obs/watchdog.h"
#include "slim/query.h"
#include "slimpad/slimpad_dmi.h"

namespace slim {
namespace {

// A rounds-shaped pad (64 patients x 8 scraps) — bench_query's realistic
// middle scale — so the headline pair prices the armed stack against a
// representative query, not a toy one. The fixed per-span cost (~100ns:
// clock read, slot claim, filter lookup, heartbeat) is what the gate
// bounds; it does not grow with pad size.
struct BenchPad {
  trim::TripleStore store;
  std::unique_ptr<pad::SlimPadDmi> dmi;
};

std::unique_ptr<BenchPad> BuildBenchPad() {
  auto out = std::make_unique<BenchPad>();
  out->dmi = std::make_unique<pad::SlimPadDmi>(&out->store);
  pad::SlimPadDmi& dmi = *out->dmi;
  const pad::SlimPad* p = *dmi.Create_SlimPad("Rounds");
  const pad::Bundle* root = *dmi.Create_Bundle("root", {0, 0}, 800, 600);
  SLIM_BENCH_CHECK(dmi.Update_rootBundle(p->id(), root->id()));
  for (int i = 0; i < 64; ++i) {
    const pad::Bundle* b = *dmi.Create_Bundle(
        "patient" + std::to_string(i), {0, double(i)}, 640, 160);
    SLIM_BENCH_CHECK(dmi.AddNestedBundle(root->id(), b->id()));
    for (int s = 0; s < 8; ++s) {
      std::string name = s == 3 ? "K 4.9"
                                : "med" + std::to_string(i) + "_" +
                                      std::to_string(s);
      const pad::Scrap* scrap = *dmi.Create_Scrap(name, {double(s), 0});
      SLIM_BENCH_CHECK(dmi.AddScrapToBundle(b->id(), scrap->id()));
    }
  }
  return out;
}

// The production wiring, armed for the lifetime of the object: default
// watchdog armed (deadline-filtered span tracking and the heartbeat fast
// path on), SLO engine with a latency and an error-rate objective, alert
// ring. Objectives use realistic thresholds — the point is the
// bookkeeping cost, not burning. The poller thread is left off so the
// per-op cost isn't confounded with scheduler noise on small machines;
// BM_WatchdogCheckOnce prices the poll tick separately (it runs every
// 200ms, a ~0.0004% duty cycle).
class ArmedStack {
 public:
  ArmedStack()
      : alerts_(&obs::DefaultRegistry()), slo_(&obs::DefaultRegistry()) {
    slo_.set_alerts(&alerts_);
    SLIM_BENCH_CHECK(slo_.AddObjective(
        "query_p99: slim.query.latency_us p99 < 50ms window 60s"));
    SLIM_BENCH_CHECK(slo_.AddObjective(
        "query_errors: slim.query.execute error_rate < 5% window 60s"));
    obs::Watchdog& dog = obs::Watchdog::Default();
    dog.set_alerts(&alerts_);
    dog.set_slo(&slo_);
    dog.SetSpanDeadline("slim.query.execute", 10'000);
    dog.Arm();
  }
  ~ArmedStack() {
    obs::Watchdog& dog = obs::Watchdog::Default();
    dog.Disarm();
    dog.set_alerts(nullptr);
    dog.set_slo(nullptr);
  }

 private:
  obs::AlertRing alerts_;
  obs::SloEngine slo_;
};

// --- The headline pair: the same query, watched and unwatched -------------

void BM_QueryUnwatched(benchmark::State& state) {
  auto pad = BuildBenchPad();
  store::Query q = *store::Query::Parse("?s scrapName \"K 4.9\"");
  for (auto _ : state) {
    auto rows = store::Execute(pad->store, q);
    if (!rows.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryUnwatched);

void BM_QueryWatched(benchmark::State& state) {
  ArmedStack stack;
  auto pad = BuildBenchPad();
  store::Query q = *store::Query::Parse("?s scrapName \"K 4.9\"");
  for (auto _ : state) {
    auto rows = store::Execute(pad->store, q);
    if (!rows.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryWatched);

// --- The heartbeat fast path: one load idle, two relaxed stores armed -----

void BM_HeartbeatUnarmed(benchmark::State& state) {
  for (auto _ : state) {
    SLIM_OBS_HEARTBEAT("bench.slo.heartbeat");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeartbeatUnarmed);

void BM_HeartbeatArmed(benchmark::State& state) {
  ArmedStack stack;
  for (auto _ : state) {
    SLIM_OBS_HEARTBEAT("bench.slo.heartbeat");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeartbeatArmed);

// --- Control-plane costs: one poll tick, one SLO evaluation ---------------

void BM_WatchdogCheckOnce(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::Watchdog dog(&registry, &tracer);
  obs::AlertRing alerts(&registry);
  obs::SloEngine slo(&registry);
  slo.set_alerts(&alerts);
  SLIM_BENCH_CHECK(slo.AddObjective(
      "lat: bench.tick.latency_us p99 < 50ms window 60s"));
  dog.set_alerts(&alerts);
  dog.set_slo(&slo);
  dog.SetSpanDeadline("bench.span", 10'000);
  for (int i = 0; i < 8; ++i) {
    dog.RegisterOnActivity("bench.sub" + std::to_string(i));
  }
  dog.Arm();
  // A handful of live spans for CheckSpansAt to walk.
  std::vector<obs::Span> spans;
  for (int i = 0; i < 4; ++i) spans.push_back(tracer.StartSpan("bench.span"));
  registry.GetHistogram("bench.tick.latency_us")->Record(100);
  for (auto _ : state) {
    dog.CheckOnce();
  }
  state.SetItemsProcessed(state.iterations());
  spans.clear();
  dog.Disarm();
}
BENCHMARK(BM_WatchdogCheckOnce);

void BM_SloEvaluate(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::SloEngine slo(&registry);
  SLIM_BENCH_CHECK(slo.AddObjective(
      "lat: bench.eval.latency_us p99 < 1ms window 60s"));
  SLIM_BENCH_CHECK(slo.AddObjective(
      "err: errors(bench.eval.error,bench.eval.calls) < 1% window 60s"));
  obs::LatencyHistogram* h = registry.GetHistogram("bench.eval.latency_us");
  obs::Counter* calls = registry.GetCounter("bench.eval.calls");
  uint64_t value = 1;
  for (auto _ : state) {
    h->Record(value);
    calls->Increment();
    value = value * 33 % 5000 + 1;
    slo.Evaluate();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SloEvaluate);

}  // namespace
}  // namespace slim

SLIM_BENCH_MAIN();
