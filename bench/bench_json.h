#ifndef SLIM_BENCH_BENCH_JSON_H_
#define SLIM_BENCH_BENCH_JSON_H_

/// \file bench_json.h
/// \brief Data model and serializer for the continuous perf-telemetry
/// pipeline: one `BENCH_<name>.json` per bench binary, diffable across
/// commits by tools/bench_report.
///
/// This header is deliberately free of benchmark.h so the schema and the
/// percentile math are unit-testable from tests/ without linking Google
/// Benchmark; bench_common.h adds the reporter that fills these structs
/// from live runs.
///
/// Schema (version `slim-bench-v1`):
///   {
///     "schema": "slim-bench-v1",
///     "bench": "query",                // binary name minus "bench_"
///     "git_sha": "9e026d7",            // or "unknown" outside a checkout
///     "build_flags": "Release -O2 ...",
///     "obs_enabled": true,             // SLIM_ENABLE_OBS at compile time
///     "benchmarks": [
///       { "name": "BM_QueryExecute/1024",
///         "time_unit": "us",
///         "iterations": 4096,          // per repetition
///         "repetitions": 3,
///         "real_p50": 12.4, "real_p95": 13.1,   // per-iteration, across reps
///         "cpu_p50": 12.3,  "cpu_p95": 13.0,
///         "counters": { "selects_per_iter": 5.0 } }   // mean across reps
///     ],
///     "rusage": {                      // whole-process getrusage(SELF),
///       "max_rss_kb": 48120,           // additive in v1: absent on old
///       "user_cpu_us": 1821345,        // files, old readers ignore it
///       "sys_cpu_us": 90210
///     }
///   }

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace slim::bench {

inline constexpr const char* kBenchJsonSchema = "slim-bench-v1";

/// \brief Aggregated result of one benchmark family (all repetitions).
struct BenchEntry {
  std::string name;
  std::string time_unit = "ns";
  uint64_t iterations = 0;   ///< Iterations of one repetition.
  uint64_t repetitions = 0;  ///< How many repetitions fed the percentiles.
  double real_p50 = 0;       ///< Per-iteration real time across repetitions.
  double real_p95 = 0;
  double cpu_p50 = 0;
  double cpu_p95 = 0;
  /// User counters, mean across repetitions, in first-report order.
  std::vector<std::pair<std::string, double>> counters;
};

/// \brief Whole-process resource usage at report time (getrusage SELF).
/// `present` gates serialization so platforms without getrusage — and old
/// documents — simply omit the section; readers must treat it as optional.
struct BenchRusage {
  bool present = false;
  uint64_t max_rss_kb = 0;    ///< Peak resident set, KiB.
  uint64_t user_cpu_us = 0;   ///< User CPU time, microseconds.
  uint64_t sys_cpu_us = 0;    ///< System CPU time, microseconds.
};

/// \brief Everything one bench binary reports.
struct BenchReportData {
  std::string bench_name;
  std::string git_sha = "unknown";
  std::string build_flags;
  bool obs_enabled = false;
  std::vector<BenchEntry> entries;
  BenchRusage rusage;
};

/// Nearest-rank percentile of `values` (pct in [0, 100]). A single sample
/// is every percentile of itself; an empty vector yields 0.
inline double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double rank = std::ceil(pct / 100.0 * static_cast<double>(values.size()));
  size_t index = rank < 1 ? 0 : static_cast<size_t>(rank) - 1;
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

/// Formats a double for JSON: plain integers stay integral, everything
/// else keeps enough digits to round-trip bench timings.
inline std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Serializes a report into the slim-bench-v1 JSON document.
inline std::string BenchReportToJson(const BenchReportData& report) {
  std::string out = "{\"schema\":";
  out += obs::JsonQuote(kBenchJsonSchema);
  out += ",\"bench\":" + obs::JsonQuote(report.bench_name);
  out += ",\"git_sha\":" + obs::JsonQuote(report.git_sha);
  out += ",\"build_flags\":" + obs::JsonQuote(report.build_flags);
  out += std::string(",\"obs_enabled\":") +
         (report.obs_enabled ? "true" : "false");
  out += ",\"benchmarks\":[";
  for (size_t i = 0; i < report.entries.size(); ++i) {
    const BenchEntry& e = report.entries[i];
    if (i) out += ",";
    out += "{\"name\":" + obs::JsonQuote(e.name);
    out += ",\"time_unit\":" + obs::JsonQuote(e.time_unit);
    out += ",\"iterations\":" + std::to_string(e.iterations);
    out += ",\"repetitions\":" + std::to_string(e.repetitions);
    out += ",\"real_p50\":" + JsonNumber(e.real_p50);
    out += ",\"real_p95\":" + JsonNumber(e.real_p95);
    out += ",\"cpu_p50\":" + JsonNumber(e.cpu_p50);
    out += ",\"cpu_p95\":" + JsonNumber(e.cpu_p95);
    out += ",\"counters\":{";
    for (size_t c = 0; c < e.counters.size(); ++c) {
      if (c) out += ",";
      out += obs::JsonQuote(e.counters[c].first) + ":" +
             JsonNumber(e.counters[c].second);
    }
    out += "}}";
  }
  out += "]";
  if (report.rusage.present) {
    out += ",\"rusage\":{\"max_rss_kb\":" +
           std::to_string(report.rusage.max_rss_kb);
    out += ",\"user_cpu_us\":" + std::to_string(report.rusage.user_cpu_us);
    out += ",\"sys_cpu_us\":" + std::to_string(report.rusage.sys_cpu_us);
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace slim::bench

#endif  // SLIM_BENCH_BENCH_JSON_H_
