// Experiment F9 (paper §4.4 Fig. 9 and §6): the cost of the generic
// representation.
//
// "The trade-off for this flexibility was space efficiency of the data and
// the cost of interpreting manipulations on SLIM Store data. However, this
// tradeoff seems justified, as we expect the volume of superimposed
// information to be a fraction of the base data."
//
// Regenerates the *time* half of that trade-off: the same logical operation
// performed four ways —
//   native:   plain C++ structs (no triples at all; the lower bound)
//   triples:  raw TripleStore writes (the generic representation, no DMI)
//   dmi:      SLIMPad's hand-written DMI (objects + triples, Fig. 10)
//   dynamic:  the runtime-generated DMI (schema-validated, §6)
// The expected shape: native << triples < dmi < dynamic, with the DMI
// layers costing a small constant factor over raw triples.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "dmi/dynamic_dmi.h"
#include "slimpad/slimpad_dmi.h"

namespace slim {
namespace {

// --- native baseline -------------------------------------------------------

struct NativeScrap {
  std::string id;
  std::string name;
  double x, y;
  std::vector<std::string> marks;
};

void BM_CreateScrap_Native(benchmark::State& state) {
  std::vector<NativeScrap> scraps;
  int64_t i = 0;
  for (auto _ : state) {
    NativeScrap s;
    s.id = "inst:" + std::to_string(i);
    s.name = "scrap " + std::to_string(i);
    s.x = double(i % 640);
    s.y = double(i % 480);
    scraps.push_back(std::move(s));
    ++i;
    if (scraps.size() > 100000) {
      state.PauseTiming();
      scraps.clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("plain structs (lower bound)");
}
BENCHMARK(BM_CreateScrap_Native);

// --- raw triples -------------------------------------------------------------

void BM_CreateScrap_RawTriples(benchmark::State& state) {
  trim::TripleStore store;
  bench::ObsCounterProbe adds("trim.add.ok");
  int64_t i = 0;
  for (auto _ : state) {
    std::string id = "inst:" + std::to_string(i);
    SLIM_BENCH_CHECK(store.AddResource(id, "slim:type",
                                       "schema:slimpad/Scrap"));
    SLIM_BENCH_CHECK(store.AddLiteral(id, "scrapName",
                                      "scrap " + std::to_string(i)));
    SLIM_BENCH_CHECK(store.AddLiteral(
        id, "scrapPos",
        std::to_string(i % 640) + "," + std::to_string(i % 480)));
    ++i;
    if (store.size() > 300000) {
      state.PauseTiming();
      store.Clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
  // Triple writes per logical scrap, measured by the obs layer (0 with
  // obs compiled out).
  adds.Report(state, "triples_per_iter");
  state.SetLabel("generic representation, no DMI");
}
BENCHMARK(BM_CreateScrap_RawTriples);

// --- SLIMPad's hand-written DMI ---------------------------------------------

void BM_CreateScrap_SlimPadDmi(benchmark::State& state) {
  trim::TripleStore store;
  pad::SlimPadDmi dmi(&store);
  bench::ObsCounterProbe adds("trim.add.ok");
  int64_t i = 0;
  for (auto _ : state) {
    auto scrap = dmi.Create_Scrap("scrap " + std::to_string(i),
                                  {double(i % 640), double(i % 480)});
    if (!scrap.ok()) state.SkipWithError("create failed");
    benchmark::DoNotOptimize(scrap);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  adds.Report(state, "triples_per_iter");
  state.SetLabel("hand-written DMI (objects + triples)");
}
BENCHMARK(BM_CreateScrap_SlimPadDmi);

// --- generated (dynamic) DMI --------------------------------------------------

void BM_CreateScrap_DynamicDmi(benchmark::State& state) {
  trim::TripleStore store;
  store::ModelDef model = store::BuildBundleScrapModel();
  dmi::DynamicDmi dmi(&store, *store::IdentitySchema(model, "slimpad"),
                      model);
  bench::ObsCounterProbe adds("trim.add.ok");
  bench::ObsCounterProbe writes("dmi.attr_write.ok");
  int64_t i = 0;
  for (auto _ : state) {
    auto scrap = dmi.Create("Scrap");
    if (!scrap.ok()) state.SkipWithError("create failed");
    SLIM_BENCH_CHECK(scrap->Set("scrapName", "scrap " + std::to_string(i)));
    SLIM_BENCH_CHECK(scrap->Set(
        "scrapPos",
        std::to_string(i % 640) + "," + std::to_string(i % 480)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  adds.Report(state, "triples_per_iter");
  writes.Report(state, "attr_writes_per_iter");
  state.SetLabel("generated DMI (schema-validated)");
}
BENCHMARK(BM_CreateScrap_DynamicDmi);

// --- attribute read path, same four ways --------------------------------------

void BM_ReadName_Native(benchmark::State& state) {
  std::vector<NativeScrap> scraps(1024);
  for (size_t i = 0; i < scraps.size(); ++i) {
    scraps[i].name = "scrap " + std::to_string(i);
  }
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scraps[i++ % scraps.size()].name);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadName_Native);

void BM_ReadName_RawTriples(benchmark::State& state) {
  trim::TripleStore store;
  for (int i = 0; i < 1024; ++i) {
    SLIM_BENCH_CHECK(store.AddLiteral("inst:" + std::to_string(i),
                                      "scrapName",
                                      "scrap " + std::to_string(i)));
  }
  bench::ObsCounterProbe reads("trim.get_one.calls");
  int64_t i = 0;
  for (auto _ : state) {
    auto v = store.GetOne("inst:" + std::to_string(i++ % 1024), "scrapName");
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
  reads.Report(state, "reads_per_iter");
}
BENCHMARK(BM_ReadName_RawTriples);

void BM_ReadName_SlimPadDmi(benchmark::State& state) {
  trim::TripleStore store;
  pad::SlimPadDmi dmi(&store);
  std::vector<std::string> ids;
  for (int i = 0; i < 1024; ++i) {
    ids.push_back(
        (*dmi.Create_Scrap("scrap " + std::to_string(i), {0, 0}))->id());
  }
  int64_t i = 0;
  for (auto _ : state) {
    auto scrap = dmi.GetScrap(ids[i++ % ids.size()]);
    benchmark::DoNotOptimize((*scrap)->name());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("reads served from native objects");
}
BENCHMARK(BM_ReadName_SlimPadDmi);

void BM_ReadName_DynamicDmi(benchmark::State& state) {
  trim::TripleStore store;
  store::ModelDef model = store::BuildBundleScrapModel();
  dmi::DynamicDmi dmi(&store, *store::IdentitySchema(model, "slimpad"),
                      model);
  std::vector<dmi::DynamicObject> objs;
  for (int i = 0; i < 1024; ++i) {
    dmi::DynamicObject o = *dmi.Create("Scrap");
    SLIM_BENCH_CHECK(o.Set("scrapName", "scrap " + std::to_string(i)));
    objs.push_back(o);
  }
  bench::ObsCounterProbe reads("dmi.attr_read.ok");
  int64_t i = 0;
  for (auto _ : state) {
    auto v = objs[i++ % objs.size()].Get("scrapName");
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
  reads.Report(state, "attr_reads_per_iter");
  state.SetLabel("reads interpreted over triples");
}
BENCHMARK(BM_ReadName_DynamicDmi);

// --- full pad construction through each write path ----------------------------

void BuildPadViaDmi(pad::SlimPadDmi* dmi, int scraps) {
  const pad::SlimPad* pad = *dmi->Create_SlimPad("bench");
  const pad::Bundle* root = *dmi->Create_Bundle("root", {0, 0}, 800, 600);
  SLIM_BENCH_CHECK(dmi->Update_rootBundle(pad->id(), root->id()));
  for (int i = 0; i < scraps; ++i) {
    const pad::Scrap* scrap = *dmi->Create_Scrap("s" + std::to_string(i),
                                                 {1, 1});
    SLIM_BENCH_CHECK(dmi->AddScrapToBundle(root->id(), scrap->id()));
  }
}

void BM_BuildPad_SlimPadDmi(benchmark::State& state) {
  const int scraps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    trim::TripleStore store;
    pad::SlimPadDmi dmi(&store);
    BuildPadViaDmi(&dmi, scraps);
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(state.iterations() * scraps);
}
BENCHMARK(BM_BuildPad_SlimPadDmi)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace slim

SLIM_BENCH_MAIN();
