// Ablation (paper §6): TRIM's hash-indexed store vs the interned/columnar
// alternative ("some data sets are quite large and we are developing
// alternative implementation mechanisms").
//
// Regenerates: bulk-load rate, point read, one-subject selection,
// whole-graph view, memory per triple, and persistence (XML vs binary)
// for both implementations at matched sizes. Expected shape: the interned
// store wins on memory and bulk load/persist; the hash store wins on
// write-then-read-mixed workloads (no index rebuilds).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "trim/interned_store.h"
#include "trim/persistence.h"
#include "trim/triple_store.h"
#include "util/rng.h"

namespace slim::trim {
namespace {

// Pad-shaped filler shared by both stores (mirrors bench_trim_store).
template <typename Store>
void FillPadShaped(Store* store, int64_t scraps, Rng* rng) {
  int64_t bundles = (scraps + 15) / 16;
  for (int64_t b = 0; b < bundles; ++b) {
    std::string bid = "bundle" + std::to_string(b);
    SLIM_BENCH_CHECK(store->AddLiteral(bid, "bundleName", rng->Word(8)));
    if (b > 0) {
      SLIM_BENCH_CHECK(store->AddResource("bundle0", "nestedBundle", bid));
    }
  }
  for (int64_t s = 0; s < scraps; ++s) {
    std::string sid = "scrap" + std::to_string(s);
    std::string bid = "bundle" + std::to_string(s / 16);
    SLIM_BENCH_CHECK(store->AddResource(bid, "bundleContent", sid));
    SLIM_BENCH_CHECK(store->AddLiteral(sid, "scrapName", rng->Word(10)));
    SLIM_BENCH_CHECK(store->AddLiteral(
        sid, "scrapPos",
        std::to_string(s % 640) + "," + std::to_string(s % 480)));
    std::string hid = "handle" + std::to_string(s);
    SLIM_BENCH_CHECK(store->AddResource(sid, "scrapMark", hid));
    SLIM_BENCH_CHECK(
        store->AddLiteral(hid, "markId", "mark" + std::to_string(s)));
  }
}

template <typename Store>
void RunBulkLoad(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    Store store;
    Rng rng(7);
    state.ResumeTiming();
    FillPadShaped(&store, n, &rng);
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(state.iterations() * n * 6);
}

void BM_BulkLoad_Hashed(benchmark::State& state) {
  RunBulkLoad<TripleStore>(state);
}
void BM_BulkLoad_Interned(benchmark::State& state) {
  RunBulkLoad<InternedTripleStore>(state);
}
BENCHMARK(BM_BulkLoad_Hashed)->Arg(1000)->Arg(10000);
BENCHMARK(BM_BulkLoad_Interned)->Arg(1000)->Arg(10000);

template <typename Store>
void RunPointRead(benchmark::State& state) {
  const int64_t n = state.range(0);
  Store store;
  Rng rng(7);
  FillPadShaped(&store, n, &rng);
  int64_t i = 0;
  for (auto _ : state) {
    auto v = store.GetOne("scrap" + std::to_string(i++ % n), "scrapName");
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PointRead_Hashed(benchmark::State& state) {
  RunPointRead<TripleStore>(state);
}
void BM_PointRead_Interned(benchmark::State& state) {
  RunPointRead<InternedTripleStore>(state);
}
BENCHMARK(BM_PointRead_Hashed)->Arg(10000)->Arg(100000);
BENCHMARK(BM_PointRead_Interned)->Arg(10000)->Arg(100000);

template <typename Store>
void RunViewFrom(benchmark::State& state) {
  const int64_t n = state.range(0);
  Store store;
  Rng rng(7);
  FillPadShaped(&store, n, &rng);
  for (auto _ : state) {
    auto view = store.ViewFrom("bundle0");
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_ViewFrom_Hashed(benchmark::State& state) {
  RunViewFrom<TripleStore>(state);
}
void BM_ViewFrom_Interned(benchmark::State& state) {
  RunViewFrom<InternedTripleStore>(state);
}
BENCHMARK(BM_ViewFrom_Hashed)->Arg(10000);
BENCHMARK(BM_ViewFrom_Interned)->Arg(10000);

// Mixed write/read: interleave adds with point reads — the access pattern
// that forces the interned store to rebuild postings repeatedly.
template <typename Store>
void RunMixed(benchmark::State& state) {
  Store store;
  Rng rng(7);
  FillPadShaped(&store, 1000, &rng);
  int64_t i = 0;
  for (auto _ : state) {
    std::string sid = "extra" + std::to_string(i);
    SLIM_BENCH_CHECK(store.AddLiteral(sid, "scrapName", "x"));
    auto v = store.GetOne("scrap" + std::to_string(i % 1000), "scrapName");
    benchmark::DoNotOptimize(v);
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

void BM_MixedWriteRead_Hashed(benchmark::State& state) {
  RunMixed<TripleStore>(state);
}
void BM_MixedWriteRead_Interned(benchmark::State& state) {
  RunMixed<InternedTripleStore>(state);
}
BENCHMARK(BM_MixedWriteRead_Hashed);
BENCHMARK(BM_MixedWriteRead_Interned);

// Memory + persistence size, reported as counters.
void BM_FootprintComparison(benchmark::State& state) {
  const int64_t n = state.range(0);
  TripleStore hashed;
  InternedTripleStore interned;
  {
    Rng rng(7);
    FillPadShaped(&hashed, n, &rng);
  }
  {
    Rng rng(7);
    FillPadShaped(&interned, n, &rng);
  }
  interned.Compact();
  std::string xml = StoreToXml(hashed);
  std::string bin = interned.SerializeBinary();
  for (auto _ : state) {
    benchmark::DoNotOptimize(interned.size());
  }
  state.counters["hashed_bytes_per_triple"] =
      static_cast<double>(hashed.ApproximateBytes()) /
      static_cast<double>(hashed.size());
  state.counters["interned_bytes_per_triple"] =
      static_cast<double>(interned.ApproximateBytes()) /
      static_cast<double>(interned.size());
  state.counters["xml_file_bytes_per_triple"] =
      static_cast<double>(xml.size()) / static_cast<double>(hashed.size());
  state.counters["binary_file_bytes_per_triple"] =
      static_cast<double>(bin.size()) / static_cast<double>(interned.size());
}
BENCHMARK(BM_FootprintComparison)->Arg(1000)->Arg(10000);

// Cold load: XML-into-hashed vs binary-into-interned.
void BM_ColdLoad_XmlHashed(benchmark::State& state) {
  TripleStore store;
  Rng rng(7);
  FillPadShaped(&store, state.range(0), &rng);
  std::string xml = StoreToXml(store);
  for (auto _ : state) {
    TripleStore loaded;
    SLIM_BENCH_CHECK(StoreFromXml(xml, &loaded));
    benchmark::DoNotOptimize(loaded.size());
  }
  state.SetItemsProcessed(state.iterations() * store.size());
}
void BM_ColdLoad_BinaryInterned(benchmark::State& state) {
  InternedTripleStore store;
  Rng rng(7);
  FillPadShaped(&store, state.range(0), &rng);
  std::string bin = store.SerializeBinary();
  for (auto _ : state) {
    auto loaded = InternedTripleStore::DeserializeBinary(bin);
    if (!loaded.ok()) state.SkipWithError("load failed");
    benchmark::DoNotOptimize(loaded->size());
  }
  state.SetItemsProcessed(state.iterations() * store.size());
}
BENCHMARK(BM_ColdLoad_XmlHashed)->Arg(10000);
BENCHMARK(BM_ColdLoad_BinaryInterned)->Arg(10000);

}  // namespace
}  // namespace slim::trim

SLIM_BENCH_MAIN();
