// Experiment F6 (paper Fig. 6): the three viewing styles.
//
// Regenerates: OpenScrap latency under simultaneous, enhanced, and
// independent viewing. Simultaneous drives the base application only;
// enhanced drives it AND extracts content; independent extracts only.
// Expected shape: independent ≈ extract cost, simultaneous ≈ navigate cost,
// enhanced ≈ both.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "workload/session.h"

namespace slim::workload {
namespace {

class ViewingFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (session_) return;
    IcuOptions options;
    options.patients = 8;
    options.seed = 42;
    session_ = std::make_unique<Session>();
    SLIM_BENCH_CHECK(session_->LoadIcuWorkload(GenerateIcuWorkload(options)));
    SLIM_BENCH_CHECK(session_->BuildRoundsPad());
    for (const pad::Scrap* scrap : session_->app().dmi().Scraps()) {
      if (!scrap->mark_handles().empty()) scraps_.push_back(scrap->id());
    }
  }

  void Run(benchmark::State& state, pad::ViewingStyle style) {
    session_->app().set_viewing_style(style);
    int64_t i = 0;
    for (auto _ : state) {
      auto result = session_->app().OpenScrap(scraps_[i++ % scraps_.size()]);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
      }
      benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations());
  }

  std::unique_ptr<Session> session_;
  std::vector<std::string> scraps_;
};

BENCHMARK_DEFINE_F(ViewingFixture, Simultaneous)(benchmark::State& state) {
  Run(state, pad::ViewingStyle::kSimultaneous);
}
BENCHMARK_REGISTER_F(ViewingFixture, Simultaneous);

BENCHMARK_DEFINE_F(ViewingFixture, Enhanced)(benchmark::State& state) {
  Run(state, pad::ViewingStyle::kEnhanced);
}
BENCHMARK_REGISTER_F(ViewingFixture, Enhanced);

BENCHMARK_DEFINE_F(ViewingFixture, Independent)(benchmark::State& state) {
  Run(state, pad::ViewingStyle::kIndependent);
}
BENCHMARK_REGISTER_F(ViewingFixture, Independent);

// The in-place resolver alternative (§5 Monikers contrast): resolving the
// same marks through the "inplace" resolver registered alongside "context".
BENCHMARK_DEFINE_F(ViewingFixture, InPlaceResolver)(benchmark::State& state) {
  std::vector<std::string> mark_ids;
  for (const std::string& scrap_id : scraps_) {
    const pad::Scrap* scrap = *session_->app().dmi().GetScrap(scrap_id);
    const pad::MarkHandle* handle =
        *session_->app().dmi().GetMarkHandle(scrap->mark_handles()[0]);
    mark_ids.push_back(handle->mark_id());
  }
  int64_t i = 0;
  for (auto _ : state) {
    Status st = session_->marks().ResolveMark(mark_ids[i++ % mark_ids.size()],
                                              "inplace");
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_REGISTER_F(ViewingFixture, InPlaceResolver);

}  // namespace
}  // namespace slim::workload

SLIM_BENCH_MAIN();
