// Concurrent read scaling of the sharded, epoch-snapshotted TripleStore
// (trim/triple_store.h, DESIGN.md §10): 1/2/4/8 reader threads run
// snapshot-pinned selections while ONE background writer keeps committing
// batches the whole time. Because readers never take `trim.store.write` —
// they pin an epoch and walk immutable published postings — aggregate read
// throughput scales near-linearly with reader count on a multi-core host.
// On a single-core host (the CI runner) same-family thread scaling is flat
// by construction, so the acceptance bar (EXPERIMENTS.md CONC-1) is pinned
// the way bench_metrics_contention pins its win: >= 3x aggregate Select
// throughput for 4 concurrent snapshot readers vs the same 4 readers under
// the seed's serialized-read contract at matched writer progress
// (BM_WriterPrefLockSelectHotUnderWriter below).
//
// Totals are exact, not sampled: every reader iteration checks its result
// cardinality (a torn batch fails the run via SkipWithError), and after
// the writer joins, thread 0 re-checks the full post-join store state.
//
// The comparison partner is the seed's read contract, replicated in-binary
// the way bench_metrics_contention replicates the pre-shard registry: until
// this PR the store was documented "single-writer-or-quiescent", so the
// best a concurrent deployment could do was serialize reads against the
// writer behind one reader-writer lock (BM_CoarseLock* families below,
// same store, same workload, shared_mutex around every call). On an
// oversubscribed host that contract additionally pays lock-holder
// preemption convoys — a writer descheduled mid-commit stalls every
// reader — which snapshot pinning is immune to by construction.
//
// Lock-based serialization always sacrifices one side: a reader-preferring
// rwlock (BM_CoarseLockSelectHotUnderWriter) keeps reads fast by starving
// the writer (watch its writer_commits counter collapse), while a
// writer-preferring lock (BM_WriterPrefLockSelectHotUnderWriter) keeps the
// writer at full rate by starving reads. The snapshot store needs no such
// trade: compare its read throughput against the writer-preferring family
// — the only lock configuration whose writer progress matches — for the
// CONC-1 headline number.
//
// Families:
//   BM_SnapshotSelectHotUnderWriter    property selection (256 rows) vs churn
//   BM_CoarseLockSelectHotUnderWriter  same reads, reader-preferring rwlock
//   BM_WriterPrefLockSelectHotUnderWriter  same reads, writer-preferring lock
//   BM_SnapshotPointReadUnderWriter    GetOne point reads vs churn
//   BM_SnapshotViewUnderWriter         reachability view (BFS) vs churn
//   BM_SnapshotPinUnpin                bare Snapshot pin/unpin cost
//   BM_ApplyBatchCommit                writer-side batch commit (64 ops)
//
// All reader families run ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
// ->UseRealTime() (the bench_metrics_contention idiom).

#include <benchmark/benchmark.h>

#include <atomic>
#include <mutex>
#include <condition_variable>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "trim/triple_store.h"

namespace slim::trim {
namespace {

constexpr int kHotRows = 256;       // rows under the hot property
constexpr int kBackdrop = 4096;     // unrelated triples across all shards
constexpr int kChurnSubjects = 8;   // subjects the writer churns
constexpr int kBatchPairs = 256;    // remove+add pairs per ingest commit
constexpr int kChainLength = 64;    // reachability chain for ViewFrom
const char kHotProperty[] = "p.hot";

/// One prefilled store per bench family: a hot property with a known-exact
/// cardinality, a broad backdrop so selections pay realistic index walks,
/// a resource chain for the view family, and churn subjects for the writer.
TripleStore* BuildStore() {
  auto* store = new TripleStore();
  for (int i = 0; i < kHotRows; ++i) {
    SLIM_BENCH_CHECK(store->AddLiteral("hot" + std::to_string(i), kHotProperty,
                                       "h" + std::to_string(i)));
  }
  for (int i = 0; i < kBackdrop; ++i) {
    SLIM_BENCH_CHECK(store->AddLiteral("res" + std::to_string(i),
                                       "p.filler" + std::to_string(i % 17),
                                       "v" + std::to_string(i)));
  }
  for (int i = 0; i + 1 < kChainLength; ++i) {
    SLIM_BENCH_CHECK(store->Add(Triple{
        "chain" + std::to_string(i), "p.next",
        Object::Resource("chain" + std::to_string(i + 1))}));
  }
  for (int i = 0; i < kChurnSubjects; ++i) {
    SLIM_BENCH_CHECK(store->SetOne("churn" + std::to_string(i), "value",
                                   Object::Literal("r0")));
  }
  return store;
}

size_t ExpectedSize() {
  return static_cast<size_t>(kHotRows + kBackdrop + (kChainLength - 1) +
                             kChurnSubjects);
}

/// Writer-preferring reader-writer lock (pthread PREFER_WRITER semantics):
/// a waiting writer blocks new shared acquisitions, so a churning writer
/// keeps its commit rate — at the price of reader starvation. This is the
/// other pole of the lock-based design space the snapshot store escapes.
class WriterPrefLock {
 public:
  void lock() {
    std::unique_lock<std::mutex> l(mu_);
    ++writers_waiting_;
    cv_.wait(l, [this] { return !writer_active_ && readers_ == 0; });
    --writers_waiting_;
    writer_active_ = true;
  }
  void unlock() {
    std::lock_guard<std::mutex> l(mu_);
    writer_active_ = false;
    cv_.notify_all();
  }
  void lock_shared() {
    std::unique_lock<std::mutex> l(mu_);
    cv_.wait(l, [this] { return !writer_active_ && writers_waiting_ == 0; });
    ++readers_;
  }
  void unlock_shared() {
    std::lock_guard<std::mutex> l(mu_);
    if (--readers_ == 0) cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int readers_ = 0;
  int writers_waiting_ = 0;
  bool writer_active_ = false;
};

/// Background bulk-ingest writer: each loop commits one bundle-sized
/// ApplyBatch of kBatchPairs remove+add pairs round-robin over the churn
/// subjects (the paper's workload shape — whole bundles arrive while
/// readers browse). Size-neutral, so the exact post-join total is
/// checkable; every commit advances the epoch atomically, so readers
/// continuously pin fresh snapshots against a moving store.
///
/// When `lock` is set the writer models the seed contract instead: every
/// batch holds the store-wide lock exclusively for its full (ms-scale)
/// duration — operands are built outside the critical section, as a
/// careful caller would, and that is still not enough to keep readers
/// responsive.
template <typename Lock = std::shared_mutex>
class ChurnWriter {
 public:
  explicit ChurnWriter(TripleStore* store, Lock* lock = nullptr)
      : store_(store) {
    thread_ = std::thread([this, lock] {
      // The benchmark harness re-invokes each bench function while
      // calibrating iteration counts, so this writer may inherit a store
      // already churned by a predecessor. Epoch-stamp the value namespace
      // (epochs only grow, so names never collide across restarts) and
      // re-anchor every churn subject to a known value first.
      uint64_t base = store_->GetEpochStats().current;
      auto value_name = [base](uint64_t n) {
        return "r" + std::to_string(base) + "." + std::to_string(n);
      };
      std::vector<uint64_t> last(kChurnSubjects, 0);
      for (size_t s = 0; s < kChurnSubjects; ++s) {
        if (lock != nullptr) lock->lock();
        Status status = store_->SetOne("churn" + std::to_string(s), "value",
                                       Object::Literal(value_name(s)));
        if (lock != nullptr) lock->unlock();
        if (!status.ok()) return;
        last[s] = s;
      }
      uint64_t counter = kChurnSubjects;
      size_t subject_idx = 0;
      while (run_.load(std::memory_order_acquire)) {
        std::vector<TripleStore::WriteOp> ops;
        ops.reserve(2 * kBatchPairs);
        for (int k = 0; k < kBatchPairs; ++k) {
          size_t s = subject_idx;
          subject_idx = (subject_idx + 1) % kChurnSubjects;
          std::string subject = "churn" + std::to_string(s);
          ops.push_back(TripleStore::WriteOp::RemoveOp(Triple{
              subject, "value", Object::Literal(value_name(last[s]))}));
          last[s] = counter++;
          ops.push_back(TripleStore::WriteOp::AddOp(Triple{
              subject, "value", Object::Literal(value_name(last[s]))}));
        }
        if (lock != nullptr) lock->lock();
        TripleStore::BatchResult result = store_->ApplyBatch(std::move(ops));
        if (lock != nullptr) lock->unlock();
        if (result.applied != static_cast<size_t>(2 * kBatchPairs)) break;
        commits_.fetch_add(1, std::memory_order_relaxed);
      }
      store_->ReclaimRetired();
    });
  }
  uint64_t Stop() {
    run_.store(false, std::memory_order_release);
    thread_.join();
    return commits_.load(std::memory_order_relaxed);
  }

 private:
  TripleStore* store_;
  std::atomic<bool> run_{true};
  std::atomic<uint64_t> commits_{0};
  std::thread thread_;
};

/// Post-join exactness check, run by thread 0 after the writer stops.
void CheckExactTotals(TripleStore* store, benchmark::State& state) {
  if (store->size() != ExpectedSize()) {
    state.SkipWithError("post-join size drifted");
    return;
  }
  size_t hot = store->Select(TriplePattern::ByProperty(kHotProperty)).size();
  if (hot != static_cast<size_t>(kHotRows)) {
    state.SkipWithError("post-join hot cardinality drifted");
  }
}

// --- Headline: snapshot-pinned property selection under a live writer -----

void BM_SnapshotSelectHotUnderWriter(benchmark::State& state) {
  static TripleStore* store = BuildStore();
  static ChurnWriter<>* writer = nullptr;
  if (state.thread_index() == 0) writer = new ChurnWriter<>(store);
  for (auto _ : state) {
    TripleStore::Snapshot snap(*store);
    std::vector<Triple> rows =
        store->Select(TriplePattern::ByProperty(kHotProperty));
    benchmark::DoNotOptimize(rows.data());
    if (rows.size() != static_cast<size_t>(kHotRows)) {
      state.SkipWithError("torn read: hot cardinality wrong under snapshot");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    uint64_t commits = writer->Stop();
    delete writer;
    writer = nullptr;
    state.counters["writer_commits"] = benchmark::Counter(
        static_cast<double>(commits), benchmark::Counter::kAvgThreads);
    CheckExactTotals(store, state);
  }
}
BENCHMARK(BM_SnapshotSelectHotUnderWriter)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

// --- The seed contract: the same reads serialized behind one rwlock ------

void BM_CoarseLockSelectHotUnderWriter(benchmark::State& state) {
  static TripleStore* store = BuildStore();
  static std::shared_mutex* mu = new std::shared_mutex();
  static ChurnWriter<>* writer = nullptr;
  if (state.thread_index() == 0) writer = new ChurnWriter<>(store, mu);
  for (auto _ : state) {
    std::shared_lock<std::shared_mutex> lock(*mu);
    std::vector<Triple> rows =
        store->Select(TriplePattern::ByProperty(kHotProperty));
    benchmark::DoNotOptimize(rows.data());
    if (rows.size() != static_cast<size_t>(kHotRows)) {
      state.SkipWithError("torn read: hot cardinality wrong under rwlock");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    uint64_t commits = writer->Stop();
    delete writer;
    writer = nullptr;
    state.counters["writer_commits"] = benchmark::Counter(
        static_cast<double>(commits), benchmark::Counter::kAvgThreads);
    CheckExactTotals(store, state);
  }
}
BENCHMARK(BM_CoarseLockSelectHotUnderWriter)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

// --- The other lock pole: writer-preferring, so readers pay the price ----

void BM_WriterPrefLockSelectHotUnderWriter(benchmark::State& state) {
  static TripleStore* store = BuildStore();
  static WriterPrefLock* mu = new WriterPrefLock();
  static ChurnWriter<WriterPrefLock>* writer = nullptr;
  if (state.thread_index() == 0) {
    writer = new ChurnWriter<WriterPrefLock>(store, mu);
  }
  for (auto _ : state) {
    mu->lock_shared();
    std::vector<Triple> rows =
        store->Select(TriplePattern::ByProperty(kHotProperty));
    mu->unlock_shared();
    benchmark::DoNotOptimize(rows.data());
    if (rows.size() != static_cast<size_t>(kHotRows)) {
      state.SkipWithError("torn read: hot cardinality wrong under rwlock");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    uint64_t commits = writer->Stop();
    delete writer;
    writer = nullptr;
    state.counters["writer_commits"] = benchmark::Counter(
        static_cast<double>(commits), benchmark::Counter::kAvgThreads);
    CheckExactTotals(store, state);
  }
}
BENCHMARK(BM_WriterPrefLockSelectHotUnderWriter)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

// --- Point reads: GetOne on churned subjects (always exactly one value) ---

void BM_SnapshotPointReadUnderWriter(benchmark::State& state) {
  static TripleStore* store = BuildStore();
  static ChurnWriter<>* writer = nullptr;
  if (state.thread_index() == 0) writer = new ChurnWriter<>(store);
  uint64_t i = static_cast<uint64_t>(state.thread_index());
  for (auto _ : state) {
    TripleStore::Snapshot snap(*store);
    auto value = store->GetOne("churn" + std::to_string(i % kChurnSubjects),
                               "value");
    benchmark::DoNotOptimize(value);
    if (!value.has_value()) {
      state.SkipWithError("torn read: churned attribute vanished");
      break;
    }
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    writer->Stop();
    delete writer;
    writer = nullptr;
    CheckExactTotals(store, state);
  }
}
BENCHMARK(BM_SnapshotPointReadUnderWriter)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

// --- Reachability view: a whole BFS evaluated against one snapshot -------

void BM_SnapshotViewUnderWriter(benchmark::State& state) {
  static TripleStore* store = BuildStore();
  static ChurnWriter<>* writer = nullptr;
  if (state.thread_index() == 0) writer = new ChurnWriter<>(store);
  for (auto _ : state) {
    std::vector<Triple> view = store->ViewFrom("chain0");
    benchmark::DoNotOptimize(view.data());
    if (view.size() != static_cast<size_t>(kChainLength - 1)) {
      state.SkipWithError("torn read: view cardinality wrong");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    writer->Stop();
    delete writer;
    writer = nullptr;
    CheckExactTotals(store, state);
  }
}
BENCHMARK(BM_SnapshotViewUnderWriter)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

// --- Microcosts: what does the snapshot machinery itself cost? -----------

void BM_SnapshotPinUnpin(benchmark::State& state) {
  static TripleStore* store = BuildStore();
  for (auto _ : state) {
    TripleStore::Snapshot snap(*store);
    benchmark::DoNotOptimize(snap.epoch());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotPinUnpin)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

// --- Writer side: one serialized batch commit of 64 ops ------------------

void BM_ApplyBatchCommit(benchmark::State& state) {
  TripleStore store;
  constexpr int kBatch = 64;
  uint64_t generation = 0;
  for (auto _ : state) {
    std::vector<TripleStore::WriteOp> ops;
    ops.reserve(2 * kBatch);
    for (int k = 0; k < kBatch; ++k) {
      if (generation > 0) {
        ops.push_back(TripleStore::WriteOp::RemoveOp(
            Triple{"b" + std::to_string(k), "p.batch",
                   Object::Literal("g" + std::to_string(generation - 1))}));
      }
      ops.push_back(TripleStore::WriteOp::AddOp(
          Triple{"b" + std::to_string(k), "p.batch",
                 Object::Literal("g" + std::to_string(generation))}));
    }
    size_t expected = ops.size();
    TripleStore::BatchResult result = store.ApplyBatch(std::move(ops));
    benchmark::DoNotOptimize(result.epoch);
    if (result.applied != expected) {
      state.SkipWithError("batch op failed");
      break;
    }
    ++generation;
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ApplyBatchCommit);

}  // namespace
}  // namespace slim::trim

SLIM_BENCH_MAIN();
