// Experiment F3 (paper Fig. 3 / Fig. 10): Bundle-Scrap model operations
// through the SLIMPad DMI.
//
// Regenerates: Create_*/Update_*/Delete_* op latency as the pad grows, the
// cost of structural edits (nesting with cycle checks) as a function of
// nesting depth, and cascade deletion of whole bundle subtrees.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "slimpad/slimpad_dmi.h"

namespace slim::pad {
namespace {

// A pad with `n` scraps in bundles of 16, returning bundle/scrap ids.
struct BuiltPad {
  std::vector<std::string> bundles;
  std::vector<std::string> scraps;
};

BuiltPad BuildPad(SlimPadDmi* dmi, int64_t scraps) {
  BuiltPad out;
  const SlimPad* pad = *dmi->Create_SlimPad("bench");
  const Bundle* root = *dmi->Create_Bundle("root", {0, 0}, 800, 600);
  SLIM_BENCH_CHECK(dmi->Update_rootBundle(pad->id(), root->id()));
  out.bundles.push_back(root->id());
  for (int64_t i = 0; i < scraps; ++i) {
    if (i % 16 == 0 && i > 0) {
      const Bundle* b = *dmi->Create_Bundle("b" + std::to_string(i),
                                            {double(i), 0}, 200, 150);
      SLIM_BENCH_CHECK(dmi->AddNestedBundle(root->id(), b->id()));
      out.bundles.push_back(b->id());
    }
    const Scrap* s =
        *dmi->Create_Scrap("s" + std::to_string(i), {double(i % 640), 10});
    SLIM_BENCH_CHECK(dmi->AddScrapToBundle(out.bundles.back(), s->id()));
    out.scraps.push_back(s->id());
  }
  return out;
}

void BM_CreateScrapInGrowingPad(benchmark::State& state) {
  trim::TripleStore store;
  SlimPadDmi dmi(&store);
  BuiltPad pad = BuildPad(&dmi, state.range(0));
  int64_t i = 0;
  for (auto _ : state) {
    const Scrap* s = *dmi.Create_Scrap("new" + std::to_string(i), {0, 0});
    SLIM_BENCH_CHECK(dmi.AddScrapToBundle(pad.bundles[0], s->id()));
    state.PauseTiming();
    SLIM_BENCH_CHECK(dmi.Delete_Scrap(s->id()));  // keep size constant
    state.ResumeTiming();
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CreateScrapInGrowingPad)->Arg(100)->Arg(1000)->Arg(10000);

void BM_UpdateScrapPos(benchmark::State& state) {
  // The most frequent gesture: dragging a scrap (2-D freeform placement).
  trim::TripleStore store;
  SlimPadDmi dmi(&store);
  BuiltPad pad = BuildPad(&dmi, state.range(0));
  int64_t i = 0;
  for (auto _ : state) {
    const std::string& id = pad.scraps[i % pad.scraps.size()];
    SLIM_BENCH_CHECK(
        dmi.Update_scrapPos(id, {double(i % 640), double(i % 480)}));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateScrapPos)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RenameBundle(benchmark::State& state) {
  trim::TripleStore store;
  SlimPadDmi dmi(&store);
  BuiltPad pad = BuildPad(&dmi, 1000);
  int64_t i = 0;
  for (auto _ : state) {
    SLIM_BENCH_CHECK(dmi.Update_bundleName(
        pad.bundles[i % pad.bundles.size()], "name" + std::to_string(i)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RenameBundle);

void BM_NestBundleAtDepth(benchmark::State& state) {
  // Cycle detection walks the ancestor chain; cost grows with depth.
  const int depth = static_cast<int>(state.range(0));
  trim::TripleStore store;
  SlimPadDmi dmi(&store);
  const Bundle* root = *dmi.Create_Bundle("root", {0, 0}, 10, 10);
  std::string deepest = root->id();
  for (int d = 0; d < depth; ++d) {
    const Bundle* b = *dmi.Create_Bundle("d" + std::to_string(d), {0, 0}, 5, 5);
    SLIM_BENCH_CHECK(dmi.AddNestedBundle(deepest, b->id()));
    deepest = b->id();
  }
  for (auto _ : state) {
    const Bundle* leaf = *dmi.Create_Bundle("leaf", {0, 0}, 1, 1);
    SLIM_BENCH_CHECK(dmi.AddNestedBundle(deepest, leaf->id()));
    state.PauseTiming();
    SLIM_BENCH_CHECK(dmi.Delete_Bundle(leaf->id()));
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NestBundleAtDepth)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_DeleteBundleCascade(benchmark::State& state) {
  // Deleting a patient bundle removes its scraps, handles and nested
  // bundles (Fig. 10 Delete_Bundle).
  const int64_t scraps = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    trim::TripleStore store;
    SlimPadDmi dmi(&store);
    BuiltPad pad = BuildPad(&dmi, scraps);
    state.ResumeTiming();
    SLIM_BENCH_CHECK(dmi.Delete_Bundle(pad.bundles[0]));
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(state.iterations() * scraps);
}
BENCHMARK(BM_DeleteBundleCascade)->Arg(100)->Arg(1000);

void BM_AttachMarkHandle(benchmark::State& state) {
  trim::TripleStore store;
  SlimPadDmi dmi(&store);
  BuiltPad pad = BuildPad(&dmi, 1000);
  int64_t i = 0;
  for (auto _ : state) {
    const MarkHandle* h =
        *dmi.Create_MarkHandle("mark" + std::to_string(i));
    SLIM_BENCH_CHECK(
        dmi.SetScrapMark(pad.scraps[i % pad.scraps.size()], h->id()));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AttachMarkHandle);

void BM_Extension_AnnotateAndLink(benchmark::State& state) {
  trim::TripleStore store;
  SlimPadDmi dmi(&store);
  BuiltPad pad = BuildPad(&dmi, 1000);
  int64_t i = 0;
  for (auto _ : state) {
    const std::string& a = pad.scraps[i % pad.scraps.size()];
    const std::string& b = pad.scraps[(i + 1) % pad.scraps.size()];
    SLIM_BENCH_CHECK(dmi.AddScrapAnnotation(a, "note " + std::to_string(i)));
    SLIM_BENCH_CHECK(dmi.LinkScraps(a, b));
    SLIM_BENCH_CHECK(dmi.UnlinkScraps(a, b));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_Extension_AnnotateAndLink);

}  // namespace
}  // namespace slim::pad

SLIM_BENCH_MAIN();
