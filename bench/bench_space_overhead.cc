// Experiment T2 (paper §6): the *space* half of the flexibility trade-off.
//
// "The trade-off for this flexibility was space efficiency of the data..."
//
// Regenerates: bytes per scrap in the generic triple representation (store
// + indexes), in its XML persisted form, and in the native object graph —
// reported as benchmark counters, with the triple:native ratio the headline
// number. The paper's justification ("we expect the volume of superimposed
// information to be a fraction of the base data") is quantified by
// bench_lightweight.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "slimpad/slimpad_dmi.h"
#include "trim/persistence.h"

namespace slim::pad {
namespace {

void BuildPad(SlimPadDmi* dmi, int64_t scraps) {
  const SlimPad* pad = *dmi->Create_SlimPad("bench");
  const Bundle* root = *dmi->Create_Bundle("root", {0, 0}, 800, 600);
  SLIM_BENCH_CHECK(dmi->Update_rootBundle(pad->id(), root->id()));
  std::string current = root->id();
  for (int64_t i = 0; i < scraps; ++i) {
    if (i % 16 == 0 && i > 0) {
      const Bundle* b = *dmi->Create_Bundle("b" + std::to_string(i),
                                            {double(i), 0}, 200, 150);
      SLIM_BENCH_CHECK(dmi->AddNestedBundle(root->id(), b->id()));
      current = b->id();
    }
    const Scrap* s =
        *dmi->Create_Scrap("scrap " + std::to_string(i), {double(i % 640), 8});
    SLIM_BENCH_CHECK(dmi->AddScrapToBundle(current, s->id()));
    const MarkHandle* h = *dmi->Create_MarkHandle("mark" + std::to_string(i));
    SLIM_BENCH_CHECK(dmi->SetScrapMark(s->id(), h->id()));
  }
}

void BM_SpacePerScrap(benchmark::State& state) {
  const int64_t scraps = state.range(0);
  trim::TripleStore store;
  SlimPadDmi dmi(&store);
  BuildPad(&dmi, scraps);
  std::string xml = trim::StoreToXml(store);

  size_t triple_bytes = store.ApproximateBytes();
  size_t native_bytes = dmi.ApproximateNativeBytes();
  size_t xml_bytes = xml.size();

  for (auto _ : state) {
    // The measured operation is the byte accounting itself (cheap); the
    // counters below are the experiment's actual output.
    benchmark::DoNotOptimize(store.ApproximateBytes());
  }
  state.counters["scraps"] = static_cast<double>(scraps);
  state.counters["triples"] = static_cast<double>(store.size());
  state.counters["triple_bytes_per_scrap"] =
      static_cast<double>(triple_bytes) / static_cast<double>(scraps);
  state.counters["native_bytes_per_scrap"] =
      static_cast<double>(native_bytes) / static_cast<double>(scraps);
  state.counters["xml_bytes_per_scrap"] =
      static_cast<double>(xml_bytes) / static_cast<double>(scraps);
  state.counters["triple_vs_native_ratio"] =
      static_cast<double>(triple_bytes) / static_cast<double>(native_bytes);
}
BENCHMARK(BM_SpacePerScrap)->Arg(100)->Arg(1000)->Arg(10000);

// The same pad built directly as triples WITHOUT the duplicate native
// objects (a DMI-less superimposed app): isolates what the dual
// representation costs on top of pure triples.
void BM_SpaceDualRepresentationDelta(benchmark::State& state) {
  const int64_t scraps = state.range(0);
  trim::TripleStore store;
  SlimPadDmi dmi(&store);
  BuildPad(&dmi, scraps);

  for (auto _ : state) {
    benchmark::DoNotOptimize(dmi.NativeObjectCount());
  }
  state.counters["native_objects"] =
      static_cast<double>(dmi.NativeObjectCount());
  state.counters["dual_overhead_pct"] =
      100.0 * static_cast<double>(dmi.ApproximateNativeBytes()) /
      static_cast<double>(store.ApproximateBytes());
}
BENCHMARK(BM_SpaceDualRepresentationDelta)->Arg(1000);

}  // namespace
}  // namespace slim::pad

SLIM_BENCH_MAIN();
