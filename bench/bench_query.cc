// Ablation (paper §6): navigational access vs declarative query.
//
// "We are also considering augmenting such interfaces with query
// capabilities, in addition to the current navigational access."
//
// Regenerates: the same three questions answered two ways — hand-written
// navigation through the DMI's object graph, and the declarative query
// engine over the triples — plus query cost vs clause count and vs pad
// size. Expected shape: navigation wins on point lookups by a constant
// factor; the query engine's selectivity-ordered joins keep multi-hop
// questions in the same order of magnitude while being one line of text.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "slim/query.h"
#include "slimpad/slimpad_dmi.h"

namespace slim {
namespace {

// A rounds-shaped pad: `patients` bundles under a root, each with 8 scraps
// (every scrap marked), one scrap per patient named "K 4.9" (the question
// target).
struct BenchPad {
  trim::TripleStore store;
  std::unique_ptr<pad::SlimPadDmi> dmi;
  std::string root;
  std::vector<std::string> patient_bundles;
};

std::unique_ptr<BenchPad> BuildBenchPad(int patients) {
  auto out = std::make_unique<BenchPad>();
  out->dmi = std::make_unique<pad::SlimPadDmi>(&out->store);
  pad::SlimPadDmi& dmi = *out->dmi;
  const pad::SlimPad* p = *dmi.Create_SlimPad("Rounds");
  const pad::Bundle* root = *dmi.Create_Bundle("root", {0, 0}, 800, 600);
  SLIM_BENCH_CHECK(dmi.Update_rootBundle(p->id(), root->id()));
  out->root = root->id();
  for (int i = 0; i < patients; ++i) {
    const pad::Bundle* b = *dmi.Create_Bundle(
        "patient" + std::to_string(i), {0, double(i)}, 640, 160);
    SLIM_BENCH_CHECK(dmi.AddNestedBundle(root->id(), b->id()));
    out->patient_bundles.push_back(b->id());
    for (int s = 0; s < 8; ++s) {
      std::string name = s == 3 ? "K 4.9"
                                : "med" + std::to_string(i) + "_" +
                                      std::to_string(s);
      const pad::Scrap* scrap = *dmi.Create_Scrap(name, {double(s), 0});
      SLIM_BENCH_CHECK(dmi.AddScrapToBundle(b->id(), scrap->id()));
      const pad::MarkHandle* h = *dmi.Create_MarkHandle(
          "mark" + std::to_string(i * 8 + s));
      SLIM_BENCH_CHECK(dmi.SetScrapMark(scrap->id(), h->id()));
    }
  }
  return out;
}

// Q1: find every scrap named "K 4.9" (single attribute filter).
void BM_Q1_Navigational(benchmark::State& state) {
  auto pad = BuildBenchPad(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<std::string> hits;
    for (const pad::Scrap* s : pad->dmi->Scraps()) {
      if (s->name() == "K 4.9") hits.push_back(s->id());
    }
    benchmark::DoNotOptimize(hits);
    state.counters["hits"] = static_cast<double>(hits.size());
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_Q1_Query(benchmark::State& state) {
  auto pad = BuildBenchPad(static_cast<int>(state.range(0)));
  store::Query q = *store::Query::Parse("?s scrapName \"K 4.9\"");
  for (auto _ : state) {
    auto rows = store::Execute(pad->store, q);
    if (!rows.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rows);
    state.counters["hits"] = static_cast<double>(rows->size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Q1_Navigational)->Arg(8)->Arg(64)->Arg(256);
BENCHMARK(BM_Q1_Query)->Arg(8)->Arg(64)->Arg(256);

// Q2: which bundles contain a scrap named "K 4.9"? (one join)
void BM_Q2_Navigational(benchmark::State& state) {
  auto pad = BuildBenchPad(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<std::string> hits;
    for (const pad::Bundle* b : pad->dmi->Bundles()) {
      for (const std::string& sid : b->scraps()) {
        const pad::Scrap* s = *pad->dmi->GetScrap(sid);
        if (s->name() == "K 4.9") hits.push_back(b->id());
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_Q2_Query(benchmark::State& state) {
  auto pad = BuildBenchPad(static_cast<int>(state.range(0)));
  store::Query q = *store::Query::Parse(
      "?b bundleContent ?s . ?s scrapName \"K 4.9\"");
  for (auto _ : state) {
    auto rows = store::Execute(pad->store, q);
    if (!rows.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Q2_Navigational)->Arg(8)->Arg(64)->Arg(256);
BENCHMARK(BM_Q2_Query)->Arg(8)->Arg(64)->Arg(256);

// Q3: mark ids referenced from bundles nested under the root whose scraps
// are named "K 4.9" (three joins).
void BM_Q3_Navigational(benchmark::State& state) {
  auto pad = BuildBenchPad(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<std::string> hits;
    const pad::Bundle* root = *pad->dmi->GetBundle(pad->root);
    for (const std::string& bid : root->nested_bundles()) {
      const pad::Bundle* b = *pad->dmi->GetBundle(bid);
      for (const std::string& sid : b->scraps()) {
        const pad::Scrap* s = *pad->dmi->GetScrap(sid);
        if (s->name() != "K 4.9") continue;
        for (const std::string& hid : s->mark_handles()) {
          const pad::MarkHandle* h = *pad->dmi->GetMarkHandle(hid);
          hits.push_back(h->mark_id());
        }
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_Q3_Query(benchmark::State& state) {
  auto pad = BuildBenchPad(static_cast<int>(state.range(0)));
  store::Query q = *store::Query::Parse(
      "<" + pad->root + "> nestedBundle ?b . "
      "?b bundleContent ?s . "
      "?s scrapName \"K 4.9\" . "
      "?s scrapMark ?h . "
      "?h markId ?m");
  for (auto _ : state) {
    auto rows = store::Execute(pad->store, q);
    if (!rows.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Q3_Navigational)->Arg(8)->Arg(64)->Arg(256);
BENCHMARK(BM_Q3_Query)->Arg(8)->Arg(64)->Arg(256);

// Clause-count sweep on a fixed pad: cost of each extra join hop.
void BM_QueryClauseSweep(benchmark::State& state) {
  auto pad = BuildBenchPad(64);
  const int clauses = static_cast<int>(state.range(0));
  std::string text;
  switch (clauses) {
    case 1: text = "?s scrapName \"K 4.9\""; break;
    case 2: text = "?b bundleContent ?s . ?s scrapName \"K 4.9\""; break;
    case 3:
      text = "?b bundleContent ?s . ?s scrapName \"K 4.9\" . "
             "?s scrapMark ?h";
      break;
    default:
      text = "?b bundleContent ?s . ?s scrapName \"K 4.9\" . "
             "?s scrapMark ?h . ?h markId ?m";
      break;
  }
  store::Query q = *store::Query::Parse(text);
  for (auto _ : state) {
    auto rows = store::Execute(pad->store, q);
    if (!rows.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["clauses"] = clauses;
}
BENCHMARK(BM_QueryClauseSweep)->DenseRange(1, 4, 1);

}  // namespace
}  // namespace slim

SLIM_BENCH_MAIN();
