// Experiment F1 (paper Fig. 1): one superimposed layer, many heterogeneous
// base sources.
//
// Regenerates: pad construction and resolve-all cost as the number of
// distinct base-source *types* grows from 1 to 6 with the total scrap count
// held fixed. The architecture claim under test: the Mark Manager hides
// heterogeneity, so cost scales with scrap count, not with source-type
// diversity.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "doc/xml/parser.h"
#include "mark/mark_manager.h"
#include "mark/modules.h"
#include "slimpad/slimpad_app.h"
#include "util/rng.h"

namespace slim {
namespace {

constexpr int kScrapsTotal = 120;

class LayersFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    if (types_ == state.range(0)) return;
    types_ = state.range(0);
    Rng rng(5);

    excel_ = std::make_unique<baseapp::SpreadsheetApp>();
    xml_ = std::make_unique<baseapp::XmlApp>();
    text_ = std::make_unique<baseapp::TextApp>();
    slides_ = std::make_unique<baseapp::SlideApp>();
    pdf_ = std::make_unique<baseapp::PdfApp>();
    html_ = std::make_unique<baseapp::HtmlApp>();

    auto wb = std::make_unique<doc::Workbook>("w.book");
    doc::Worksheet* ws = wb->AddSheet("S").ValueOrDie();
    for (int r = 0; r < kScrapsTotal; ++r) ws->SetValue({r, 0}, rng.Word(8));
    SLIM_BENCH_CHECK(excel_->RegisterWorkbook(std::move(wb)));

    auto xdoc = doc::xml::Document::Create("r");
    for (int i = 0; i < kScrapsTotal; ++i) {
      xdoc->root()->AddElement("e")->AddText(rng.Word(10));
    }
    SLIM_BENCH_CHECK(xml_->RegisterDocument("d.xml", std::move(xdoc)));

    auto note = std::make_unique<doc::text::TextDocument>();
    for (int i = 0; i < kScrapsTotal; ++i) note->AddParagraph(rng.Word(20));
    SLIM_BENCH_CHECK(text_->RegisterDocument("n.txt", std::move(note)));

    auto deck = std::make_unique<doc::slides::SlideDeck>("t.deck");
    for (int s = 0; s < kScrapsTotal / 4; ++s) {
      auto* slide = deck->GetSlide(deck->AddSlide(rng.Word(6))).ValueOrDie();
      for (int j = 0; j < 4; ++j) {
        SLIM_BENCH_CHECK(slide->AddShape(
            {"sh" + std::to_string(j), doc::slides::ShapeKind::kTextBox,
             double(j), 0, 50, 20, rng.Word(12), {}}));
      }
    }
    SLIM_BENCH_CHECK(slides_->RegisterDeck(std::move(deck)));

    std::vector<std::string> paras;
    for (int i = 0; i < kScrapsTotal; ++i) paras.push_back(rng.Word(30));
    auto pdf_doc = doc::pdf::PdfDocument::BuildFromParagraphs(paras);
    pdf_doc->set_file_name("g.pdf");
    pdf_box_ = pdf_doc->pages()[0].objects[0].box;
    SLIM_BENCH_CHECK(pdf_->RegisterDocument(std::move(pdf_doc)));

    std::string html = "<body>";
    for (int i = 0; i < kScrapsTotal; ++i) {
      html += "<p id=\"p" + std::to_string(i) + "\">" + rng.Word(10) + "</p>";
    }
    html += "</body>";
    SLIM_BENCH_CHECK(html_->RegisterPage("u", html));

    modules_.clear();
    modules_.push_back(std::make_unique<mark::ExcelMarkModule>(excel_.get()));
    modules_.push_back(std::make_unique<mark::XmlMarkModule>(xml_.get()));
    modules_.push_back(std::make_unique<mark::TextMarkModule>(text_.get()));
    modules_.push_back(std::make_unique<mark::SlideMarkModule>(slides_.get()));
    modules_.push_back(std::make_unique<mark::PdfMarkModule>(pdf_.get()));
    modules_.push_back(std::make_unique<mark::HtmlMarkModule>(html_.get()));
  }

  // Makes the i-th selection in the type chosen round-robin over the
  // first `types_` source types.
  std::string SelectAndType(int i) {
    int t = i % static_cast<int>(types_);
    switch (t) {
      case 0:
        SLIM_BENCH_CHECK(excel_->Select(
            "w.book", "S", doc::RangeRef{{i % kScrapsTotal, 0},
                                         {i % kScrapsTotal, 0}}));
        return "excel";
      case 1:
        SLIM_BENCH_CHECK(xml_->SelectPath(
            "d.xml", "/r/e[" + std::to_string(i % kScrapsTotal + 1) + "]"));
        return "xml";
      case 2:
        SLIM_BENCH_CHECK(text_->Select("n.txt", {i % kScrapsTotal, 0, 5}));
        return "text";
      case 3:
        SLIM_BENCH_CHECK(slides_->Select("t.deck",
                                         (i / 4) % (kScrapsTotal / 4),
                                         "sh" + std::to_string(i % 4)));
        return "slides";
      case 4:
        SLIM_BENCH_CHECK(pdf_->SelectRegion("g.pdf", 0, pdf_box_));
        return "pdf";
      default:
        SLIM_BENCH_CHECK(html_->NavigateTo(
            "u", "id:p" + std::to_string(i % kScrapsTotal)));
        return "html";
    }
  }

  int64_t types_ = -1;
  std::unique_ptr<baseapp::SpreadsheetApp> excel_;
  std::unique_ptr<baseapp::XmlApp> xml_;
  std::unique_ptr<baseapp::TextApp> text_;
  std::unique_ptr<baseapp::SlideApp> slides_;
  std::unique_ptr<baseapp::PdfApp> pdf_;
  std::unique_ptr<baseapp::HtmlApp> html_;
  std::vector<std::unique_ptr<mark::MarkModule>> modules_;
  doc::pdf::Rect pdf_box_;
};

BENCHMARK_DEFINE_F(LayersFixture, BuildHeterogeneousPad)
(benchmark::State& state) {
  for (auto _ : state) {
    mark::MarkManager marks;
    for (auto& m : modules_) SLIM_BENCH_CHECK(marks.RegisterModule(m.get()));
    pad::SlimPadApp app(&marks);
    SLIM_BENCH_CHECK(app.NewPad("layers"));
    std::string root = app.RootBundle().ValueOrDie();
    for (int i = 0; i < kScrapsTotal; ++i) {
      std::string type = SelectAndType(i);
      auto scrap = app.AddScrapFromSelection(root, type, "", {double(i), 0});
      if (!scrap.ok()) state.SkipWithError(scrap.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(marks.size());
  }
  state.SetItemsProcessed(state.iterations() * kScrapsTotal);
  state.counters["source_types"] = static_cast<double>(types_);
}
BENCHMARK_REGISTER_F(LayersFixture, BuildHeterogeneousPad)
    ->DenseRange(1, 6, 1);

BENCHMARK_DEFINE_F(LayersFixture, ResolveAllHeterogeneous)
(benchmark::State& state) {
  mark::MarkManager marks;
  for (auto& m : modules_) SLIM_BENCH_CHECK(marks.RegisterModule(m.get()));
  pad::SlimPadApp app(&marks);
  SLIM_BENCH_CHECK(app.NewPad("layers"));
  std::string root = app.RootBundle().ValueOrDie();
  std::vector<std::string> scraps;
  for (int i = 0; i < kScrapsTotal; ++i) {
    std::string type = SelectAndType(i);
    scraps.push_back(
        app.AddScrapFromSelection(root, type, "", {double(i), 0})
            .ValueOrDie());
  }
  for (auto _ : state) {
    for (const std::string& id : scraps) {
      auto result = app.OpenScrap(id);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kScrapsTotal);
  state.counters["source_types"] = static_cast<double>(types_);
}
BENCHMARK_REGISTER_F(LayersFixture, ResolveAllHeterogeneous)
    ->DenseRange(1, 6, 1);

}  // namespace
}  // namespace slim

SLIM_BENCH_MAIN();
