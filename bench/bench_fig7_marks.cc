// Experiment F7/F8 (paper §4.2, Figs. 7-8): mark management.
//
// Regenerates: per-mark-type creation (from the base application's current
// selection) and resolution (driving the base application back to the
// element), plus how resolution scales with base-document size — the claim
// under test is that the Mark Manager's narrow interface keeps per-type
// costs uniform and small.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "doc/xml/parser.h"
#include "mark/mark_manager.h"
#include "mark/modules.h"
#include "util/rng.h"

namespace slim::mark {
namespace {

// A fixture with one document per base type, sized by state.range(0).
class MarkBench : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    if (size_ == state.range(0)) return;
    size_ = state.range(0);
    excel_ = std::make_unique<baseapp::SpreadsheetApp>();
    xml_ = std::make_unique<baseapp::XmlApp>();
    text_ = std::make_unique<baseapp::TextApp>();
    slides_ = std::make_unique<baseapp::SlideApp>();
    pdf_ = std::make_unique<baseapp::PdfApp>();
    html_ = std::make_unique<baseapp::HtmlApp>();
    Rng rng(13);

    // Spreadsheet with `size_` data rows.
    auto wb = std::make_unique<doc::Workbook>("meds.book");
    doc::Worksheet* ws = wb->AddSheet("Meds").ValueOrDie();
    for (int64_t r = 0; r < size_; ++r) {
      ws->SetValue({static_cast<int32_t>(r), 0}, rng.Word(8));
      ws->SetValue({static_cast<int32_t>(r), 1}, double(r));
    }
    SLIM_BENCH_CHECK(excel_->RegisterWorkbook(std::move(wb)));

    // XML with `size_` result elements.
    auto doc = doc::xml::Document::Create("labReport");
    doc::xml::Element* panel = doc->root()->AddElement("panel");
    for (int64_t i = 0; i < size_; ++i) {
      doc::xml::Element* result = panel->AddElement("result");
      result->SetAttribute("name", rng.Word(4));
      result->AddText(rng.Word(12));
    }
    SLIM_BENCH_CHECK(xml_->RegisterDocument("lab.xml", std::move(doc)));

    // Text with `size_` paragraphs.
    auto note = std::make_unique<doc::text::TextDocument>();
    for (int64_t i = 0; i < size_; ++i) {
      note->AddParagraph(rng.Word(7) + " " + rng.Word(9) + " " + rng.Word(5));
    }
    SLIM_BENCH_CHECK(text_->RegisterDocument("note.txt", std::move(note)));

    // Slide deck with `size_`/8 slides of 8 shapes.
    auto deck = std::make_unique<doc::slides::SlideDeck>("talk.deck");
    for (int64_t s = 0; s < std::max<int64_t>(1, size_ / 8); ++s) {
      auto* slide = deck->GetSlide(deck->AddSlide(rng.Word(10))).ValueOrDie();
      for (int j = 0; j < 8; ++j) {
        SLIM_BENCH_CHECK(slide->AddShape(
            {"shape" + std::to_string(j), doc::slides::ShapeKind::kTextBox,
             double(j * 10), 0, 100, 20, rng.Word(16), {}}));
      }
    }
    SLIM_BENCH_CHECK(slides_->RegisterDeck(std::move(deck)));

    // PDF with `size_` paragraphs.
    std::vector<std::string> paras;
    for (int64_t i = 0; i < size_; ++i) {
      paras.push_back(rng.Word(6) + " " + rng.Word(8) + " " + rng.Word(7));
    }
    auto pdf_doc = doc::pdf::PdfDocument::BuildFromParagraphs(paras);
    pdf_doc->set_file_name("doc.pdf");
    pdf_box_ = pdf_doc->pages()[0].objects[0].box;
    SLIM_BENCH_CHECK(pdf_->RegisterDocument(std::move(pdf_doc)));

    // HTML with `size_` paragraphs (every 4th has an id).
    std::string html = "<html><body>";
    for (int64_t i = 0; i < size_; ++i) {
      html += "<p";
      if (i % 4 == 0) html += " id=\"p" + std::to_string(i) + "\"";
      html += ">" + rng.Word(10) + "</p>";
    }
    html += "</body></html>";
    SLIM_BENCH_CHECK(html_->RegisterPage("http://h/p", html));

    modules_.clear();
    manager_ = std::make_unique<MarkManager>();
    modules_.push_back(std::make_unique<ExcelMarkModule>(excel_.get()));
    modules_.push_back(std::make_unique<XmlMarkModule>(xml_.get()));
    modules_.push_back(std::make_unique<TextMarkModule>(text_.get()));
    modules_.push_back(std::make_unique<SlideMarkModule>(slides_.get()));
    modules_.push_back(std::make_unique<PdfMarkModule>(pdf_.get()));
    modules_.push_back(std::make_unique<HtmlMarkModule>(html_.get()));
    for (auto& m : modules_) {
      SLIM_BENCH_CHECK(manager_->RegisterModule(m.get()));
    }
  }

  void SelectFor(const std::string& type, int64_t i) {
    if (type == "excel") {
      SLIM_BENCH_CHECK(excel_->Select(
          "meds.book", "Meds",
          doc::RangeRef{{static_cast<int32_t>(i % size_), 0},
                        {static_cast<int32_t>(i % size_), 1}}));
    } else if (type == "xml") {
      SLIM_BENCH_CHECK(xml_->SelectPath(
          "lab.xml",
          "/labReport/panel/result[" + std::to_string(i % size_ + 1) + "]"));
    } else if (type == "text") {
      SLIM_BENCH_CHECK(text_->Select(
          "note.txt",
          {static_cast<int32_t>(i % size_), 0, 5}));
    } else if (type == "slides") {
      SLIM_BENCH_CHECK(slides_->Select(
          "talk.deck", static_cast<int32_t>(i % std::max<int64_t>(1, size_ / 8)),
          "shape" + std::to_string(i % 8)));
    } else if (type == "pdf") {
      SLIM_BENCH_CHECK(pdf_->SelectRegion("doc.pdf", 0, pdf_box_));
    } else if (type == "html") {
      SLIM_BENCH_CHECK(html_->NavigateTo(
          "http://h/p", "id:p" + std::to_string((i * 4) % size_)));
      // NavigateTo re-selects; creation reads the selection.
    }
  }

  int64_t size_ = -1;
  std::unique_ptr<baseapp::SpreadsheetApp> excel_;
  std::unique_ptr<baseapp::XmlApp> xml_;
  std::unique_ptr<baseapp::TextApp> text_;
  std::unique_ptr<baseapp::SlideApp> slides_;
  std::unique_ptr<baseapp::PdfApp> pdf_;
  std::unique_ptr<baseapp::HtmlApp> html_;
  std::vector<std::unique_ptr<MarkModule>> modules_;
  std::unique_ptr<MarkManager> manager_;
  doc::pdf::Rect pdf_box_;
};

void RunCreate(MarkBench* fixture, benchmark::State& state,
               const std::string& type) {
  int64_t i = 0;
  for (auto _ : state) {
    fixture->SelectFor(type, i++);
    auto id = fixture->manager_->CreateMarkFromSelection(type);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    benchmark::DoNotOptimize(id);
  }
  state.SetItemsProcessed(state.iterations());
}

void RunResolve(MarkBench* fixture, benchmark::State& state,
                const std::string& type) {
  // Pre-create a pool of marks to resolve.
  std::vector<std::string> ids;
  for (int64_t i = 0; i < 64; ++i) {
    fixture->SelectFor(type, i);
    ids.push_back(
        fixture->manager_->CreateMarkFromSelection(type).ValueOrDie());
  }
  int64_t i = 0;
  for (auto _ : state) {
    Status st = fixture->manager_->ResolveMark(ids[i++ % ids.size()]);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}

#define MARK_TYPE_BENCH(type_name)                                       \
  BENCHMARK_DEFINE_F(MarkBench, Create_##type_name)                      \
  (benchmark::State & state) { RunCreate(this, state, #type_name); }     \
  BENCHMARK_REGISTER_F(MarkBench, Create_##type_name)                    \
      ->Arg(64)->Arg(1024);                                              \
  BENCHMARK_DEFINE_F(MarkBench, Resolve_##type_name)                     \
  (benchmark::State & state) { RunResolve(this, state, #type_name); }    \
  BENCHMARK_REGISTER_F(MarkBench, Resolve_##type_name)                   \
      ->Arg(64)->Arg(1024)

MARK_TYPE_BENCH(excel);
MARK_TYPE_BENCH(xml);
MARK_TYPE_BENCH(text);
MARK_TYPE_BENCH(slides);
MARK_TYPE_BENCH(pdf);
MARK_TYPE_BENCH(html);

// Mark persistence: serialize + reload N marks of mixed type.
BENCHMARK_DEFINE_F(MarkBench, PersistMixedMarks)(benchmark::State& state) {
  const char* types[] = {"excel", "xml", "text", "slides", "pdf", "html"};
  for (int64_t i = 0; i < 120; ++i) {
    SelectFor(types[i % 6], i);
    (void)manager_->CreateMarkFromSelection(types[i % 6]).ValueOrDie();
  }
  for (auto _ : state) {
    std::string xml_text = manager_->ToXml();
    MarkManager reloaded;
    for (auto& m : modules_) SLIM_BENCH_CHECK(reloaded.RegisterModule(m.get()));
    SLIM_BENCH_CHECK(reloaded.FromXml(xml_text));
    benchmark::DoNotOptimize(reloaded.size());
  }
  state.SetItemsProcessed(state.iterations() * 120);
}
BENCHMARK_REGISTER_F(MarkBench, PersistMixedMarks)->Arg(64);

}  // namespace
}  // namespace slim::mark

SLIM_BENCH_MAIN();
